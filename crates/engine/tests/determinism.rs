//! Batch-level guarantees on the real benchmark suite: determinism across
//! worker counts, fingerprint collision sanity, cache-size bounds, and
//! warm-vs-cold equivalence.

use caqr::Strategy;
use caqr_arch::Device;
use caqr_engine::{BatchOptions, BatchRequest, CompileJob, Engine};
use std::collections::BTreeSet;

fn suite_jobs(strategies: &[Strategy]) -> Vec<CompileJob> {
    let mut jobs = Vec::new();
    for bench in caqr_benchmarks::suite::full_table_suite(2023) {
        let device = if bench.circuit.num_qubits() <= 27 {
            Device::mumbai(2023)
        } else {
            Device::scaled_heavy_hex(bench.circuit.num_qubits(), 2023)
        };
        for &strategy in strategies {
            jobs.push(CompileJob::new(
                bench.name.clone(),
                bench.circuit.clone(),
                device.clone(),
                strategy,
            ));
        }
    }
    jobs
}

#[test]
fn batch_report_is_byte_identical_across_worker_counts() {
    let jobs = suite_jobs(&[Strategy::Baseline, Strategy::Sr]);
    let run = |workers: usize| {
        let request = BatchRequest::new(jobs.clone()).with_options(BatchOptions {
            workers,
            cache_capacity: 64,
        });
        Engine::run(&request).render_table()
    };
    let sequential = run(1);
    let pooled = run(8);
    assert_eq!(sequential, pooled, "worker count must not change results");
    assert!(sequential.contains("BV_10"));
}

#[test]
fn suite_fingerprints_do_not_collide() {
    // Every (benchmark, strategy) pair across the paper's full table suite
    // must map to a distinct cache key — a collision here would silently
    // serve one benchmark's compile for another.
    let jobs = suite_jobs(&[Strategy::Baseline, Strategy::QsMinDepth, Strategy::Sr]);
    let keys: BTreeSet<u128> = jobs.iter().map(|j| j.key().as_u128()).collect();
    assert_eq!(keys.len(), jobs.len(), "cache-key collision in the suite");

    // The underlying circuit fingerprints are distinct too.
    let circuits: BTreeSet<u128> = caqr_benchmarks::suite::full_table_suite(2023)
        .iter()
        .map(|b| b.circuit.fingerprint().as_u128())
        .collect();
    assert_eq!(
        circuits.len(),
        caqr_benchmarks::suite::full_table_suite(2023).len()
    );
}

#[test]
fn tiny_cache_stays_bounded_and_evicts() {
    // Duplicate suite with a cache far smaller than the job count: the
    // engine must evict (counted) rather than grow, and still return
    // correct per-job results.
    let jobs: Vec<CompileJob> = suite_jobs(&[Strategy::Baseline])
        .into_iter()
        .chain(suite_jobs(&[Strategy::Baseline]))
        .collect();
    let request = BatchRequest::new(jobs).with_options(BatchOptions {
        workers: 1,
        cache_capacity: 3,
    });
    let report = Engine::run(&request);
    assert_eq!(report.failed_count(), 0);
    let stats = report.metrics.cache;
    assert!(stats.evictions > 0, "expected evictions, got {stats:?}");
    assert!(
        stats.insertions - stats.evictions <= 3,
        "cache exceeded its bound: {stats:?}"
    );
}

#[test]
fn warm_cache_reproduces_cold_results_exactly() {
    let doubled: Vec<CompileJob> = suite_jobs(&[Strategy::Sr])
        .into_iter()
        .chain(suite_jobs(&[Strategy::Sr]))
        .collect();
    let run = |cache_capacity: usize| {
        let request = BatchRequest::new(doubled.clone()).with_options(BatchOptions {
            workers: 1,
            cache_capacity,
        });
        Engine::run(&request)
    };
    let cold = run(0);
    let warm = run(64);
    assert_eq!(cold.metrics.cache.hits, 0);
    assert_eq!(warm.metrics.cache.hits as usize, doubled.len() / 2);
    assert_eq!(cold.render_table(), warm.render_table());
    for (c, w) in cold.results.iter().zip(&warm.results) {
        let (c, w) = (c.as_ref().unwrap(), w.as_ref().unwrap());
        assert_eq!(c.report.circuit, w.report.circuit);
        assert_eq!(c.report.esp, w.report.esp);
    }
}
