//! End-to-end tests of the `caqr` command line.

use std::io::Write as _;
use std::process::{Command, Stdio};

const BV3_QASM: &str = "OPENQASM 2.0;
include \"qelib1.inc\";
qreg q[3];
creg c[2];
h q[0];
h q[1];
x q[2];
h q[2];
cx q[0], q[2];
h q[0];
cx q[1], q[2];
h q[1];
measure q[0] -> c[0];
measure q[1] -> c[1];
";

fn run(args: &[&str], stdin: &str) -> (String, String, bool) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_caqr"))
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("binary runs");
    child
        .stdin
        .as_mut()
        .expect("stdin piped")
        .write_all(stdin.as_bytes())
        .expect("write stdin");
    let out = child.wait_with_output().expect("wait");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

#[test]
fn info_reports_stats() {
    let (stdout, _, ok) = run(&["info", "-"], BV3_QASM);
    assert!(ok);
    assert!(stdout.contains("qubits: 3"));
    assert!(stdout.contains("two-qubit gates: 2"));
}

#[test]
fn advise_finds_the_reuse_opportunity() {
    // BV_3 has exactly one valid pair (small circuit -> "marginal"); the
    // plumbing matters here, not the verdict strength.
    let (stdout, _, ok) = run(&["advise", "-"], BV3_QASM);
    assert!(ok);
    assert!(
        stdout.contains("1 reuse pairs"),
        "expected the single BV_3 pair: {stdout}"
    );
    assert!(!stdout.contains("not applicable"), "{stdout}");
}

#[test]
fn sweep_reaches_two_qubits() {
    let (stdout, _, ok) = run(&["sweep", "-"], BV3_QASM);
    assert!(ok);
    let last = stdout.lines().last().expect("has rows");
    assert!(last.trim_start().starts_with('2'), "{stdout}");
}

#[test]
fn compile_emits_valid_qasm() {
    let (stdout, _, ok) = run(
        &["compile", "-", "--strategy", "qs-max", "--emit"],
        BV3_QASM,
    );
    assert!(ok, "{stdout}");
    assert!(stdout.contains("qs-max-reuse:"));
    // Re-parse the emitted QASM.
    let qasm_start = stdout.find("OPENQASM").expect("emitted QASM");
    let circuit = caqr_circuit::qasm::from_qasm(&stdout[qasm_start..]).expect("valid QASM");
    assert!(circuit.num_qubits() >= 2);
}

#[test]
fn compile_on_custom_device() {
    let (stdout, _, ok) = run(
        &[
            "compile",
            "-",
            "--strategy",
            "baseline",
            "--device",
            "line:5",
        ],
        BV3_QASM,
    );
    assert!(ok, "{stdout}");
    assert!(stdout.contains("baseline:"));
}

#[test]
fn compile_batch_over_suite() {
    let (stdout, _, ok) = run(
        &[
            "compile-batch",
            "--suite",
            "regular",
            "--strategy",
            "baseline,sr",
            "--jobs",
            "2",
            "--metrics",
        ],
        "",
    );
    assert!(ok, "{stdout}");
    // 7 regular benchmarks x 2 strategies, plus the header.
    assert_eq!(
        stdout.lines().take_while(|l| !l.is_empty()).count(),
        15,
        "{stdout}"
    );
    assert!(stdout.contains("BV_10"));
    assert!(stdout.contains("jobs_ok                14"), "{stdout}");
    assert!(stdout.contains("stage_routing"), "{stdout}");
}

#[test]
fn compile_batch_json_lines_are_parseable_shape() {
    let (stdout, _, ok) = run(
        &["compile-batch", "-", "--strategy", "baseline,sr", "--json"],
        BV3_QASM,
    );
    assert!(ok, "{stdout}");
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 3, "two job lines + one metrics line: {stdout}");
    for line in &lines {
        assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
    }
    assert!(lines[0].contains("\"type\":\"job\""));
    assert!(lines[2].contains("\"type\":\"metrics\""));
    assert!(lines[2].contains("\"cache_misses\":2"));
}

#[test]
fn compile_batch_table_is_identical_across_worker_counts() {
    let args = |jobs: &'static str| {
        vec![
            "compile-batch",
            "--suite",
            "regular",
            "--strategy",
            "baseline,qs-min-depth,sr",
            "--jobs",
            jobs,
        ]
    };
    let (one, _, ok1) = run(&args("1"), "");
    let (eight, _, ok8) = run(&args("8"), "");
    assert!(ok1 && ok8);
    assert_eq!(one, eight, "batch table must not depend on --jobs");
}

#[test]
fn compile_batch_crosses_strategies_with_cost_models() {
    let (stdout, _, ok) = run(
        &[
            "compile-batch",
            "-",
            "--strategy",
            "baseline",
            "--cost-model",
            "hop,lookahead:4:0.5,noise-aware",
            "--json",
        ],
        BV3_QASM,
    );
    assert!(ok, "{stdout}");
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(
        lines.len(),
        4,
        "three job lines + one metrics line: {stdout}"
    );
    assert!(lines[0].contains("\"router\":\"hop\""), "{stdout}");
    assert!(
        lines[1].contains("\"router\":\"lookahead:4:0.5\""),
        "{stdout}"
    );
    assert!(lines[2].contains("\"router\":\"noise-aware\""), "{stdout}");
    assert!(
        lines[3].contains("\"policies\":{\"hop\":"),
        "per-policy metrics attribution: {stdout}"
    );
}

#[test]
fn compile_accepts_router_alias() {
    let (stdout, _, ok) = run(
        &[
            "compile",
            "-",
            "--strategy",
            "sr",
            "--router",
            "noise-aware",
        ],
        BV3_QASM,
    );
    assert!(ok, "{stdout}");
    assert!(stdout.contains("sr:"), "{stdout}");
    let (_, stderr, ok) = run(&["compile", "-", "--cost-model", "nope"], BV3_QASM);
    assert!(!ok);
    assert!(stderr.contains("unknown cost model"), "{stderr}");
}

#[test]
fn compile_routes_with_the_dpqa_backend_on_a_grid_device() {
    let (stdout, _, ok) = run(
        &[
            "compile",
            "-",
            "--strategy",
            "sr",
            "--device",
            "grid:3x3",
            "--routing-backend",
            "dpqa",
        ],
        BV3_QASM,
    );
    assert!(ok, "{stdout}");
    assert!(stdout.contains("sr:"), "{stdout}");
    assert!(
        stdout.contains(" moves="),
        "movement stages surface in the report: {stdout}"
    );
    assert!(stdout.contains("swaps=0"), "no SWAPs under DPQA: {stdout}");
}

#[test]
fn dpqa_backend_rejects_fixed_coupling_devices() {
    let (_, stderr, ok) = run(&["compile", "-", "--routing-backend", "dpqa"], BV3_QASM);
    assert!(!ok);
    assert!(stderr.contains("DPQA grid device"), "{stderr}");
    let (_, stderr, ok) = run(&["compile", "-", "--routing-backend", "teleport"], BV3_QASM);
    assert!(!ok);
    assert!(stderr.contains("unknown routing backend"), "{stderr}");
}

#[test]
fn compile_batch_crosses_backends_and_reports_per_backend() {
    let (stdout, _, ok) = run(
        &[
            "compile-batch",
            "-",
            "--strategy",
            "baseline",
            "--device",
            "grid:3x3",
            "--routing-backend",
            "swap,dpqa",
            "--json",
        ],
        BV3_QASM,
    );
    assert!(ok, "{stdout}");
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 3, "two job lines + one metrics line: {stdout}");
    assert!(lines[0].contains("\"router\":\"hop\""), "{stdout}");
    assert!(lines[1].contains("\"router\":\"dpqa\""), "{stdout}");
    assert!(lines[1].contains("\"swaps\":0"), "{stdout}");
    assert!(
        lines[2].contains("\"policies\":{\"dpqa\":") || lines[2].contains(",\"dpqa\":"),
        "per-backend metrics attribution: {stdout}"
    );
}

#[test]
fn compile_batch_needs_input() {
    let (_, stderr, ok) = run(&["compile-batch", "--jobs", "2"], "");
    assert!(!ok);
    assert!(stderr.contains("at least one input"), "{stderr}");
}

#[test]
fn bad_usage_fails_with_help() {
    let (_, stderr, ok) = run(&["bogus", "-"], BV3_QASM);
    assert!(!ok);
    assert!(stderr.contains("usage:"));
    let (_, stderr, ok) = run(&["compile", "-", "--strategy", "nope"], BV3_QASM);
    assert!(!ok);
    assert!(stderr.contains("unknown strategy"));
}
