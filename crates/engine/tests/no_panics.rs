//! Panic-isolation acceptance suite: the equivalence corpus crossed with
//! every strategy must flow through the engine with zero panics. Failures
//! of any kind would surface as `JobError` entries (the engine isolates
//! panics with `catch_unwind`), so a clean batch proves the typed-error
//! refactor left no panicking paths on the compile route.

use caqr::Strategy;
use caqr_arch::Device;
use caqr_benchmarks::qaoa::{qaoa_benchmark, GraphKind};
use caqr_benchmarks::{bv, revlib, Benchmark};
use caqr_engine::{BatchRequest, CompileJob, Engine, JobError};

const STRATEGIES: [Strategy; 6] = [
    Strategy::Baseline,
    Strategy::QsMaxReuse,
    Strategy::QsMinDepth,
    Strategy::QsMinSwap,
    Strategy::QsMaxEsp,
    Strategy::Sr,
];

fn corpus() -> Vec<Benchmark> {
    vec![
        revlib::xor_5(),
        revlib::four_mod5(),
        revlib::rd32(),
        bv::bv_all_ones(5),
        bv::bv_all_ones(8),
        qaoa_benchmark(6, 0.3, GraphKind::Random, 2029),
        qaoa_benchmark(8, 0.3, GraphKind::Random, 2031),
    ]
}

#[test]
fn suite_compiles_without_panics_or_errors() {
    let device = Device::mumbai(2023);
    let jobs: Vec<CompileJob> = corpus()
        .into_iter()
        .flat_map(|bench| {
            STRATEGIES.map(|strategy| {
                CompileJob::new(
                    format!("{}/{}", bench.name, strategy),
                    bench.circuit.clone(),
                    device.clone(),
                    strategy,
                )
            })
        })
        .collect();
    let expected = jobs.len();

    let report = Engine::run(&BatchRequest::new(jobs));

    let panics: Vec<String> = report
        .results
        .iter()
        .filter_map(|r| r.as_ref().err())
        .filter(|f| matches!(f.error, JobError::Panic(_)))
        .map(|f| format!("{}: {}", f.name, f.error))
        .collect();
    assert!(panics.is_empty(), "jobs panicked:\n{}", panics.join("\n"));
    assert_eq!(
        report.failed_count(),
        0,
        "jobs failed: {:?}",
        report
            .results
            .iter()
            .filter_map(|r| r.as_ref().err())
            .map(|f| format!("{}: {}", f.name, f.error))
            .collect::<Vec<_>>()
    );
    assert_eq!(report.ok_count(), expected);
    // Every executed pass should have accumulated wall time.
    assert!(
        !report.metrics.pass_totals.is_empty(),
        "per-pass timings recorded"
    );
}
