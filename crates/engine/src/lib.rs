//! caqr-engine: a parallel batch-compilation service over the CaQR
//! pipeline.
//!
//! The core crate compiles one circuit at a time; real experiments compile
//! *suites* — every benchmark x every strategy x every device. This crate
//! turns that into a first-class service:
//!
//! * [`CompileJob`] / [`BatchRequest`] describe the work: (circuit, device,
//!   strategy) tuples plus execution options (worker count, cache size).
//! * [`Engine`] executes a batch on a fixed pool of `std` threads with
//!   deterministic result ordering (results always come back in request
//!   order, regardless of which worker finished first) and per-job panic
//!   isolation (a panicking job becomes a [`JobError`], never a dead
//!   batch).
//! * [`CompileCache`] memoizes compile reports under a content-addressed
//!   [`caqr_circuit::Fingerprint`] of circuit + device calibration +
//!   strategy, with LRU eviction and hit/miss counters.
//! * [`EngineMetrics`] aggregates per-stage wall-clock (width analysis,
//!   reuse pass, routing, scheduling) and compile counters (SWAPs
//!   inserted, reuse pairs, cache hits) into a human table or JSON lines.
//!
//! # Examples
//!
//! ```
//! use caqr::Strategy;
//! use caqr_arch::Device;
//! use caqr_circuit::{Circuit, Qubit};
//! use caqr_engine::{BatchRequest, CompileJob, Engine};
//!
//! let mut bell = Circuit::new(2, 2);
//! bell.h(Qubit::new(0));
//! bell.cx(Qubit::new(0), Qubit::new(1));
//! bell.measure_all();
//!
//! let jobs = vec![
//!     CompileJob::new("bell", bell.clone(), Device::mumbai(0), Strategy::Baseline),
//!     CompileJob::new("bell", bell, Device::mumbai(0), Strategy::Sr),
//! ];
//! let report = Engine::run(&BatchRequest::new(jobs));
//! assert_eq!(report.ok_count(), 2);
//! println!("{}", report.render_table());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bind;
pub mod cache;
pub mod job;
pub mod metrics;
pub mod pool;
pub mod stream;

pub use bind::{BindJob, BindOutcome, BindReport};
pub use cache::{CacheStats, CompileCache};
pub use job::{
    router_label, BatchOptions, BatchReport, BatchRequest, CompileJob, FailedJob, JobError,
    JobOutcome,
};
pub use metrics::EngineMetrics;
pub use pool::{Engine, JobCompiler};
pub use stream::{StreamJobError, StreamOutcome};
