//! Aggregated batch instrumentation: per-stage wall-clock totals plus
//! compile counters, rendered as a human table or a JSON object.

use caqr::{CompileReport, Stage, StageTrace};
use caqr_circuit::{Circuit, Gate};
use std::collections::BTreeMap;
use std::time::Duration;

use crate::cache::CacheStats;

/// Per-routing-policy totals over successful jobs, keyed by the policy's
/// report label (a cost-model name — `hop`, `lookahead:8:0.5`,
/// `noise-aware` — for SWAP-backend jobs, the backend name — `dpqa` —
/// for backends that insert no SWAPs). Lets a mixed batch report which
/// routing policy paid for which swaps, and splits totals per backend.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PolicyTotals {
    /// Successful jobs routed under this policy.
    pub jobs_ok: usize,
    /// SWAP gates inserted across those jobs.
    pub swaps: usize,
    /// Compiled circuit depth, summed across those jobs.
    pub depth: usize,
    /// Compiled duration in `dt`, summed across those jobs.
    pub duration_dt: u64,
}

/// Counters and stage timings aggregated over one batch run.
///
/// Stage totals are *CPU work* summed across workers, so with `--jobs 8`
/// they can legitimately exceed the batch wall-clock.
#[derive(Debug, Clone, Default)]
pub struct EngineMetrics {
    /// Total time spent in each pipeline stage, summed over all jobs.
    pub stage_totals: BTreeMap<Stage, Duration>,
    /// Total time spent in each named pass, summed over all jobs. Finer
    /// grained than [`EngineMetrics::stage_totals`]: a stage may span
    /// several passes (e.g. the sweep stage runs `qs-sweep`,
    /// `route-sweep`, and a `select-*` pass).
    pub pass_totals: BTreeMap<&'static str, Duration>,
    /// Jobs submitted.
    pub jobs_total: usize,
    /// Jobs that produced a report.
    pub jobs_ok: usize,
    /// Jobs that failed (route error or panic).
    pub jobs_failed: usize,
    /// Jobs served from the compile cache.
    pub jobs_from_cache: usize,
    /// SWAP gates inserted across all successful jobs.
    pub swaps_inserted: usize,
    /// Qubit-reuse pairs realized across all successful jobs (counted as
    /// mid-circuit resets in the compiled circuits).
    pub reuse_pairs: usize,
    /// Per-routing-policy attribution of swaps, depth, and duration over
    /// successful jobs, keyed by the job's router label (cost-model name
    /// for SWAP jobs, backend name for movement backends) — see
    /// [`crate::job::router_label`].
    pub policy_totals: BTreeMap<String, PolicyTotals>,
    /// Cache counters for the run (zero when caching is disabled).
    pub cache: CacheStats,
    /// Total time jobs sat in the batch queue before a worker picked them
    /// up, summed over all jobs (including failed ones). Disjoint from
    /// [`EngineMetrics::compile_total`]: a job under a saturated pool
    /// accrues queue wait without accruing compile time.
    pub queue_wait_total: Duration,
    /// Total worker time spent on jobs (cache lookup + compile), summed
    /// over successful jobs.
    pub compile_total: Duration,
    /// End-to-end batch wall-clock.
    pub batch_wall: Duration,
    /// Bind-runs executed (template bind requests, hit or miss).
    pub binds_total: usize,
    /// Total time spent stamping concrete angles into routed templates —
    /// the O(gates) bind step, disjoint from
    /// [`EngineMetrics::compile_total`].
    pub bind_total: Duration,
    /// Bind-runs whose routed template was served from the compile cache
    /// (no compile ran). Tracked separately from
    /// [`EngineMetrics::cache`]: a shared cache's stats mix concrete and
    /// template entries, these count template traffic alone.
    pub template_cache_hits: usize,
    /// Bind-runs that compiled their template cold.
    pub template_cache_misses: usize,
}

impl EngineMetrics {
    /// Folds one successful job into the totals, attributing its swaps,
    /// depth, and duration to `policy` (the job's router label).
    pub(crate) fn record_success(
        &mut self,
        policy: &str,
        trace: &StageTrace,
        report: &CompileReport,
    ) {
        self.jobs_ok += 1;
        self.swaps_inserted += report.swaps;
        self.reuse_pairs += reuse_pairs_in(&report.circuit);
        let totals = self.policy_totals.entry(policy.to_string()).or_default();
        totals.jobs_ok += 1;
        totals.swaps += report.swaps;
        totals.depth += report.depth;
        totals.duration_dt += report.duration_dt;
        for &(stage, span) in trace.spans() {
            *self.stage_totals.entry(stage).or_default() += span;
        }
        for &(name, span) in trace.pass_spans() {
            *self.pass_totals.entry(name).or_default() += span;
        }
    }

    /// Folds another run's metrics into this one — the accumulation
    /// `caqr-serve` uses to keep one cumulative `/metrics` view across
    /// requests. Counters and time totals add; `cache` is overwritten by
    /// `other`'s snapshot (a shared cache's stats are already cumulative).
    pub fn merge(&mut self, other: &EngineMetrics) {
        self.jobs_total += other.jobs_total;
        self.jobs_ok += other.jobs_ok;
        self.jobs_failed += other.jobs_failed;
        self.jobs_from_cache += other.jobs_from_cache;
        self.swaps_inserted += other.swaps_inserted;
        self.reuse_pairs += other.reuse_pairs;
        self.queue_wait_total += other.queue_wait_total;
        self.compile_total += other.compile_total;
        self.batch_wall += other.batch_wall;
        self.binds_total += other.binds_total;
        self.bind_total += other.bind_total;
        self.template_cache_hits += other.template_cache_hits;
        self.template_cache_misses += other.template_cache_misses;
        self.cache = other.cache;
        for (&stage, &span) in &other.stage_totals {
            *self.stage_totals.entry(stage).or_default() += span;
        }
        for (&name, &span) in &other.pass_totals {
            *self.pass_totals.entry(name).or_default() += span;
        }
        for (name, theirs) in &other.policy_totals {
            let totals = self.policy_totals.entry(name.clone()).or_default();
            totals.jobs_ok += theirs.jobs_ok;
            totals.swaps += theirs.swaps;
            totals.depth += theirs.depth;
            totals.duration_dt += theirs.duration_dt;
        }
    }

    /// The human-readable metrics table.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str("metric                 value\n");
        out.push_str(&format!("jobs_total             {}\n", self.jobs_total));
        out.push_str(&format!("jobs_ok                {}\n", self.jobs_ok));
        out.push_str(&format!("jobs_failed            {}\n", self.jobs_failed));
        out.push_str(&format!(
            "jobs_from_cache        {}\n",
            self.jobs_from_cache
        ));
        out.push_str(&format!("swaps_inserted         {}\n", self.swaps_inserted));
        out.push_str(&format!("reuse_pairs            {}\n", self.reuse_pairs));
        for (name, t) in &self.policy_totals {
            out.push_str(&format!(
                "policy_{:<16} ok={} swaps={} depth={} duration_dt={}\n",
                name, t.jobs_ok, t.swaps, t.depth, t.duration_dt,
            ));
        }
        out.push_str(&format!("cache_hits             {}\n", self.cache.hits));
        out.push_str(&format!("cache_misses           {}\n", self.cache.misses));
        out.push_str(&format!(
            "cache_evictions        {}\n",
            self.cache.evictions
        ));
        for stage in Stage::ALL {
            let total = self.stage_totals.get(&stage).copied().unwrap_or_default();
            out.push_str(&format!(
                "stage_{:<16} {:.3} ms\n",
                stage.name(),
                total.as_secs_f64() * 1e3,
            ));
        }
        for (name, total) in &self.pass_totals {
            out.push_str(&format!(
                "pass_{:<17} {:.3} ms\n",
                name,
                total.as_secs_f64() * 1e3,
            ));
        }
        out.push_str(&format!(
            "queue_wait             {:.3} ms\n",
            self.queue_wait_total.as_secs_f64() * 1e3,
        ));
        out.push_str(&format!(
            "compile                {:.3} ms\n",
            self.compile_total.as_secs_f64() * 1e3,
        ));
        out.push_str(&format!(
            "batch_wall             {:.3} ms\n",
            self.batch_wall.as_secs_f64() * 1e3,
        ));
        out.push_str(&format!("binds_total            {}\n", self.binds_total));
        out.push_str(&format!(
            "bind                   {:.3} ms\n",
            self.bind_total.as_secs_f64() * 1e3,
        ));
        out.push_str(&format!(
            "template_cache_hits    {}\n",
            self.template_cache_hits
        ));
        out.push_str(&format!(
            "template_cache_misses  {}\n",
            self.template_cache_misses
        ));
        out
    }

    /// One JSON object with every counter and stage total (microseconds).
    pub fn to_json(&self) -> String {
        let mut stages = String::new();
        for (i, stage) in Stage::ALL.iter().enumerate() {
            if i > 0 {
                stages.push(',');
            }
            let total = self.stage_totals.get(stage).copied().unwrap_or_default();
            stages.push_str(&format!("\"{}\":{}", stage.name(), total.as_micros()));
        }
        let mut passes = String::new();
        for (i, (name, total)) in self.pass_totals.iter().enumerate() {
            if i > 0 {
                passes.push(',');
            }
            passes.push_str(&format!("\"{}\":{}", name, total.as_micros()));
        }
        let mut policies = String::new();
        for (i, (name, t)) in self.policy_totals.iter().enumerate() {
            if i > 0 {
                policies.push(',');
            }
            policies.push_str(&format!(
                "\"{}\":{{\"jobs_ok\":{},\"swaps\":{},\"depth\":{},\"duration_dt\":{}}}",
                name, t.jobs_ok, t.swaps, t.depth, t.duration_dt,
            ));
        }
        format!(
            "{{\"type\":\"metrics\",\"jobs_total\":{},\"jobs_ok\":{},\"jobs_failed\":{},\
             \"jobs_from_cache\":{},\"swaps_inserted\":{},\"reuse_pairs\":{},\
             \"cache_hits\":{},\"cache_misses\":{},\"cache_evictions\":{},\
             \"policies\":{{{}}},\
             \"stage_us\":{{{}}},\"pass_us\":{{{}}},\"queue_wait_us\":{},\"compile_us\":{},\
             \"batch_wall_us\":{},\"binds_total\":{},\"bind_us\":{},\
             \"template_cache_hits\":{},\"template_cache_misses\":{}}}",
            self.jobs_total,
            self.jobs_ok,
            self.jobs_failed,
            self.jobs_from_cache,
            self.swaps_inserted,
            self.reuse_pairs,
            self.cache.hits,
            self.cache.misses,
            self.cache.evictions,
            policies,
            stages,
            passes,
            self.queue_wait_total.as_micros(),
            self.compile_total.as_micros(),
            self.batch_wall.as_micros(),
            self.binds_total,
            self.bind_total.as_micros(),
            self.template_cache_hits,
            self.template_cache_misses,
        )
    }
}

/// Counts realized reuse pairs in a compiled circuit. Each reuse point
/// hands a physical qubit from a finished logical qubit to a fresh one via
/// the paper's fast conditional reset (a classically conditioned X) or a
/// plain `Reset`.
pub fn reuse_pairs_in(circuit: &Circuit) -> usize {
    circuit
        .instructions()
        .iter()
        .filter(|inst| inst.condition.is_some() || matches!(inst.gate, Gate::Reset))
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use caqr_circuit::Qubit;

    #[test]
    fn reuse_pairs_counts_conditional_resets() {
        let mut c = Circuit::new(2, 1);
        c.h(Qubit::new(0));
        assert_eq!(reuse_pairs_in(&c), 0);
        c.reset(Qubit::new(0));
        c.cond_x(Qubit::new(1), caqr_circuit::Clbit::new(0));
        assert_eq!(reuse_pairs_in(&c), 2);
    }

    #[test]
    fn json_includes_every_stage() {
        let metrics = EngineMetrics::default();
        let json = metrics.to_json();
        for stage in Stage::ALL {
            assert!(json.contains(&format!("\"{}\":", stage.name())), "{json}");
        }
        assert!(json.starts_with('{') && json.ends_with('}'));
    }

    #[test]
    fn pass_totals_surface_in_table_and_json() {
        let mut metrics = EngineMetrics::default();
        metrics
            .pass_totals
            .insert("baseline-route", Duration::from_micros(1500));
        metrics
            .pass_totals
            .insert("optimize", Duration::from_micros(250));
        let table = metrics.render_table();
        assert!(table.contains("pass_baseline-route"), "{table}");
        assert!(table.contains("pass_optimize"), "{table}");
        let json = metrics.to_json();
        assert!(
            json.contains("\"pass_us\":{\"baseline-route\":1500,\"optimize\":250}"),
            "{json}"
        );
    }

    #[test]
    fn policy_totals_surface_in_table_json_and_merge() {
        let mut metrics = EngineMetrics::default();
        metrics.policy_totals.insert(
            "hop".to_string(),
            PolicyTotals {
                jobs_ok: 2,
                swaps: 5,
                depth: 40,
                duration_dt: 900,
            },
        );
        let table = metrics.render_table();
        assert!(
            table.contains("policy_hop") && table.contains("swaps=5"),
            "{table}"
        );
        let json = metrics.to_json();
        assert!(
            json.contains(
                "\"policies\":{\"hop\":{\"jobs_ok\":2,\"swaps\":5,\"depth\":40,\"duration_dt\":900}}"
            ),
            "{json}"
        );
        let mut other = EngineMetrics::default();
        other.policy_totals.insert(
            "hop".to_string(),
            PolicyTotals {
                jobs_ok: 1,
                swaps: 3,
                depth: 10,
                duration_dt: 100,
            },
        );
        other
            .policy_totals
            .insert("noise-aware".to_string(), PolicyTotals::default());
        metrics.merge(&other);
        assert_eq!(metrics.policy_totals["hop"].swaps, 8);
        assert_eq!(metrics.policy_totals["hop"].jobs_ok, 3);
        assert_eq!(metrics.policy_totals["hop"].duration_dt, 1000);
        assert!(metrics.policy_totals.contains_key("noise-aware"));
    }

    #[test]
    fn table_lists_all_counters() {
        let table = EngineMetrics::default().render_table();
        for key in [
            "jobs_total",
            "swaps_inserted",
            "reuse_pairs",
            "cache_hits",
            "queue_wait",
            "compile",
            "batch_wall",
        ] {
            assert!(table.contains(key), "missing {key} in:\n{table}");
        }
    }

    #[test]
    fn queue_wait_and_compile_surface_in_json() {
        let metrics = EngineMetrics {
            queue_wait_total: Duration::from_micros(120),
            compile_total: Duration::from_micros(3400),
            ..Default::default()
        };
        let json = metrics.to_json();
        assert!(json.contains("\"queue_wait_us\":120"), "{json}");
        assert!(json.contains("\"compile_us\":3400"), "{json}");
    }

    #[test]
    fn bind_counters_surface_in_table_json_and_merge() {
        let mut metrics = EngineMetrics {
            binds_total: 3,
            bind_total: Duration::from_micros(42),
            template_cache_hits: 2,
            template_cache_misses: 1,
            ..Default::default()
        };
        let table = metrics.render_table();
        assert!(table.contains("binds_total            3"), "{table}");
        assert!(table.contains("template_cache_hits    2"), "{table}");
        let json = metrics.to_json();
        assert!(json.contains("\"binds_total\":3"), "{json}");
        assert!(json.contains("\"bind_us\":42"), "{json}");
        assert!(json.contains("\"template_cache_hits\":2"), "{json}");
        assert!(json.contains("\"template_cache_misses\":1"), "{json}");
        let other = EngineMetrics {
            binds_total: 1,
            bind_total: Duration::from_micros(8),
            template_cache_hits: 1,
            ..Default::default()
        };
        metrics.merge(&other);
        assert_eq!(metrics.binds_total, 4);
        assert_eq!(metrics.bind_total, Duration::from_micros(50));
        assert_eq!(metrics.template_cache_hits, 3);
        assert_eq!(metrics.template_cache_misses, 1);
    }

    #[test]
    fn merge_accumulates_counters_and_timings() {
        let mut total = EngineMetrics {
            jobs_total: 2,
            jobs_ok: 2,
            queue_wait_total: Duration::from_micros(10),
            compile_total: Duration::from_micros(100),
            batch_wall: Duration::from_micros(500),
            ..Default::default()
        };
        total
            .pass_totals
            .insert("optimize", Duration::from_micros(40));
        let mut other = EngineMetrics {
            jobs_total: 3,
            jobs_ok: 2,
            jobs_failed: 1,
            swaps_inserted: 4,
            queue_wait_total: Duration::from_micros(5),
            compile_total: Duration::from_micros(60),
            batch_wall: Duration::from_micros(200),
            ..Default::default()
        };
        other
            .pass_totals
            .insert("optimize", Duration::from_micros(10));
        other.pass_totals.insert("report", Duration::from_micros(3));
        total.merge(&other);
        assert_eq!(total.jobs_total, 5);
        assert_eq!(total.jobs_ok, 4);
        assert_eq!(total.jobs_failed, 1);
        assert_eq!(total.swaps_inserted, 4);
        assert_eq!(total.queue_wait_total, Duration::from_micros(15));
        assert_eq!(total.compile_total, Duration::from_micros(160));
        assert_eq!(total.batch_wall, Duration::from_micros(700));
        assert_eq!(total.pass_totals["optimize"], Duration::from_micros(50));
        assert_eq!(total.pass_totals["report"], Duration::from_micros(3));
    }
}
