//! The batch job model: what to compile, and what came back.

use crate::metrics::EngineMetrics;
use caqr::{
    CaqrError, CompileReport, CostModelSpec, RouterConfig, RoutingBackendSpec, StageTrace, Strategy,
};
use caqr_arch::Device;
use caqr_circuit::fingerprint::Fingerprint;
use caqr_circuit::Circuit;
use std::fmt;
use std::time::Duration;

/// One unit of work: compile `circuit` onto `device` under `strategy`,
/// routing with the policy in `router` (backend + swap-scoring model).
#[derive(Debug, Clone)]
pub struct CompileJob {
    /// Display name (benchmark name, file name, ...); carried into reports.
    pub name: String,
    /// The logical circuit to compile.
    pub circuit: Circuit,
    /// The target device.
    pub device: Device,
    /// The compiler to run.
    pub strategy: Strategy,
    /// The routing policy: which backend maps the circuit and how SWAP
    /// candidates are scored (SWAP backend only).
    pub router: RouterConfig,
}

impl CompileJob {
    /// Builds a job routing with the default policy (SWAP backend,
    /// [`CostModelSpec::Hop`] swap-scoring model).
    pub fn new(
        name: impl Into<String>,
        circuit: Circuit,
        device: Device,
        strategy: Strategy,
    ) -> Self {
        CompileJob {
            name: name.into(),
            circuit,
            device,
            strategy,
            router: RouterConfig::default(),
        }
    }

    /// The same job routing under a different swap-scoring model.
    pub fn with_cost_model(mut self, cost_model: CostModelSpec) -> Self {
        self.router.cost_model = cost_model;
        self
    }

    /// The same job routed by a different backend.
    pub fn with_backend(mut self, backend: RoutingBackendSpec) -> Self {
        self.router.backend = backend;
        self
    }

    /// The same job under a full routing policy (backend + cost model).
    pub fn with_router(mut self, router: impl Into<RouterConfig>) -> Self {
        self.router = router.into();
        self
    }

    /// The content-addressed cache key: circuit content x device
    /// (topology + calibration) x strategy x routing policy. Every
    /// input that can change the compiled output is covered — jobs with
    /// equal keys are guaranteed to produce identical compile reports, so
    /// the engine may serve one from the other's cached result.
    ///
    /// The routing policy enters via [`RouterConfig::cache_tag`], which
    /// prefixes the backend domain (`swap/` vs `dpqa/`) and renders
    /// cost-model parameters bit-exactly: two lookahead decays differing
    /// in the last ulp still get distinct keys, and SWAP vs movement
    /// compilations of the same circuit never share a cache entry.
    pub fn key(&self) -> Fingerprint {
        let mut h = caqr_circuit::fingerprint::StableHasher::new();
        h.write_str(&self.strategy.to_string());
        h.write_str(&self.router.cache_tag());
        h.finish()
            .combine(self.circuit.fingerprint())
            .combine(self.device.fingerprint())
    }
}

/// The "router" label batch reports print for a job: the cost-model name
/// under the SWAP backend (byte-identical to pre-backend reports), the
/// backend name for backends that insert no SWAPs and ignore swap
/// scoring. Also the key per-policy [`EngineMetrics`] totals aggregate
/// under.
pub fn router_label(backend: RoutingBackendSpec, cost_model: CostModelSpec) -> String {
    match backend {
        RoutingBackendSpec::Swap => cost_model.to_string(),
        RoutingBackendSpec::Dpqa => backend.name().to_string(),
    }
}

/// How a batch should be executed.
#[derive(Debug, Clone)]
pub struct BatchOptions {
    /// Worker threads; `0` means one per available CPU core.
    pub workers: usize,
    /// Compile-cache entries to keep (LRU); `0` disables caching.
    pub cache_capacity: usize,
}

impl Default for BatchOptions {
    fn default() -> Self {
        BatchOptions {
            workers: 0,
            cache_capacity: 256,
        }
    }
}

impl BatchOptions {
    /// Options running on `workers` threads (0 = one per core).
    pub fn with_workers(workers: usize) -> Self {
        BatchOptions {
            workers,
            ..Default::default()
        }
    }
}

/// A batch of compile jobs plus execution options.
#[derive(Debug, Clone, Default)]
pub struct BatchRequest {
    /// The jobs, in result order.
    pub jobs: Vec<CompileJob>,
    /// Execution knobs.
    pub options: BatchOptions,
}

impl BatchRequest {
    /// A request with default options.
    pub fn new(jobs: Vec<CompileJob>) -> Self {
        BatchRequest {
            jobs,
            options: BatchOptions::default(),
        }
    }

    /// Sets the options.
    pub fn with_options(mut self, options: BatchOptions) -> Self {
        self.options = options;
        self
    }
}

/// Why a job produced no report.
#[derive(Debug, Clone, PartialEq)]
pub enum JobError {
    /// The pipeline reported a typed error (circuit does not fit, ...);
    /// the full [`CaqrError`] context (offending qubit, gate index) is
    /// preserved for the report.
    Compile(CaqrError),
    /// The job panicked; the batch continued without it.
    Panic(String),
    /// Binding values into a routed template failed (arity mismatch or a
    /// non-finite value); the routed template itself compiled fine and
    /// stays cached.
    Bind(String),
}

impl fmt::Display for JobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobError::Compile(e) => write!(f, "compile error: {e}"),
            JobError::Panic(msg) => write!(f, "job panicked: {msg}"),
            JobError::Bind(msg) => write!(f, "bind error: {msg}"),
        }
    }
}

impl std::error::Error for JobError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            JobError::Compile(e) => Some(e),
            JobError::Panic(_) | JobError::Bind(_) => None,
        }
    }
}

/// A completed job.
#[derive(Debug, Clone)]
pub struct JobOutcome {
    /// Job name, copied from the request.
    pub name: String,
    /// Strategy that ran.
    pub strategy: Strategy,
    /// Routing cost model the job compiled under.
    pub cost_model: CostModelSpec,
    /// Routing backend the job compiled under.
    pub backend: RoutingBackendSpec,
    /// The compile report (identical whether served cold or from cache).
    pub report: CompileReport,
    /// `true` when served from the compile cache.
    pub cache_hit: bool,
    /// Wall-clock spent on this job inside its worker (cache lookup plus
    /// compile). Excludes [`JobOutcome::queue_wait`].
    pub wall: Duration,
    /// Time the job sat in the batch queue before a worker picked it up.
    /// Disjoint from [`JobOutcome::wall`]; the two sum to the job's
    /// end-to-end latency inside the engine.
    pub queue_wait: Duration,
    /// Per-stage timings (empty for cache hits).
    pub trace: StageTrace,
}

/// A failed job, keeping its identity for the report.
#[derive(Debug, Clone)]
pub struct FailedJob {
    /// Job name, copied from the request.
    pub name: String,
    /// Strategy that ran.
    pub strategy: Strategy,
    /// Routing cost model the job would have compiled under.
    pub cost_model: CostModelSpec,
    /// Routing backend the job would have compiled under.
    pub backend: RoutingBackendSpec,
    /// What went wrong.
    pub error: JobError,
    /// Time the job sat in the batch queue before a worker picked it up.
    pub queue_wait: Duration,
}

impl JobOutcome {
    /// The report "router" label for this outcome; see [`router_label`].
    pub fn router_label(&self) -> String {
        router_label(self.backend, self.cost_model)
    }
}

impl FailedJob {
    /// The report "router" label for this failure; see [`router_label`].
    pub fn router_label(&self) -> String {
        router_label(self.backend, self.cost_model)
    }
}

/// The result of one batch run: per-job results in request order, plus
/// aggregated metrics.
#[derive(Debug, Clone)]
pub struct BatchReport {
    /// One entry per requested job, in request order.
    pub results: Vec<Result<JobOutcome, FailedJob>>,
    /// Aggregated counters and stage timings.
    pub metrics: EngineMetrics,
}

impl BatchReport {
    /// Number of successful jobs.
    pub fn ok_count(&self) -> usize {
        self.results.iter().filter(|r| r.is_ok()).count()
    }

    /// Number of failed jobs.
    pub fn failed_count(&self) -> usize {
        self.results.iter().filter(|r| r.is_err()).count()
    }

    /// The fixed-width result table.
    ///
    /// Deliberately excludes wall-clock columns: the table is byte-identical
    /// across runs and worker counts, which is what batch-level determinism
    /// tests (and diffable experiment logs) need. Timings live in
    /// [`EngineMetrics`] and the JSON lines.
    pub fn render_table(&self) -> String {
        let mut rows: Vec<[String; 9]> = Vec::with_capacity(self.results.len());
        for result in &self.results {
            match result {
                Ok(out) => rows.push([
                    out.name.clone(),
                    out.strategy.to_string(),
                    out.router_label(),
                    out.report.qubits.to_string(),
                    out.report.depth.to_string(),
                    out.report.duration_dt.to_string(),
                    out.report.swaps.to_string(),
                    out.report.two_qubit_gates.to_string(),
                    format!("{:.4}", out.report.esp),
                ]),
                Err(failed) => rows.push([
                    failed.name.clone(),
                    failed.strategy.to_string(),
                    failed.router_label(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    format!("error: {}", failed.error),
                ]),
            }
        }
        let header = [
            "benchmark",
            "strategy",
            "router",
            "qubits",
            "depth",
            "dur_dt",
            "swaps",
            "2q",
            "esp",
        ];
        let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
        for row in &rows {
            for (w, cell) in widths.iter_mut().zip(row.iter()) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        for (i, h) in header.iter().enumerate() {
            out.push_str(&format!("{:<width$}  ", h, width = widths[i]));
        }
        out.push('\n');
        for row in &rows {
            for (i, cell) in row.iter().enumerate() {
                out.push_str(&format!("{:<width$}  ", cell, width = widths[i]));
            }
            out.push('\n');
        }
        out
    }

    /// One JSON object per job (in request order), then one metrics object —
    /// the machine-readable twin of [`BatchReport::render_table`] +
    /// [`EngineMetrics::to_json`]. Job lines include wall-clock, so this
    /// form is *not* byte-stable across runs.
    pub fn to_json_lines(&self) -> String {
        let mut out = String::new();
        for result in &self.results {
            match result {
                Ok(o) => {
                    out.push_str(&format!(
                        "{{\"type\":\"job\",\"name\":{},\"strategy\":\"{}\",\"router\":\"{}\",\
                         \"ok\":true,\
                         \"qubits\":{},\"depth\":{},\"duration_dt\":{},\"swaps\":{},\
                         \"two_qubit_gates\":{},\"esp\":{:.6},\"cache_hit\":{},\"wall_us\":{},\
                         \"queue_wait_us\":{}}}\n",
                        json_string(&o.name),
                        o.strategy,
                        o.router_label(),
                        o.report.qubits,
                        o.report.depth,
                        o.report.duration_dt,
                        o.report.swaps,
                        o.report.two_qubit_gates,
                        o.report.esp,
                        o.cache_hit,
                        o.wall.as_micros(),
                        o.queue_wait.as_micros(),
                    ));
                }
                Err(f) => {
                    out.push_str(&format!(
                        "{{\"type\":\"job\",\"name\":{},\"strategy\":\"{}\",\"router\":\"{}\",\
                         \"ok\":false,\"error\":{}}}\n",
                        json_string(&f.name),
                        f.strategy,
                        f.router_label(),
                        json_string(&f.error.to_string()),
                    ));
                }
            }
        }
        out.push_str(&self.metrics.to_json());
        out.push('\n');
        out
    }
}

/// Escapes `s` as a JSON string literal (with quotes).
pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use caqr_arch::Device;
    use caqr_circuit::Qubit;

    fn job(name: &str, strategy: Strategy) -> CompileJob {
        let mut c = Circuit::new(2, 2);
        c.h(Qubit::new(0));
        c.cx(Qubit::new(0), Qubit::new(1));
        c.measure_all();
        CompileJob::new(name, c, Device::mumbai(3), strategy)
    }

    #[test]
    fn key_depends_on_every_input() {
        let a = job("a", Strategy::Baseline);
        assert_eq!(
            a.key(),
            job("renamed", Strategy::Baseline).key(),
            "name is not content"
        );
        assert_ne!(a.key(), job("a", Strategy::Sr).key(), "strategy is content");
        let mut different_circuit = job("a", Strategy::Baseline);
        different_circuit.circuit.h(Qubit::new(1));
        assert_ne!(a.key(), different_circuit.key());
        let mut different_device = job("a", Strategy::Baseline);
        different_device.device = Device::mumbai(4);
        assert_ne!(a.key(), different_device.key());
        assert_ne!(
            a.key(),
            job("a", Strategy::Baseline)
                .with_cost_model(CostModelSpec::NoiseAware)
                .key(),
            "routing cost model is content"
        );
        assert_ne!(
            a.key(),
            job("a", Strategy::Baseline)
                .with_backend(RoutingBackendSpec::Dpqa)
                .key(),
            "routing backend is content"
        );
    }

    /// SWAP and DPQA compilations of the same circuit produce different
    /// artifacts (SWAPped circuit vs movement schedule), so they must
    /// partition the content-addressed cache even with every other input
    /// equal.
    #[test]
    fn backend_partitions_the_cache_key_space() {
        for strategy in [Strategy::Baseline, Strategy::Sr] {
            let keys: Vec<Fingerprint> = RoutingBackendSpec::ALL
                .iter()
                .map(|&b| job("a", strategy).with_backend(b).key())
                .collect();
            assert_ne!(keys[0], keys[1], "{strategy}: backends collide");
        }
    }

    #[test]
    fn router_label_preserves_swap_form_and_names_dpqa() {
        assert_eq!(
            router_label(RoutingBackendSpec::Swap, CostModelSpec::NoiseAware),
            "noise-aware"
        );
        assert_eq!(
            router_label(RoutingBackendSpec::Dpqa, CostModelSpec::NoiseAware),
            "dpqa"
        );
    }

    /// Two jobs differing *only* in routing policy must never collide in
    /// the content-addressed cache — a collision would serve one policy's
    /// compiled circuit as the other's. Covers every model pair and
    /// parameter-only differences.
    #[test]
    fn routing_policy_never_collides_in_cache_key() {
        let specs = [
            CostModelSpec::Hop,
            CostModelSpec::lookahead(),
            CostModelSpec::Lookahead {
                window: 4,
                decay: 0.5,
            },
            CostModelSpec::Lookahead {
                window: 8,
                decay: 0.25,
            },
            CostModelSpec::Lookahead {
                window: 8,
                decay: 0.5 + f64::EPSILON,
            },
            CostModelSpec::NoiseAware,
        ];
        let keys: Vec<Fingerprint> = specs
            .iter()
            .map(|&s| job("a", Strategy::Sr).with_cost_model(s).key())
            .collect();
        for (i, ki) in keys.iter().enumerate() {
            for (j, kj) in keys.iter().enumerate() {
                if i != j {
                    assert_ne!(ki, kj, "{} vs {} collide", specs[i], specs[j]);
                }
            }
        }
    }

    #[test]
    fn json_string_escapes() {
        assert_eq!(json_string("plain"), "\"plain\"");
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn job_error_displays() {
        let e = JobError::Panic("boom".into());
        assert!(e.to_string().contains("boom"));
        let r = JobError::Compile(CaqrError::OutOfQubits {
            logical: 9,
            physical: 3,
            qubit: Some(7),
            gate_index: Some(12),
        });
        let s = r.to_string();
        assert!(s.contains("compile error"), "{s}");
        assert!(s.contains("logical qubit 7"), "context must survive: {s}");
    }
}
