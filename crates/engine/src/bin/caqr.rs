//! The `caqr` command line: compile, analyze, and sweep OpenQASM circuits
//! with qubit reuse.
//!
//! ```text
//! caqr compile <file.qasm> [--strategy S] [--passes P[,P...]] [--device D]
//!              [--seed N] [--cost-model M] [--routing-backend B] [--emit]
//! caqr compile-batch <file.qasm>... [--suite NAME] [--strategy S[,S...]]
//!                    [--device D] [--seed N] [--cost-model M[,M...]]
//!                    [--routing-backend B[,B...]]
//!                    [--jobs N] [--cache N] [--metrics] [--json]
//! caqr advise  <file.qasm> [--device D] [--seed N]
//! caqr sweep   <file.qasm>
//! caqr info    <file.qasm>
//!
//! strategies:  baseline | qs-max | qs-min-depth | qs-min-swap | qs-max-esp | sr (default)
//! devices:     mumbai (default) | heavy-hex:<min_qubits> | line:<n> | grid:<r>x<c>
//!              (grid devices carry DPQA geometry, so both backends target them)
//! suites:      regular | qaoa | full (the paper's benchmark tables)
//! cost models: hop (default) | lookahead[:window[:decay]] | noise-aware
//!              (`--router` is an alias for `--cost-model`)
//! backends:    swap (default) | dpqa (movement scheduling; needs grid:<r>x<c>)
//! passes:      any comma-separated subset of the registered pass names
//!              (see `caqr::REGISTERED_PASSES`); overrides --strategy's recipe
//! ```

use caqr::{
    advisor, qs, CostModelSpec, PassManager, RouterConfig, RoutingBackendSpec, Strategy,
    COST_MODEL_GRAMMAR, REGISTERED_PASSES, ROUTING_BACKEND_GRAMMAR,
};
use caqr_arch::{Device, Topology};
use caqr_circuit::depth::UnitDurations;
use caqr_circuit::{qasm, Circuit};
use caqr_engine::{BatchOptions, BatchRequest, CompileJob, Engine};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("caqr: {msg}");
            eprintln!();
            eprintln!("usage:");
            eprintln!("  caqr compile <file.qasm> [--strategy S] [--passes P[,P...]] [--device D] [--seed N] [--cost-model M] [--routing-backend B] [--emit]");
            eprintln!("  caqr compile-batch <file.qasm>... [--suite NAME] [--strategy S[,S...]]");
            eprintln!("                     [--device D] [--seed N] [--cost-model M[,M...]] [--routing-backend B[,B...]] [--jobs N] [--cache N] [--metrics] [--json]");
            eprintln!("  caqr advise  <file.qasm> [--device D] [--seed N]");
            eprintln!("  caqr sweep   <file.qasm>");
            eprintln!("  caqr info    <file.qasm>");
            eprintln!();
            eprintln!(
                "strategies: baseline | qs-max | qs-min-depth | qs-min-swap | qs-max-esp | sr"
            );
            eprintln!("devices: mumbai | heavy-hex:<min_qubits> | line:<n> | grid:<r>x<c>");
            eprintln!("suites: regular | qaoa | full");
            eprintln!("cost models: {COST_MODEL_GRAMMAR} (--router is an alias)");
            eprintln!("routing backends: {ROUTING_BACKEND_GRAMMAR}");
            eprintln!("passes: {}", REGISTERED_PASSES.join(" | "));
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let command = args.first().ok_or("missing command")?;
    if command == "compile-batch" {
        return compile_batch(&args[1..]);
    }
    let file = args.get(1).ok_or("missing input file")?;
    let circuit = load(file)?;
    let opts = Flags::parse(&args[2..])?;

    match command.as_str() {
        "compile" => {
            let device = opts.device()?;
            let report = match &opts.passes {
                // A custom pass sequence: run it through the same
                // PassManager the strategy recipes use, labelled with
                // whatever --strategy says (for the report header only).
                Some(names) => {
                    let manager = PassManager::from_names(names.iter().map(String::as_str))
                        .map_err(|e| {
                            format!("{e} (registered: {})", REGISTERED_PASSES.join(", "))
                        })?;
                    manager
                        .run_observed_cancellable_with(
                            &circuit,
                            &device,
                            opts.strategy,
                            opts.router(),
                            &mut caqr::manager::NoopObserver,
                            &caqr::CancelToken::new(),
                        )
                        .map_err(|e| format!("compilation failed: {e}"))?
                }
                None => caqr::compile_with(&circuit, &device, opts.strategy, opts.router())
                    .map_err(|e| format!("compilation failed: {e}"))?,
            };
            println!("{report}");
            if opts.emit {
                print!("{}", qasm::to_qasm(&report.circuit));
            }
            Ok(())
        }
        "advise" => {
            let device = opts.device()?;
            println!("{}", advisor::advise(&circuit, &device));
            Ok(())
        }
        "sweep" => {
            let points = qs::regular::sweep(&circuit, &UnitDurations);
            println!("qubits  depth  reuses");
            for p in points {
                println!("{:<7} {:<6} {}", p.qubits, p.depth(), p.reuses);
            }
            Ok(())
        }
        "info" => {
            println!(
                "qubits: {}\nclbits: {}\ngates: {}\ntwo-qubit gates: {}\ndepth: {}\nmid-circuit measurements: {}",
                circuit.num_qubits(),
                circuit.num_clbits(),
                circuit.len(),
                circuit.two_qubit_gate_count(),
                circuit.depth(),
                circuit.mid_circuit_measurement_count(),
            );
            Ok(())
        }
        other => Err(format!("unknown command '{other}'")),
    }
}

/// `caqr compile-batch`: compile many (circuit, strategy) pairs through the
/// engine's worker pool, with content-addressed caching and optional
/// instrumentation output.
fn compile_batch(args: &[String]) -> Result<(), String> {
    let (files, rest) = split_positional(args);
    let opts = BatchFlags::parse(rest)?;
    let device = opts.flags.device()?;

    let mut inputs: Vec<(String, Circuit)> = Vec::new();
    for file in files {
        inputs.push((file.clone(), load(file)?));
    }
    if let Some(suite) = &opts.suite {
        for bench in suite_by_name(suite, opts.flags.seed)? {
            inputs.push((bench.name, bench.circuit));
        }
    }
    if inputs.is_empty() {
        return Err("compile-batch needs at least one input file or --suite".into());
    }

    let mut jobs: Vec<CompileJob> = Vec::with_capacity(
        inputs.len() * opts.strategies.len() * opts.cost_models.len() * opts.backends.len(),
    );
    for (name, circuit) in &inputs {
        for &strategy in &opts.strategies {
            for &backend in &opts.backends {
                for &cost_model in &opts.cost_models {
                    jobs.push(
                        CompileJob::new(name.clone(), circuit.clone(), device.clone(), strategy)
                            .with_router(
                                RouterConfig::new()
                                    .with_backend(backend)
                                    .with_cost_model(cost_model),
                            ),
                    );
                }
            }
        }
    }

    let request = BatchRequest::new(jobs).with_options(BatchOptions {
        workers: opts.jobs,
        cache_capacity: opts.cache,
    });
    let report = Engine::run(&request);

    if opts.json {
        print!("{}", report.to_json_lines());
    } else {
        print!("{}", report.render_table());
        if opts.metrics {
            println!();
            print!("{}", report.metrics.render_table());
        }
    }
    if report.failed_count() > 0 && report.ok_count() == 0 {
        return Err("every job in the batch failed".into());
    }
    Ok(())
}

/// Splits leading non-flag arguments (input files) from the flag tail.
fn split_positional(args: &[String]) -> (&[String], &[String]) {
    let split = args
        .iter()
        .position(|a| a.starts_with("--"))
        .unwrap_or(args.len());
    (&args[..split], &args[split..])
}

fn suite_by_name(name: &str, seed: u64) -> Result<Vec<caqr_benchmarks::suite::Benchmark>, String> {
    match name {
        "regular" => Ok(caqr_benchmarks::suite::regular_suite()),
        "qaoa" => Ok(caqr_benchmarks::suite::qaoa_table_suite(seed)),
        "full" => Ok(caqr_benchmarks::suite::full_table_suite(seed)),
        other => Err(format!("unknown suite '{other}' (regular | qaoa | full)")),
    }
}

fn parse_strategy(v: &str) -> Result<Strategy, String> {
    match v {
        "baseline" => Ok(Strategy::Baseline),
        "qs-max" => Ok(Strategy::QsMaxReuse),
        "qs-min-depth" => Ok(Strategy::QsMinDepth),
        "qs-min-swap" => Ok(Strategy::QsMinSwap),
        "qs-max-esp" => Ok(Strategy::QsMaxEsp),
        "sr" => Ok(Strategy::Sr),
        other => Err(format!("unknown strategy '{other}'")),
    }
}

fn load(path: &str) -> Result<Circuit, String> {
    let text = if path == "-" {
        use std::io::Read as _;
        let mut buf = String::new();
        std::io::stdin()
            .read_to_string(&mut buf)
            .map_err(|e| format!("reading stdin: {e}"))?;
        buf
    } else {
        std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?
    };
    qasm::from_qasm(&text).map_err(|e| format!("{e}"))
}

struct Flags {
    strategy: Strategy,
    passes: Option<Vec<String>>,
    device_spec: String,
    seed: u64,
    cost_model: CostModelSpec,
    backend: RoutingBackendSpec,
    emit: bool,
}

impl Flags {
    fn parse(rest: &[String]) -> Result<Flags, String> {
        let mut flags = Flags {
            strategy: Strategy::Sr,
            passes: None,
            device_spec: "mumbai".to_string(),
            seed: 2023,
            cost_model: CostModelSpec::Hop,
            backend: RoutingBackendSpec::Swap,
            emit: false,
        };
        let mut it = rest.iter();
        while let Some(flag) = it.next() {
            match flag.as_str() {
                "--strategy" => {
                    let v = it.next().ok_or("--strategy needs a value")?;
                    flags.strategy = parse_strategy(v)?;
                }
                "--passes" => {
                    let v = it.next().ok_or("--passes needs a value")?;
                    let names: Vec<String> = v
                        .split(',')
                        .map(str::trim)
                        .filter(|s| !s.is_empty())
                        .map(str::to_string)
                        .collect();
                    if names.is_empty() {
                        return Err("--passes needs at least one pass name".into());
                    }
                    flags.passes = Some(names);
                }
                "--device" => {
                    flags.device_spec = it.next().ok_or("--device needs a value")?.clone();
                }
                "--seed" => {
                    flags.seed = it
                        .next()
                        .ok_or("--seed needs a value")?
                        .parse()
                        .map_err(|_| "bad seed")?;
                }
                "--cost-model" | "--router" => {
                    let v = it.next().ok_or("--cost-model needs a value")?;
                    flags.cost_model = CostModelSpec::parse(v)?;
                }
                "--routing-backend" => {
                    let v = it.next().ok_or("--routing-backend needs a value")?;
                    flags.backend = RoutingBackendSpec::parse(v)?;
                }
                "--emit" => flags.emit = true,
                other => return Err(format!("unknown flag '{other}'")),
            }
        }
        Ok(flags)
    }

    /// The full routing policy the flags describe.
    fn router(&self) -> RouterConfig {
        RouterConfig::new()
            .with_backend(self.backend)
            .with_cost_model(self.cost_model)
    }

    fn device(&self) -> Result<Device, String> {
        let spec = self.device_spec.as_str();
        if spec == "mumbai" {
            return Ok(Device::mumbai(self.seed));
        }
        if let Some(n) = spec.strip_prefix("heavy-hex:") {
            let n: usize = n.parse().map_err(|_| "bad heavy-hex size")?;
            return Ok(Device::scaled_heavy_hex(n, self.seed));
        }
        if let Some(n) = spec.strip_prefix("line:") {
            let n: usize = n.parse().map_err(|_| "bad line size")?;
            return Ok(Device::with_synthetic_calibration(
                Topology::line(n),
                self.seed,
            ));
        }
        if let Some(dims) = spec.strip_prefix("grid:") {
            let (r, c) = dims.split_once('x').ok_or("grid wants <r>x<c>")?;
            let r: usize = r.parse().map_err(|_| "bad grid rows")?;
            let c: usize = c.parse().map_err(|_| "bad grid cols")?;
            // Grid devices carry DPQA geometry: same topology and
            // calibration as before for the SWAP backend, and a valid
            // movement target for `--routing-backend dpqa`.
            return Ok(Device::dpqa_grid(r, c, self.seed));
        }
        Err(format!("unknown device '{spec}'"))
    }
}

/// Flags specific to `compile-batch`, layered over the shared [`Flags`].
struct BatchFlags {
    flags: Flags,
    strategies: Vec<Strategy>,
    cost_models: Vec<CostModelSpec>,
    backends: Vec<RoutingBackendSpec>,
    suite: Option<String>,
    jobs: usize,
    cache: usize,
    metrics: bool,
    json: bool,
}

impl BatchFlags {
    fn parse(rest: &[String]) -> Result<BatchFlags, String> {
        let mut out = BatchFlags {
            flags: Flags {
                strategy: Strategy::Sr,
                passes: None,
                device_spec: "mumbai".to_string(),
                seed: 2023,
                cost_model: CostModelSpec::Hop,
                backend: RoutingBackendSpec::Swap,
                emit: false,
            },
            strategies: vec![Strategy::Sr],
            cost_models: vec![CostModelSpec::Hop],
            backends: vec![RoutingBackendSpec::Swap],
            suite: None,
            jobs: 0,
            cache: 256,
            metrics: false,
            json: false,
        };
        let mut it = rest.iter();
        while let Some(flag) = it.next() {
            match flag.as_str() {
                "--strategy" => {
                    let v = it.next().ok_or("--strategy needs a value")?;
                    out.strategies = v
                        .split(',')
                        .map(parse_strategy)
                        .collect::<Result<Vec<_>, _>>()?;
                    if out.strategies.is_empty() {
                        return Err("--strategy needs at least one value".into());
                    }
                }
                "--device" => {
                    out.flags.device_spec = it.next().ok_or("--device needs a value")?.clone();
                }
                "--seed" => {
                    out.flags.seed = it
                        .next()
                        .ok_or("--seed needs a value")?
                        .parse()
                        .map_err(|_| "bad seed")?;
                }
                "--cost-model" | "--router" => {
                    let v = it.next().ok_or("--cost-model needs a value")?;
                    out.cost_models = v
                        .split(',')
                        .map(str::trim)
                        .filter(|s| !s.is_empty())
                        .map(CostModelSpec::parse)
                        .collect::<Result<Vec<_>, _>>()?;
                    if out.cost_models.is_empty() {
                        return Err("--cost-model needs at least one value".into());
                    }
                }
                "--routing-backend" => {
                    let v = it.next().ok_or("--routing-backend needs a value")?;
                    out.backends = v
                        .split(',')
                        .map(str::trim)
                        .filter(|s| !s.is_empty())
                        .map(RoutingBackendSpec::parse)
                        .collect::<Result<Vec<_>, _>>()?;
                    if out.backends.is_empty() {
                        return Err("--routing-backend needs at least one value".into());
                    }
                }
                "--suite" => {
                    out.suite = Some(it.next().ok_or("--suite needs a value")?.clone());
                }
                "--jobs" => {
                    out.jobs = it
                        .next()
                        .ok_or("--jobs needs a value")?
                        .parse()
                        .map_err(|_| "bad --jobs value")?;
                }
                "--cache" => {
                    out.cache = it
                        .next()
                        .ok_or("--cache needs a value")?
                        .parse()
                        .map_err(|_| "bad --cache value")?;
                }
                "--metrics" => out.metrics = true,
                "--json" => out.json = true,
                other => return Err(format!("unknown flag '{other}'")),
            }
        }
        Ok(out)
    }
}
