//! The batch executor: a fixed worker pool over `std::thread::scope`,
//! with per-job panic isolation, an optional shared compile cache, and
//! deterministic result ordering.

use crate::cache::CompileCache;
use crate::job::{BatchReport, BatchRequest, CompileJob, FailedJob, JobError, JobOutcome};
use crate::metrics::EngineMetrics;
use caqr::{CancelToken, CaqrError, CompileReport, StageTrace};
use caqr_sim::effective_workers;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::time::Instant;

/// The signature of the per-job compiler the pool drives. The production
/// engine uses [`caqr::compile_traced_with`]; tests inject panicking or
/// counting stand-ins.
pub trait JobCompiler: Sync {
    /// Compiles one job, returning the report (or error) plus stage
    /// timings.
    fn compile(&self, job: &CompileJob) -> (Result<CompileReport, CaqrError>, StageTrace);
}

impl<F> JobCompiler for F
where
    F: Fn(&CompileJob) -> (Result<CompileReport, CaqrError>, StageTrace) + Sync,
{
    fn compile(&self, job: &CompileJob) -> (Result<CompileReport, CaqrError>, StageTrace) {
        self(job)
    }
}

/// The batch-compilation engine.
///
/// Stateless apart from configuration: every [`Engine::run`] call builds
/// its own cache (if enabled) and worker pool, so runs are independent
/// and results depend only on the request.
#[derive(Debug, Default)]
pub struct Engine;

impl Engine {
    /// Runs `request` through the full CaQR pipeline. Each job routes
    /// under its own [`CompileJob::router`] policy.
    pub fn run(request: &BatchRequest) -> BatchReport {
        Self::run_with(request, &|job: &CompileJob| {
            caqr::compile_traced_with(&job.circuit, &job.device, job.strategy, job.router)
        })
    }

    /// Runs `request` with a custom per-job compiler (test seam).
    pub fn run_with<C: JobCompiler>(request: &BatchRequest, compiler: &C) -> BatchReport {
        let local = match request.options.cache_capacity {
            0 => None,
            capacity => Some(CompileCache::new(capacity)),
        };
        Self::run_impl(request, local.as_ref(), compiler, &CancelToken::new())
    }

    /// Runs `request` against a caller-owned cache, under a
    /// [`CancelToken`] — the entry point `caqr-serve` drives.
    ///
    /// The shared cache outlives the call (so repeat submissions across
    /// requests hit), and `request.options.cache_capacity` is ignored in
    /// favour of it. A tripped token stops compilation at the next pass
    /// boundary; jobs not yet started fail with
    /// [`CaqrError::DeadlineExceeded`] without running at all. With a
    /// shared cache, `metrics.cache` reports the cache's *cumulative*
    /// counters, not this run's delta.
    pub fn run_shared(
        request: &BatchRequest,
        cache: Option<&CompileCache>,
        cancel: &CancelToken,
    ) -> BatchReport {
        Self::run_impl(
            request,
            cache,
            &|job: &CompileJob| {
                caqr::compile_traced_cancellable_with(
                    &job.circuit,
                    &job.device,
                    job.strategy,
                    job.router,
                    cancel,
                )
            },
            cancel,
        )
    }

    fn run_impl<C: JobCompiler>(
        request: &BatchRequest,
        cache: Option<&CompileCache>,
        compiler: &C,
        cancel: &CancelToken,
    ) -> BatchReport {
        let started = Instant::now();
        let workers = effective_workers(request.options.workers, request.jobs.len());

        let mut slots: Vec<Option<Result<JobOutcome, FailedJob>>> =
            (0..request.jobs.len()).map(|_| None).collect();
        let next = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel::<(usize, Result<JobOutcome, FailedJob>)>();

        std::thread::scope(|scope| {
            for _ in 0..workers {
                let tx = tx.clone();
                let next = &next;
                let jobs = &request.jobs;
                scope.spawn(move || loop {
                    let index = next.fetch_add(1, Ordering::Relaxed);
                    let Some(job) = jobs.get(index) else { break };
                    let queue_wait = started.elapsed();
                    let result = if cancel.is_cancelled() {
                        Err(FailedJob {
                            name: job.name.clone(),
                            strategy: job.strategy,
                            cost_model: job.router.cost_model,
                            backend: job.router.backend,
                            error: JobError::Compile(CaqrError::DeadlineExceeded {
                                phase: "queued",
                            }),
                            queue_wait,
                        })
                    } else {
                        run_one(job, cache, compiler, queue_wait)
                    };
                    if tx.send((index, result)).is_err() {
                        break;
                    }
                });
            }
            drop(tx);
            for (index, result) in rx {
                slots[index] = Some(result);
            }
        });

        let results: Vec<Result<JobOutcome, FailedJob>> = slots
            .into_iter()
            .map(|slot| slot.expect("every job index produced a result"))
            .collect();

        let mut metrics = EngineMetrics {
            jobs_total: request.jobs.len(),
            ..Default::default()
        };
        for result in &results {
            match result {
                Ok(outcome) => {
                    metrics.record_success(
                        &outcome.router_label(),
                        &outcome.trace,
                        &outcome.report,
                    );
                    if outcome.cache_hit {
                        metrics.jobs_from_cache += 1;
                    }
                    metrics.compile_total += outcome.wall;
                    metrics.queue_wait_total += outcome.queue_wait;
                }
                Err(failed) => {
                    metrics.jobs_failed += 1;
                    metrics.queue_wait_total += failed.queue_wait;
                }
            }
        }
        if let Some(cache) = &cache {
            metrics.cache = cache.stats();
        }
        metrics.batch_wall = started.elapsed();

        BatchReport { results, metrics }
    }
}

/// Compiles one job with cache lookup and panic isolation.
fn run_one<C: JobCompiler>(
    job: &CompileJob,
    cache: Option<&CompileCache>,
    compiler: &C,
    queue_wait: std::time::Duration,
) -> Result<JobOutcome, FailedJob> {
    let started = Instant::now();
    let key = cache.map(|cache| {
        let key = job.key();
        (cache, key)
    });

    if let Some((cache, key)) = key {
        if let Some(report) = cache.get(key) {
            return Ok(JobOutcome {
                name: job.name.clone(),
                strategy: job.strategy,
                cost_model: job.router.cost_model,
                backend: job.router.backend,
                report,
                cache_hit: true,
                wall: started.elapsed(),
                queue_wait,
                trace: StageTrace::default(),
            });
        }
    }

    let compiled = catch_unwind(AssertUnwindSafe(|| compiler.compile(job)));
    match compiled {
        Ok((Ok(report), trace)) => {
            if let Some((cache, fingerprint)) = key {
                cache.insert(fingerprint, report.clone());
            }
            Ok(JobOutcome {
                name: job.name.clone(),
                strategy: job.strategy,
                cost_model: job.router.cost_model,
                backend: job.router.backend,
                report,
                cache_hit: false,
                wall: started.elapsed(),
                queue_wait,
                trace,
            })
        }
        Ok((Err(error), _)) => Err(FailedJob {
            name: job.name.clone(),
            strategy: job.strategy,
            cost_model: job.router.cost_model,
            backend: job.router.backend,
            error: JobError::Compile(error),
            queue_wait,
        }),
        Err(payload) => Err(FailedJob {
            name: job.name.clone(),
            strategy: job.strategy,
            cost_model: job.router.cost_model,
            backend: job.router.backend,
            error: JobError::Panic(panic_message(payload)),
            queue_wait,
        }),
    }
}

/// Extracts a human-readable message from a panic payload.
pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::BatchOptions;
    use caqr::Strategy;
    use caqr_arch::Device;
    use caqr_circuit::{Circuit, Qubit};
    use std::sync::atomic::AtomicUsize as Counter;

    fn bv(secret_bits: usize) -> Circuit {
        let n = secret_bits + 1;
        let mut c = Circuit::new(n, secret_bits);
        for i in 0..secret_bits {
            c.h(Qubit::new(i));
        }
        c.x(Qubit::new(secret_bits));
        c.h(Qubit::new(secret_bits));
        for i in 0..secret_bits {
            c.cx(Qubit::new(i), Qubit::new(secret_bits));
            c.h(Qubit::new(i));
        }
        for i in 0..secret_bits {
            c.measure(Qubit::new(i), caqr_circuit::Clbit::new(i));
        }
        c
    }

    fn jobs() -> Vec<CompileJob> {
        vec![
            CompileJob::new("bv3", bv(3), Device::mumbai(5), Strategy::Baseline),
            CompileJob::new("bv3-qs", bv(3), Device::mumbai(5), Strategy::QsMaxReuse),
            CompileJob::new("bv4", bv(4), Device::mumbai(6), Strategy::Baseline),
        ]
    }

    #[test]
    fn results_follow_request_order() {
        let report = Engine::run(&BatchRequest::new(jobs()));
        let names: Vec<&str> = report
            .results
            .iter()
            .map(|r| match r {
                Ok(o) => o.name.as_str(),
                Err(f) => f.name.as_str(),
            })
            .collect();
        assert_eq!(names, ["bv3", "bv3-qs", "bv4"]);
        assert_eq!(report.ok_count(), 3);
        assert_eq!(report.metrics.jobs_total, 3);
        assert_eq!(report.metrics.jobs_ok, 3);
    }

    #[test]
    fn compile_error_is_reported_not_fatal() {
        let tiny = Device::with_synthetic_calibration(caqr_arch::Topology::line(3), 0);
        let mut all = jobs();
        all.insert(
            1,
            CompileJob::new("too-big", bv(9), tiny, Strategy::Baseline),
        );
        let report = Engine::run(&BatchRequest::new(all));
        assert_eq!(report.ok_count(), 3);
        assert_eq!(report.failed_count(), 1);
        let failed = report.results[1].as_ref().unwrap_err();
        assert_eq!(failed.name, "too-big");
        assert!(
            matches!(failed.error, JobError::Compile(_)),
            "{:?}",
            failed.error
        );
    }

    #[test]
    fn panicking_job_does_not_kill_the_batch() {
        let panicking = |job: &CompileJob| {
            if job.name == "boom" {
                panic!("injected failure in {}", job.name);
            }
            caqr::compile_traced(&job.circuit, &job.device, job.strategy)
        };
        let mut all = jobs();
        all.insert(
            0,
            CompileJob::new("boom", bv(3), Device::mumbai(5), Strategy::Baseline),
        );
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let report = Engine::run_with(
            &BatchRequest::new(all).with_options(BatchOptions::with_workers(2)),
            &panicking,
        );
        std::panic::set_hook(hook);
        assert_eq!(report.ok_count(), 3);
        let failed = report.results[0].as_ref().unwrap_err();
        assert_eq!(failed.name, "boom");
        match &failed.error {
            JobError::Panic(msg) => assert!(msg.contains("injected failure"), "{msg}"),
            other => panic!("expected panic error, got {other}"),
        }
        assert_eq!(report.metrics.jobs_failed, 1);
    }

    #[test]
    fn cache_suppresses_duplicate_compiles() {
        let compiles = Counter::new(0);
        let counting = |job: &CompileJob| {
            compiles.fetch_add(1, Ordering::SeqCst);
            caqr::compile_traced(&job.circuit, &job.device, job.strategy)
        };
        let duplicated: Vec<CompileJob> = jobs().into_iter().chain(jobs()).collect();
        let request = BatchRequest::new(duplicated).with_options(BatchOptions {
            workers: 1,
            cache_capacity: 16,
        });
        let report = Engine::run_with(&request, &counting);
        assert_eq!(report.ok_count(), 6);
        assert_eq!(
            compiles.load(Ordering::SeqCst),
            3,
            "second halves were cache hits"
        );
        assert_eq!(report.metrics.jobs_from_cache, 3);
        assert_eq!(report.metrics.cache.hits, 3);
        assert_eq!(report.metrics.cache.misses, 3);
    }

    #[test]
    fn cache_hit_equals_cold_compile() {
        let warm_request = BatchRequest::new(jobs().into_iter().chain(jobs()).collect::<Vec<_>>());
        let report = Engine::run(&warm_request);
        for (cold, warm) in report.results[..3].iter().zip(&report.results[3..]) {
            let (cold, warm) = (cold.as_ref().unwrap(), warm.as_ref().unwrap());
            assert!(warm.cache_hit);
            assert_eq!(cold.report.circuit, warm.report.circuit);
            assert_eq!(cold.report.depth, warm.report.depth);
            assert_eq!(cold.report.esp, warm.report.esp);
        }
    }

    #[test]
    fn disabled_cache_never_hits() {
        let request = BatchRequest::new(jobs().into_iter().chain(jobs()).collect::<Vec<_>>())
            .with_options(BatchOptions {
                workers: 1,
                cache_capacity: 0,
            });
        let report = Engine::run(&request);
        assert_eq!(report.metrics.jobs_from_cache, 0);
        assert_eq!(report.metrics.cache.hits, 0);
    }

    #[test]
    fn mixed_policy_batch_attributes_metrics_per_policy() {
        let lookahead = caqr::CostModelSpec::parse("lookahead:4:0.5").unwrap();
        let all = vec![
            CompileJob::new("bv3-hop", bv(3), Device::mumbai(5), Strategy::Baseline),
            CompileJob::new("bv3-la", bv(3), Device::mumbai(5), Strategy::Baseline)
                .with_cost_model(lookahead),
        ];
        let report = Engine::run(&BatchRequest::new(all));
        assert_eq!(report.ok_count(), 2);
        let totals = &report.metrics.policy_totals;
        assert_eq!(totals["hop"].jobs_ok, 1);
        assert_eq!(totals["lookahead:4:0.5"].jobs_ok, 1);
        let per_policy_swaps: usize = totals.values().map(|t| t.swaps).sum();
        assert_eq!(per_policy_swaps, report.metrics.swaps_inserted);
    }

    #[test]
    fn mixed_backend_batch_attributes_metrics_per_backend() {
        let all = vec![
            CompileJob::new("bv3-swap", bv(3), Device::mumbai(5), Strategy::Baseline),
            CompileJob::new(
                "bv3-dpqa",
                bv(3),
                Device::dpqa_grid(3, 3, 7),
                Strategy::Baseline,
            )
            .with_backend(caqr::RoutingBackendSpec::Dpqa),
        ];
        let report = Engine::run(&BatchRequest::new(all));
        assert_eq!(report.ok_count(), 2, "{}", report.render_table());
        let totals = &report.metrics.policy_totals;
        assert_eq!(totals["hop"].jobs_ok, 1);
        assert_eq!(totals["dpqa"].jobs_ok, 1);
        assert_eq!(totals["dpqa"].swaps, 0, "movement backend inserts no SWAPs");
        let table = report.render_table();
        assert!(table.contains("dpqa"), "{table}");
    }

    /// A DPQA job pointed at a fixed-coupling device fails with the typed
    /// mismatch error instead of poisoning the batch.
    #[test]
    fn dpqa_on_fixed_coupling_device_is_a_reported_mismatch() {
        let all = vec![
            CompileJob::new("bad", bv(3), Device::mumbai(5), Strategy::Baseline)
                .with_backend(caqr::RoutingBackendSpec::Dpqa),
        ];
        let report = Engine::run(&BatchRequest::new(all));
        assert_eq!(report.failed_count(), 1);
        let failed = report.results[0].as_ref().unwrap_err();
        assert!(
            matches!(
                failed.error,
                JobError::Compile(CaqrError::BackendDeviceMismatch { .. })
            ),
            "{:?}",
            failed.error
        );
        assert_eq!(failed.router_label(), "dpqa");
    }

    #[test]
    fn worker_count_is_clamped_sensibly() {
        assert_eq!(effective_workers(8, 3), 3);
        assert_eq!(effective_workers(2, 100), 2);
        assert!(effective_workers(0, 100) >= 1);
        assert_eq!(effective_workers(4, 0), 1);
    }

    #[test]
    fn queue_wait_and_compile_time_are_disjoint() {
        let report = Engine::run(&BatchRequest::new(jobs()));
        for result in &report.results {
            let outcome = result.as_ref().unwrap();
            assert!(outcome.wall > std::time::Duration::ZERO || outcome.cache_hit);
        }
        assert!(report.metrics.compile_total > std::time::Duration::ZERO);
        // queue_wait sums every job's pickup delay; with instant pickup it
        // can be tiny but it is always recorded.
        let per_job: std::time::Duration = report
            .results
            .iter()
            .map(|r| r.as_ref().unwrap().queue_wait)
            .sum();
        assert_eq!(report.metrics.queue_wait_total, per_job);
    }

    #[test]
    fn shared_cache_hits_across_runs() {
        let cache = CompileCache::new(64);
        let token = CancelToken::new();
        let cold = Engine::run_shared(&BatchRequest::new(jobs()), Some(&cache), &token);
        assert_eq!(cold.metrics.jobs_from_cache, 0);
        let warm = Engine::run_shared(&BatchRequest::new(jobs()), Some(&cache), &token);
        assert_eq!(warm.metrics.jobs_from_cache, 3, "second run is all hits");
        for (c, w) in cold.results.iter().zip(&warm.results) {
            let (c, w) = (c.as_ref().unwrap(), w.as_ref().unwrap());
            assert_eq!(c.report.circuit, w.report.circuit);
        }
        assert_eq!(warm.metrics.cache.hits, 3);
    }

    #[test]
    fn cancelled_token_fails_jobs_without_running_them() {
        let token = CancelToken::new();
        token.cancel();
        let report = Engine::run_shared(&BatchRequest::new(jobs()), None, &token);
        assert_eq!(report.ok_count(), 0);
        assert_eq!(report.failed_count(), 3);
        for result in &report.results {
            let failed = result.as_ref().unwrap_err();
            assert!(
                matches!(
                    failed.error,
                    JobError::Compile(CaqrError::DeadlineExceeded { .. })
                ),
                "{:?}",
                failed.error
            );
        }
    }

    #[test]
    fn empty_batch_is_fine() {
        let report = Engine::run(&BatchRequest::new(Vec::new()));
        assert!(report.results.is_empty());
        assert_eq!(report.metrics.jobs_total, 0);
    }
}
