//! The content-addressed compile cache.
//!
//! Compile results are cached under a [`Fingerprint`] of the canonical
//! circuit content, the device (topology + full calibration tables), and
//! the strategy — so a hit is only possible when every input that can
//! influence the output is bit-identical. Eviction is LRU with a fixed
//! entry capacity; hits, misses, insertions, and evictions are counted so
//! batch reports can prove a warm run recompiled nothing.

use caqr::CompileReport;
use caqr_circuit::fingerprint::Fingerprint;
use std::collections::HashMap;
use std::sync::Mutex;

/// Counters describing cache behaviour so far.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that returned a cached report.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Reports inserted.
    pub insertions: u64,
    /// Entries evicted to respect the capacity bound.
    pub evictions: u64,
}

#[derive(Debug)]
struct Entry {
    report: CompileReport,
    last_used: u64,
}

#[derive(Debug, Default)]
struct Inner {
    map: HashMap<u128, Entry>,
    stats: CacheStats,
    tick: u64,
}

/// A thread-safe LRU cache of compile reports keyed by content
/// fingerprint.
///
/// All methods take `&self`; the cache is shared freely across worker
/// threads.
#[derive(Debug)]
pub struct CompileCache {
    inner: Mutex<Inner>,
    capacity: usize,
}

impl CompileCache {
    /// A cache holding at most `capacity` reports.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero — use no cache at all instead.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        CompileCache {
            inner: Mutex::new(Inner::default()),
            capacity,
        }
    }

    /// The maximum number of cached reports.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The number of currently cached reports.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("cache lock").map.len()
    }

    /// Returns `true` when nothing is cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Looks `key` up, cloning the report on a hit and refreshing its
    /// recency.
    pub fn get(&self, key: Fingerprint) -> Option<CompileReport> {
        let mut inner = self.inner.lock().expect("cache lock");
        inner.tick += 1;
        let tick = inner.tick;
        match inner.map.get_mut(&key.as_u128()) {
            Some(entry) => {
                entry.last_used = tick;
                let report = entry.report.clone();
                inner.stats.hits += 1;
                Some(report)
            }
            None => {
                inner.stats.misses += 1;
                None
            }
        }
    }

    /// Stores `report` under `key`, evicting the least-recently-used entry
    /// if the cache is full.
    pub fn insert(&self, key: Fingerprint, report: CompileReport) {
        let mut inner = self.inner.lock().expect("cache lock");
        inner.tick += 1;
        let tick = inner.tick;
        if inner.map.len() >= self.capacity && !inner.map.contains_key(&key.as_u128()) {
            if let Some(&lru_key) = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k)
            {
                inner.map.remove(&lru_key);
                inner.stats.evictions += 1;
            }
        }
        inner.stats.insertions += 1;
        inner.map.insert(
            key.as_u128(),
            Entry {
                report,
                last_used: tick,
            },
        );
    }

    /// A snapshot of the hit/miss/eviction counters.
    pub fn stats(&self) -> CacheStats {
        self.inner.lock().expect("cache lock").stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use caqr::Strategy;
    use caqr_arch::Device;
    use caqr_circuit::{Circuit, Qubit};

    fn report_for(tag: usize) -> CompileReport {
        let mut c = Circuit::new(2, 0);
        for _ in 0..tag {
            c.h(Qubit::new(0));
        }
        caqr::compile(&c, &Device::mumbai(1), Strategy::Baseline).unwrap()
    }

    #[test]
    fn hit_returns_equal_report() {
        let cache = CompileCache::new(4);
        let key = Fingerprint(1);
        let report = report_for(1);
        cache.insert(key, report.clone());
        let got = cache.get(key).expect("hit");
        assert_eq!(got.circuit, report.circuit);
        assert_eq!(got.depth, report.depth);
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.stats().misses, 0);
    }

    #[test]
    fn miss_is_counted() {
        let cache = CompileCache::new(4);
        assert!(cache.get(Fingerprint(9)).is_none());
        assert_eq!(
            cache.stats(),
            CacheStats {
                misses: 1,
                ..Default::default()
            }
        );
    }

    #[test]
    fn lru_eviction_respects_capacity_and_recency() {
        let cache = CompileCache::new(2);
        cache.insert(Fingerprint(1), report_for(1));
        cache.insert(Fingerprint(2), report_for(2));
        // Touch 1 so 2 becomes the LRU victim.
        assert!(cache.get(Fingerprint(1)).is_some());
        cache.insert(Fingerprint(3), report_for(3));
        assert_eq!(cache.len(), 2);
        assert!(
            cache.get(Fingerprint(1)).is_some(),
            "recently used survives"
        );
        assert!(cache.get(Fingerprint(2)).is_none(), "LRU entry evicted");
        assert!(cache.get(Fingerprint(3)).is_some());
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn reinserting_existing_key_does_not_evict() {
        let cache = CompileCache::new(2);
        cache.insert(Fingerprint(1), report_for(1));
        cache.insert(Fingerprint(2), report_for(2));
        cache.insert(Fingerprint(2), report_for(2));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 0);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        CompileCache::new(0);
    }
}
