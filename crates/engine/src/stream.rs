//! The engine's streaming entry point — the fourth compilation mode
//! after batch, batch-cached, and parametric-template.
//!
//! [`Engine::compile_streamed`] drives a [`caqr_stream::StreamSession`]
//! over an iterator of source-byte chunks (a socket body, a generator, a
//! file reader) under the same [`CancelToken`] deadline machinery the
//! batch paths use: the token is checked between chunks, so a deadline
//! fires within one chunk of work. Peak memory is O(window + chunk) —
//! the full program never exists in this process.

use std::time::{Duration, Instant};

use caqr::{CancelToken, CaqrError};
use caqr_stream::{ChunkSink, NullSink, StreamError, StreamOptions, StreamReport, StreamSession};

use crate::pool::Engine;

/// Why a streaming compile stopped short.
#[derive(Debug, Clone)]
pub enum StreamJobError {
    /// The streaming pipeline rejected the input (parse error or
    /// too-small window).
    Stream(StreamError),
    /// The deadline expired or the caller cancelled between chunks.
    Cancelled(CaqrError),
}

impl std::fmt::Display for StreamJobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamJobError::Stream(e) => write!(f, "{e}"),
            StreamJobError::Cancelled(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for StreamJobError {}

impl From<StreamError> for StreamJobError {
    fn from(e: StreamError) -> Self {
        StreamJobError::Stream(e)
    }
}

/// A successful streaming compile: the session report plus wall time.
#[derive(Debug, Clone, Copy)]
pub struct StreamOutcome {
    /// Digest and stage metrics (window occupancy, peak live qubits,
    /// cones closed, resets inserted, ...).
    pub report: StreamReport,
    /// End-to-end wall clock including parsing.
    pub wall: Duration,
}

impl Engine {
    /// Streams OpenQASM source chunks through the bounded-memory
    /// pipeline, discarding compiled chunks (digest/metrics callers).
    ///
    /// # Errors
    ///
    /// [`StreamJobError::Stream`] on malformed source or a window too
    /// small for the circuit's measure-to-reuse gaps;
    /// [`StreamJobError::Cancelled`] when `cancel` fires between chunks.
    pub fn compile_streamed<I>(
        chunks: I,
        options: StreamOptions,
        cancel: &CancelToken,
    ) -> Result<StreamOutcome, StreamJobError>
    where
        I: IntoIterator,
        I::Item: AsRef<[u8]>,
    {
        Self::compile_streamed_into(chunks, options, cancel, NullSink).map(|(o, _)| o)
    }

    /// As [`compile_streamed`](Engine::compile_streamed), but hands each
    /// compiled chunk to `sink` and returns it.
    ///
    /// # Errors
    ///
    /// Same conditions as [`compile_streamed`](Engine::compile_streamed).
    pub fn compile_streamed_into<I, S>(
        chunks: I,
        options: StreamOptions,
        cancel: &CancelToken,
        sink: S,
    ) -> Result<(StreamOutcome, S), StreamJobError>
    where
        I: IntoIterator,
        I::Item: AsRef<[u8]>,
        S: ChunkSink,
    {
        let start = Instant::now();
        let mut session = StreamSession::new(options, sink);
        for chunk in chunks {
            cancel.check("stream").map_err(StreamJobError::Cancelled)?;
            session.feed(chunk.as_ref())?;
        }
        cancel.check("stream").map_err(StreamJobError::Cancelled)?;
        let (report, sink) = session.finish()?;
        Ok((
            StreamOutcome {
                report,
                wall: start.elapsed(),
            },
            sink,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use caqr_benchmarks::stream::StreamSpec;
    use caqr_circuit::qasm::from_qasm;
    use caqr_stream::schedule_circuit;

    fn tiny() -> StreamSpec {
        StreamSpec {
            blocks: 4,
            block_qubits: 3,
            depth: 2,
            seed: 2023,
        }
    }

    #[test]
    fn streamed_digest_equals_batch_twin() {
        let spec = tiny();
        let opts = StreamOptions {
            window: 16,
            chunk_gates: 8,
            optimize_chunks: true,
        };
        let outcome =
            Engine::compile_streamed(spec.text_chunks(), opts.clone(), &CancelToken::new())
                .expect("streams");
        let batch = from_qasm(&spec.text()).expect("batch parse");
        let (batch_report, _) =
            schedule_circuit(&batch, opts, caqr_stream::NullSink).expect("batch twin");
        assert_eq!(outcome.report, batch_report);
        assert_eq!(outcome.report.metrics.gates_in as usize, spec.gate_count());
        // Blocks retire sequentially: far fewer wires than declared.
        assert!(outcome.report.metrics.wires < spec.total_qubits());
    }

    #[test]
    fn cancelled_token_stops_between_chunks() {
        let token = CancelToken::new();
        token.cancel();
        let err = Engine::compile_streamed(tiny().text_chunks(), StreamOptions::default(), &token)
            .expect_err("cancelled");
        assert!(matches!(err, StreamJobError::Cancelled(_)));
    }

    #[test]
    fn parse_errors_surface() {
        let err = Engine::compile_streamed(
            ["qreg q[1];\n", "frobnicate q[0];\n"],
            StreamOptions::default(),
            &CancelToken::new(),
        )
        .expect_err("bad gate");
        match err {
            StreamJobError::Stream(StreamError::Parse(e)) => assert_eq!(e.line(), 2),
            other => panic!("expected parse error, got {other:?}"),
        }
    }
}
