//! The template bind path: compile once, bind angles forever.
//!
//! A [`BindJob`] carries a [`ParametricCircuit`] template plus one vector
//! of concrete angle values. [`Engine::bind_shared`] looks the *routed
//! template* up in the shared [`CompileCache`] under a domain-separated
//! [`BindJob::template_key`] — compiling and inserting on a miss — and
//! then stamps the values into the routed artifact in O(gates) via
//! [`caqr_circuit::parametric::bind_circuit`]. Repeat bindings of the
//! same template skip the compiler entirely: only the cheap bind step
//! runs, which is what turns a variational optimizer loop's compile cost
//! into a one-time charge.

use crate::cache::CompileCache;
use crate::job::{FailedJob, JobError};
use crate::metrics::EngineMetrics;
use crate::pool::Engine;
use caqr::{
    CancelToken, CompileReport, CostModelSpec, RouterConfig, RoutingBackendSpec, StageTrace,
    Strategy,
};
use caqr_arch::Device;
use caqr_circuit::fingerprint::{Fingerprint, StableHasher};
use caqr_circuit::parametric::bind_circuit;
use caqr_circuit::ParametricCircuit;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

/// Domain tag for template job keys. Distinct from both the concrete
/// [`crate::CompileJob::key`] construction (which hashes no tag) and the
/// template fingerprint's own domain, so a template job can never collide
/// with a concrete job for the same structure in the shared cache.
const TEMPLATE_JOB_DOMAIN: &str = "caqr/template-job/v1";

/// One bind-run unit of work: compile `template` onto `device` if the
/// routed artifact is not cached, then bind `values` into its slots.
#[derive(Debug, Clone)]
pub struct BindJob {
    /// Display name; carried into reports.
    pub name: String,
    /// The parametric template to compile (at most once) and bind.
    pub template: ParametricCircuit,
    /// One concrete angle per slot, indexed by slot id.
    pub values: Vec<f64>,
    /// The target device.
    pub device: Device,
    /// The compiler to run.
    pub strategy: Strategy,
    /// The routing policy (backend + swap-scoring model) every routing
    /// pass uses.
    pub router: RouterConfig,
}

impl BindJob {
    /// Builds a bind job routing with the default policy (SWAP backend,
    /// [`CostModelSpec::Hop`] swap-scoring model).
    pub fn new(
        name: impl Into<String>,
        template: ParametricCircuit,
        values: Vec<f64>,
        device: Device,
        strategy: Strategy,
    ) -> Self {
        BindJob {
            name: name.into(),
            template,
            values,
            device,
            strategy,
            router: RouterConfig::default(),
        }
    }

    /// The same job routing under a different swap-scoring model.
    pub fn with_cost_model(mut self, cost_model: CostModelSpec) -> Self {
        self.router.cost_model = cost_model;
        self
    }

    /// The same job routed by a different backend.
    pub fn with_backend(mut self, backend: RoutingBackendSpec) -> Self {
        self.router.backend = backend;
        self
    }

    /// The same job under a full routing policy (backend + cost model).
    pub fn with_router(mut self, router: impl Into<RouterConfig>) -> Self {
        self.router = router.into();
        self
    }

    /// The content-addressed cache key for the *routed template* (not the
    /// bound artifact): template structure x device x strategy x routing
    /// policy. Deliberately independent of [`BindJob::values`] — every
    /// binding of one template shares one cache entry; that sharing is the
    /// entire point of the bind path.
    ///
    /// The key lives in its own fingerprint domain
    /// (`caqr/template-job/v1`), layered on top of the template
    /// fingerprint's own domain separation, so it can share a
    /// [`CompileCache`] with concrete [`crate::CompileJob`]s without any
    /// possibility of cross-domain collision.
    pub fn template_key(&self) -> Fingerprint {
        let mut h = StableHasher::new();
        h.write_str(TEMPLATE_JOB_DOMAIN);
        h.write_str(&self.strategy.to_string());
        h.write_str(&self.router.cache_tag());
        h.finish()
            .combine(self.template.template_fingerprint())
            .combine(self.device.fingerprint())
    }
}

/// A completed bind-run: the bound (fully concrete) compile report plus
/// the compile/bind cost split.
#[derive(Debug, Clone)]
pub struct BindOutcome {
    /// Job name, copied from the request.
    pub name: String,
    /// Strategy that ran.
    pub strategy: Strategy,
    /// Routing cost model the template compiled under.
    pub cost_model: CostModelSpec,
    /// Routing backend the template compiled under.
    pub backend: RoutingBackendSpec,
    /// The bound report: structural metrics from the routed template,
    /// circuit with every slot stamped to a concrete angle.
    pub report: CompileReport,
    /// `true` when the routed template was served from the cache and no
    /// compile ran.
    pub template_cache_hit: bool,
    /// Wall-clock spent compiling the template (zero on a cache hit).
    pub compile_wall: Duration,
    /// Wall-clock spent binding values into the routed artifact.
    pub bind_wall: Duration,
    /// Per-stage compile timings (empty on a cache hit).
    pub trace: StageTrace,
}

impl BindOutcome {
    /// The report "router" label for this outcome; see
    /// [`crate::job::router_label`].
    pub fn router_label(&self) -> String {
        crate::job::router_label(self.backend, self.cost_model)
    }
}

/// The result of one bind-run: the outcome (or failure) plus engine
/// metrics carrying the `bind_us` / template-cache split, ready to merge
/// into a service's cumulative view.
#[derive(Debug, Clone)]
pub struct BindReport {
    /// The bound artifact, or why there is none.
    pub result: Result<BindOutcome, FailedJob>,
    /// Counters and timings for this bind-run.
    pub metrics: EngineMetrics,
}

impl Engine {
    /// Runs one bind job against a caller-owned cache under a
    /// [`CancelToken`]: template-cache lookup, compile-if-cold, then bind.
    ///
    /// The routed template is cached under [`BindJob::template_key`];
    /// repeat calls with the same template (any values) hit the cache and
    /// pay only the O(gates) bind. With `cache: None` every call compiles
    /// cold — correct, just slow. A tripped token stops a cold compile at
    /// the next pass boundary; the bind step itself is too cheap to gate.
    pub fn bind_shared(
        job: &BindJob,
        cache: Option<&CompileCache>,
        cancel: &CancelToken,
    ) -> BindReport {
        let started = Instant::now();
        let mut metrics = EngineMetrics {
            binds_total: 1,
            ..Default::default()
        };
        let fail = |error: JobError, metrics: EngineMetrics, queue_wait: Duration| BindReport {
            result: Err(FailedJob {
                name: job.name.clone(),
                strategy: job.strategy,
                cost_model: job.router.cost_model,
                backend: job.router.backend,
                error,
                queue_wait,
            }),
            metrics,
        };

        // Compile-if-cold: fetch the routed template or build it.
        let key = job.template_key();
        let cached = cache.and_then(|cache| cache.get(key));
        let template_cache_hit = cached.is_some();
        let (routed, trace, compile_wall) = match cached {
            Some(report) => {
                metrics.template_cache_hits = 1;
                (report, StageTrace::default(), Duration::ZERO)
            }
            None => {
                metrics.template_cache_misses = 1;
                let compile_started = Instant::now();
                let compiled = catch_unwind(AssertUnwindSafe(|| {
                    caqr::compile_template_traced_cancellable_with(
                        &job.template,
                        &job.device,
                        job.strategy,
                        job.router,
                        cancel,
                    )
                }));
                let (result, trace) = match compiled {
                    Ok(pair) => pair,
                    Err(payload) => {
                        metrics.jobs_total = 1;
                        metrics.jobs_failed = 1;
                        return fail(
                            JobError::Panic(crate::pool::panic_message(payload)),
                            metrics,
                            started.elapsed(),
                        );
                    }
                };
                let compile_wall = compile_started.elapsed();
                metrics.jobs_total = 1;
                match result {
                    Ok(report) => {
                        let label =
                            crate::job::router_label(job.router.backend, job.router.cost_model);
                        metrics.record_success(&label, &trace, &report);
                        metrics.compile_total = compile_wall;
                        if let Some(cache) = cache {
                            cache.insert(key, report.clone());
                        }
                        (report, trace, compile_wall)
                    }
                    Err(error) => {
                        metrics.jobs_failed = 1;
                        return fail(JobError::Compile(error), metrics, Duration::ZERO);
                    }
                }
            }
        };
        if let Some(cache) = cache {
            metrics.cache = cache.stats();
        }

        // Bind: stamp concrete angles into the routed artifact, O(gates).
        let bind_started = Instant::now();
        let bound = bind_circuit(&routed.circuit, job.template.num_slots(), &job.values);
        let bind_wall = bind_started.elapsed();
        metrics.bind_total = bind_wall;
        let circuit = match bound {
            Ok(circuit) => circuit,
            Err(e) => {
                return fail(JobError::Bind(e.to_string()), metrics, Duration::ZERO);
            }
        };
        metrics.batch_wall = started.elapsed();

        BindReport {
            result: Ok(BindOutcome {
                name: job.name.clone(),
                strategy: job.strategy,
                cost_model: job.router.cost_model,
                backend: job.router.backend,
                report: CompileReport {
                    circuit,
                    ..routed.clone()
                },
                template_cache_hit,
                compile_wall,
                bind_wall,
                trace,
            }),
            metrics,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::CompileJob;
    use caqr_benchmarks::qaoa::{qaoa_benchmark, GraphKind};
    use caqr_circuit::Circuit;

    fn template_job(name: &str) -> BindJob {
        let bench = qaoa_benchmark(6, 0.3, GraphKind::Random, 2029);
        let (template, values) = ParametricCircuit::parametrize(&bench.circuit);
        BindJob::new(name, template, values, Device::mumbai(5), Strategy::Sr)
    }

    /// A template job and the concrete job for the *same* structure,
    /// strategy, device, and cost model must never share a cache key —
    /// a collision would serve a slot-bearing routed template as a
    /// finished concrete compile (or vice versa).
    #[test]
    fn template_key_never_collides_with_concrete_key() {
        let bench = qaoa_benchmark(6, 0.3, GraphKind::Random, 2029);
        let (template, values) = ParametricCircuit::parametrize(&bench.circuit);
        for strategy in [Strategy::Baseline, Strategy::QsMaxReuse, Strategy::Sr] {
            for spec in [
                CostModelSpec::Hop,
                CostModelSpec::lookahead(),
                CostModelSpec::NoiseAware,
            ] {
                let bind = BindJob::new(
                    "t",
                    template.clone(),
                    values.clone(),
                    Device::mumbai(5),
                    strategy,
                )
                .with_cost_model(spec);
                // Concrete job over the template's own instruction stream
                // (slots and all) — the closest possible collision shape.
                let concrete =
                    CompileJob::new("c", template.circuit().clone(), Device::mumbai(5), strategy)
                        .with_cost_model(spec);
                assert_ne!(
                    bind.template_key(),
                    concrete.key(),
                    "{strategy}/{spec}: template and concrete jobs collide"
                );
                // And against the bound concrete circuit, which is what a
                // client would actually submit to /v1/compile.
                let bound =
                    bind_circuit(template.circuit(), template.num_slots(), &values).unwrap();
                let concrete_bound =
                    CompileJob::new("c", bound, Device::mumbai(5), strategy).with_cost_model(spec);
                assert_ne!(bind.template_key(), concrete_bound.key());
            }
        }
    }

    #[test]
    fn template_key_depends_on_inputs_but_not_values() {
        let a = template_job("a");
        assert_eq!(
            a.template_key(),
            template_job("renamed").template_key(),
            "name is not content"
        );
        let mut other_values = template_job("a");
        other_values.values[0] += 1.0;
        assert_eq!(
            a.template_key(),
            other_values.template_key(),
            "values must not enter the template key — all bindings share one entry"
        );
        let mut other_device = template_job("a");
        other_device.device = Device::mumbai(6);
        assert_ne!(a.template_key(), other_device.template_key());
        let mut other_strategy = template_job("a");
        other_strategy.strategy = Strategy::Baseline;
        assert_ne!(a.template_key(), other_strategy.template_key());
        assert_ne!(
            a.template_key(),
            template_job("a")
                .with_cost_model(CostModelSpec::NoiseAware)
                .template_key()
        );
        assert_ne!(
            a.template_key(),
            template_job("a")
                .with_backend(RoutingBackendSpec::Dpqa)
                .template_key(),
            "backend is template-key content"
        );
    }

    #[test]
    fn warm_bind_skips_the_compiler_and_matches_direct_compile() {
        let cache = CompileCache::new(16);
        let token = CancelToken::new();
        let job = template_job("qaoa");
        let cold = Engine::bind_shared(&job, Some(&cache), &token);
        let cold_out = cold.result.expect("cold bind succeeds");
        assert!(!cold_out.template_cache_hit);
        assert_eq!(cold.metrics.template_cache_misses, 1);
        assert_eq!(cold.metrics.binds_total, 1);
        assert_eq!(cold.metrics.jobs_ok, 1);

        // Warm: same template, different values — cache hit, no compile.
        let mut warm_job = job.clone();
        for v in &mut warm_job.values {
            *v += 0.25;
        }
        let warm = Engine::bind_shared(&warm_job, Some(&cache), &token);
        let warm_out = warm.result.expect("warm bind succeeds");
        assert!(warm_out.template_cache_hit);
        assert_eq!(warm.metrics.template_cache_hits, 1);
        assert_eq!(warm.metrics.jobs_total, 0, "no compile ran");
        assert_eq!(warm_out.compile_wall, Duration::ZERO);

        // Both bound artifacts match compiling the concrete circuit
        // directly.
        for (out, values) in [(&cold_out, &job.values), (&warm_out, &warm_job.values)] {
            let concrete =
                bind_circuit(job.template.circuit(), job.template.num_slots(), values).unwrap();
            let direct =
                caqr::compile_with(&concrete, &job.device, job.strategy, job.router).unwrap();
            assert_eq!(out.report.circuit, direct.circuit);
            assert_eq!(out.report.depth, direct.depth);
            assert_eq!(out.report.esp.to_bits(), direct.esp.to_bits());
        }
        // And distinct values produce distinct artifacts.
        assert_ne!(
            cold_out.report.circuit.fingerprint(),
            warm_out.report.circuit.fingerprint()
        );
    }

    #[test]
    fn arity_mismatch_is_a_bind_error() {
        let cache = CompileCache::new(16);
        let token = CancelToken::new();
        let mut job = template_job("qaoa");
        job.values.pop();
        let report = Engine::bind_shared(&job, Some(&cache), &token);
        let failed = report.result.expect_err("short values must fail");
        assert!(
            matches!(failed.error, JobError::Bind(_)),
            "{:?}",
            failed.error
        );
        assert!(failed.error.to_string().contains("bind error"));
        // The template compile itself succeeded and is cached: a corrected
        // retry is a cache hit.
        let mut fixed = template_job("qaoa");
        fixed.values = job.values.clone();
        fixed.values.push(0.5);
        let retry = Engine::bind_shared(&fixed, Some(&cache), &token);
        assert!(retry.result.unwrap().template_cache_hit);
    }

    #[test]
    fn templates_without_slots_still_bind() {
        let mut c = Circuit::new(2, 2);
        c.h(caqr_circuit::Qubit::new(0));
        c.cx(caqr_circuit::Qubit::new(0), caqr_circuit::Qubit::new(1));
        c.measure_all();
        let (template, values) = ParametricCircuit::parametrize(&c);
        assert_eq!(template.num_slots(), 0);
        let job = BindJob::new(
            "bell",
            template,
            values,
            Device::mumbai(3),
            Strategy::Baseline,
        );
        let report = Engine::bind_shared(&job, None, &CancelToken::new());
        assert!(report.result.is_ok());
        assert_eq!(report.metrics.template_cache_misses, 1, "no cache given");
    }
}
