//! A minimal complex-number type.
//!
//! The workspace policy avoids extra dependencies, and the simulator only
//! needs a handful of operations, so we carry our own `C64` instead of
//! pulling in `num-complex`.

use std::ops::{Add, AddAssign, Mul, Neg, Sub};

/// A double-precision complex number.
///
/// # Examples
///
/// ```
/// use caqr_sim::C64;
///
/// let i = C64::new(0.0, 1.0);
/// assert_eq!(i * i, C64::new(-1.0, 0.0));
/// assert!((C64::new(3.0, 4.0).abs2() - 25.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct C64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl C64 {
    /// Zero.
    pub const ZERO: C64 = C64 { re: 0.0, im: 0.0 };
    /// One.
    pub const ONE: C64 = C64 { re: 1.0, im: 0.0 };
    /// The imaginary unit.
    pub const I: C64 = C64 { re: 0.0, im: 1.0 };

    /// Builds `re + im*i`.
    pub const fn new(re: f64, im: f64) -> Self {
        C64 { re, im }
    }

    /// A real number.
    pub const fn real(re: f64) -> Self {
        C64 { re, im: 0.0 }
    }

    /// `e^{i theta}`.
    pub fn cis(theta: f64) -> Self {
        C64 {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    /// Squared magnitude `|z|^2`.
    pub fn abs2(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Complex conjugate.
    pub fn conj(self) -> Self {
        C64 {
            re: self.re,
            im: -self.im,
        }
    }

    /// Scales by a real factor.
    pub fn scale(self, s: f64) -> Self {
        C64 {
            re: self.re * s,
            im: self.im * s,
        }
    }
}

impl Add for C64 {
    type Output = C64;
    fn add(self, o: C64) -> C64 {
        C64::new(self.re + o.re, self.im + o.im)
    }
}

impl AddAssign for C64 {
    fn add_assign(&mut self, o: C64) {
        self.re += o.re;
        self.im += o.im;
    }
}

impl Sub for C64 {
    type Output = C64;
    fn sub(self, o: C64) -> C64 {
        C64::new(self.re - o.re, self.im - o.im)
    }
}

impl Mul for C64 {
    type Output = C64;
    fn mul(self, o: C64) -> C64 {
        C64::new(
            self.re * o.re - self.im * o.im,
            self.re * o.im + self.im * o.re,
        )
    }
}

impl Neg for C64 {
    type Output = C64;
    fn neg(self) -> C64 {
        C64::new(-self.re, -self.im)
    }
}

impl From<f64> for C64 {
    fn from(re: f64) -> Self {
        C64::real(re)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = C64::new(1.0, 2.0);
        let b = C64::new(3.0, -1.0);
        assert_eq!(a + b, C64::new(4.0, 1.0));
        assert_eq!(a - b, C64::new(-2.0, 3.0));
        assert_eq!(a * b, C64::new(5.0, 5.0));
        assert_eq!(-a, C64::new(-1.0, -2.0));
    }

    #[test]
    fn cis_on_unit_circle() {
        let z = C64::cis(std::f64::consts::FRAC_PI_2);
        assert!((z.re).abs() < 1e-12);
        assert!((z.im - 1.0).abs() < 1e-12);
        assert!((C64::cis(1.234).abs2() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn conj_and_scale() {
        let z = C64::new(2.0, 3.0);
        assert_eq!(z.conj(), C64::new(2.0, -3.0));
        assert_eq!(z.scale(2.0), C64::new(4.0, 6.0));
        assert_eq!((z * z.conj()).re, z.abs2());
    }

    #[test]
    fn from_f64() {
        let z: C64 = 2.5.into();
        assert_eq!(z, C64::new(2.5, 0.0));
    }
}
