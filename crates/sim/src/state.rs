//! Dense state-vector representation and gate application.

use crate::complex::C64;
use crate::wide;
use caqr_circuit::Gate;
use rand::Rng;

/// Maximum simulable width (dense amplitudes; 2^24 complex = 256 MiB).
pub const MAX_QUBITS: usize = 24;

/// A pure `n`-qubit state as `2^n` amplitudes.
///
/// Qubit `q` corresponds to bit `q` of the basis-state index (little
/// endian: index 0b10 means qubit 1 is |1>).
///
/// Internally the amplitudes live under a logical-to-physical bit
/// permutation: every SWAP gate is absorbed into the permutation in O(1)
/// instead of exchanging `2^(n-1)` amplitude pairs — routed circuits are
/// SWAP-heavy, so this removes their single largest cost. The permutation
/// is invisible from outside: every method taking a qubit or basis index
/// translates through it.
///
/// # Examples
///
/// ```
/// use caqr_sim::StateVector;
/// use caqr_circuit::Gate;
///
/// let mut s = StateVector::zero(2);
/// s.apply_gate(&Gate::H, &[0]);
/// s.apply_gate(&Gate::Cx, &[0, 1]);
/// // Bell state: P(|00>) = P(|11>) = 0.5.
/// assert!((s.probability_of(0b00) - 0.5).abs() < 1e-12);
/// assert!((s.probability_of(0b11) - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct StateVector {
    n: usize,
    amps: Vec<C64>,
    /// `map[q]` = physical bit position of logical qubit `q`.
    map: Vec<usize>,
    /// Route eligible runs through the lane-parallel kernel bodies
    /// ([`crate::wide`]). Bit-identical to the scalar bodies; only
    /// throughput changes.
    wide: bool,
}

impl StateVector {
    /// The all-zeros state |0...0>.
    ///
    /// # Panics
    ///
    /// Panics if `n > MAX_QUBITS`.
    pub fn zero(n: usize) -> Self {
        assert!(n <= MAX_QUBITS, "{n} qubits exceed the dense limit");
        let mut amps = vec![C64::ZERO; 1 << n];
        amps[0] = C64::ONE;
        StateVector {
            n,
            amps,
            map: (0..n).collect(),
            wide: true,
        }
    }

    /// Selects the wide (lane-parallel) or scalar kernel bodies for this
    /// state. Both produce bit-identical amplitudes; the executor threads
    /// its `kernel_dispatch` setting through here.
    pub fn set_wide(&mut self, on: bool) {
        self.wide = on;
    }

    /// The number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.n
    }

    /// Builds a state directly from `2^n` amplitudes with an identity bit
    /// permutation (the tableau-to-dense handoff writes amplitudes in
    /// logical order).
    pub(crate) fn from_amps(n: usize, amps: Vec<C64>) -> Self {
        assert!(n <= MAX_QUBITS, "{n} qubits exceed the dense limit");
        assert_eq!(amps.len(), 1 << n, "amplitude count mismatch");
        StateVector {
            n,
            amps,
            map: (0..n).collect(),
            wide: true,
        }
    }

    /// The physical bit position of logical qubit `q` under the current
    /// SWAP-absorbing permutation.
    pub(crate) fn phys_bit(&self, q: usize) -> usize {
        self.map[q]
    }

    /// The raw physical-order amplitude storage (see [`Self::phys_bit`]
    /// for the logical-to-physical translation). The sparse engine
    /// ([`crate::sparse`]) uses this as its dense backing.
    pub(crate) fn amps(&self) -> &[C64] {
        &self.amps
    }

    /// Mutable access to the raw physical-order amplitude storage.
    pub(crate) fn amps_mut(&mut self) -> &mut [C64] {
        &mut self.amps
    }

    /// Copies the SWAP-absorbing bit permutation from `src` (the sparse
    /// engine's O(support) fork copies amplitudes itself).
    pub(crate) fn copy_map_from(&mut self, src: &StateVector) {
        self.map.copy_from_slice(&src.map);
    }

    /// Resets the bit permutation to the identity without touching
    /// amplitudes.
    pub(crate) fn reset_map(&mut self) {
        for (q, b) in self.map.iter_mut().enumerate() {
            *b = q;
        }
    }

    /// Translates a logical basis index through the bit permutation.
    fn phys_index(&self, logical: usize) -> usize {
        let mut phys = 0usize;
        for (q, &b) in self.map.iter().enumerate() {
            phys |= (logical >> q & 1) << b;
        }
        phys
    }

    /// The amplitude of basis state `index`.
    pub fn amplitude(&self, index: usize) -> C64 {
        self.amps[self.phys_index(index)]
    }

    /// The probability of observing basis state `index`.
    pub fn probability_of(&self, index: usize) -> f64 {
        self.amplitude(index).abs2()
    }

    /// The probability of qubit `q` reading 1.
    ///
    /// Walks the `|1>` half of the state in contiguous stride-`2^q` blocks
    /// instead of filtering all `2^n` indices.
    pub fn prob_one(&self, q: usize) -> f64 {
        let bit = 1usize << self.map[q];
        let mut sum = 0.0;
        if bit == 1 {
            for pair in self.amps.chunks_exact(2) {
                sum += pair[1].abs2();
            }
            return sum;
        }
        for block in self.amps.chunks_exact(bit << 1) {
            for a in &block[bit..] {
                sum += a.abs2();
            }
        }
        sum
    }

    /// Sum of all probabilities (should stay 1 within rounding).
    ///
    /// Accumulates in four independent lanes so the sum pipelines instead
    /// of serializing on one accumulator.
    pub fn norm(&self) -> f64 {
        let mut acc = [0.0f64; 4];
        let chunks = self.amps.chunks_exact(4);
        let tail: f64 = chunks.remainder().iter().map(|a| a.abs2()).sum();
        for c in chunks {
            acc[0] += c[0].abs2();
            acc[1] += c[1].abs2();
            acc[2] += c[2].abs2();
            acc[3] += c[3].abs2();
        }
        (acc[0] + acc[1]) + (acc[2] + acc[3]) + tail
    }

    /// Overwrites this state with a copy of `src` without reallocating.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    pub fn load(&mut self, src: &StateVector) {
        assert_eq!(self.n, src.n, "state width mismatch");
        self.amps.copy_from_slice(&src.amps);
        self.map.copy_from_slice(&src.map);
    }

    /// Resets this state to |0...0> in place, with an identity permutation.
    pub fn set_zero(&mut self) {
        self.amps.fill(C64::ZERO);
        self.amps[0] = C64::ONE;
        for (q, b) in self.map.iter_mut().enumerate() {
            *b = q;
        }
    }

    /// Applies a unitary gate to the given qubits.
    ///
    /// # Panics
    ///
    /// Panics on `Measure`/`Reset` (use [`StateVector::measure`] /
    /// [`StateVector::reset`]), an arity mismatch, or out-of-range qubits.
    pub fn apply_gate(&mut self, gate: &Gate, qubits: &[usize]) {
        assert_eq!(qubits.len(), gate.num_qubits(), "gate arity mismatch");
        for &q in qubits {
            assert!(q < self.n, "qubit {q} out of range");
        }
        match *gate {
            Gate::H => self.apply_h(qubits[0]),
            Gate::X => self.flip_1q(qubits[0]),
            Gate::Y => self.apply_y(qubits[0]),
            Gate::Z => self.phase_1q(qubits[0], C64::real(-1.0)),
            Gate::S => self.phase_1q(qubits[0], C64::I),
            Gate::Sdg => self.phase_1q(qubits[0], -C64::I),
            Gate::T => self.phase_1q(qubits[0], C64::cis(std::f64::consts::FRAC_PI_4)),
            Gate::Tdg => self.phase_1q(qubits[0], C64::cis(-std::f64::consts::FRAC_PI_4)),
            Gate::Rx(a) => {
                let (c, s) = ((a / 2.0).cos(), (a / 2.0).sin());
                self.apply_1q(
                    qubits[0],
                    [
                        [C64::real(c), C64::new(0.0, -s)],
                        [C64::new(0.0, -s), C64::real(c)],
                    ],
                );
            }
            Gate::Ry(a) => {
                let (c, s) = ((a / 2.0).cos(), (a / 2.0).sin());
                self.apply_1q(
                    qubits[0],
                    [[C64::real(c), C64::real(-s)], [C64::real(s), C64::real(c)]],
                );
            }
            Gate::Rz(a) => {
                let (m0, m1) = (C64::cis(-a / 2.0), C64::cis(a / 2.0));
                self.diag_1q(qubits[0], m0, m1);
            }
            Gate::Phase(a) => self.phase_1q(qubits[0], C64::cis(a)),
            Gate::U(theta, phi, lambda) => {
                let (c, s) = ((theta / 2.0).cos(), (theta / 2.0).sin());
                self.apply_1q(
                    qubits[0],
                    [
                        [C64::real(c), -(C64::cis(lambda).scale(s))],
                        [C64::cis(phi).scale(s), C64::cis(phi + lambda).scale(c)],
                    ],
                );
            }
            Gate::Cx => self.apply_cx(qubits[0], qubits[1]),
            Gate::Cz => self.apply_cphase(qubits[0], qubits[1], C64::real(-1.0)),
            Gate::Cp(a) => self.apply_cphase(qubits[0], qubits[1], C64::cis(a)),
            Gate::Rzz(a) => self.apply_rzz(qubits[0], qubits[1], a),
            Gate::Swap => self.apply_swap(qubits[0], qubits[1]),
            Gate::Measure | Gate::Reset => {
                panic!("non-unitary {gate} must go through measure()/reset()")
            }
        }
    }

    /// Applies a general 2x2 matrix to qubit `q`, walking the state in
    /// stride-`2^q` block pairs (no per-index bit test). Unit-stride pairs
    /// (`bit == 1`) use a dedicated literal-width chunk loop: the general
    /// path would otherwise split a fresh slice per amplitude pair.
    pub(crate) fn apply_1q(&mut self, q: usize, m: [[C64; 2]; 2]) {
        let bit = 1usize << self.map[q];
        if bit == 1 {
            for pair in self.amps.chunks_exact_mut(2) {
                let (a0, a1) = (pair[0], pair[1]);
                pair[0] = m[0][0] * a0 + m[0][1] * a1;
                pair[1] = m[1][0] * a0 + m[1][1] * a1;
            }
            return;
        }
        for block in self.amps.chunks_exact_mut(bit << 1) {
            let (lo, hi) = block.split_at_mut(bit);
            wide::mix_pairs(lo, hi, &m, self.wide);
        }
    }

    /// Multiplies the |1> amplitudes of `q` by `phase`, leaving the |0>
    /// half untouched (half the memory traffic of a general diagonal).
    pub(crate) fn phase_1q(&mut self, q: usize, phase: C64) {
        let bit = 1usize << self.map[q];
        if bit == 1 {
            for pair in self.amps.chunks_exact_mut(2) {
                pair[1] = phase * pair[1];
            }
            return;
        }
        for block in self.amps.chunks_exact_mut(bit << 1) {
            wide::scale_run(&mut block[bit..], phase, self.wide);
        }
    }

    /// Hadamard on qubit `q` as lane-wise sums and a real scale —
    /// no complex multiplies, unlike the general 2x2 path.
    pub(crate) fn apply_h(&mut self, q: usize) {
        let s = std::f64::consts::FRAC_1_SQRT_2;
        let bit = 1usize << self.map[q];
        if bit == 1 {
            for pair in self.amps.chunks_exact_mut(2) {
                let (a0, a1) = (pair[0], pair[1]);
                pair[0] = (a0 + a1).scale(s);
                pair[1] = (a0 - a1).scale(s);
            }
            return;
        }
        for block in self.amps.chunks_exact_mut(bit << 1) {
            let (lo, hi) = block.split_at_mut(bit);
            wide::had_pairs(lo, hi, self.wide);
        }
    }

    /// Pauli-Y on qubit `q`: swap the pair and multiply by `∓i` lane-wise
    /// (`|0> -> i|1>`, `|1> -> -i|0>`), avoiding general complex products.
    /// Matters because a third of stochastic Pauli-twirl events are Ys.
    pub(crate) fn apply_y(&mut self, q: usize) {
        let bit = 1usize << self.map[q];
        if bit == 1 {
            for pair in self.amps.chunks_exact_mut(2) {
                let (a0, a1) = (pair[0], pair[1]);
                pair[0] = C64::new(a1.im, -a1.re);
                pair[1] = C64::new(-a0.im, a0.re);
            }
            return;
        }
        for block in self.amps.chunks_exact_mut(bit << 1) {
            let (lo, hi) = block.split_at_mut(bit);
            for (x, y) in lo.iter_mut().zip(hi.iter_mut()) {
                let (a0, a1) = (*x, *y);
                *x = C64::new(a1.im, -a1.re);
                *y = C64::new(-a0.im, a0.re);
            }
        }
    }

    /// Applies `diag(m0, m1)` on qubit `q` by blocks.
    pub(crate) fn diag_1q(&mut self, q: usize, m0: C64, m1: C64) {
        let bit = 1usize << self.map[q];
        if bit == 1 {
            for pair in self.amps.chunks_exact_mut(2) {
                pair[0] = m0 * pair[0];
                pair[1] = m1 * pair[1];
            }
            return;
        }
        for block in self.amps.chunks_exact_mut(bit << 1) {
            let (lo, hi) = block.split_at_mut(bit);
            wide::scale_run(lo, m0, self.wide);
            wide::scale_run(hi, m1, self.wide);
        }
    }

    /// Pauli-X on qubit `q` as a pure block swap — no arithmetic.
    pub(crate) fn flip_1q(&mut self, q: usize) {
        let bit = 1usize << self.map[q];
        if bit == 1 {
            for pair in self.amps.chunks_exact_mut(2) {
                pair.swap(0, 1);
            }
            return;
        }
        for block in self.amps.chunks_exact_mut(bit << 1) {
            let (lo, hi) = block.split_at_mut(bit);
            lo.swap_with_slice(hi);
        }
    }

    /// CNOT as nested block swaps: the outer loop walks blocks of the
    /// larger bit, the inner loop swaps contiguous runs of the smaller
    /// bit. Unit runs (smaller bit = 1) get a dedicated element-swap loop
    /// over fixed-width chunks, which vectorizes instead of paying slice
    /// machinery per amplitude pair.
    pub(crate) fn apply_cx(&mut self, control: usize, target: usize) {
        let (cb, tb) = (1usize << self.map[control], 1usize << self.map[target]);
        let amps = &mut self.amps;
        if tb > cb {
            // Target is the outer bit: within each target block pair, swap
            // the control = 1 elements between the halves.
            for block in amps.chunks_exact_mut(tb << 1) {
                let (lo, hi) = block.split_at_mut(tb);
                if cb == 1 {
                    for (l, h) in lo.chunks_exact_mut(2).zip(hi.chunks_exact_mut(2)) {
                        std::mem::swap(&mut l[1], &mut h[1]);
                    }
                } else {
                    for (l, h) in lo
                        .chunks_exact_mut(cb << 1)
                        .zip(hi.chunks_exact_mut(cb << 1))
                    {
                        l[cb..].swap_with_slice(&mut h[cb..]);
                    }
                }
            }
        } else {
            // Control is the outer bit: in each control = 1 half, exchange
            // the target halves of every target block pair.
            for block in amps.chunks_exact_mut(cb << 1) {
                let upper = &mut block[cb..];
                if tb == 1 {
                    for pair in upper.chunks_exact_mut(2) {
                        pair.swap(0, 1);
                    }
                } else {
                    for pair in upper.chunks_exact_mut(tb << 1) {
                        let (lo, hi) = pair.split_at_mut(tb);
                        lo.swap_with_slice(hi);
                    }
                }
            }
        }
    }

    /// Controlled phase: scales the `a = b = 1` quarter of the state,
    /// visiting it as runs of the smaller bit inside blocks of the larger.
    pub(crate) fn apply_cphase(&mut self, a: usize, b: usize, phase: C64) {
        let (ab, bb) = (1usize << self.map[a], 1usize << self.map[b]);
        let (small, large) = (ab.min(bb), ab.max(bb));
        let amps = &mut self.amps;
        for block in amps.chunks_exact_mut(large << 1) {
            let upper = &mut block[large..];
            if small == 1 {
                for pair in upper.chunks_exact_mut(2) {
                    pair[1] = phase * pair[1];
                }
            } else {
                for run in upper.chunks_exact_mut(small << 1) {
                    wide::scale_run(&mut run[small..], phase, self.wide);
                }
            }
        }
    }

    /// RZZ with precomputed even/odd parity factors, applied in a single
    /// sweep: each larger-bit half scales its smaller-bit halves by the
    /// matching parity factor (the factor pair flips between halves).
    pub(crate) fn apply_rzz_factors(&mut self, a: usize, b: usize, even: C64, odd: C64) {
        fn scale_halves(half: &mut [C64], small: usize, f0: C64, f1: C64, w: bool) {
            for run in half.chunks_exact_mut(small << 1) {
                let (lo, hi) = run.split_at_mut(small);
                wide::scale_run(lo, f0, w);
                wide::scale_run(hi, f1, w);
            }
        }
        let (ab, bb) = (1usize << self.map[a], 1usize << self.map[b]);
        let (small, large) = (ab.min(bb), ab.max(bb));
        let w = self.wide;
        for block in self.amps.chunks_exact_mut(large << 1) {
            let (lo, hi) = block.split_at_mut(large);
            scale_halves(lo, small, even, odd, w);
            scale_halves(hi, small, odd, even, w);
        }
    }

    fn apply_rzz(&mut self, a: usize, b: usize, angle: f64) {
        self.apply_rzz_factors(a, b, C64::cis(-angle / 2.0), C64::cis(angle / 2.0));
    }

    /// SWAP as an O(1) relabel: the two logical qubits exchange physical
    /// bit positions and no amplitude moves.
    pub(crate) fn apply_swap(&mut self, a: usize, b: usize) {
        self.map.swap(a, b);
    }

    /// Applies a general 4x4 unitary to logical qubits `(a, b)`, where the
    /// matrix is indexed by the 2-bit basis value `a_val + 2*b_val`. This
    /// is the fused-pair kernel: one sweep replaces an arbitrary run of 1q
    /// and 2q gates on the pair.
    ///
    /// The walk visits quads as four equal runs of the smaller physical
    /// bit inside blocks of the larger; the matrix is permuted once per
    /// call into the physical (small, large) convention so the inner loop
    /// stays oblivious to the SWAP-absorbing bit permutation.
    pub(crate) fn apply_2q(&mut self, a: usize, b: usize, m: &[[C64; 4]; 4]) {
        let (pa, pb) = (1usize << self.map[a], 1usize << self.map[b]);
        let (small, large) = (pa.min(pb), pa.max(pb));
        // Physical quad index is s + 2*l (s = small bit, l = large bit);
        // logical index gives qubit `a` weight 1 and `b` weight 2.
        let (js, jl) = if pa < pb { (1usize, 2) } else { (2usize, 1) };
        let perm = [0, js, jl, js + jl];
        let mut pm = [[C64::ZERO; 4]; 4];
        for (pr, r) in perm.iter().enumerate() {
            for (pc, c) in perm.iter().enumerate() {
                pm[pr][pc] = m[*r][*c];
            }
        }
        let w = self.wide;
        for block in self.amps.chunks_exact_mut(large << 1) {
            let (l0, l1) = block.split_at_mut(large);
            if small == 1 {
                for (p0, p1) in l0.chunks_exact_mut(2).zip(l1.chunks_exact_mut(2)) {
                    let v = [p0[0], p0[1], p1[0], p1[1]];
                    let mut out = [C64::ZERO; 4];
                    for (row, o) in pm.iter().zip(out.iter_mut()) {
                        let mut acc = C64::ZERO;
                        for (c, amp) in row.iter().zip(v.iter()) {
                            acc += C64::new(
                                c.re * amp.re - c.im * amp.im,
                                c.re * amp.im + c.im * amp.re,
                            );
                        }
                        *o = acc;
                    }
                    p0[0] = out[0];
                    p0[1] = out[1];
                    p1[0] = out[2];
                    p1[1] = out[3];
                }
            } else {
                for (c0, c1) in l0
                    .chunks_exact_mut(small << 1)
                    .zip(l1.chunks_exact_mut(small << 1))
                {
                    let (r00, r01) = c0.split_at_mut(small);
                    let (r10, r11) = c1.split_at_mut(small);
                    wide::mix_quads([r00, r01, r10, r11], &pm, w);
                }
            }
        }
    }

    /// Applies a diagonal 4x4 (entries indexed by `a_val + 2*b_val`) as
    /// four scale sweeps — the specialization for fused runs of
    /// RZ/RZZ/CZ-like gates on a pair. Identity entries skip their run.
    pub(crate) fn diag_2q(&mut self, a: usize, b: usize, d: &[C64; 4]) {
        let (pa, pb) = (1usize << self.map[a], 1usize << self.map[b]);
        let (small, large) = (pa.min(pb), pa.max(pb));
        let (js, jl) = if pa < pb { (1usize, 2) } else { (2usize, 1) };
        // pd[s + 2*l] = logical entry for that physical quad.
        let pd = [d[0], d[js], d[jl], d[js + jl]];
        let w = self.wide;
        for block in self.amps.chunks_exact_mut(large << 1) {
            let (l0, l1) = block.split_at_mut(large);
            for (half, fs) in [(l0, [pd[0], pd[1]]), (l1, [pd[2], pd[3]])] {
                for run in half.chunks_exact_mut(small << 1) {
                    let (lo, hi) = run.split_at_mut(small);
                    if fs[0] != C64::ONE {
                        wide::scale_run(lo, fs[0], w);
                    }
                    if fs[1] != C64::ONE {
                        wide::scale_run(hi, fs[1], w);
                    }
                }
            }
        }
    }

    /// Applies a controlled-pair kernel: 2x2 matrix `m0` on `target` where
    /// `control = 0` and `m1` where `control = 1`. This is the
    /// block-diagonal specialization of [`Self::apply_2q`] — two half-space
    /// 1q sweeps instead of a full 4x4, and the common shape for fused
    /// CX/CZ + 1q runs.
    pub(crate) fn apply_c2(
        &mut self,
        control: usize,
        target: usize,
        m0: &[[C64; 2]; 2],
        m1: &[[C64; 2]; 2],
    ) {
        const ID2: [[C64; 2]; 2] = [[C64::ONE, C64::ZERO], [C64::ZERO, C64::ONE]];
        // A half-space whose matrix is exactly the identity needs no sweep
        // (common: a lone CX fused with diagonals on its control).
        let (do0, do1) = (*m0 != ID2, *m1 != ID2);
        fn oneq_in(amps: &mut [C64], bit: usize, m: &[[C64; 2]; 2], w: bool) {
            if bit == 1 {
                for pair in amps.chunks_exact_mut(2) {
                    let (a0, a1) = (pair[0], pair[1]);
                    pair[0] = m[0][0] * a0 + m[0][1] * a1;
                    pair[1] = m[1][0] * a0 + m[1][1] * a1;
                }
                return;
            }
            for block in amps.chunks_exact_mut(bit << 1) {
                let (lo, hi) = block.split_at_mut(bit);
                wide::mix_pairs(lo, hi, m, w);
            }
        }
        let (cb, tb) = (1usize << self.map[control], 1usize << self.map[target]);
        let w = self.wide;
        if cb > tb {
            // Control is the outer bit: each control half is a contiguous
            // sub-space; run the plain 1q walk on the target inside it.
            for block in self.amps.chunks_exact_mut(cb << 1) {
                let (c0, c1) = block.split_at_mut(cb);
                if do0 {
                    oneq_in(c0, tb, m0, w);
                }
                if do1 {
                    oneq_in(c1, tb, m1, w);
                }
            }
        } else {
            // Target is the outer bit: pair up target halves, then split
            // each run by the control bit and mix with the matching matrix.
            for block in self.amps.chunks_exact_mut(tb << 1) {
                let (t0, t1) = block.split_at_mut(tb);
                if cb == 1 {
                    for (x2, y2) in t0.chunks_exact_mut(2).zip(t1.chunks_exact_mut(2)) {
                        if do0 {
                            let (a0, a1) = (x2[0], y2[0]);
                            x2[0] = m0[0][0] * a0 + m0[0][1] * a1;
                            y2[0] = m0[1][0] * a0 + m0[1][1] * a1;
                        }
                        if do1 {
                            let (b0, b1) = (x2[1], y2[1]);
                            x2[1] = m1[0][0] * b0 + m1[0][1] * b1;
                            y2[1] = m1[1][0] * b0 + m1[1][1] * b1;
                        }
                    }
                } else {
                    for (r0, r1) in t0
                        .chunks_exact_mut(cb << 1)
                        .zip(t1.chunks_exact_mut(cb << 1))
                    {
                        let (r0c0, r0c1) = r0.split_at_mut(cb);
                        let (r1c0, r1c1) = r1.split_at_mut(cb);
                        if do0 {
                            wide::mix_pairs(r0c0, r1c0, m0, w);
                        }
                        if do1 {
                            wide::mix_pairs(r0c1, r1c1, m1, w);
                        }
                    }
                }
            }
        }
    }

    /// Applies the Pauli `X^x Z^z` (logical-qubit masks, Z first, global
    /// phase dropped) in one sweep: `out[b ^ x] = (-1)^|b & z| * in[b]`.
    /// This materializes the carried Pauli frame of the fused replay path.
    pub(crate) fn apply_pauli_masks(&mut self, x: u64, z: u64) {
        let mut xm = 0usize;
        let mut zm = 0usize;
        for q in 0..self.n {
            if x >> q & 1 == 1 {
                xm |= 1 << self.map[q];
            }
            if z >> q & 1 == 1 {
                zm |= 1 << self.map[q];
            }
        }
        if xm == 0 {
            if zm == 0 {
                return;
            }
            for (b, a) in self.amps.iter_mut().enumerate() {
                if (b & zm).count_ones() & 1 == 1 {
                    *a = -*a;
                }
            }
            return;
        }
        // Pair each index with its X-partner via the highest flipped bit;
        // the partner differs only in bits <= hb, so both live in the same
        // block and each unordered pair is visited exactly once.
        let hb = 1usize << (usize::BITS - 1 - xm.leading_zeros());
        let len = self.amps.len();
        let mut start = 0;
        while start < len {
            for i in start..start + hb {
                let p = i ^ xm;
                let (ai, ap) = (self.amps[i], self.amps[p]);
                self.amps[p] = if (i & zm).count_ones() & 1 == 1 {
                    -ai
                } else {
                    ai
                };
                self.amps[i] = if (p & zm).count_ones() & 1 == 1 {
                    -ap
                } else {
                    ap
                };
            }
            start += hb << 1;
        }
    }

    /// Sum of `|amp|^2` over the basis states whose bits under `mask`
    /// equal `value`, visiting only matching amplitudes in contiguous
    /// runs. `mask == 0` sums the whole state.
    ///
    /// This powers collapse-free sampling of deferred measurements: the
    /// conditional probability of a bit given already-sampled bits is a
    /// ratio of two such sums, with no projection sweeps.
    pub(crate) fn masked_sum(&self, mask: usize, value: usize) -> f64 {
        debug_assert_eq!(value & !mask, 0, "value must lie within mask");
        let amps = &self.amps;
        if mask == 0 {
            return amps.iter().map(|a| a.abs2()).sum();
        }
        // Bits below the lowest fixed bit are free, so matches come in
        // contiguous runs of this length.
        let run = 1usize << mask.trailing_zeros();
        let high_free = (amps.len() - 1) & !mask & !(run - 1);
        let mut sum = 0.0;
        // Standard submask walk enumerates every setting of the free high
        // bits (including zero) exactly once.
        let mut s = high_free;
        loop {
            let start = value | s;
            for a in &amps[start..start + run] {
                sum += a.abs2();
            }
            if s == 0 {
                break;
            }
            s = (s - 1) & high_free;
        }
        sum
    }

    /// Projectively measures qubit `q`, collapsing the state. Returns the
    /// observed bit.
    pub fn measure(&mut self, q: usize, rng: &mut impl Rng) -> bool {
        let p1 = self.prob_one(q);
        let outcome = rng.gen_bool(p1.clamp(0.0, 1.0));
        self.project(q, outcome);
        outcome
    }

    /// Forces qubit `q` into the given classical value, renormalizing.
    /// Used both by [`StateVector::measure`] and by deterministic branch
    /// exploration in [`crate::exact`].
    pub fn project(&mut self, q: usize, value: bool) {
        let bit = 1usize << self.map[q];
        let keep = if value {
            self.prob_one(q)
        } else {
            let mut sum = 0.0;
            let mut base = 0;
            while base < self.amps.len() {
                for a in &self.amps[base..base + bit] {
                    sum += a.abs2();
                }
                base += bit << 1;
            }
            sum
        };
        let scale = if keep > 0.0 { 1.0 / keep.sqrt() } else { 0.0 };
        let len = self.amps.len();
        let mut base = 0;
        while base < len {
            let (lo, hi) = self.amps[base..base + (bit << 1)].split_at_mut(bit);
            let (kept, zeroed) = if value { (hi, lo) } else { (lo, hi) };
            for a in kept {
                *a = a.scale(scale);
            }
            zeroed.fill(C64::ZERO);
            base += bit << 1;
        }
    }

    /// Resets qubit `q` to |0> (measure and flip if needed).
    pub fn reset(&mut self, q: usize, rng: &mut impl Rng) {
        if self.measure(q, rng) {
            self.apply_gate(&Gate::X, &[q]);
        }
    }

    /// One Monte-Carlo trajectory step of the amplitude-damping channel
    /// with decay probability `gamma` on qubit `q` (T1 relaxation).
    ///
    /// With probability `gamma * P(1)` the "jump" Kraus operator fires and
    /// the qubit relaxes to |0>; otherwise the no-jump operator damps the
    /// |1> amplitude. Averaged over trajectories this realizes the exact
    /// channel.
    ///
    /// # Panics
    ///
    /// Panics if `gamma` is outside `[0, 1]` or `q` is out of range.
    pub fn amplitude_damp(&mut self, q: usize, gamma: f64, rng: &mut impl Rng) {
        assert!((0.0..=1.0).contains(&gamma), "gamma must be in [0, 1]");
        assert!(q < self.n, "qubit {q} out of range");
        if gamma == 0.0 {
            return;
        }
        let p1 = self.prob_one(q);
        let p_jump = (gamma * p1).clamp(0.0, 1.0);
        let bit = 1usize << self.map[q];
        let len = self.amps.len();
        if p_jump > 0.0 && rng.gen_bool(p_jump) {
            // Jump: K1 = sqrt(gamma) |0><1|, then renormalize by the jump
            // probability.
            let scale = (gamma / p_jump).sqrt();
            let mut base = 0;
            while base < len {
                let (lo, hi) = self.amps[base..base + (bit << 1)].split_at_mut(bit);
                for (x, y) in lo.iter_mut().zip(hi.iter_mut()) {
                    *x = y.scale(scale);
                    *y = C64::ZERO;
                }
                base += bit << 1;
            }
        } else {
            // No jump: K0 = diag(1, sqrt(1 - gamma)), renormalized.
            let damp = (1.0 - gamma).sqrt();
            let norm = (1.0 - p_jump).sqrt();
            let (s0, s1) = (1.0 / norm, damp / norm);
            let mut base = 0;
            while base < len {
                let (lo, hi) = self.amps[base..base + (bit << 1)].split_at_mut(bit);
                for a in lo {
                    *a = a.scale(s0);
                }
                for a in hi {
                    *a = a.scale(s1);
                }
                base += bit << 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(99)
    }

    #[test]
    fn zero_state() {
        let s = StateVector::zero(3);
        assert_eq!(s.num_qubits(), 3);
        assert!((s.probability_of(0) - 1.0).abs() < 1e-12);
        assert!((s.norm() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn x_flips() {
        let mut s = StateVector::zero(2);
        s.apply_gate(&Gate::X, &[1]);
        assert!((s.probability_of(0b10) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn h_twice_is_identity() {
        let mut s = StateVector::zero(1);
        s.apply_gate(&Gate::H, &[0]);
        assert!((s.prob_one(0) - 0.5).abs() < 1e-12);
        s.apply_gate(&Gate::H, &[0]);
        assert!((s.probability_of(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bell_state() {
        let mut s = StateVector::zero(2);
        s.apply_gate(&Gate::H, &[0]);
        s.apply_gate(&Gate::Cx, &[0, 1]);
        assert!((s.probability_of(0b00) - 0.5).abs() < 1e-12);
        assert!((s.probability_of(0b11) - 0.5).abs() < 1e-12);
        assert!(s.probability_of(0b01) < 1e-12);
    }

    #[test]
    fn cz_phase() {
        // |11> picks up a -1 under CZ; verify via interference:
        // H(0) CZ H(0) on |q1=1> acts as Z-controlled flip.
        let mut s = StateVector::zero(2);
        s.apply_gate(&Gate::X, &[1]);
        s.apply_gate(&Gate::H, &[0]);
        s.apply_gate(&Gate::Cz, &[0, 1]);
        s.apply_gate(&Gate::H, &[0]);
        // Equivalent to X on qubit 0 when control is 1.
        assert!((s.probability_of(0b11) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn swap_exchanges() {
        let mut s = StateVector::zero(2);
        s.apply_gate(&Gate::X, &[0]);
        s.apply_gate(&Gate::Swap, &[0, 1]);
        assert!((s.probability_of(0b10) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn swap_equals_three_cx() {
        let mut a = StateVector::zero(2);
        a.apply_gate(&Gate::H, &[0]);
        a.apply_gate(&Gate::T, &[1]);
        let mut b = a.clone();
        a.apply_gate(&Gate::Swap, &[0, 1]);
        b.apply_gate(&Gate::Cx, &[0, 1]);
        b.apply_gate(&Gate::Cx, &[1, 0]);
        b.apply_gate(&Gate::Cx, &[0, 1]);
        for i in 0..4 {
            assert!((a.amplitude(i) - b.amplitude(i)).abs2() < 1e-20);
        }
    }

    #[test]
    fn rzz_matches_cx_rz_cx() {
        let theta = 0.731;
        let mut a = StateVector::zero(2);
        a.apply_gate(&Gate::H, &[0]);
        a.apply_gate(&Gate::H, &[1]);
        let mut b = a.clone();
        a.apply_gate(&Gate::Rzz(theta), &[0, 1]);
        b.apply_gate(&Gate::Cx, &[0, 1]);
        b.apply_gate(&Gate::Rz(theta), &[1]);
        b.apply_gate(&Gate::Cx, &[0, 1]);
        for i in 0..4 {
            assert!(
                (a.amplitude(i) - b.amplitude(i)).abs2() < 1e-20,
                "index {i}"
            );
        }
    }

    #[test]
    fn cp_symmetric() {
        let theta = 1.1;
        let mut a = StateVector::zero(2);
        a.apply_gate(&Gate::H, &[0]);
        a.apply_gate(&Gate::H, &[1]);
        let mut b = a.clone();
        a.apply_gate(&Gate::Cp(theta), &[0, 1]);
        b.apply_gate(&Gate::Cp(theta), &[1, 0]);
        for i in 0..4 {
            assert!((a.amplitude(i) - b.amplitude(i)).abs2() < 1e-20);
        }
    }

    #[test]
    fn measure_deterministic_states() {
        let mut s = StateVector::zero(1);
        assert!(!s.measure(0, &mut rng()));
        s.apply_gate(&Gate::X, &[0]);
        assert!(s.measure(0, &mut rng()));
        // State stays |1> after measuring 1.
        assert!((s.probability_of(1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn measure_collapses_superposition() {
        let mut r = rng();
        let mut ones = 0;
        for _ in 0..200 {
            let mut s = StateVector::zero(1);
            s.apply_gate(&Gate::H, &[0]);
            if s.measure(0, &mut r) {
                ones += 1;
            }
            assert!((s.norm() - 1.0).abs() < 1e-9);
        }
        assert!((50..150).contains(&ones), "got {ones}/200 ones");
    }

    #[test]
    fn reset_returns_to_zero() {
        let mut r = rng();
        for _ in 0..20 {
            let mut s = StateVector::zero(2);
            s.apply_gate(&Gate::H, &[0]);
            s.apply_gate(&Gate::Cx, &[0, 1]);
            s.reset(0, &mut r);
            assert!(s.prob_one(0) < 1e-12);
            assert!((s.norm() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn measurement_entangled_correlation() {
        let mut r = rng();
        for _ in 0..50 {
            let mut s = StateVector::zero(2);
            s.apply_gate(&Gate::H, &[0]);
            s.apply_gate(&Gate::Cx, &[0, 1]);
            let m0 = s.measure(0, &mut r);
            let m1 = s.measure(1, &mut r);
            assert_eq!(m0, m1, "Bell pair must be correlated");
        }
    }

    #[test]
    #[should_panic(expected = "non-unitary")]
    fn apply_gate_rejects_measure() {
        StateVector::zero(1).apply_gate(&Gate::Measure, &[0]);
    }

    #[test]
    fn u_gate_specializations() {
        use std::f64::consts::{FRAC_PI_2, PI};
        // U(pi, 0, pi) = X.
        let mut a = StateVector::zero(1);
        a.apply_gate(&Gate::U(PI, 0.0, PI), &[0]);
        assert!((a.probability_of(1) - 1.0).abs() < 1e-12);
        // U(pi/2, 0, pi) = H (up to global phase): verify via probabilities
        // after composing with itself.
        let mut b = StateVector::zero(1);
        b.apply_gate(&Gate::U(FRAC_PI_2, 0.0, PI), &[0]);
        assert!((b.prob_one(0) - 0.5).abs() < 1e-12);
        b.apply_gate(&Gate::U(FRAC_PI_2, 0.0, PI), &[0]);
        assert!((b.probability_of(0) - 1.0).abs() < 1e-12);
        // U(0, 0, a) = Phase(a): diagonal, leaves |0> alone.
        let mut c = StateVector::zero(1);
        c.apply_gate(&Gate::U(0.0, 0.0, 1.2), &[0]);
        assert!((c.probability_of(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn amplitude_damping_relaxes_excited_state() {
        // Repeated damping drives |1> toward |0>.
        let mut r = rng();
        let mut relaxed = 0;
        for _ in 0..300 {
            let mut s = StateVector::zero(1);
            s.apply_gate(&Gate::X, &[0]);
            for _ in 0..10 {
                s.amplitude_damp(0, 0.3, &mut r);
            }
            assert!((s.norm() - 1.0).abs() < 1e-9);
            if s.prob_one(0) < 0.5 {
                relaxed += 1;
            }
        }
        // 1 - (1-0.3)^10 ~ 0.97 of trajectories should have decayed.
        assert!(relaxed > 270, "only {relaxed}/300 trajectories relaxed");
    }

    #[test]
    fn amplitude_damping_preserves_ground_state() {
        let mut r = rng();
        let mut s = StateVector::zero(1);
        s.amplitude_damp(0, 0.9, &mut r);
        assert!((s.probability_of(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn amplitude_damping_trajectory_average_matches_channel() {
        // For |+>, the channel gives P(1) = (1 - gamma) / 2.
        let mut r = rng();
        let gamma = 0.4;
        let mut sum_p1 = 0.0;
        let trials = 4000;
        for _ in 0..trials {
            let mut s = StateVector::zero(1);
            s.apply_gate(&Gate::H, &[0]);
            s.amplitude_damp(0, gamma, &mut r);
            sum_p1 += s.prob_one(0);
        }
        let mean = sum_p1 / trials as f64;
        let expect = (1.0 - gamma) / 2.0;
        assert!(
            (mean - expect).abs() < 0.02,
            "mean P(1) {mean} vs channel {expect}"
        );
    }

    #[test]
    fn amplitude_damping_zero_gamma_noop() {
        let mut r = rng();
        let mut s = StateVector::zero(2);
        s.apply_gate(&Gate::H, &[0]);
        let before = s.amplitude(1);
        s.amplitude_damp(0, 0.0, &mut r);
        assert_eq!(s.amplitude(1), before);
    }

    #[test]
    #[should_panic(expected = "gamma")]
    fn amplitude_damping_bad_gamma() {
        let mut r = rng();
        StateVector::zero(1).amplitude_damp(0, 1.5, &mut r);
    }

    #[test]
    #[should_panic(expected = "dense limit")]
    fn too_many_qubits() {
        StateVector::zero(MAX_QUBITS + 1);
    }
}
