//! Dense state-vector representation and gate application.

use crate::complex::C64;
use caqr_circuit::Gate;
use rand::Rng;

/// Maximum simulable width (dense amplitudes; 2^24 complex = 256 MiB).
pub const MAX_QUBITS: usize = 24;

/// A pure `n`-qubit state as `2^n` amplitudes.
///
/// Qubit `q` corresponds to bit `q` of the basis-state index (little
/// endian: index 0b10 means qubit 1 is |1>).
///
/// # Examples
///
/// ```
/// use caqr_sim::StateVector;
/// use caqr_circuit::Gate;
///
/// let mut s = StateVector::zero(2);
/// s.apply_gate(&Gate::H, &[0]);
/// s.apply_gate(&Gate::Cx, &[0, 1]);
/// // Bell state: P(|00>) = P(|11>) = 0.5.
/// assert!((s.probability_of(0b00) - 0.5).abs() < 1e-12);
/// assert!((s.probability_of(0b11) - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct StateVector {
    n: usize,
    amps: Vec<C64>,
}

impl StateVector {
    /// The all-zeros state |0...0>.
    ///
    /// # Panics
    ///
    /// Panics if `n > MAX_QUBITS`.
    pub fn zero(n: usize) -> Self {
        assert!(n <= MAX_QUBITS, "{n} qubits exceed the dense limit");
        let mut amps = vec![C64::ZERO; 1 << n];
        amps[0] = C64::ONE;
        StateVector { n, amps }
    }

    /// The number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.n
    }

    /// The amplitude of basis state `index`.
    pub fn amplitude(&self, index: usize) -> C64 {
        self.amps[index]
    }

    /// The probability of observing basis state `index`.
    pub fn probability_of(&self, index: usize) -> f64 {
        self.amps[index].abs2()
    }

    /// The probability of qubit `q` reading 1.
    pub fn prob_one(&self, q: usize) -> f64 {
        let bit = 1usize << q;
        self.amps
            .iter()
            .enumerate()
            .filter(|(i, _)| i & bit != 0)
            .map(|(_, a)| a.abs2())
            .sum()
    }

    /// Sum of all probabilities (should stay 1 within rounding).
    pub fn norm(&self) -> f64 {
        self.amps.iter().map(|a| a.abs2()).sum()
    }

    /// Applies a unitary gate to the given qubits.
    ///
    /// # Panics
    ///
    /// Panics on `Measure`/`Reset` (use [`StateVector::measure`] /
    /// [`StateVector::reset`]), an arity mismatch, or out-of-range qubits.
    pub fn apply_gate(&mut self, gate: &Gate, qubits: &[usize]) {
        assert_eq!(qubits.len(), gate.num_qubits(), "gate arity mismatch");
        for &q in qubits {
            assert!(q < self.n, "qubit {q} out of range");
        }
        match *gate {
            Gate::H => {
                let s = std::f64::consts::FRAC_1_SQRT_2;
                self.apply_1q(
                    qubits[0],
                    [[C64::real(s), C64::real(s)], [C64::real(s), C64::real(-s)]],
                );
            }
            Gate::X => self.apply_1q(qubits[0], [[C64::ZERO, C64::ONE], [C64::ONE, C64::ZERO]]),
            Gate::Y => self.apply_1q(qubits[0], [[C64::ZERO, -C64::I], [C64::I, C64::ZERO]]),
            Gate::Z => self.phase_1q(qubits[0], C64::real(-1.0)),
            Gate::S => self.phase_1q(qubits[0], C64::I),
            Gate::Sdg => self.phase_1q(qubits[0], -C64::I),
            Gate::T => self.phase_1q(qubits[0], C64::cis(std::f64::consts::FRAC_PI_4)),
            Gate::Tdg => self.phase_1q(qubits[0], C64::cis(-std::f64::consts::FRAC_PI_4)),
            Gate::Rx(a) => {
                let (c, s) = ((a / 2.0).cos(), (a / 2.0).sin());
                self.apply_1q(
                    qubits[0],
                    [
                        [C64::real(c), C64::new(0.0, -s)],
                        [C64::new(0.0, -s), C64::real(c)],
                    ],
                );
            }
            Gate::Ry(a) => {
                let (c, s) = ((a / 2.0).cos(), (a / 2.0).sin());
                self.apply_1q(
                    qubits[0],
                    [[C64::real(c), C64::real(-s)], [C64::real(s), C64::real(c)]],
                );
            }
            Gate::Rz(a) => {
                let (m0, m1) = (C64::cis(-a / 2.0), C64::cis(a / 2.0));
                self.diag_1q(qubits[0], m0, m1);
            }
            Gate::Phase(a) => self.phase_1q(qubits[0], C64::cis(a)),
            Gate::U(theta, phi, lambda) => {
                let (c, s) = ((theta / 2.0).cos(), (theta / 2.0).sin());
                self.apply_1q(
                    qubits[0],
                    [
                        [C64::real(c), -(C64::cis(lambda).scale(s))],
                        [C64::cis(phi).scale(s), C64::cis(phi + lambda).scale(c)],
                    ],
                );
            }
            Gate::Cx => self.apply_cx(qubits[0], qubits[1]),
            Gate::Cz => self.apply_cphase(qubits[0], qubits[1], C64::real(-1.0)),
            Gate::Cp(a) => self.apply_cphase(qubits[0], qubits[1], C64::cis(a)),
            Gate::Rzz(a) => self.apply_rzz(qubits[0], qubits[1], a),
            Gate::Swap => self.apply_swap(qubits[0], qubits[1]),
            Gate::Measure | Gate::Reset => {
                panic!("non-unitary {gate} must go through measure()/reset()")
            }
        }
    }

    fn apply_1q(&mut self, q: usize, m: [[C64; 2]; 2]) {
        let bit = 1usize << q;
        for i in 0..self.amps.len() {
            if i & bit == 0 {
                let j = i | bit;
                let (a0, a1) = (self.amps[i], self.amps[j]);
                self.amps[i] = m[0][0] * a0 + m[0][1] * a1;
                self.amps[j] = m[1][0] * a0 + m[1][1] * a1;
            }
        }
    }

    /// Multiplies the |1> amplitudes of `q` by `phase`.
    fn phase_1q(&mut self, q: usize, phase: C64) {
        self.diag_1q(q, C64::ONE, phase);
    }

    fn diag_1q(&mut self, q: usize, m0: C64, m1: C64) {
        let bit = 1usize << q;
        for (i, a) in self.amps.iter_mut().enumerate() {
            *a = if i & bit == 0 { m0 } else { m1 } * *a;
        }
    }

    fn apply_cx(&mut self, control: usize, target: usize) {
        let (cb, tb) = (1usize << control, 1usize << target);
        for i in 0..self.amps.len() {
            if i & cb != 0 && i & tb == 0 {
                self.amps.swap(i, i | tb);
            }
        }
    }

    fn apply_cphase(&mut self, a: usize, b: usize, phase: C64) {
        let (ab, bb) = (1usize << a, 1usize << b);
        for (i, amp) in self.amps.iter_mut().enumerate() {
            if i & ab != 0 && i & bb != 0 {
                *amp = phase * *amp;
            }
        }
    }

    fn apply_rzz(&mut self, a: usize, b: usize, angle: f64) {
        let (ab, bb) = (1usize << a, 1usize << b);
        let (even, odd) = (C64::cis(-angle / 2.0), C64::cis(angle / 2.0));
        for (i, amp) in self.amps.iter_mut().enumerate() {
            let parity = ((i & ab != 0) as u8) ^ ((i & bb != 0) as u8);
            *amp = if parity == 0 { even } else { odd } * *amp;
        }
    }

    fn apply_swap(&mut self, a: usize, b: usize) {
        let (ab, bb) = (1usize << a, 1usize << b);
        for i in 0..self.amps.len() {
            if i & ab != 0 && i & bb == 0 {
                self.amps.swap(i, (i & !ab) | bb);
            }
        }
    }

    /// Projectively measures qubit `q`, collapsing the state. Returns the
    /// observed bit.
    pub fn measure(&mut self, q: usize, rng: &mut impl Rng) -> bool {
        let p1 = self.prob_one(q);
        let outcome = rng.gen_bool(p1.clamp(0.0, 1.0));
        self.project(q, outcome);
        outcome
    }

    /// Forces qubit `q` into the given classical value, renormalizing.
    /// Used both by [`StateVector::measure`] and by deterministic branch
    /// exploration in [`crate::exact`].
    pub fn project(&mut self, q: usize, value: bool) {
        let bit = 1usize << q;
        let mut keep = 0.0;
        for (i, a) in self.amps.iter().enumerate() {
            if ((i & bit != 0) == value) && a.abs2() > 0.0 {
                keep += a.abs2();
            }
        }
        let scale = if keep > 0.0 { 1.0 / keep.sqrt() } else { 0.0 };
        for (i, a) in self.amps.iter_mut().enumerate() {
            *a = if (i & bit != 0) == value {
                a.scale(scale)
            } else {
                C64::ZERO
            };
        }
    }

    /// Resets qubit `q` to |0> (measure and flip if needed).
    pub fn reset(&mut self, q: usize, rng: &mut impl Rng) {
        if self.measure(q, rng) {
            self.apply_gate(&Gate::X, &[q]);
        }
    }

    /// One Monte-Carlo trajectory step of the amplitude-damping channel
    /// with decay probability `gamma` on qubit `q` (T1 relaxation).
    ///
    /// With probability `gamma * P(1)` the "jump" Kraus operator fires and
    /// the qubit relaxes to |0>; otherwise the no-jump operator damps the
    /// |1> amplitude. Averaged over trajectories this realizes the exact
    /// channel.
    ///
    /// # Panics
    ///
    /// Panics if `gamma` is outside `[0, 1]` or `q` is out of range.
    pub fn amplitude_damp(&mut self, q: usize, gamma: f64, rng: &mut impl Rng) {
        assert!((0.0..=1.0).contains(&gamma), "gamma must be in [0, 1]");
        assert!(q < self.n, "qubit {q} out of range");
        if gamma == 0.0 {
            return;
        }
        let p1 = self.prob_one(q);
        let p_jump = (gamma * p1).clamp(0.0, 1.0);
        let bit = 1usize << q;
        if p_jump > 0.0 && rng.gen_bool(p_jump) {
            // Jump: K1 = sqrt(gamma) |0><1|, then renormalize by the jump
            // probability.
            let scale = (gamma / p_jump).sqrt();
            for i in 0..self.amps.len() {
                if i & bit == 0 {
                    self.amps[i] = self.amps[i | bit].scale(scale);
                    self.amps[i | bit] = C64::ZERO;
                }
            }
        } else {
            // No jump: K0 = diag(1, sqrt(1 - gamma)), renormalized.
            let damp = (1.0 - gamma).sqrt();
            let norm = (1.0 - p_jump).sqrt();
            for (i, a) in self.amps.iter_mut().enumerate() {
                *a = if i & bit == 0 {
                    a.scale(1.0 / norm)
                } else {
                    a.scale(damp / norm)
                };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(99)
    }

    #[test]
    fn zero_state() {
        let s = StateVector::zero(3);
        assert_eq!(s.num_qubits(), 3);
        assert!((s.probability_of(0) - 1.0).abs() < 1e-12);
        assert!((s.norm() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn x_flips() {
        let mut s = StateVector::zero(2);
        s.apply_gate(&Gate::X, &[1]);
        assert!((s.probability_of(0b10) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn h_twice_is_identity() {
        let mut s = StateVector::zero(1);
        s.apply_gate(&Gate::H, &[0]);
        assert!((s.prob_one(0) - 0.5).abs() < 1e-12);
        s.apply_gate(&Gate::H, &[0]);
        assert!((s.probability_of(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bell_state() {
        let mut s = StateVector::zero(2);
        s.apply_gate(&Gate::H, &[0]);
        s.apply_gate(&Gate::Cx, &[0, 1]);
        assert!((s.probability_of(0b00) - 0.5).abs() < 1e-12);
        assert!((s.probability_of(0b11) - 0.5).abs() < 1e-12);
        assert!(s.probability_of(0b01) < 1e-12);
    }

    #[test]
    fn cz_phase() {
        // |11> picks up a -1 under CZ; verify via interference:
        // H(0) CZ H(0) on |q1=1> acts as Z-controlled flip.
        let mut s = StateVector::zero(2);
        s.apply_gate(&Gate::X, &[1]);
        s.apply_gate(&Gate::H, &[0]);
        s.apply_gate(&Gate::Cz, &[0, 1]);
        s.apply_gate(&Gate::H, &[0]);
        // Equivalent to X on qubit 0 when control is 1.
        assert!((s.probability_of(0b11) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn swap_exchanges() {
        let mut s = StateVector::zero(2);
        s.apply_gate(&Gate::X, &[0]);
        s.apply_gate(&Gate::Swap, &[0, 1]);
        assert!((s.probability_of(0b10) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn swap_equals_three_cx() {
        let mut a = StateVector::zero(2);
        a.apply_gate(&Gate::H, &[0]);
        a.apply_gate(&Gate::T, &[1]);
        let mut b = a.clone();
        a.apply_gate(&Gate::Swap, &[0, 1]);
        b.apply_gate(&Gate::Cx, &[0, 1]);
        b.apply_gate(&Gate::Cx, &[1, 0]);
        b.apply_gate(&Gate::Cx, &[0, 1]);
        for i in 0..4 {
            assert!((a.amplitude(i) - b.amplitude(i)).abs2() < 1e-20);
        }
    }

    #[test]
    fn rzz_matches_cx_rz_cx() {
        let theta = 0.731;
        let mut a = StateVector::zero(2);
        a.apply_gate(&Gate::H, &[0]);
        a.apply_gate(&Gate::H, &[1]);
        let mut b = a.clone();
        a.apply_gate(&Gate::Rzz(theta), &[0, 1]);
        b.apply_gate(&Gate::Cx, &[0, 1]);
        b.apply_gate(&Gate::Rz(theta), &[1]);
        b.apply_gate(&Gate::Cx, &[0, 1]);
        for i in 0..4 {
            assert!(
                (a.amplitude(i) - b.amplitude(i)).abs2() < 1e-20,
                "index {i}"
            );
        }
    }

    #[test]
    fn cp_symmetric() {
        let theta = 1.1;
        let mut a = StateVector::zero(2);
        a.apply_gate(&Gate::H, &[0]);
        a.apply_gate(&Gate::H, &[1]);
        let mut b = a.clone();
        a.apply_gate(&Gate::Cp(theta), &[0, 1]);
        b.apply_gate(&Gate::Cp(theta), &[1, 0]);
        for i in 0..4 {
            assert!((a.amplitude(i) - b.amplitude(i)).abs2() < 1e-20);
        }
    }

    #[test]
    fn measure_deterministic_states() {
        let mut s = StateVector::zero(1);
        assert!(!s.measure(0, &mut rng()));
        s.apply_gate(&Gate::X, &[0]);
        assert!(s.measure(0, &mut rng()));
        // State stays |1> after measuring 1.
        assert!((s.probability_of(1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn measure_collapses_superposition() {
        let mut r = rng();
        let mut ones = 0;
        for _ in 0..200 {
            let mut s = StateVector::zero(1);
            s.apply_gate(&Gate::H, &[0]);
            if s.measure(0, &mut r) {
                ones += 1;
            }
            assert!((s.norm() - 1.0).abs() < 1e-9);
        }
        assert!((50..150).contains(&ones), "got {ones}/200 ones");
    }

    #[test]
    fn reset_returns_to_zero() {
        let mut r = rng();
        for _ in 0..20 {
            let mut s = StateVector::zero(2);
            s.apply_gate(&Gate::H, &[0]);
            s.apply_gate(&Gate::Cx, &[0, 1]);
            s.reset(0, &mut r);
            assert!(s.prob_one(0) < 1e-12);
            assert!((s.norm() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn measurement_entangled_correlation() {
        let mut r = rng();
        for _ in 0..50 {
            let mut s = StateVector::zero(2);
            s.apply_gate(&Gate::H, &[0]);
            s.apply_gate(&Gate::Cx, &[0, 1]);
            let m0 = s.measure(0, &mut r);
            let m1 = s.measure(1, &mut r);
            assert_eq!(m0, m1, "Bell pair must be correlated");
        }
    }

    #[test]
    #[should_panic(expected = "non-unitary")]
    fn apply_gate_rejects_measure() {
        StateVector::zero(1).apply_gate(&Gate::Measure, &[0]);
    }

    #[test]
    fn u_gate_specializations() {
        use std::f64::consts::{FRAC_PI_2, PI};
        // U(pi, 0, pi) = X.
        let mut a = StateVector::zero(1);
        a.apply_gate(&Gate::U(PI, 0.0, PI), &[0]);
        assert!((a.probability_of(1) - 1.0).abs() < 1e-12);
        // U(pi/2, 0, pi) = H (up to global phase): verify via probabilities
        // after composing with itself.
        let mut b = StateVector::zero(1);
        b.apply_gate(&Gate::U(FRAC_PI_2, 0.0, PI), &[0]);
        assert!((b.prob_one(0) - 0.5).abs() < 1e-12);
        b.apply_gate(&Gate::U(FRAC_PI_2, 0.0, PI), &[0]);
        assert!((b.probability_of(0) - 1.0).abs() < 1e-12);
        // U(0, 0, a) = Phase(a): diagonal, leaves |0> alone.
        let mut c = StateVector::zero(1);
        c.apply_gate(&Gate::U(0.0, 0.0, 1.2), &[0]);
        assert!((c.probability_of(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn amplitude_damping_relaxes_excited_state() {
        // Repeated damping drives |1> toward |0>.
        let mut r = rng();
        let mut relaxed = 0;
        for _ in 0..300 {
            let mut s = StateVector::zero(1);
            s.apply_gate(&Gate::X, &[0]);
            for _ in 0..10 {
                s.amplitude_damp(0, 0.3, &mut r);
            }
            assert!((s.norm() - 1.0).abs() < 1e-9);
            if s.prob_one(0) < 0.5 {
                relaxed += 1;
            }
        }
        // 1 - (1-0.3)^10 ~ 0.97 of trajectories should have decayed.
        assert!(relaxed > 270, "only {relaxed}/300 trajectories relaxed");
    }

    #[test]
    fn amplitude_damping_preserves_ground_state() {
        let mut r = rng();
        let mut s = StateVector::zero(1);
        s.amplitude_damp(0, 0.9, &mut r);
        assert!((s.probability_of(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn amplitude_damping_trajectory_average_matches_channel() {
        // For |+>, the channel gives P(1) = (1 - gamma) / 2.
        let mut r = rng();
        let gamma = 0.4;
        let mut sum_p1 = 0.0;
        let trials = 4000;
        for _ in 0..trials {
            let mut s = StateVector::zero(1);
            s.apply_gate(&Gate::H, &[0]);
            s.amplitude_damp(0, gamma, &mut r);
            sum_p1 += s.prob_one(0);
        }
        let mean = sum_p1 / trials as f64;
        let expect = (1.0 - gamma) / 2.0;
        assert!(
            (mean - expect).abs() < 0.02,
            "mean P(1) {mean} vs channel {expect}"
        );
    }

    #[test]
    fn amplitude_damping_zero_gamma_noop() {
        let mut r = rng();
        let mut s = StateVector::zero(2);
        s.apply_gate(&Gate::H, &[0]);
        let before = s.amplitude(1);
        s.amplitude_damp(0, 0.0, &mut r);
        assert_eq!(s.amplitude(1), before);
    }

    #[test]
    #[should_panic(expected = "gamma")]
    fn amplitude_damping_bad_gamma() {
        let mut r = rng();
        StateVector::zero(1).amplitude_damp(0, 1.5, &mut r);
    }

    #[test]
    #[should_panic(expected = "dense limit")]
    fn too_many_qubits() {
        StateVector::zero(MAX_QUBITS + 1);
    }
}
