//! Aaronson–Gottesman stabilizer tableau simulation.
//!
//! A stabilizer state on `n` qubits is tracked as `2n` Pauli generators
//! (`n` destabilizers, `n` stabilizers) in the binary-symplectic encoding
//! of Aaronson & Gottesman, *Improved simulation of stabilizer circuits*
//! (2004): each generator row keeps an X-bit and a Z-bit per qubit plus a
//! sign bit, packed into `u64` words. Clifford gates (`H`/`S`/`X`/`Y`/`Z`/
//! `CX`/`CZ`/`SWAP`) conjugate every generator in `O(n)` word operations;
//! measurements cost `O(n^2)` — versus `O(2^n)` amplitudes for the dense
//! simulator — and report whether their outcome was deterministic or a
//! fresh coin flip.
//!
//! Two consumers sit on top:
//!
//! * the whole-circuit stabilizer engine in [`crate::exec`], which runs
//!   fully-Clifford circuits (including mid-circuit measurement, reset,
//!   and feed-forward) without ever materializing amplitudes, and
//! * the Clifford-prefix handoff, which simulates the maximal Clifford
//!   prefix in tableau form and converts to a dense
//!   [`StateVector`] snapshot at the first non-Clifford gate via
//!   [`Tableau::to_state_vector`].
//!
//! The conversion enumerates the affine support of the state: a stabilizer
//! state is a uniform-magnitude superposition over a coset `b0 + span(U)`
//! of X-parts, with per-element phases in `{±1, ±i}` read directly off the
//! generators — so every amplitude is written exactly (no accumulated
//! rounding), scaled by `2^{-k/2}` for support dimension `k`.

use crate::state::StateVector;
use caqr_circuit::Gate;
use rand::Rng;

/// An `n`-qubit stabilizer tableau.
///
/// # Examples
///
/// ```
/// use caqr_sim::tableau::Tableau;
/// use caqr_circuit::Gate;
///
/// // Bell pair: the first measurement is a coin flip, the second is
/// // determined by it.
/// let mut t = Tableau::new(2);
/// t.apply(&Gate::H, &[0]);
/// t.apply(&Gate::Cx, &[0, 1]);
/// assert!(t.deterministic_outcome(0).is_none());
/// t.project(0, true);
/// assert_eq!(t.deterministic_outcome(1), Some(true));
/// ```
#[derive(Debug, Clone)]
pub struct Tableau {
    n: usize,
    /// `u64` words per row.
    words: usize,
    /// X bits, `2n` rows of `words` words (destabilizers then stabilizers).
    x: Vec<u64>,
    /// Z bits, same layout.
    z: Vec<u64>,
    /// Sign bit per row.
    r: Vec<bool>,
}

/// Is `gate` in the Clifford set the tableau simulates directly?
///
/// `Measure` and `Reset` are also tableau-simulable (as Z measurements);
/// this predicate covers only the unitary gates.
pub fn is_clifford_gate(gate: &Gate) -> bool {
    matches!(
        gate,
        Gate::H
            | Gate::S
            | Gate::Sdg
            | Gate::X
            | Gate::Y
            | Gate::Z
            | Gate::Cx
            | Gate::Cz
            | Gate::Swap
    )
}

/// Is every instruction of `circuit` tableau-simulable — a Clifford gate,
/// a measurement, or a reset (conditions included: a classically
/// controlled Clifford is still Clifford per branch)?
pub fn is_clifford_circuit(circuit: &caqr_circuit::Circuit) -> bool {
    circuit
        .instructions()
        .iter()
        .all(|i| matches!(i.gate, Gate::Measure | Gate::Reset) || is_clifford_gate(&i.gate))
}

impl Tableau {
    /// The tableau of |0...0>: destabilizer `i` is `X_i`, stabilizer `i`
    /// is `Z_i`, all signs positive.
    pub fn new(n: usize) -> Self {
        let words = n.div_ceil(64).max(1);
        let mut t = Tableau {
            n,
            words,
            x: vec![0; 2 * n * words],
            z: vec![0; 2 * n * words],
            r: vec![false; 2 * n],
        };
        for i in 0..n {
            t.x[i * words + i / 64] |= 1 << (i % 64);
            t.z[(n + i) * words + i / 64] |= 1 << (i % 64);
        }
        t
    }

    /// Resets the tableau to |0...0> in place, reusing its buffers — the
    /// per-shot path of the stabilizer engine calls this instead of
    /// reallocating via [`Tableau::new`].
    pub fn clear(&mut self) {
        self.x.fill(0);
        self.z.fill(0);
        self.r.fill(false);
        let words = self.words;
        for i in 0..self.n {
            self.x[i * words + i / 64] |= 1 << (i % 64);
            self.z[(self.n + i) * words + i / 64] |= 1 << (i % 64);
        }
    }

    /// The number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.n
    }

    /// Applies a Clifford gate.
    ///
    /// # Panics
    ///
    /// Panics on a non-Clifford gate (see [`is_clifford_gate`]), an arity
    /// mismatch, or out-of-range qubits.
    pub fn apply(&mut self, gate: &Gate, qubits: &[usize]) {
        assert_eq!(qubits.len(), gate.num_qubits(), "gate arity mismatch");
        for &q in qubits {
            assert!(q < self.n, "qubit {q} out of range");
        }
        match *gate {
            Gate::H => self.h(qubits[0]),
            Gate::S => self.s(qubits[0]),
            Gate::Sdg => {
                // S† = Z·S (they commute, and S² = Z).
                self.z_gate(qubits[0]);
                self.s(qubits[0]);
            }
            Gate::X => self.x_gate(qubits[0]),
            Gate::Y => self.y_gate(qubits[0]),
            Gate::Z => self.z_gate(qubits[0]),
            Gate::Cx => self.cx(qubits[0], qubits[1]),
            Gate::Cz => {
                // CZ = H(t) · CX · H(t).
                self.h(qubits[1]);
                self.cx(qubits[0], qubits[1]);
                self.h(qubits[1]);
            }
            Gate::Swap => self.swap(qubits[0], qubits[1]),
            ref g => panic!("{g} is not a tableau-simulable Clifford gate"),
        }
    }

    fn h(&mut self, a: usize) {
        let (w, bit) = (a / 64, 1u64 << (a % 64));
        for row in 0..2 * self.n {
            let xw = &mut self.x[row * self.words + w];
            let xa = *xw & bit != 0;
            let zw = &mut self.z[row * self.words + w];
            let za = *zw & bit != 0;
            self.r[row] ^= xa && za;
            if xa != za {
                *xw ^= bit;
                *zw ^= bit;
            }
        }
    }

    fn s(&mut self, a: usize) {
        let (w, bit) = (a / 64, 1u64 << (a % 64));
        for row in 0..2 * self.n {
            let xa = self.x[row * self.words + w] & bit != 0;
            let zw = &mut self.z[row * self.words + w];
            let za = *zw & bit != 0;
            self.r[row] ^= xa && za;
            if xa {
                *zw ^= bit;
            }
        }
    }

    fn x_gate(&mut self, a: usize) {
        let (w, bit) = (a / 64, 1u64 << (a % 64));
        for row in 0..2 * self.n {
            self.r[row] ^= self.z[row * self.words + w] & bit != 0;
        }
    }

    fn y_gate(&mut self, a: usize) {
        let (w, bit) = (a / 64, 1u64 << (a % 64));
        for row in 0..2 * self.n {
            let xa = self.x[row * self.words + w] & bit != 0;
            let za = self.z[row * self.words + w] & bit != 0;
            self.r[row] ^= xa != za;
        }
    }

    fn z_gate(&mut self, a: usize) {
        let (w, bit) = (a / 64, 1u64 << (a % 64));
        for row in 0..2 * self.n {
            self.r[row] ^= self.x[row * self.words + w] & bit != 0;
        }
    }

    fn cx(&mut self, c: usize, t: usize) {
        let (cw, cbit) = (c / 64, 1u64 << (c % 64));
        let (tw, tbit) = (t / 64, 1u64 << (t % 64));
        for row in 0..2 * self.n {
            let base = row * self.words;
            let xc = self.x[base + cw] & cbit != 0;
            let zt = self.z[base + tw] & tbit != 0;
            let xt = self.x[base + tw] & tbit != 0;
            let zc = self.z[base + cw] & cbit != 0;
            self.r[row] ^= xc && zt && (xt == zc);
            if xc {
                self.x[base + tw] ^= tbit;
            }
            if zt {
                self.z[base + cw] ^= cbit;
            }
        }
    }

    fn swap(&mut self, a: usize, b: usize) {
        let (aw, abit) = (a / 64, 1u64 << (a % 64));
        let (bw, bbit) = (b / 64, 1u64 << (b % 64));
        for row in 0..2 * self.n {
            let base = row * self.words;
            if (self.x[base + aw] & abit != 0) != (self.x[base + bw] & bbit != 0) {
                self.x[base + aw] ^= abit;
                self.x[base + bw] ^= bbit;
            }
            if (self.z[base + aw] & abit != 0) != (self.z[base + bw] & bbit != 0) {
                self.z[base + aw] ^= abit;
                self.z[base + bw] ^= bbit;
            }
        }
    }

    /// The exponent-of-i contribution `g(x1, z1, x2, z2)` from one qubit
    /// when left-multiplying the Pauli `(x1, z1)` into `(x2, z2)`.
    fn g(x1: bool, z1: bool, x2: bool, z2: bool) -> i32 {
        match (x1, z1) {
            (false, false) => 0,
            (true, true) => i32::from(z2) - i32::from(x2),
            (true, false) => i32::from(z2) * (2 * i32::from(x2) - 1),
            (false, true) => i32::from(x2) * (1 - 2 * i32::from(z2)),
        }
    }

    /// Phase exponent (mod 4) accumulated over all qubits when multiplying
    /// row `i`'s Pauli into the row described by `(hx, hz)`.
    fn phase_exponent(&self, i: usize, hx: &[u64], hz: &[u64]) -> i32 {
        let base = i * self.words;
        let mut exp = 0i32;
        for w in 0..self.words {
            let (x1w, z1w) = (self.x[base + w], self.z[base + w]);
            let (x2w, z2w) = (hx[w], hz[w]);
            let mut bits = x1w | z1w;
            while bits != 0 {
                let b = bits.trailing_zeros();
                let m = 1u64 << b;
                exp += Self::g(x1w & m != 0, z1w & m != 0, x2w & m != 0, z2w & m != 0);
                bits &= bits - 1;
            }
        }
        exp.rem_euclid(4)
    }

    /// `rowsum(h, i)`: row `h` := row `i` · row `h`, with exact sign
    /// tracking. Commuting rows yield an even phase exponent (a real ±1
    /// sign); the one anticommuting case — a pivot's paired destabilizer
    /// during [`Tableau::project`] — lands on an odd exponent, where the
    /// recorded sign is arbitrary and never read (destabilizer signs carry
    /// no meaning in the Aaronson–Gottesman scheme).
    fn rowsum(&mut self, h: usize, i: usize) {
        let hb = h * self.words;
        let exp = (2 * i32::from(self.r[h])
            + 2 * i32::from(self.r[i])
            + self.phase_exponent(
                i,
                &self.x[hb..hb + self.words],
                &self.z[hb..hb + self.words],
            ))
        .rem_euclid(4);
        self.r[h] = exp >= 2;
        let ib = i * self.words;
        for w in 0..self.words {
            let (xi, zi) = (self.x[ib + w], self.z[ib + w]);
            self.x[hb + w] ^= xi;
            self.z[hb + w] ^= zi;
        }
    }

    /// Finds a stabilizer row (rows `n..2n`) anticommuting with `Z_a`.
    fn pivot(&self, a: usize) -> Option<usize> {
        let (w, bit) = (a / 64, 1u64 << (a % 64));
        (self.n..2 * self.n).find(|&row| self.x[row * self.words + w] & bit != 0)
    }

    /// The outcome of measuring qubit `a` in the Z basis when it is
    /// determined by the current stabilizer group, or `None` when the
    /// outcome is a fair coin flip. Does not mutate the state.
    pub fn deterministic_outcome(&self, a: usize) -> Option<bool> {
        if self.pivot(a).is_some() {
            return None;
        }
        let (w, bit) = (a / 64, 1u64 << (a % 64));
        // Accumulate the product of the stabilizers matching each
        // destabilizer that anticommutes with Z_a; its sign is the outcome.
        let mut sx = vec![0u64; self.words];
        let mut sz = vec![0u64; self.words];
        let mut exp = 0i32;
        for i in 0..self.n {
            if self.x[i * self.words + w] & bit == 0 {
                continue;
            }
            let s = self.n + i;
            exp = (exp + 2 * i32::from(self.r[s]) + self.phase_exponent(s, &sx, &sz)).rem_euclid(4);
            let sb = s * self.words;
            for ww in 0..self.words {
                sx[ww] ^= self.x[sb + ww];
                sz[ww] ^= self.z[sb + ww];
            }
        }
        debug_assert!(exp % 2 == 0);
        Some(exp == 2)
    }

    /// Forces qubit `a` to `outcome`, assuming its measurement is random
    /// (a projection with probability 1/2, used by forced-outcome
    /// conversion paths).
    ///
    /// # Panics
    ///
    /// Panics if the outcome of measuring `a` is deterministic.
    pub fn project(&mut self, a: usize, outcome: bool) {
        let p = self
            .pivot(a)
            .expect("project requires a random measurement outcome");
        // Every other generator anticommuting with Z_a absorbs row p.
        for row in 0..2 * self.n {
            let (w, bit) = (a / 64, 1u64 << (a % 64));
            if row != p && self.x[row * self.words + w] & bit != 0 {
                self.rowsum(row, p);
            }
        }
        // Row p's destabilizer slot records the old stabilizer; row p
        // becomes ±Z_a with the measured sign.
        let d = p - self.n;
        let (db, pb) = (d * self.words, p * self.words);
        for w in 0..self.words {
            self.x[db + w] = self.x[pb + w];
            self.z[db + w] = self.z[pb + w];
            self.x[pb + w] = 0;
            self.z[pb + w] = 0;
        }
        self.r[d] = self.r[p];
        self.z[pb + a / 64] = 1 << (a % 64);
        self.r[p] = outcome;
    }

    /// Measures qubit `a` in the Z basis, collapsing the state. A
    /// deterministic outcome consumes no randomness; a random one draws a
    /// fair coin from `rng`.
    pub fn measure(&mut self, a: usize, rng: &mut impl Rng) -> bool {
        match self.deterministic_outcome(a) {
            Some(out) => out,
            None => {
                let out = rng.gen_bool(0.5);
                self.project(a, out);
                out
            }
        }
    }

    /// Resets qubit `a` to |0> (measure and flip if it read 1).
    pub fn reset(&mut self, a: usize, rng: &mut impl Rng) {
        if self.measure(a, rng) {
            self.x_gate(a);
        }
    }

    /// Converts the stabilizer state to a dense [`StateVector`], writing
    /// every amplitude exactly (support phases are ±1/±i over a uniform
    /// magnitude `2^{-k/2}`). The global phase is fixed by making the
    /// seed amplitude real positive.
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds the dense simulator limit.
    pub fn to_state_vector(&self) -> StateVector {
        use crate::complex::C64;
        assert!(
            self.n <= crate::state::MAX_QUBITS,
            "{} qubits exceed the dense limit",
            self.n
        );
        // Seed basis state: walk the qubits, taking deterministic outcomes
        // as-is and projecting random ones to 0. The resulting bit string
        // has nonzero amplitude in the original state.
        let mut probe = self.clone();
        let mut b0 = 0usize;
        let mut k = 0usize;
        for a in 0..self.n {
            match probe.deterministic_outcome(a) {
                Some(bit) => b0 |= usize::from(bit) << a,
                None => {
                    probe.project(a, false);
                    k += 1;
                }
            }
        }
        // Row-reduce the stabilizers to k generators with independent
        // X-parts: they span the support coset's direction space.
        let mut reduced = self.clone();
        let mut pivots: Vec<usize> = Vec::new();
        let mut next = reduced.n;
        for a in 0..reduced.n {
            let (w, bit) = (a / 64, 1u64 << (a % 64));
            let Some(p) =
                (next..2 * reduced.n).find(|&row| reduced.x[row * reduced.words + w] & bit != 0)
            else {
                continue;
            };
            if p != next {
                reduced.swap_rows(p, next);
            }
            for row in reduced.n..2 * reduced.n {
                if row != next && reduced.x[row * reduced.words + w] & bit != 0 {
                    reduced.rowsum(row, next);
                }
            }
            pivots.push(next);
            next += 1;
        }
        debug_assert_eq!(pivots.len(), k, "X-rank must match the support dim");
        let mut amps = vec![C64::ZERO; 1usize << self.n];
        amps[b0] = C64::ONE;
        let mut filled: Vec<usize> = Vec::with_capacity(1 << k);
        filled.push(b0);
        for &p in &pivots {
            let base = p * reduced.words;
            let mut u = 0usize;
            let mut v = 0usize;
            let mut ys = 0u32;
            for a in 0..reduced.n {
                let (w, bit) = (a / 64, 1u64 << (a % 64));
                let xa = reduced.x[base + w] & bit != 0;
                let za = reduced.z[base + w] & bit != 0;
                u |= usize::from(xa) << a;
                v |= usize::from(za) << a;
                ys += u32::from(xa && za);
            }
            // Generator P = (-1)^r i^{|Y|} X^u Z^v maps |b> to
            // (-1)^r i^{|Y|} (-1)^{v.b} |b ^ u>; stabilization transports
            // the amplitude of |b> onto |b ^ u| with that phase.
            let mut base_phase = match ys % 4 {
                0 => C64::ONE,
                1 => C64::I,
                2 => C64::real(-1.0),
                _ => -C64::I,
            };
            if reduced.r[p] {
                base_phase = -base_phase;
            }
            for idx in 0..filled.len() {
                let b = filled[idx];
                let phase = if (v & b).count_ones() % 2 == 1 {
                    -base_phase
                } else {
                    base_phase
                };
                amps[b ^ u] = phase * amps[b];
                filled.push(b ^ u);
            }
        }
        let scale = (1.0 / (1u64 << k) as f64).sqrt();
        for &b in &filled {
            amps[b] = amps[b].scale(scale);
        }
        StateVector::from_amps(self.n, amps)
    }

    fn swap_rows(&mut self, a: usize, b: usize) {
        let (ab, bb) = (a * self.words, b * self.words);
        for w in 0..self.words {
            self.x.swap(ab + w, bb + w);
            self.z.swap(ab + w, bb + w);
        }
        self.r.swap(a, b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(7)
    }

    /// |<a|b>|^2 for two dense states (fidelity, global-phase free).
    fn fidelity(a: &StateVector, b: &StateVector) -> f64 {
        use crate::complex::C64;
        let mut dot = C64::ZERO;
        for i in 0..1usize << a.num_qubits() {
            dot += a.amplitude(i).conj() * b.amplitude(i);
        }
        dot.abs2()
    }

    #[test]
    fn zero_state_deterministic() {
        let t = Tableau::new(3);
        for a in 0..3 {
            assert_eq!(t.deterministic_outcome(a), Some(false));
        }
    }

    #[test]
    fn x_flips_outcome() {
        let mut t = Tableau::new(2);
        t.apply(&Gate::X, &[1]);
        assert_eq!(t.deterministic_outcome(0), Some(false));
        assert_eq!(t.deterministic_outcome(1), Some(true));
    }

    #[test]
    fn bell_pair_correlates() {
        let mut r = rng();
        for _ in 0..50 {
            let mut t = Tableau::new(2);
            t.apply(&Gate::H, &[0]);
            t.apply(&Gate::Cx, &[0, 1]);
            let m0 = t.measure(0, &mut r);
            let m1 = t.measure(1, &mut r);
            assert_eq!(m0, m1);
        }
    }

    #[test]
    fn measurement_is_repeatable() {
        let mut r = rng();
        let mut t = Tableau::new(1);
        t.apply(&Gate::H, &[0]);
        let m = t.measure(0, &mut r);
        assert_eq!(t.deterministic_outcome(0), Some(m));
    }

    #[test]
    fn reset_returns_to_zero() {
        let mut r = rng();
        for _ in 0..20 {
            let mut t = Tableau::new(2);
            t.apply(&Gate::H, &[0]);
            t.apply(&Gate::Cx, &[0, 1]);
            t.reset(0, &mut r);
            assert_eq!(t.deterministic_outcome(0), Some(false));
        }
    }

    #[test]
    fn s_four_times_is_identity() {
        let mut t = Tableau::new(1);
        t.apply(&Gate::H, &[0]);
        for _ in 0..4 {
            t.apply(&Gate::S, &[0]);
        }
        t.apply(&Gate::H, &[0]);
        assert_eq!(t.deterministic_outcome(0), Some(false));
    }

    #[test]
    fn sdg_inverts_s() {
        let mut t = Tableau::new(1);
        t.apply(&Gate::H, &[0]);
        t.apply(&Gate::S, &[0]);
        t.apply(&Gate::Sdg, &[0]);
        t.apply(&Gate::H, &[0]);
        assert_eq!(t.deterministic_outcome(0), Some(false));
    }

    #[test]
    fn swap_moves_excitation() {
        let mut t = Tableau::new(3);
        t.apply(&Gate::X, &[0]);
        t.apply(&Gate::Swap, &[0, 2]);
        assert_eq!(t.deterministic_outcome(0), Some(false));
        assert_eq!(t.deterministic_outcome(2), Some(true));
    }

    #[test]
    fn cz_matches_h_cx_h() {
        // |++> through CZ then H(1) gives a Bell-like state; check the
        // conversion agrees with the dense simulator.
        let mut t = Tableau::new(2);
        t.apply(&Gate::H, &[0]);
        t.apply(&Gate::H, &[1]);
        t.apply(&Gate::Cz, &[0, 1]);
        t.apply(&Gate::H, &[1]);
        let mut s = StateVector::zero(2);
        for (g, q) in [
            (Gate::H, vec![0]),
            (Gate::H, vec![1]),
            (Gate::Cz, vec![0, 1]),
            (Gate::H, vec![1]),
        ] {
            s.apply_gate(&g, &q);
        }
        let f = fidelity(&t.to_state_vector(), &s);
        assert!((f - 1.0).abs() < 1e-12, "fidelity {f}");
    }

    #[test]
    fn conversion_matches_dense_on_random_clifford_circuits() {
        use rand::Rng as _;
        let mut r = rng();
        let gates = [
            Gate::H,
            Gate::S,
            Gate::Sdg,
            Gate::X,
            Gate::Y,
            Gate::Z,
            Gate::Cx,
            Gate::Cz,
            Gate::Swap,
        ];
        for trial in 0..40 {
            let n = 1 + (trial % 5);
            let mut t = Tableau::new(n);
            let mut s = StateVector::zero(n);
            for _ in 0..30 {
                let g = gates[r.gen_range(0..gates.len())];
                let qs: Vec<usize> = if g.num_qubits() == 2 && n >= 2 {
                    let a = r.gen_range(0..n);
                    let mut b = r.gen_range(0..n - 1);
                    if b >= a {
                        b += 1;
                    }
                    vec![a, b]
                } else if g.num_qubits() == 1 {
                    vec![r.gen_range(0..n)]
                } else {
                    continue;
                };
                t.apply(&g, &qs);
                s.apply_gate(&g, &qs);
            }
            let f = fidelity(&t.to_state_vector(), &s);
            assert!((f - 1.0).abs() < 1e-10, "trial {trial}: fidelity {f}");
        }
    }

    #[test]
    fn conversion_after_projection() {
        // GHZ projected onto the first qubit reading 1: |111>.
        let mut t = Tableau::new(3);
        t.apply(&Gate::H, &[0]);
        t.apply(&Gate::Cx, &[0, 1]);
        t.apply(&Gate::Cx, &[1, 2]);
        t.project(0, true);
        let s = t.to_state_vector();
        assert!((s.probability_of(0b111) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ghz_support_and_magnitudes() {
        let mut t = Tableau::new(3);
        t.apply(&Gate::H, &[0]);
        t.apply(&Gate::Cx, &[0, 1]);
        t.apply(&Gate::Cx, &[1, 2]);
        let s = t.to_state_vector();
        assert!((s.probability_of(0b000) - 0.5).abs() < 1e-12);
        assert!((s.probability_of(0b111) - 0.5).abs() < 1e-12);
        for b in 1..7 {
            assert!(s.probability_of(b) < 1e-12);
        }
    }

    #[test]
    fn wide_tableau_crosses_word_boundary() {
        // 70 qubits exercise multi-word rows without any dense conversion.
        let mut r = rng();
        let mut t = Tableau::new(70);
        t.apply(&Gate::H, &[0]);
        for q in 1..70 {
            t.apply(&Gate::Cx, &[q - 1, q]);
        }
        let first = t.measure(0, &mut r);
        for q in 1..70 {
            assert_eq!(t.deterministic_outcome(q), Some(first), "qubit {q}");
        }
    }

    #[test]
    fn clifford_predicate() {
        assert!(is_clifford_gate(&Gate::H));
        assert!(is_clifford_gate(&Gate::Cz));
        assert!(!is_clifford_gate(&Gate::T));
        assert!(!is_clifford_gate(&Gate::Rz(0.5)));
        assert!(!is_clifford_gate(&Gate::Measure));
    }

    #[test]
    #[should_panic(expected = "not a tableau-simulable")]
    fn rejects_non_clifford() {
        Tableau::new(1).apply(&Gate::T, &[0]);
    }
}
