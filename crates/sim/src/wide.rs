//! Lane-parallel kernel bodies for the dense state-vector hot loops.
//!
//! Every function here processes amplitude runs in fixed blocks of
//! [`LANES`] complex numbers (8 `f64` lanes), with loads, arithmetic, and
//! stores separated into straight-line per-lane statements over local
//! arrays. That shape is what LLVM's SLP/loop vectorizers turn into packed
//! SSE2/AVX2 code on the portable x86-64 baseline — no `std::arch`
//! intrinsics, no `unsafe` (the workspace forbids it).
//!
//! **Bit-exactness contract:** for each amplitude, the wide bodies perform
//! exactly the same floating-point operations in exactly the same order as
//! the scalar fallbacks — lanes only batch *independent* elements, never
//! reassociate within one. The runtime `wide` flag (surfaced as
//! `kernel_dispatch` in [`crate::exec::ShotReport`]) therefore changes
//! throughput, never histograms; the property suite asserts this.
//!
//! Runs whose length is not a multiple of [`LANES`] (strides 1 and 2 under
//! the block walk) take the scalar body regardless of the flag — that is
//! the per-call half of the dispatch; the flag is the per-run half.

use crate::complex::C64;

/// Complex numbers per wide block (8 `f64` lanes).
pub(crate) const LANES: usize = 4;

/// Applies a 2x2 matrix to amplitude pairs `(lo[i], hi[i])`.
#[inline]
pub(crate) fn mix_pairs(lo: &mut [C64], hi: &mut [C64], m: &[[C64; 2]; 2], wide: bool) {
    debug_assert_eq!(lo.len(), hi.len());
    if wide && lo.len().is_multiple_of(LANES) {
        let (m00, m01, m10, m11) = (m[0][0], m[0][1], m[1][0], m[1][1]);
        for (lb, hb) in lo.chunks_exact_mut(LANES).zip(hi.chunks_exact_mut(LANES)) {
            let mut o0 = [C64::ZERO; LANES];
            let mut o1 = [C64::ZERO; LANES];
            for k in 0..LANES {
                let (a0, a1) = (lb[k], hb[k]);
                o0[k] = C64::new(
                    (m00.re * a0.re - m00.im * a0.im) + (m01.re * a1.re - m01.im * a1.im),
                    (m00.re * a0.im + m00.im * a0.re) + (m01.re * a1.im + m01.im * a1.re),
                );
                o1[k] = C64::new(
                    (m10.re * a0.re - m10.im * a0.im) + (m11.re * a1.re - m11.im * a1.im),
                    (m10.re * a0.im + m10.im * a0.re) + (m11.re * a1.im + m11.im * a1.re),
                );
            }
            lb.copy_from_slice(&o0);
            hb.copy_from_slice(&o1);
        }
        return;
    }
    for (x, y) in lo.iter_mut().zip(hi.iter_mut()) {
        let (a0, a1) = (*x, *y);
        *x = m[0][0] * a0 + m[0][1] * a1;
        *y = m[1][0] * a0 + m[1][1] * a1;
    }
}

/// Hadamard body: lane-wise sums/differences and one real scale.
#[inline]
pub(crate) fn had_pairs(lo: &mut [C64], hi: &mut [C64], wide: bool) {
    let s = std::f64::consts::FRAC_1_SQRT_2;
    debug_assert_eq!(lo.len(), hi.len());
    if wide && lo.len().is_multiple_of(LANES) {
        for (lb, hb) in lo.chunks_exact_mut(LANES).zip(hi.chunks_exact_mut(LANES)) {
            for k in 0..LANES {
                let (a0, a1) = (lb[k], hb[k]);
                lb[k] = C64::new((a0.re + a1.re) * s, (a0.im + a1.im) * s);
                hb[k] = C64::new((a0.re - a1.re) * s, (a0.im - a1.im) * s);
            }
        }
        return;
    }
    for (x, y) in lo.iter_mut().zip(hi.iter_mut()) {
        let (a0, a1) = (*x, *y);
        *x = (a0 + a1).scale(s);
        *y = (a0 - a1).scale(s);
    }
}

/// Multiplies every amplitude in `run` by `f` (diagonal/phase body).
#[inline]
pub(crate) fn scale_run(run: &mut [C64], f: C64, wide: bool) {
    if wide && run.len().is_multiple_of(LANES) {
        for block in run.chunks_exact_mut(LANES) {
            for a in block.iter_mut().take(LANES) {
                *a = C64::new(f.re * a.re - f.im * a.im, f.re * a.im + f.im * a.re);
            }
        }
        return;
    }
    for a in run {
        *a = f * *a;
    }
}

/// Applies a 4x4 matrix to amplitude quads gathered from four equal-length
/// runs. `rows[j][i]` holds the amplitude whose 2-bit basis value is `j`
/// (in the matrix's qubit convention) at position `i`.
#[inline]
pub(crate) fn mix_quads(rows: [&mut [C64]; 4], m: &[[C64; 4]; 4], wide: bool) {
    let [r0, r1, r2, r3] = rows;
    debug_assert!(r0.len() == r1.len() && r1.len() == r2.len() && r2.len() == r3.len());
    if wide && r0.len() % LANES == 0 {
        let mut base = 0;
        while base < r0.len() {
            let mut out = [[C64::ZERO; LANES]; 4];
            for k in 0..LANES {
                let v = [r0[base + k], r1[base + k], r2[base + k], r3[base + k]];
                for (row, o) in m.iter().zip(out.iter_mut()) {
                    let mut acc = C64::ZERO;
                    for (c, a) in row.iter().zip(v.iter()) {
                        acc += C64::new(c.re * a.re - c.im * a.im, c.re * a.im + c.im * a.re);
                    }
                    o[k] = acc;
                }
            }
            r0[base..base + LANES].copy_from_slice(&out[0]);
            r1[base..base + LANES].copy_from_slice(&out[1]);
            r2[base..base + LANES].copy_from_slice(&out[2]);
            r3[base..base + LANES].copy_from_slice(&out[3]);
            base += LANES;
        }
        return;
    }
    for i in 0..r0.len() {
        let v = [r0[i], r1[i], r2[i], r3[i]];
        let mut out = [C64::ZERO; 4];
        for (row, o) in m.iter().zip(out.iter_mut()) {
            let mut acc = C64::ZERO;
            for (c, a) in row.iter().zip(v.iter()) {
                acc += C64::new(c.re * a.re - c.im * a.im, c.re * a.im + c.im * a.re);
            }
            *o = acc;
        }
        r0[i] = out[0];
        r1[i] = out[1];
        r2[i] = out[2];
        r3[i] = out[3];
    }
}
