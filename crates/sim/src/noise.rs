//! The calibration-driven noise model.
//!
//! Three channels, all parameterized by the same [`caqr_arch::Calibration`]
//! the compiler optimizes against:
//!
//! * **Gate error** — after each gate, a uniformly random Pauli hits each
//!   operand qubit with the link's CNOT error (two-qubit) or the qubit's
//!   single-qubit error probability. SWAPs count as three CNOTs.
//! * **Readout error** — the recorded classical bit flips with the qubit's
//!   readout error probability (the post-measurement state keeps the true
//!   outcome, and feed-forward sees the *recorded* bit, as on hardware).
//! * **Idle decoherence** — whenever a qubit sits idle for `gap` dt between
//!   operations, a random Pauli hits it with probability
//!   `1 - exp(-gap * (1/T1 + 1/T2) / 2)` (a Pauli-twirl approximation of
//!   thermal relaxation + dephasing).
//!
//! Longer circuits, more two-qubit gates, and more SWAPs all increase the
//! accumulated error — the exact trade-off surface CaQR navigates.

use caqr_arch::Device;
use caqr_circuit::depth::Schedule;
use caqr_circuit::{Circuit, Gate, Instruction};
use rand::Rng;

/// How idle decoherence is realized per trajectory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IdleChannel {
    /// A uniformly random Pauli with the combined T1/T2 probability — a
    /// cheap twirled approximation.
    #[default]
    PauliTwirl,
    /// Exact amplitude damping (T1) as a Kraus trajectory plus stochastic
    /// dephasing (the pure-T2 remainder).
    ThermalRelaxation,
}

/// Noise parameters derived from a device, with a global scale knob.
#[derive(Debug, Clone)]
pub struct NoiseModel {
    device: Device,
    scale: f64,
    idle_channel: IdleChannel,
}

impl NoiseModel {
    /// A noise model matching `device`'s calibration.
    pub fn from_device(device: Device) -> Self {
        NoiseModel {
            device,
            scale: 1.0,
            idle_channel: IdleChannel::default(),
        }
    }

    /// Selects how idle decoherence is simulated.
    pub fn with_idle_channel(mut self, channel: IdleChannel) -> Self {
        self.idle_channel = channel;
        self
    }

    /// The configured idle channel.
    pub fn idle_channel(&self) -> IdleChannel {
        self.idle_channel
    }

    /// Amplitude-damping probability for qubit `q` idling `gap_dt`
    /// (`1 - exp(-gap / T1)`), for [`IdleChannel::ThermalRelaxation`].
    pub fn idle_gamma(&self, q: usize, gap_dt: u64) -> f64 {
        if gap_dt == 0 {
            return 0.0;
        }
        let t1 = self.device.calibration().t1_dt(q);
        self.clamp(1.0 - (-(gap_dt as f64) / t1).exp())
    }

    /// Pure-dephasing Z probability for qubit `q` idling `gap_dt`: the T2
    /// decay beyond what T1 already explains.
    pub fn idle_dephase(&self, q: usize, gap_dt: u64) -> f64 {
        if gap_dt == 0 {
            return 0.0;
        }
        let cal = self.device.calibration();
        let rate = (1.0 / cal.t2_dt(q) - 0.5 / cal.t1_dt(q)).max(0.0);
        self.clamp(0.5 * (1.0 - (-(gap_dt as f64) * rate).exp()))
    }

    /// Multiplies every error probability by `scale` (useful for
    /// sensitivity sweeps). Probabilities are clamped to `[0, 0.75]`.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is negative.
    pub fn with_scale(mut self, scale: f64) -> Self {
        assert!(scale >= 0.0, "noise scale must be non-negative");
        self.scale = scale;
        self
    }

    /// The device this model was built from.
    pub fn device(&self) -> &Device {
        &self.device
    }

    fn clamp(&self, p: f64) -> f64 {
        (p * self.scale).clamp(0.0, 0.75)
    }

    /// Error probability applied to each operand after `instr` executes.
    pub fn gate_error(&self, instr: &Instruction) -> f64 {
        let cal = self.device.calibration();
        let p = match instr.gate {
            Gate::Measure | Gate::Reset => 0.0, // readout handled separately
            Gate::Swap => {
                let (a, b) = (instr.qubits[0].index(), instr.qubits[1].index());
                let e = cal.cx_error(a, b);
                // Three CNOTs: 1 - (1-e)^3.
                1.0 - (1.0 - e).powi(3)
            }
            g if g.is_two_qubit() => {
                let (a, b) = (instr.qubits[0].index(), instr.qubits[1].index());
                cal.cx_error(a, b)
            }
            _ => cal.sq_error(instr.qubits[0].index()),
        };
        self.clamp(p)
    }

    /// Probability the recorded bit flips when measuring physical qubit `q`.
    pub fn readout_error(&self, q: usize) -> f64 {
        self.clamp(self.device.calibration().readout_error(q))
    }

    /// Probability of a Pauli error on qubit `q` after idling `gap_dt`.
    pub fn idle_error(&self, q: usize, gap_dt: u64) -> f64 {
        if gap_dt == 0 {
            return 0.0;
        }
        let cal = self.device.calibration();
        let rate = 0.5 * (1.0 / cal.t1_dt(q) + 1.0 / cal.t2_dt(q));
        self.clamp(1.0 - (-(gap_dt as f64) * rate).exp())
    }

    /// Returns `true` when every error probability is exactly zero (the
    /// `with_scale(0.0)` configuration): the executor may then treat the
    /// whole circuit as deterministic up to its first measurement.
    pub fn is_silent(&self) -> bool {
        self.scale == 0.0
    }

    /// Samples a uniformly random Pauli gate.
    pub fn random_pauli(rng: &mut impl Rng) -> Gate {
        match rng.gen_range(0..3) {
            0 => Gate::X,
            1 => Gate::Y,
            _ => Gate::Z,
        }
    }
}

/// One precomputed idle-decoherence draw for a single (instruction,
/// operand) slot.
#[derive(Debug, Clone, Copy)]
pub(crate) enum IdleDraw {
    /// Pauli-twirl: one Bernoulli with this probability.
    Twirl(f64),
    /// Thermal relaxation: amplitude damping followed by stochastic
    /// dephasing.
    Thermal {
        /// Amplitude-damping probability.
        gamma: f64,
        /// Pure-dephasing Z probability.
        pz: f64,
    },
}

impl IdleDraw {
    fn is_zero(&self) -> bool {
        match *self {
            IdleDraw::Twirl(p) => p == 0.0,
            IdleDraw::Thermal { gamma, pz } => gamma == 0.0 && pz == 0.0,
        }
    }
}

/// Error probabilities hoisted out of the per-shot loop.
///
/// Idle gaps depend only on the schedule (each qubit's `busy_until` is
/// advanced unconditionally, even for gates a condition later skips), so
/// every probability the Monte-Carlo loop draws against is a pure function
/// of the circuit + noise model and can be computed once per `run_shots`
/// instead of once per shot — this removes all `exp()`/calibration work
/// from the hot path.
#[derive(Debug, Clone)]
pub(crate) struct NoiseTables {
    /// Per instruction, per operand: the idle-decoherence draw.
    pub idle: Vec<Vec<IdleDraw>>,
    /// Per instruction: the post-gate Pauli probability per operand.
    pub gate: Vec<f64>,
    /// Per instruction: readout flip probability (measurements only).
    pub readout: Vec<f64>,
    /// The idle channel the draws realize.
    pub channel: IdleChannel,
}

impl NoiseTables {
    /// Precomputes every probability `run_shots` will draw against, using
    /// exactly the same accessor calls the per-shot loop previously made
    /// (so the draw streams are bit-identical).
    pub(crate) fn precompute(model: &NoiseModel, circuit: &Circuit, schedule: &Schedule) -> Self {
        let channel = model.idle_channel();
        let mut busy = vec![0u64; circuit.num_qubits()];
        let mut idle = Vec::with_capacity(circuit.len());
        let mut gate = Vec::with_capacity(circuit.len());
        let mut readout = Vec::with_capacity(circuit.len());
        for (idx, instr) in circuit.iter().enumerate() {
            let start = schedule.start(idx);
            let mut draws = Vec::with_capacity(instr.qubits.len());
            for q in &instr.qubits {
                let gap = start.saturating_sub(busy[q.index()]);
                draws.push(match channel {
                    IdleChannel::PauliTwirl => IdleDraw::Twirl(model.idle_error(q.index(), gap)),
                    IdleChannel::ThermalRelaxation => IdleDraw::Thermal {
                        gamma: model.idle_gamma(q.index(), gap),
                        pz: model.idle_dephase(q.index(), gap),
                    },
                });
                busy[q.index()] = schedule.finish(idx);
            }
            idle.push(draws);
            gate.push(model.gate_error(instr));
            readout.push(if instr.gate == Gate::Measure {
                model.readout_error(instr.qubits[0].index())
            } else {
                0.0
            });
        }
        NoiseTables {
            idle,
            gate,
            readout,
            channel,
        }
    }

    /// Returns `true` when no stochastic draw can occur in instructions
    /// `0..boundary` — the condition under which prefix fast-forward is
    /// trivially legal even for state-dependent channels.
    pub(crate) fn is_zero_before(&self, boundary: usize) -> bool {
        (0..boundary)
            .all(|idx| self.gate[idx] == 0.0 && self.idle[idx].iter().all(IdleDraw::is_zero))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use caqr_circuit::Qubit;
    use rand::SeedableRng;

    fn model() -> NoiseModel {
        NoiseModel::from_device(Device::mumbai(1))
    }

    fn cx(a: usize, b: usize) -> Instruction {
        Instruction::gate(Gate::Cx, vec![Qubit::new(a), Qubit::new(b)])
    }

    #[test]
    fn gate_error_matches_calibration() {
        let m = model();
        let e = m.gate_error(&cx(0, 1));
        assert_eq!(e, m.device().calibration().cx_error(0, 1));
    }

    #[test]
    fn swap_error_is_three_cnots() {
        let m = model();
        let e_cx = m.device().calibration().cx_error(0, 1);
        let swap = Instruction::gate(Gate::Swap, vec![Qubit::new(0), Qubit::new(1)]);
        let expected = 1.0 - (1.0 - e_cx).powi(3);
        assert!((m.gate_error(&swap) - expected).abs() < 1e-12);
        assert!(m.gate_error(&swap) > e_cx);
    }

    #[test]
    fn single_qubit_error_smaller_than_two_qubit() {
        let m = model();
        let h = Instruction::gate(Gate::H, vec![Qubit::new(0)]);
        assert!(m.gate_error(&h) < m.gate_error(&cx(0, 1)));
    }

    #[test]
    fn idle_error_monotonic_in_gap() {
        let m = model();
        assert_eq!(m.idle_error(0, 0), 0.0);
        let short = m.idle_error(0, 1_000);
        let long = m.idle_error(0, 100_000);
        assert!(short > 0.0);
        assert!(long > short);
        assert!(long < 0.76);
    }

    #[test]
    fn scale_zero_silences_noise() {
        let m = model().with_scale(0.0);
        assert_eq!(m.gate_error(&cx(0, 1)), 0.0);
        assert_eq!(m.readout_error(3), 0.0);
        assert_eq!(m.idle_error(0, 1 << 20), 0.0);
    }

    #[test]
    fn scale_amplifies() {
        let base = model().gate_error(&cx(0, 1));
        let amped = model().with_scale(3.0).gate_error(&cx(0, 1));
        assert!((amped - 3.0 * base).abs() < 1e-12);
    }

    #[test]
    fn idle_gamma_and_dephase_behave() {
        let m = model();
        assert_eq!(m.idle_gamma(0, 0), 0.0);
        assert_eq!(m.idle_dephase(0, 0), 0.0);
        let g_short = m.idle_gamma(0, 1_000);
        let g_long = m.idle_gamma(0, 1_000_000);
        assert!(g_short > 0.0 && g_long > g_short && g_long <= 0.76);
        assert!(m.idle_dephase(0, 100_000) >= 0.0);
    }

    #[test]
    fn idle_channel_selection() {
        let m = model();
        assert_eq!(m.idle_channel(), IdleChannel::PauliTwirl);
        let t = model().with_idle_channel(IdleChannel::ThermalRelaxation);
        assert_eq!(t.idle_channel(), IdleChannel::ThermalRelaxation);
    }

    #[test]
    fn random_pauli_covers_all() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(2);
        let mut seen = [false; 3];
        for _ in 0..100 {
            match NoiseModel::random_pauli(&mut rng) {
                Gate::X => seen[0] = true,
                Gate::Y => seen[1] = true,
                Gate::Z => seen[2] = true,
                g => panic!("unexpected {g}"),
            }
        }
        assert_eq!(seen, [true; 3]);
    }
}
