//! Shot counts: a histogram over classical-register outcomes.

use std::collections::BTreeMap;
use std::fmt;

/// A histogram of measurement outcomes over a classical register.
///
/// Keys are the register value with clbit `i` at bit `i` (little endian),
/// so at most 64 classical bits are supported — far beyond the paper's
/// benchmarks.
///
/// # Examples
///
/// ```
/// use caqr_sim::Counts;
///
/// let mut c = Counts::new(2);
/// c.record(0b10);
/// c.record(0b10);
/// c.record(0b01);
/// assert_eq!(c.total(), 3);
/// assert_eq!(c.get(0b10), 2);
/// assert!((c.probability(0b01) - 1.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Counts {
    num_clbits: usize,
    histogram: BTreeMap<u64, usize>,
    total: usize,
}

impl Counts {
    /// An empty histogram over `num_clbits` classical bits.
    ///
    /// # Panics
    ///
    /// Panics if `num_clbits > 64`.
    pub fn new(num_clbits: usize) -> Self {
        assert!(num_clbits <= 64, "at most 64 classical bits supported");
        Counts {
            num_clbits,
            histogram: BTreeMap::new(),
            total: 0,
        }
    }

    /// The width of the classical register.
    pub fn num_clbits(&self) -> usize {
        self.num_clbits
    }

    /// Records one shot with the given register value.
    pub fn record(&mut self, value: u64) {
        *self.histogram.entry(value).or_insert(0) += 1;
        self.total += 1;
    }

    /// Adds every outcome of `other` into this histogram. Merging is
    /// commutative and associative, so per-worker histograms combine into
    /// the same result regardless of shard order or count.
    pub fn merge(&mut self, other: &Counts) {
        for (v, c) in other.iter() {
            *self.histogram.entry(v).or_insert(0) += c;
        }
        self.total += other.total;
    }

    /// The number of shots that produced `value`.
    pub fn get(&self, value: u64) -> usize {
        self.histogram.get(&value).copied().unwrap_or(0)
    }

    /// Total shots recorded.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Empirical probability of `value`.
    pub fn probability(&self, value: u64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.get(value) as f64 / self.total as f64
    }

    /// Iterates over `(value, count)` pairs in ascending value order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, usize)> + '_ {
        self.histogram.iter().map(|(&v, &c)| (v, c))
    }

    /// The most frequent outcome, if any shots were recorded. Ties go to
    /// the smaller value.
    pub fn mode(&self) -> Option<u64> {
        self.histogram
            .iter()
            .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(a.0)))
            .map(|(&v, _)| v)
    }

    /// Formats a value as a bitstring, most-significant clbit first
    /// (Qiskit convention).
    pub fn bitstring(&self, value: u64) -> String {
        (0..self.num_clbits)
            .rev()
            .map(|b| if value >> b & 1 == 1 { '1' } else { '0' })
            .collect()
    }

    /// Marginalizes to the lowest `num_bits` classical bits, summing
    /// outcomes that agree on them. Used to fold out the fresh clbits a
    /// reuse transform appends before comparing against the original
    /// circuit's distribution.
    pub fn marginal(&self, num_bits: usize) -> Counts {
        let mask = if num_bits >= 64 {
            u64::MAX
        } else {
            (1u64 << num_bits) - 1
        };
        let mut out = Counts::new(num_bits.min(self.num_clbits));
        for (v, c) in self.iter() {
            *out.histogram.entry(v & mask).or_insert(0) += c;
        }
        out.total = self.total;
        out
    }

    /// Converts to a dense probability vector of length `2^num_clbits`.
    ///
    /// # Panics
    ///
    /// Panics if `num_clbits > 24` (the vector would not fit in memory).
    pub fn to_probabilities(&self) -> Vec<f64> {
        assert!(self.num_clbits <= 24, "register too wide to densify");
        let mut p = vec![0.0; 1 << self.num_clbits];
        for (v, c) in self.iter() {
            p[v as usize] = c as f64 / self.total.max(1) as f64;
        }
        p
    }
}

impl fmt::Display for Counts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "counts({} shots)", self.total)?;
        for (v, c) in self.iter() {
            write!(f, " {}:{c}", self.bitstring(v))?;
        }
        Ok(())
    }
}

impl Extend<u64> for Counts {
    fn extend<I: IntoIterator<Item = u64>>(&mut self, iter: I) {
        for v in iter {
            self.record(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_query() {
        let mut c = Counts::new(3);
        c.extend([0b101, 0b101, 0b000]);
        assert_eq!(c.total(), 3);
        assert_eq!(c.get(0b101), 2);
        assert_eq!(c.get(0b111), 0);
        assert_eq!(c.mode(), Some(0b101));
    }

    #[test]
    fn bitstring_msb_first() {
        let c = Counts::new(4);
        assert_eq!(c.bitstring(0b0011), "0011");
        assert_eq!(c.bitstring(0b1000), "1000");
    }

    #[test]
    fn probabilities_sum_to_one() {
        let mut c = Counts::new(2);
        c.extend([0, 1, 2, 3, 3]);
        let p = c.to_probabilities();
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((p[3] - 0.4).abs() < 1e-12);
    }

    #[test]
    fn empty_counts() {
        let c = Counts::new(2);
        assert_eq!(c.total(), 0);
        assert_eq!(c.mode(), None);
        assert_eq!(c.probability(0), 0.0);
    }

    #[test]
    fn display_format() {
        let mut c = Counts::new(2);
        c.record(0b10);
        assert_eq!(format!("{c}"), "counts(1 shots) 10:1");
    }

    #[test]
    fn marginal_folds_high_bits() {
        let mut c = Counts::new(3);
        c.extend([0b100, 0b000, 0b101, 0b011]);
        let m = c.marginal(2);
        assert_eq!(m.num_clbits(), 2);
        assert_eq!(m.get(0b00), 2);
        assert_eq!(m.get(0b01), 1);
        assert_eq!(m.get(0b11), 1);
        assert_eq!(m.total(), 4);
    }

    #[test]
    fn marginal_full_width_is_identity() {
        let mut c = Counts::new(2);
        c.extend([1, 2]);
        let m = c.marginal(2);
        assert_eq!(m.get(1), 1);
        assert_eq!(m.get(2), 1);
    }

    #[test]
    fn mode_tie_breaks_to_smaller() {
        let mut c = Counts::new(2);
        c.extend([1, 2]);
        assert_eq!(c.mode(), Some(1));
    }
}
