//! Output-quality metrics: TVD, success rate, and QAOA max-cut value.
//!
//! These are the paper's real-machine metrics (§4.1, §4.4): total variation
//! distance between the noisy and ideal distributions, the probability of
//! reading the correct answer, and the expected max-cut value a QAOA shot
//! histogram encodes.

use crate::counts::Counts;
use caqr_graph::Graph;

/// Total variation distance between an exact distribution (sparse
/// `(value, probability)` pairs) and an empirical [`Counts`] histogram.
/// Always in `[0, 1]`; 0 means identical.
///
/// # Examples
///
/// ```
/// use caqr_sim::{metrics, Counts};
///
/// let ideal = vec![(0u64, 0.5), (3u64, 0.5)];
/// let mut counts = Counts::new(2);
/// for _ in 0..50 { counts.record(0); }
/// for _ in 0..50 { counts.record(3); }
/// assert!(metrics::tvd(&ideal, &counts) < 1e-12);
/// ```
pub fn tvd(ideal: &[(u64, f64)], counts: &Counts) -> f64 {
    let mut support: std::collections::BTreeSet<u64> = ideal.iter().map(|&(v, _)| v).collect();
    support.extend(counts.iter().map(|(v, _)| v));
    let lookup: std::collections::BTreeMap<u64, f64> = ideal.iter().copied().collect();
    0.5 * support
        .into_iter()
        .map(|v| {
            let p = lookup.get(&v).copied().unwrap_or(0.0);
            let q = counts.probability(v);
            (p - q).abs()
        })
        .sum::<f64>()
}

/// TVD between two empirical histograms over the same register.
pub fn tvd_counts(a: &Counts, b: &Counts) -> f64 {
    let mut support: std::collections::BTreeSet<u64> = a.iter().map(|(v, _)| v).collect();
    support.extend(b.iter().map(|(v, _)| v));
    0.5 * support
        .into_iter()
        .map(|v| (a.probability(v) - b.probability(v)).abs())
        .sum::<f64>()
}

/// The empirical probability of reading the single correct answer — the
/// paper's "success rate of finding correct answer".
pub fn success_rate(counts: &Counts, correct: u64) -> f64 {
    counts.probability(correct)
}

/// Hellinger fidelity between an exact distribution and a histogram:
/// `(sum_i sqrt(p_i * q_i))^2`, in `[0, 1]`, 1 for identical
/// distributions. A common alternative to TVD in hardware reports.
pub fn hellinger_fidelity(ideal: &[(u64, f64)], counts: &Counts) -> f64 {
    ideal
        .iter()
        .map(|&(v, p)| (p * counts.probability(v)).sqrt())
        .sum::<f64>()
        .powi(2)
}

/// Shannon entropy of a histogram in bits. Uniform over `2^k` outcomes
/// gives `k`; a deterministic circuit gives 0.
pub fn entropy_bits(counts: &Counts) -> f64 {
    counts
        .iter()
        .map(|(_, c)| {
            let p = c as f64 / counts.total().max(1) as f64;
            -p * p.log2()
        })
        .sum()
}

/// The expectation of `Z` on classical bit `bit`: `P(0) - P(1)`.
pub fn z_expectation(counts: &Counts, bit: usize) -> f64 {
    let p1: f64 = counts
        .iter()
        .filter(|(v, _)| v >> bit & 1 == 1)
        .map(|(_, c)| c as f64)
        .sum::<f64>()
        / counts.total().max(1) as f64;
    1.0 - 2.0 * p1
}

/// The expectation of a product of `Z`s over the bits set in `mask`
/// (+1 for even parity, -1 for odd).
pub fn parity_expectation(counts: &Counts, mask: u64) -> f64 {
    counts
        .iter()
        .map(|(v, c)| {
            let sign = if (v & mask).count_ones().is_multiple_of(2) {
                1.0
            } else {
                -1.0
            };
            sign * c as f64
        })
        .sum::<f64>()
        / counts.total().max(1) as f64
}

/// The cut value of an assignment: edges of `graph` whose endpoints get
/// different bits in `assignment` (vertex `v` reads bit `v`).
pub fn cut_value(graph: &Graph, assignment: u64) -> usize {
    graph
        .edges()
        .filter(|&(u, v)| (assignment >> u & 1) != (assignment >> v & 1))
        .count()
}

/// The maximum cut over all assignments, by brute force.
///
/// # Panics
///
/// Panics if the graph has more than 24 vertices.
pub fn max_cut_brute_force(graph: &Graph) -> usize {
    let n = graph.num_vertices();
    assert!(n <= 24, "brute force is limited to 24 vertices");
    (0u64..1 << n)
        .map(|a| cut_value(graph, a))
        .max()
        .unwrap_or(0)
}

/// The expected cut value under a QAOA shot histogram, where clbit `v`
/// holds vertex `v`'s side. Figs. 15/16 plot the *negation* of this.
pub fn expected_cut(graph: &Graph, counts: &Counts) -> f64 {
    counts
        .iter()
        .map(|(v, c)| cut_value(graph, v) as f64 * c as f64)
        .sum::<f64>()
        / counts.total().max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tvd_identical_is_zero() {
        let mut c = Counts::new(1);
        c.extend([0, 1, 0, 1]);
        let ideal = vec![(0u64, 0.5), (1u64, 0.5)];
        assert!(tvd(&ideal, &c) < 1e-12);
    }

    #[test]
    fn tvd_disjoint_is_one() {
        let mut c = Counts::new(1);
        c.extend([1, 1]);
        let ideal = vec![(0u64, 1.0)];
        assert!((tvd(&ideal, &c) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn tvd_bounds() {
        let mut c = Counts::new(2);
        c.extend([0, 1, 2, 3]);
        let ideal = vec![(0u64, 0.7), (1u64, 0.3)];
        let d = tvd(&ideal, &c);
        assert!((0.0..=1.0).contains(&d));
        assert!((d - 0.5).abs() < 1e-12);
    }

    #[test]
    fn tvd_counts_symmetric() {
        let mut a = Counts::new(1);
        a.extend([0, 0, 1]);
        let mut b = Counts::new(1);
        b.extend([1, 1, 0]);
        assert!((tvd_counts(&a, &b) - tvd_counts(&b, &a)).abs() < 1e-12);
        assert!(tvd_counts(&a, &a) < 1e-12);
    }

    #[test]
    fn success_rate_basics() {
        let mut c = Counts::new(2);
        c.extend([3, 3, 3, 0]);
        assert!((success_rate(&c, 3) - 0.75).abs() < 1e-12);
        assert_eq!(success_rate(&c, 2), 0.0);
    }

    #[test]
    fn hellinger_and_entropy() {
        let mut c = Counts::new(1);
        c.extend([0, 0, 1, 1]);
        let ideal = vec![(0u64, 0.5), (1u64, 0.5)];
        assert!((hellinger_fidelity(&ideal, &c) - 1.0).abs() < 1e-12);
        assert!((entropy_bits(&c) - 1.0).abs() < 1e-12);
        let mut d = Counts::new(1);
        d.extend([0, 0, 0, 0]);
        assert!((hellinger_fidelity(&ideal, &d) - 0.5).abs() < 1e-12);
        assert_eq!(entropy_bits(&d), 0.0);
    }

    #[test]
    fn z_and_parity_expectations() {
        let mut c = Counts::new(2);
        c.extend([0b00, 0b01, 0b01, 0b01]);
        // bit 0: P(1) = 0.75 -> <Z> = -0.5.
        assert!((z_expectation(&c, 0) + 0.5).abs() < 1e-12);
        assert!((z_expectation(&c, 1) - 1.0).abs() < 1e-12);
        // Parity over both bits = parity of bit 0 here.
        assert!((parity_expectation(&c, 0b11) + 0.5).abs() < 1e-12);
        assert!((parity_expectation(&c, 0b00) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cut_values() {
        // Triangle: max cut 2.
        let g = Graph::from_edges(3, [(0, 1), (1, 2), (0, 2)]);
        assert_eq!(cut_value(&g, 0b000), 0);
        assert_eq!(cut_value(&g, 0b001), 2);
        assert_eq!(max_cut_brute_force(&g), 2);
        // Square (4-cycle): max cut 4.
        let sq = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)]);
        assert_eq!(max_cut_brute_force(&sq), 4);
        assert_eq!(cut_value(&sq, 0b0101), 4);
    }

    #[test]
    fn expected_cut_weighted_average() {
        let g = Graph::from_edges(2, [(0, 1)]);
        let mut c = Counts::new(2);
        c.extend([0b00, 0b01, 0b01, 0b01]); // cuts 0, 1, 1, 1
        assert!((expected_cut(&g, &c) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn expected_cut_empty_counts() {
        let g = Graph::from_edges(2, [(0, 1)]);
        let c = Counts::new(2);
        assert_eq!(expected_cut(&g, &c), 0.0);
    }
}
