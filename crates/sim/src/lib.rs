//! Noisy state-vector simulator for the CaQR reproduction.
//!
//! The paper's Table 3 and Figs. 15/16 run compiled circuits on the real
//! IBM Mumbai device. This crate substitutes a Monte-Carlo state-vector
//! simulator whose noise is driven by the same [`caqr_arch::Calibration`]
//! the compiler sees:
//!
//! * depolarizing error after every gate (per-link CNOT error, per-qubit
//!   single-qubit error),
//! * readout bit-flips at measurement (per-qubit readout error),
//! * idle decoherence: Pauli errors with probability growing as
//!   `1 - exp(-idle_dt / T1)` over the gaps in each qubit's timeline.
//!
//! Errors therefore grow with gate count, SWAP count, and circuit duration
//! — the three quantities CaQR trades off — so baseline-vs-CaQR fidelity
//! comparisons keep their shape even though absolute rates differ from
//! hardware.
//!
//! Mid-circuit measurement, reset, and classically-conditioned gates (the
//! dynamic-circuit primitives) are simulated natively.
//!
//! # Examples
//!
//! ```
//! use caqr_circuit::{Circuit, Qubit};
//! use caqr_sim::{Executor, Counts};
//!
//! // A Bell pair measured in the computational basis.
//! let mut c = Circuit::new(2, 2);
//! c.h(Qubit::new(0));
//! c.cx(Qubit::new(0), Qubit::new(1));
//! c.measure_all();
//! let counts = Executor::ideal().run_shots(&c, 2000, 7);
//! assert_eq!(counts.total(), 2000);
//! // Only 00 and 11 appear.
//! assert_eq!(counts.iter().count(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod complex;
pub mod counts;
pub mod exact;
pub mod exec;
pub mod kernels;
pub mod metrics;
pub mod noise;
pub mod parallel;
mod sparse;
pub mod state;
pub mod tableau;
mod wide;

pub use complex::C64;
pub use counts::Counts;
pub use exec::{Engine, Executor, Interrupted, KernelDispatch, ShotReport};
pub use kernels::CompiledCircuit;
pub use noise::NoiseModel;
pub use parallel::{effective_workers, shot_rng};
pub use state::StateVector;
