//! Exact (noiseless) output distributions, including for dynamic circuits.
//!
//! TVD needs the ideal distribution as the reference (Table 3). For static
//! circuits that is one state-vector pass; mid-circuit measurements require
//! branching on outcomes. We branch only where we must:
//!
//! * a maximal *terminal suffix* of measurements is resolved directly from
//!   the final state's amplitudes (no branching), and
//! * interior measurements/resets branch, with zero-probability branches
//!   pruned — in practice reuse circuits like BV collapse to a handful of
//!   branches because their mid-circuit outcomes are (near-)deterministic.

use crate::state::StateVector;
use caqr_circuit::{Circuit, Gate};
use std::collections::BTreeMap;

/// Hard cap on explored branches; prevents pathological blow-ups.
const MAX_BRANCHES: usize = 1 << 14;

/// An error from [`distribution`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BranchLimitError {
    branches: usize,
}

impl std::fmt::Display for BranchLimitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "exact simulation exceeded {} measurement branches",
            self.branches
        )
    }
}

impl std::error::Error for BranchLimitError {}

/// The exact output distribution over the classical register.
///
/// Returns `(value, probability)` pairs with probability > 1e-12, summing
/// to 1 (within rounding).
///
/// # Errors
///
/// Returns [`BranchLimitError`] if interior measurements force more than
/// `2^14` live branches.
///
/// # Examples
///
/// ```
/// use caqr_circuit::{Circuit, Qubit};
/// use caqr_sim::exact;
///
/// let mut c = Circuit::new(2, 2);
/// c.h(Qubit::new(0));
/// c.cx(Qubit::new(0), Qubit::new(1));
/// c.measure_all();
/// let dist = exact::distribution(&c).unwrap();
/// assert_eq!(dist.len(), 2); // 00 and 11
/// ```
pub fn distribution(circuit: &Circuit) -> Result<Vec<(u64, f64)>, BranchLimitError> {
    // Find the terminal measurement suffix: a trailing run of Measure
    // instructions (these never need branching).
    let mut suffix_start = circuit.len();
    while suffix_start > 0 && circuit.instructions()[suffix_start - 1].gate == Gate::Measure {
        suffix_start -= 1;
    }

    struct Branch {
        state: StateVector,
        clreg: u64,
        prob: f64,
    }

    let mut branches = vec![Branch {
        state: StateVector::zero(circuit.num_qubits()),
        clreg: 0,
        prob: 1.0,
    }];

    for instr in &circuit.instructions()[..suffix_start] {
        let mut next: Vec<Branch> = Vec::with_capacity(branches.len());
        for mut br in branches {
            if let Some(cond) = instr.condition {
                if br.clreg >> cond.index() & 1 == 0 {
                    next.push(br);
                    continue;
                }
            }
            let operands: Vec<usize> = instr.qubits.iter().map(|q| q.index()).collect();
            match instr.gate {
                Gate::Measure | Gate::Reset => {
                    let q = operands[0];
                    let p1 = br.state.prob_one(q);
                    for outcome in [false, true] {
                        let p = if outcome { p1 } else { 1.0 - p1 };
                        if p <= 1e-12 {
                            continue;
                        }
                        let mut state = br.state.clone();
                        state.project(q, outcome);
                        let mut clreg = br.clreg;
                        if instr.gate == Gate::Measure {
                            let c = instr.clbit.expect("measure has a clbit").index();
                            if outcome {
                                clreg |= 1 << c;
                            } else {
                                clreg &= !(1 << c);
                            }
                        } else if outcome {
                            // Reset: flip back to |0>.
                            state.apply_gate(&Gate::X, &[q]);
                        }
                        next.push(Branch {
                            state,
                            clreg,
                            prob: br.prob * p,
                        });
                    }
                }
                ref gate => {
                    br.state.apply_gate(gate, &operands);
                    next.push(br);
                }
            }
            if next.len() > MAX_BRANCHES {
                return Err(BranchLimitError {
                    branches: MAX_BRANCHES,
                });
            }
        }
        branches = next;
    }

    // Resolve the terminal measurement suffix amplitude-wise.
    let suffix = &circuit.instructions()[suffix_start..];
    let mut dist: BTreeMap<u64, f64> = BTreeMap::new();
    for br in branches {
        if suffix.is_empty() {
            *dist.entry(br.clreg).or_insert(0.0) += br.prob;
            continue;
        }
        let dim = 1usize << circuit.num_qubits();
        for basis in 0..dim {
            let p = br.state.probability_of(basis);
            if p <= 1e-14 {
                continue;
            }
            let mut clreg = br.clreg;
            for m in suffix {
                let q = m.qubits[0].index();
                let c = m.clbit.expect("measure has a clbit").index();
                if basis >> q & 1 == 1 {
                    clreg |= 1 << c;
                } else {
                    clreg &= !(1 << c);
                }
            }
            *dist.entry(clreg).or_insert(0.0) += br.prob * p;
        }
    }

    Ok(dist.into_iter().filter(|&(_, p)| p > 1e-12).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use caqr_circuit::{Clbit, Qubit};

    fn q(i: usize) -> Qubit {
        Qubit::new(i)
    }

    fn c(i: usize) -> Clbit {
        Clbit::new(i)
    }

    fn total(dist: &[(u64, f64)]) -> f64 {
        dist.iter().map(|&(_, p)| p).sum()
    }

    #[test]
    fn deterministic_x() {
        let mut circ = Circuit::new(1, 1);
        circ.x(q(0));
        circ.measure(q(0), c(0));
        let d = distribution(&circ).unwrap();
        assert_eq!(d, vec![(1, 1.0)]);
    }

    #[test]
    fn bell_distribution() {
        let mut circ = Circuit::new(2, 2);
        circ.h(q(0));
        circ.cx(q(0), q(1));
        circ.measure_all();
        let d = distribution(&circ).unwrap();
        assert_eq!(d.len(), 2);
        for (v, p) in d {
            assert!(v == 0 || v == 3);
            assert!((p - 0.5).abs() < 1e-12);
        }
    }

    #[test]
    fn mid_circuit_branching() {
        // H then measure: 50/50; conditional X restores |0> either way, so
        // the second measurement is always 0.
        let mut circ = Circuit::new(1, 2);
        circ.h(q(0));
        circ.measure(q(0), c(0));
        circ.cond_x(q(0), c(0));
        circ.measure(q(0), c(1));
        let d = distribution(&circ).unwrap();
        assert!((total(&d) - 1.0).abs() < 1e-12);
        // Outcomes: c0 in {0,1}, c1 = 0.
        assert_eq!(d.len(), 2);
        for (v, p) in d {
            assert_eq!(v >> 1 & 1, 0);
            assert!((p - 0.5).abs() < 1e-12);
        }
    }

    #[test]
    fn reset_branches_without_clbits() {
        let mut circ = Circuit::new(1, 1);
        circ.h(q(0));
        circ.reset(q(0));
        circ.measure(q(0), c(0));
        let d = distribution(&circ).unwrap();
        assert_eq!(d, vec![(0, 1.0)]);
    }

    #[test]
    fn deterministic_mid_measure_stays_single_branch() {
        // |1> measured mid-circuit: only one branch survives pruning.
        let mut circ = Circuit::new(2, 2);
        circ.x(q(0));
        circ.measure(q(0), c(0));
        circ.cond_x(q(0), c(0));
        circ.h(q(0)); // wire reused
        circ.h(q(0));
        circ.measure(q(0), c(1));
        let d = distribution(&circ).unwrap();
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].0, 0b01);
        assert!((d[0].1 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn matches_sampling() {
        use crate::exec::Executor;
        let mut circ = Circuit::new(3, 3);
        circ.h(q(0));
        circ.cx(q(0), q(1));
        circ.rx(0.7, q(2));
        circ.cz(q(1), q(2));
        circ.h(q(2));
        circ.measure_all();
        let d = distribution(&circ).unwrap();
        let counts = Executor::ideal().run_shots(&circ, 20_000, 11);
        for (v, p) in d {
            let emp = counts.probability(v);
            assert!(
                (emp - p).abs() < 0.02,
                "value {v}: exact {p} vs sampled {emp}"
            );
        }
    }

    #[test]
    fn probabilities_sum_to_one() {
        let mut circ = Circuit::new(3, 3);
        circ.h(q(0));
        circ.h(q(1));
        circ.cp(0.3, q(0), q(1));
        circ.measure(q(0), c(0));
        circ.cond_x(q(0), c(0));
        circ.h(q(0));
        circ.cx(q(0), q(2));
        circ.measure(q(1), c(1));
        circ.measure(q(2), c(2));
        let d = distribution(&circ).unwrap();
        assert!((total(&d) - 1.0).abs() < 1e-9);
    }
}
