//! Deterministic shot-level parallelism.
//!
//! The Monte-Carlo executor owes its reproducibility to one rule: **shot
//! `i` of seed `s` always consumes the same random stream**, no matter how
//! many threads run and which thread picks the shot up. [`shot_rng`]
//! derives an independent ChaCha8 stream from `(seed, shot_index)`, shots
//! are partitioned into contiguous shards over a scoped-thread pool, and
//! per-shard histograms are merged at the end — addition commutes, so the
//! result is bit-identical at any worker count, including 1.
//!
//! The worker-sizing rule is shared with the `caqr-engine` batch compiler
//! ([`effective_workers`]), so `--threads 0` means the same thing — one
//! worker per core, clamped to the amount of work — everywhere in the
//! workspace.

use rand::{RngCore, SplitMix64};
use rand_chacha::ChaCha8Rng;
use std::ops::Range;

/// Resolves a requested worker count: 0 means one worker per available
/// core, and the result is clamped to the number of tasks (at least 1).
///
/// # Examples
///
/// ```
/// use caqr_sim::parallel::effective_workers;
///
/// assert_eq!(effective_workers(8, 3), 3);
/// assert_eq!(effective_workers(2, 100), 2);
/// assert!(effective_workers(0, 100) >= 1);
/// assert_eq!(effective_workers(4, 0), 1);
/// ```
pub fn effective_workers(requested: usize, tasks: usize) -> usize {
    let workers = if requested == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        requested
    };
    workers.clamp(1, tasks.max(1))
}

/// The independent random stream for one shot: a ChaCha8 generator keyed
/// by `(seed, shot)`.
///
/// The derivation expands `seed` through SplitMix64, perturbs it with the
/// shot index (multiplied by an odd constant, so distinct shots map to
/// distinct keys), and expands the result into a 256-bit ChaCha key. Shot
/// streams are therefore stable across releases, platforms, and thread
/// counts — the executor's determinism contract rests on this function.
pub fn shot_rng(seed: u64, shot: u64) -> ChaCha8Rng {
    let mut expand = SplitMix64::new(seed);
    let s0 = expand.next_u64();
    let s1 = expand.next_u64();
    let mut stream =
        SplitMix64::new(s0 ^ shot.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(s1));
    let mut key = [0u32; 8];
    for pair in key.chunks_exact_mut(2) {
        let w = stream.next_u64();
        pair[0] = w as u32;
        pair[1] = (w >> 32) as u32;
    }
    ChaCha8Rng::from_key(key)
}

/// Splits `0..tasks` into `shards` contiguous, near-equal ranges (the
/// first `tasks % shards` ranges are one longer).
pub(crate) fn partition(tasks: usize, shards: usize) -> Vec<Range<usize>> {
    let shards = shards.clamp(1, tasks.max(1));
    let base = tasks / shards;
    let extra = tasks % shards;
    let mut ranges = Vec::with_capacity(shards);
    let mut start = 0;
    for s in 0..shards {
        let len = base + usize::from(s < extra);
        ranges.push(start..start + len);
        start += len;
    }
    ranges
}

/// Runs `run` over each shard of `0..tasks` on `workers` scoped threads
/// and returns the per-shard results in shard order. With one worker the
/// shard runs inline — no thread is spawned, so single-threaded callers
/// pay nothing.
pub(crate) fn run_shards<R, F>(workers: usize, tasks: usize, run: F) -> Vec<R>
where
    R: Send,
    F: Fn(Range<usize>) -> R + Sync,
{
    let ranges = partition(tasks, workers);
    if ranges.len() == 1 {
        let range = ranges.into_iter().next().expect("one shard");
        return vec![run(range)];
    }
    std::thread::scope(|scope| {
        let handles: Vec<_> = ranges
            .into_iter()
            .map(|range| scope.spawn(|| run(range)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("shot worker panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_count_is_clamped_sensibly() {
        assert_eq!(effective_workers(8, 3), 3);
        assert_eq!(effective_workers(2, 100), 2);
        assert!(effective_workers(0, 100) >= 1);
        assert_eq!(effective_workers(4, 0), 1);
    }

    #[test]
    fn partition_covers_every_task_once() {
        for (tasks, shards) in [(10, 3), (7, 7), (5, 8), (0, 4), (1000, 8)] {
            let ranges = partition(tasks, shards);
            let mut seen = 0;
            let mut next = 0;
            for r in &ranges {
                assert_eq!(r.start, next, "{tasks}/{shards}");
                next = r.end;
                seen += r.len();
            }
            assert_eq!(seen, tasks);
            assert_eq!(next, tasks);
        }
    }

    #[test]
    fn shot_streams_are_independent_and_stable() {
        let mut a = shot_rng(7, 0);
        let mut a2 = shot_rng(7, 0);
        let mut b = shot_rng(7, 1);
        let mut c = shot_rng(8, 0);
        let (x, x2, y, z) = (a.next_u64(), a2.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(x, x2, "same (seed, shot) must replay the same stream");
        assert_ne!(x, y, "different shots must diverge");
        assert_ne!(x, z, "different seeds must diverge");
    }

    #[test]
    fn run_shards_preserves_shard_order() {
        let results = run_shards(4, 10, |r| (r.start, r.end));
        assert_eq!(results.len(), 4);
        assert_eq!(results[0].0, 0);
        assert_eq!(results.last().unwrap().1, 10);
        for w in results.windows(2) {
            assert_eq!(w[0].1, w[1].0);
        }
    }
}
