//! Specialized gate kernels and single-qubit gate fusion.
//!
//! [`StateVector::apply_gate`](crate::StateVector::apply_gate) routes every
//! gate through a generic dispatch that re-derives the gate's matrix (trig
//! included) on every application. The Monte-Carlo executor replays the same
//! circuit thousands of times, so this module compiles a circuit **once**
//! into a list of [`Kernel`]s:
//!
//! * **diagonal kernels** (`Z`/`S`/`T`/`Rz`/`Phase`/`CZ`/`CP`/`RZZ`) are pure
//!   phase multiplications — no amplitude mixing, and phase gates touch only
//!   the `|1>` half of the state;
//! * **permutation kernels** (`X`/`CX`/`SWAP`) are index bit-flips — element
//!   swaps with no arithmetic at all;
//! * **general 1q kernels** carry a precomputed 2x2 matrix, so `Rx`/`Ry`/`U`
//!   pay their trig once per circuit instead of once per shot.
//!
//! On top of specialization, [`CompiledCircuit::compile_fused`] merges runs of consecutive
//! single-qubit gates on the same wire into one 2x2 matrix (gates on other
//! wires may interleave — disjoint-support unitaries commute). Fusion never
//! crosses a measurement, reset, or classically-conditioned instruction.

use crate::complex::C64;
use crate::state::StateVector;
use caqr_circuit::{Circuit, Gate, Instruction};

/// One precompiled state-vector operation.
///
/// Every kernel is unitary; measurement and reset stay in the executor,
/// which owns the randomness.
#[derive(Debug, Clone, PartialEq)]
pub enum Kernel {
    /// A general single-qubit unitary (possibly a fused run of gates).
    U1 {
        /// Target qubit.
        q: usize,
        /// Row-major 2x2 matrix.
        m: [[C64; 2]; 2],
    },
    /// A diagonal single-qubit gate `diag(m0, m1)` with `m0 != 1`.
    Diag {
        /// Target qubit.
        q: usize,
        /// Factor on the `|0>` amplitudes.
        m0: C64,
        /// Factor on the `|1>` amplitudes.
        m1: C64,
    },
    /// A phase gate `diag(1, m1)`: only the `|1>` half is touched.
    Phase {
        /// Target qubit.
        q: usize,
        /// Factor on the `|1>` amplitudes.
        m1: C64,
    },
    /// Pauli-X as an index bit-flip (no arithmetic).
    FlipX {
        /// Target qubit.
        q: usize,
    },
    /// Hadamard as lane-wise sums and a real scale (no complex products).
    Had {
        /// Target qubit.
        q: usize,
    },
    /// CNOT as a conditional index bit-flip.
    Cx {
        /// Control qubit.
        c: usize,
        /// Target qubit.
        t: usize,
    },
    /// SWAP as a pairwise index exchange.
    Swap {
        /// First qubit.
        a: usize,
        /// Second qubit.
        b: usize,
    },
    /// Controlled phase on the `|11>` subspace.
    CPhase {
        /// First qubit (symmetric).
        a: usize,
        /// Second qubit.
        b: usize,
        /// Phase factor.
        phase: C64,
    },
    /// `exp(-i angle/2 Z (x) Z)`: a phase keyed on the parity of two bits.
    Rzz {
        /// First qubit (symmetric).
        a: usize,
        /// Second qubit.
        b: usize,
        /// Factor on even-parity basis states.
        even: C64,
        /// Factor on odd-parity basis states.
        odd: C64,
    },
    /// A fused two-qubit unitary: a full 4x4 matrix over the pair,
    /// indexed by the basis value `a_val + 2*b_val`.
    U2 {
        /// First qubit (weight 1 in the basis index).
        a: usize,
        /// Second qubit (weight 2 in the basis index).
        b: usize,
        /// Row-major 4x4 matrix.
        m: [[C64; 4]; 4],
    },
    /// A diagonal fused pair: per-basis phase factors indexed by
    /// `a_val + 2*b_val` (runs of CZ/CP/RZZ and diagonal 1q gates).
    Diag2 {
        /// First qubit (weight 1 in the basis index).
        a: usize,
        /// Second qubit (weight 2 in the basis index).
        b: usize,
        /// Diagonal factors.
        d: [C64; 4],
    },
    /// A block-diagonal (controlled-form) fused pair: `m0` acts on `t`
    /// where `c = 0` and `m1` where `c = 1` — two half-space 1q sweeps
    /// instead of a full 4x4, the common shape for fused CX + 1q runs.
    C2 {
        /// Control qubit (selects the matrix, never mixed).
        c: usize,
        /// Target qubit.
        t: usize,
        /// Matrix on `t` in the `c = 0` half-space.
        m0: [[C64; 2]; 2],
        /// Matrix on `t` in the `c = 1` half-space.
        m1: [[C64; 2]; 2],
    },
}

impl Kernel {
    /// Compiles a unitary gate into its specialized kernel.
    ///
    /// # Panics
    ///
    /// Panics on `Measure`/`Reset` — those are not unitary kernels.
    pub fn from_gate(gate: &Gate, qubits: &[usize]) -> Kernel {
        match *gate {
            Gate::X => Kernel::FlipX { q: qubits[0] },
            Gate::Z => Kernel::Phase {
                q: qubits[0],
                m1: C64::real(-1.0),
            },
            Gate::S => Kernel::Phase {
                q: qubits[0],
                m1: C64::I,
            },
            Gate::Sdg => Kernel::Phase {
                q: qubits[0],
                m1: -C64::I,
            },
            Gate::T => Kernel::Phase {
                q: qubits[0],
                m1: C64::cis(std::f64::consts::FRAC_PI_4),
            },
            Gate::Tdg => Kernel::Phase {
                q: qubits[0],
                m1: C64::cis(-std::f64::consts::FRAC_PI_4),
            },
            Gate::Phase(a) => Kernel::Phase {
                q: qubits[0],
                m1: C64::cis(a),
            },
            Gate::Rz(a) => Kernel::Diag {
                q: qubits[0],
                m0: C64::cis(-a / 2.0),
                m1: C64::cis(a / 2.0),
            },
            Gate::H => Kernel::Had { q: qubits[0] },
            Gate::Y | Gate::Rx(_) | Gate::Ry(_) | Gate::U(..) => Kernel::U1 {
                q: qubits[0],
                m: gate_matrix(gate),
            },
            Gate::Cx => Kernel::Cx {
                c: qubits[0],
                t: qubits[1],
            },
            Gate::Cz => Kernel::CPhase {
                a: qubits[0],
                b: qubits[1],
                phase: C64::real(-1.0),
            },
            Gate::Cp(a) => Kernel::CPhase {
                a: qubits[0],
                b: qubits[1],
                phase: C64::cis(a),
            },
            Gate::Rzz(a) => Kernel::Rzz {
                a: qubits[0],
                b: qubits[1],
                even: C64::cis(-a / 2.0),
                odd: C64::cis(a / 2.0),
            },
            Gate::Swap => Kernel::Swap {
                a: qubits[0],
                b: qubits[1],
            },
            Gate::Measure | Gate::Reset => panic!("non-unitary {gate} has no kernel"),
        }
    }

    /// Applies the kernel to `state`.
    pub fn apply(&self, state: &mut StateVector) {
        match *self {
            Kernel::U1 { q, m } => state.apply_1q(q, m),
            Kernel::Diag { q, m0, m1 } => state.diag_1q(q, m0, m1),
            Kernel::Phase { q, m1 } => state.phase_1q(q, m1),
            Kernel::FlipX { q } => state.flip_1q(q),
            Kernel::Had { q } => state.apply_h(q),
            Kernel::Cx { c, t } => state.apply_cx(c, t),
            Kernel::Swap { a, b } => state.apply_swap(a, b),
            Kernel::CPhase { a, b, phase } => state.apply_cphase(a, b, phase),
            Kernel::Rzz { a, b, even, odd } => state.apply_rzz_factors(a, b, even, odd),
            Kernel::U2 { a, b, ref m } => state.apply_2q(a, b, m),
            Kernel::Diag2 { a, b, ref d } => state.diag_2q(a, b, d),
            Kernel::C2 {
                c,
                t,
                ref m0,
                ref m1,
            } => state.apply_c2(c, t, m0, m1),
        }
    }
}

/// The 2x2 matrix of a single-qubit gate (same formulas as the generic
/// `apply_gate` path, so kernelized and generic execution agree bit for bit
/// on unfused gates).
fn gate_matrix(gate: &Gate) -> [[C64; 2]; 2] {
    let s2 = std::f64::consts::FRAC_1_SQRT_2;
    match *gate {
        Gate::H => [
            [C64::real(s2), C64::real(s2)],
            [C64::real(s2), C64::real(-s2)],
        ],
        Gate::X => [[C64::ZERO, C64::ONE], [C64::ONE, C64::ZERO]],
        Gate::Y => [[C64::ZERO, -C64::I], [C64::I, C64::ZERO]],
        Gate::Z => [[C64::ONE, C64::ZERO], [C64::ZERO, C64::real(-1.0)]],
        Gate::S => [[C64::ONE, C64::ZERO], [C64::ZERO, C64::I]],
        Gate::Sdg => [[C64::ONE, C64::ZERO], [C64::ZERO, -C64::I]],
        Gate::T => [
            [C64::ONE, C64::ZERO],
            [C64::ZERO, C64::cis(std::f64::consts::FRAC_PI_4)],
        ],
        Gate::Tdg => [
            [C64::ONE, C64::ZERO],
            [C64::ZERO, C64::cis(-std::f64::consts::FRAC_PI_4)],
        ],
        Gate::Rx(a) => {
            let (c, s) = ((a / 2.0).cos(), (a / 2.0).sin());
            [
                [C64::real(c), C64::new(0.0, -s)],
                [C64::new(0.0, -s), C64::real(c)],
            ]
        }
        Gate::Ry(a) => {
            let (c, s) = ((a / 2.0).cos(), (a / 2.0).sin());
            [[C64::real(c), C64::real(-s)], [C64::real(s), C64::real(c)]]
        }
        Gate::Rz(a) => [
            [C64::cis(-a / 2.0), C64::ZERO],
            [C64::ZERO, C64::cis(a / 2.0)],
        ],
        Gate::Phase(a) => [[C64::ONE, C64::ZERO], [C64::ZERO, C64::cis(a)]],
        Gate::U(theta, phi, lambda) => {
            let (c, s) = ((theta / 2.0).cos(), (theta / 2.0).sin());
            [
                [C64::real(c), -(C64::cis(lambda).scale(s))],
                [C64::cis(phi).scale(s), C64::cis(phi + lambda).scale(c)],
            ]
        }
        _ => panic!("{gate} is not a single-qubit unitary"),
    }
}

/// `b * a` for row-major 2x2 complex matrices (`a` applied first).
fn mat_mul(b: [[C64; 2]; 2], a: [[C64; 2]; 2]) -> [[C64; 2]; 2] {
    let mut out = [[C64::ZERO; 2]; 2];
    for (i, row) in out.iter_mut().enumerate() {
        for (j, cell) in row.iter_mut().enumerate() {
            *cell = b[i][0] * a[0][j] + b[i][1] * a[1][j];
        }
    }
    out
}

/// `b * a` for row-major 4x4 complex matrices (`a` applied first).
fn mat_mul4(b: &[[C64; 4]; 4], a: &[[C64; 4]; 4]) -> [[C64; 4]; 4] {
    let mut out = [[C64::ZERO; 4]; 4];
    for (i, row) in out.iter_mut().enumerate() {
        for (j, cell) in row.iter_mut().enumerate() {
            let mut acc = C64::ZERO;
            for k in 0..4 {
                acc += b[i][k] * a[k][j];
            }
            *cell = acc;
        }
    }
    out
}

fn identity4() -> [[C64; 4]; 4] {
    let mut m = [[C64::ZERO; 4]; 4];
    for (i, row) in m.iter_mut().enumerate() {
        row[i] = C64::ONE;
    }
    m
}

/// Lifts a 1q matrix acting on the weight-1 (`pos = 0`) or weight-2
/// (`pos = 1`) slot of a pair into the 4x4 `a_val + 2*b_val` basis.
fn lift_1q(m: &[[C64; 2]; 2], pos: usize) -> [[C64; 4]; 4] {
    let mut out = [[C64::ZERO; 4]; 4];
    let (act, spec) = if pos == 0 { (1usize, 2usize) } else { (2, 1) };
    for (i, row) in out.iter_mut().enumerate() {
        for (j, cell) in row.iter_mut().enumerate() {
            if i & spec == j & spec {
                *cell = m[usize::from(i & act != 0)][usize::from(j & act != 0)];
            }
        }
    }
    out
}

/// The 4x4 matrix of a fusible two-qubit kernel in the block basis
/// `a_val + 2*b_val`, where `block_a` is the block's weight-1 wire.
fn kernel_mat4(k: &Kernel, block_a: usize) -> [[C64; 4]; 4] {
    let mut out = [[C64::ZERO; 4]; 4];
    match *k {
        Kernel::Cx { c, .. } => {
            let (cw, tw) = if c == block_a {
                (1usize, 2usize)
            } else {
                (2, 1)
            };
            // CX is a self-inverse permutation, so the row/column mapping
            // is an involution and row-major fill is equivalent.
            for (i, row) in out.iter_mut().enumerate() {
                let j = if i & cw != 0 { i ^ tw } else { i };
                row[j] = C64::ONE;
            }
        }
        // CPhase and RZZ are symmetric in their operands.
        Kernel::CPhase { phase, .. } => {
            for (j, row) in out.iter_mut().enumerate() {
                row[j] = if j == 3 { phase } else { C64::ONE };
            }
        }
        Kernel::Rzz { even, odd, .. } => {
            for (j, row) in out.iter_mut().enumerate() {
                row[j] = if (j & 1) ^ (j >> 1) == 0 { even } else { odd };
            }
        }
        _ => unreachable!("{k:?} is not a fusible two-qubit kernel"),
    }
    out
}

/// One step of a compiled circuit: a unitary kernel (optionally
/// classically conditioned) or a stochastic boundary.
///
/// `Unitary` inlines its (large) fused [`Kernel`] by design: ops live in
/// one contiguous `Vec` walked every shot, and boxing the kernel would
/// trade the size for a pointer chase on the hot path.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum Op {
    /// A unitary kernel. `cond` is the classical bit that gates it, and
    /// `index` is the originating instruction index (the *last* fused
    /// instruction) — the noisy executor uses it to look up error rates.
    Unitary {
        /// The precompiled kernel.
        kernel: Kernel,
        /// Classical condition bit, if any.
        cond: Option<usize>,
        /// Originating instruction index.
        index: usize,
    },
    /// A projective measurement.
    Measure {
        /// Measured qubit.
        q: usize,
        /// Destination classical bit.
        clbit: usize,
        /// Originating instruction index.
        index: usize,
    },
    /// An unconditional reset to `|0>`.
    Reset {
        /// Reset qubit.
        q: usize,
        /// Originating instruction index.
        index: usize,
    },
}

/// Fusion statistics for instrumentation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FuseStats {
    /// Unitary gates in the source circuit.
    pub gates_in: usize,
    /// Unitary kernels emitted after fusion.
    pub kernels_out: usize,
}

/// A circuit compiled into kernels, ready for repeated replay.
#[derive(Debug, Clone)]
pub struct CompiledCircuit {
    ops: Vec<Op>,
    num_qubits: usize,
    stats: FuseStats,
}

impl CompiledCircuit {
    /// Compiles `circuit` one instruction per kernel (no fusion). This is
    /// the representation the **noisy** executor needs: stochastic error
    /// channels interleave between instructions, so gates cannot merge
    /// across them, but each still gets its specialized kernel and its
    /// matrix/trig precomputed once.
    pub fn compile(circuit: &Circuit) -> Self {
        let order: Vec<usize> = (0..circuit.len()).collect();
        Self::compile_ordered(circuit, &order)
    }

    /// [`CompiledCircuit::compile`] over an explicit execution order.
    ///
    /// `order` is a permutation of instruction indices; each emitted op
    /// keeps its **original** index, so noise tables precomputed on the
    /// source schedule still line up. The executor uses this to defer
    /// measurements of retired qubits to the end of the program.
    ///
    /// # Panics
    ///
    /// Panics if `order` indexes out of range.
    pub fn compile_ordered(circuit: &Circuit, order: &[usize]) -> Self {
        let instrs = circuit.instructions();
        let mut ops = Vec::with_capacity(order.len());
        let mut stats = FuseStats::default();
        for &index in order {
            let instr = &instrs[index];
            ops.push(match instr.gate {
                Gate::Measure => Op::Measure {
                    q: instr.qubits[0].index(),
                    clbit: instr.clbit.expect("measure has a clbit").index(),
                    index,
                },
                Gate::Reset => Op::Reset {
                    q: instr.qubits[0].index(),
                    index,
                },
                ref gate => {
                    stats.gates_in += 1;
                    stats.kernels_out += 1;
                    Op::Unitary {
                        kernel: Kernel::from_gate(gate, &operand_indices(instr)),
                        cond: instr.condition.map(|c| c.index()),
                        index,
                    }
                }
            });
        }
        CompiledCircuit {
            ops,
            num_qubits: circuit.num_qubits(),
            stats,
        }
    }

    /// Compiles `circuit` with single-qubit fusion: runs of unconditioned
    /// 1q gates on the same wire collapse into one kernel, floating past
    /// interleaved operations on *other* wires (disjoint-support unitaries
    /// commute). Every pending run flushes at a measurement, reset, or
    /// conditioned instruction, so no kernel crosses a stochastic or
    /// classically-dependent boundary. Only valid for **noiseless**
    /// execution, where nothing stochastic sits between gates.
    pub fn compile_fused(circuit: &Circuit) -> Self {
        let order: Vec<usize> = (0..circuit.len()).collect();
        Self::compile_fused_ordered(circuit, &order)
    }

    /// [`CompiledCircuit::compile_fused`] over an explicit execution order
    /// (see [`CompiledCircuit::compile_ordered`]). Fusion operates on the
    /// reordered sequence: with measurements deferred to the tail, runs on
    /// a wire fuse across points where a measurement of another qubit used
    /// to sit.
    ///
    /// # Panics
    ///
    /// Panics if `order` indexes out of range.
    pub fn compile_fused_ordered(circuit: &Circuit, order: &[usize]) -> Self {
        let instrs = circuit.instructions();
        let mut fuser = PairFuser::new(circuit.num_qubits());
        let mut ops: Vec<Op> = Vec::with_capacity(order.len());
        let mut stats = FuseStats::default();
        for &index in order {
            let instr = &instrs[index];
            match instr.gate {
                Gate::Measure => {
                    fuser.flush_all(&mut ops, &mut stats);
                    ops.push(Op::Measure {
                        q: instr.qubits[0].index(),
                        clbit: instr.clbit.expect("measure has a clbit").index(),
                        index,
                    });
                }
                Gate::Reset => {
                    fuser.flush_all(&mut ops, &mut stats);
                    ops.push(Op::Reset {
                        q: instr.qubits[0].index(),
                        index,
                    });
                }
                ref gate if instr.condition.is_some() => {
                    // A conditioned gate depends on the classical record;
                    // nothing may float past it, and it never fuses.
                    fuser.flush_all(&mut ops, &mut stats);
                    stats.gates_in += 1;
                    stats.kernels_out += 1;
                    ops.push(Op::Unitary {
                        kernel: Kernel::from_gate(gate, &operand_indices(instr)),
                        cond: instr.condition.map(|c| c.index()),
                        index,
                    });
                }
                ref gate if gate.is_two_qubit() => {
                    let (a, b) = (instr.qubits[0].index(), instr.qubits[1].index());
                    stats.gates_in += 1;
                    if matches!(gate, Gate::Swap) {
                        // A SWAP kernel is an O(1) wire relabel; folding it
                        // into a 4x4 would turn free bookkeeping into
                        // amplitude sweeps.
                        fuser.flush_wire(a, &mut ops, &mut stats);
                        fuser.flush_wire(b, &mut ops, &mut stats);
                        stats.kernels_out += 1;
                        ops.push(Op::Unitary {
                            kernel: Kernel::Swap { a, b },
                            cond: None,
                            index,
                        });
                    } else {
                        let kernel = Kernel::from_gate(gate, &[a, b]);
                        fuser.absorb2(kernel, a, b, index, &mut ops, &mut stats);
                    }
                }
                ref gate => {
                    stats.gates_in += 1;
                    fuser.absorb1(
                        instr.qubits[0].index(),
                        gate_matrix(gate),
                        gate.is_diagonal(),
                        index,
                    );
                }
            }
        }
        fuser.flush_all(&mut ops, &mut stats);
        CompiledCircuit {
            ops,
            num_qubits: circuit.num_qubits(),
            stats,
        }
    }

    /// The compiled operations in execution order.
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// The width of the source circuit.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Fusion statistics.
    pub fn stats(&self) -> FuseStats {
        self.stats
    }

    /// The number of leading ops before the first measurement or reset —
    /// the deterministic prefix a noiseless executor may snapshot.
    pub fn prefix_ops(&self) -> usize {
        self.ops
            .iter()
            .position(|op| matches!(op, Op::Measure { .. } | Op::Reset { .. }))
            .unwrap_or(self.ops.len())
    }

    /// Applies every unitary op to `state`, skipping conditioned kernels
    /// whose bit is 0 in `clreg` and panicking on measurement/reset —
    /// a convenience for tests and for building prefix snapshots.
    ///
    /// # Panics
    ///
    /// Panics if the program contains a measurement or reset.
    pub fn apply_unitaries(&self, state: &mut StateVector, clreg: u64) {
        for op in &self.ops {
            match op {
                Op::Unitary { kernel, cond, .. } => {
                    if let Some(bit) = cond {
                        if clreg >> bit & 1 == 0 {
                            continue;
                        }
                    }
                    kernel.apply(state);
                }
                Op::Measure { .. } | Op::Reset { .. } => {
                    panic!("apply_unitaries on a circuit with measurements")
                }
            }
        }
    }
}

/// Per-wire pending fusion state: the accumulated 2x2 matrix, whether any
/// absorbed gate was non-diagonal, and the first/last instruction indices
/// of the run.
struct Pending {
    m: [[C64; 2]; 2],
    diagonal: bool,
    first: usize,
    last: usize,
}

/// A pending fused pair block over wires `(a, b)`: the accumulated 4x4
/// matrix in the `a_val + 2*b_val` basis, plus the bookkeeping needed to
/// pick the cheapest kernel at flush time.
struct PairBlock {
    a: usize,
    b: usize,
    m: [[C64; 4]; 4],
    /// Every folded factor was diagonal.
    diagonal: bool,
    /// Two-qubit kernels folded in.
    twoq: usize,
    /// Whether any single-qubit content was folded or lifted in.
    mixed1q: bool,
    /// The first folded 2q kernel, emitted verbatim when it stayed alone.
    solo: Kernel,
    first: usize,
    last: usize,
}

/// Greedy 1q + pair fuser. Single-qubit runs accumulate per wire exactly
/// like the original fuser; when a two-qubit gate arrives, the runs on
/// its wires lift into a 4x4 pair block that keeps absorbing 1q and 2q
/// gates on that pair until a conflicting pair, SWAP, or boundary flushes
/// it. Disjoint-support unitaries commute, so interleaved work on other
/// wires floats past pending runs and blocks unchanged.
struct PairFuser {
    pending: Vec<Option<Pending>>,
    blocks: Vec<Option<PairBlock>>,
    wire_block: Vec<Option<usize>>,
}

impl PairFuser {
    fn new(num_qubits: usize) -> Self {
        PairFuser {
            pending: (0..num_qubits).map(|_| None).collect(),
            blocks: Vec::new(),
            wire_block: vec![None; num_qubits],
        }
    }

    fn absorb1(&mut self, q: usize, m: [[C64; 2]; 2], diagonal: bool, index: usize) {
        if let Some(bi) = self.wire_block[q] {
            let blk = self.blocks[bi]
                .as_mut()
                .expect("wire points at a live block");
            let pos = usize::from(q == blk.b);
            blk.m = mat_mul4(&lift_1q(&m, pos), &blk.m);
            blk.diagonal &= diagonal;
            blk.mixed1q = true;
            blk.last = index;
            return;
        }
        match &mut self.pending[q] {
            Some(p) => {
                p.m = mat_mul(m, p.m);
                p.diagonal &= diagonal;
                p.last = index;
            }
            slot => {
                *slot = Some(Pending {
                    m,
                    diagonal,
                    first: index,
                    last: index,
                });
            }
        }
    }

    /// Absorbs a fusible two-qubit kernel (CX/CZ/CP/RZZ) on `(a, b)`:
    /// folds into the live block on that exact pair, otherwise flushes
    /// whatever holds either wire and opens a fresh block seeded with the
    /// wires' pending 1q runs.
    fn absorb2(
        &mut self,
        kernel: Kernel,
        a: usize,
        b: usize,
        index: usize,
        ops: &mut Vec<Op>,
        stats: &mut FuseStats,
    ) {
        let diagonal2 = matches!(kernel, Kernel::CPhase { .. } | Kernel::Rzz { .. });
        match (self.wire_block[a], self.wire_block[b]) {
            (Some(i), Some(j)) if i == j => {
                let blk = self.blocks[i]
                    .as_mut()
                    .expect("wire points at a live block");
                blk.m = mat_mul4(&kernel_mat4(&kernel, blk.a), &blk.m);
                blk.diagonal &= diagonal2;
                blk.twoq += 1;
                blk.last = index;
                return;
            }
            (ia, ib) => {
                if let Some(i) = ia {
                    self.flush_block(i, ops, stats);
                }
                if let Some(j) = ib {
                    self.flush_block(j, ops, stats);
                }
            }
        }
        let mut m = identity4();
        let mut diagonal = diagonal2;
        let mut mixed1q = false;
        let mut first = index;
        for (pos, q) in [(0usize, a), (1, b)] {
            if let Some(p) = self.pending[q].take() {
                m = mat_mul4(&lift_1q(&p.m, pos), &m);
                diagonal &= p.diagonal;
                mixed1q = true;
                first = first.min(p.first);
            }
        }
        m = mat_mul4(&kernel_mat4(&kernel, a), &m);
        let slot = self
            .blocks
            .iter()
            .position(Option::is_none)
            .unwrap_or_else(|| {
                self.blocks.push(None);
                self.blocks.len() - 1
            });
        self.blocks[slot] = Some(PairBlock {
            a,
            b,
            m,
            diagonal,
            twoq: 1,
            mixed1q,
            solo: kernel,
            first,
            last: index,
        });
        self.wire_block[a] = Some(slot);
        self.wire_block[b] = Some(slot);
    }

    fn flush_block(&mut self, i: usize, ops: &mut Vec<Op>, stats: &mut FuseStats) {
        let blk = self.blocks[i].take().expect("flushing a live block");
        self.wire_block[blk.a] = None;
        self.wire_block[blk.b] = None;
        stats.kernels_out += 1;
        ops.push(Op::Unitary {
            index: blk.last,
            kernel: specialize_pair(blk),
            cond: None,
        });
    }

    fn flush_wire(&mut self, q: usize, ops: &mut Vec<Op>, stats: &mut FuseStats) {
        if let Some(bi) = self.wire_block[q] {
            self.flush_block(bi, ops, stats);
        } else if let Some(p) = self.pending[q].take() {
            stats.kernels_out += 1;
            ops.push(Op::Unitary {
                kernel: specialize(q, &p),
                cond: None,
                index: p.last,
            });
        }
    }

    /// Flushes every pending run and block, in order of each one's first
    /// gate, so emission is deterministic (the runs act on disjoint wires,
    /// so any order is mathematically equivalent).
    fn flush_all(&mut self, ops: &mut Vec<Op>, stats: &mut FuseStats) {
        // A short-lived sorting scratch; the PairBlock payload is large
        // but there is at most one entry per wire, so no boxing.
        #[allow(clippy::large_enum_variant)]
        enum Run {
            One(usize, Pending),
            Pair(PairBlock),
        }
        let mut runs: Vec<(usize, Run)> = Vec::new();
        for (q, slot) in self.pending.iter_mut().enumerate() {
            if let Some(p) = slot.take() {
                runs.push((p.first, Run::One(q, p)));
            }
        }
        for i in 0..self.blocks.len() {
            if let Some(b) = self.blocks[i].take() {
                self.wire_block[b.a] = None;
                self.wire_block[b.b] = None;
                runs.push((b.first, Run::Pair(b)));
            }
        }
        runs.sort_by_key(|(first, _)| *first);
        for (_, run) in runs {
            stats.kernels_out += 1;
            let (kernel, index) = match run {
                Run::One(q, p) => (specialize(q, &p), p.last),
                Run::Pair(b) => {
                    let last = b.last;
                    (specialize_pair(b), last)
                }
            };
            ops.push(Op::Unitary {
                kernel,
                cond: None,
                index,
            });
        }
    }
}

/// Picks the cheapest kernel for a fused pair block: the original kernel
/// when the block holds exactly one unmixed 2q gate, a diagonal sweep
/// when every factor was diagonal, a controlled-form pair when the matrix
/// is block-diagonal in one wire, the full 4x4 otherwise.
fn specialize_pair(blk: PairBlock) -> Kernel {
    if blk.twoq == 1 && !blk.mixed1q {
        return blk.solo;
    }
    let m = &blk.m;
    if blk.diagonal {
        return Kernel::Diag2 {
            a: blk.a,
            b: blk.b,
            d: [m[0][0], m[1][1], m[2][2], m[3][3]],
        };
    }
    // Block-diagonal in the weight-2 wire: nothing mixes the b bit, so b
    // acts as a control selecting a 2x2 on a.
    if (0..4).all(|i| (0..4).all(|j| (i ^ j) & 2 == 0 || m[i][j] == C64::ZERO)) {
        return Kernel::C2 {
            c: blk.b,
            t: blk.a,
            m0: [[m[0][0], m[0][1]], [m[1][0], m[1][1]]],
            m1: [[m[2][2], m[2][3]], [m[3][2], m[3][3]]],
        };
    }
    // Block-diagonal in the weight-1 wire.
    if (0..4).all(|i| (0..4).all(|j| (i ^ j) & 1 == 0 || m[i][j] == C64::ZERO)) {
        return Kernel::C2 {
            c: blk.a,
            t: blk.b,
            m0: [[m[0][0], m[0][2]], [m[2][0], m[2][2]]],
            m1: [[m[1][1], m[1][3]], [m[3][1], m[3][3]]],
        };
    }
    Kernel::U2 {
        a: blk.a,
        b: blk.b,
        m: blk.m,
    }
}

/// Picks the cheapest kernel for a fused run: phase-only when the matrix
/// stayed diagonal with a unit `|0>` factor, diagonal when off-diagonals
/// vanished, the lane-wise Hadamard when the product is exactly H,
/// general otherwise.
fn specialize(q: usize, p: &Pending) -> Kernel {
    if p.diagonal {
        if p.m[0][0] == C64::ONE {
            Kernel::Phase { q, m1: p.m[1][1] }
        } else {
            Kernel::Diag {
                q,
                m0: p.m[0][0],
                m1: p.m[1][1],
            }
        }
    } else {
        let s = std::f64::consts::FRAC_1_SQRT_2;
        let h = [[C64::real(s), C64::real(s)], [C64::real(s), C64::real(-s)]];
        let x = [[C64::ZERO, C64::ONE], [C64::ONE, C64::ZERO]];
        if p.m == h {
            Kernel::Had { q }
        } else if p.m == x {
            Kernel::FlipX { q }
        } else {
            Kernel::U1 { q, m: p.m }
        }
    }
}

/// Conjugates the Pauli `X^x Z^z` (logical-qubit masks, global phase
/// dropped) leftward through `kernel`: returns `(x', z')` such that
/// `K * P = P' * K` up to global phase, or `None` when the conjugate
/// leaves the Pauli group (a non-Clifford kernel met an anticommuting
/// component, e.g. `T` against an `X`). Global phases are unobservable —
/// every later probability is an `|amp|^2` — so dropping them keeps
/// histograms bit-identical.
pub(crate) fn conjugate_pauli(kernel: &Kernel, x: u64, z: u64) -> Option<(u64, u64)> {
    let bit = |q: usize| 1u64 << q;
    Some(match *kernel {
        Kernel::FlipX { .. } => (x, z),
        Kernel::Phase { q, m1 } => {
            if x & bit(q) == 0 || m1 == C64::real(-1.0) {
                (x, z)
            } else if m1 == C64::I || m1 == -C64::I {
                // S / S-dagger: X -> +-Y.
                (x, z ^ bit(q))
            } else {
                return None;
            }
        }
        Kernel::Diag { q, .. } => {
            if x & bit(q) == 0 {
                (x, z)
            } else {
                return None;
            }
        }
        Kernel::Had { q } => {
            let (xb, zb) = ((x >> q) & 1, (z >> q) & 1);
            ((x & !bit(q)) | (zb << q), (z & !bit(q)) | (xb << q))
        }
        Kernel::U1 { q, .. } => {
            if (x | z) & bit(q) == 0 {
                (x, z)
            } else {
                return None;
            }
        }
        Kernel::Cx { c, t } => {
            let mut nx = x;
            let mut nz = z;
            if x & bit(c) != 0 {
                nx ^= bit(t);
            }
            if z & bit(t) != 0 {
                nz ^= bit(c);
            }
            (nx, nz)
        }
        Kernel::Swap { a, b } => {
            let swap = |m: u64| {
                let (ab, bb) = ((m >> a) & 1, (m >> b) & 1);
                (m & !(bit(a) | bit(b))) | (bb << a) | (ab << b)
            };
            (swap(x), swap(z))
        }
        Kernel::CPhase { a, b, phase } => {
            if x & (bit(a) | bit(b)) == 0 {
                (x, z)
            } else if phase == C64::real(-1.0) {
                // CZ: X on one wire grows a Z on the other.
                let mut nz = z;
                if x & bit(a) != 0 {
                    nz ^= bit(b);
                }
                if x & bit(b) != 0 {
                    nz ^= bit(a);
                }
                (x, nz)
            } else {
                return None;
            }
        }
        Kernel::Rzz { a, b, .. } => {
            if x & (bit(a) | bit(b)) == 0 {
                (x, z)
            } else {
                return None;
            }
        }
        Kernel::U2 { .. } | Kernel::Diag2 { .. } | Kernel::C2 { .. } => return None,
    })
}

fn operand_indices(instr: &Instruction) -> Vec<usize> {
    instr.qubits.iter().map(|q| q.index()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use caqr_circuit::{Clbit, Qubit};

    fn q(i: usize) -> Qubit {
        Qubit::new(i)
    }

    /// Reference: run the circuit's unitaries through the generic path.
    fn reference_state(circuit: &Circuit) -> StateVector {
        let mut s = StateVector::zero(circuit.num_qubits());
        for instr in circuit.iter() {
            let ops: Vec<usize> = instr.qubits.iter().map(|x| x.index()).collect();
            s.apply_gate(&instr.gate, &ops);
        }
        s
    }

    fn assert_states_close(a: &StateVector, b: &StateVector, tol: f64) {
        for i in 0..1usize << a.num_qubits() {
            let d = (a.amplitude(i) - b.amplitude(i)).abs2();
            assert!(d < tol * tol, "index {i}: |diff|^2 = {d}");
        }
    }

    fn mixed_circuit() -> Circuit {
        let mut c = Circuit::new(3, 0);
        c.h(q(0));
        c.t(q(0));
        c.rz(0.3, q(1));
        c.z(q(1));
        c.cx(q(0), q(1));
        c.ry(0.7, q(2));
        c.rx(0.2, q(2));
        c.swap(q(1), q(2));
        c.cp(0.9, q(0), q(2));
        c.rzz(1.1, q(0), q(1));
        c.x(q(0));
        c.h(q(0));
        c
    }

    #[test]
    fn unfused_kernels_match_generic_apply() {
        let c = mixed_circuit();
        let mut s = StateVector::zero(3);
        for op in CompiledCircuit::compile(&c).ops() {
            match op {
                Op::Unitary { kernel, .. } => kernel.apply(&mut s),
                _ => unreachable!(),
            }
        }
        // Unfused kernels use identical arithmetic: exact agreement.
        assert_states_close(&s, &reference_state(&c), 1e-15);
    }

    #[test]
    fn fused_program_matches_reference() {
        let c = mixed_circuit();
        let compiled = CompiledCircuit::compile_fused(&c);
        let mut s = StateVector::zero(3);
        compiled.apply_unitaries(&mut s, 0);
        assert_states_close(&s, &reference_state(&c), 1e-12);
        let stats = compiled.stats();
        assert!(
            stats.kernels_out < stats.gates_in,
            "fusion merged nothing: {stats:?}"
        );
    }

    #[test]
    fn fusion_merges_runs_across_other_wires() {
        let mut c = Circuit::new(2, 0);
        c.h(q(0));
        c.rz(0.2, q(1)); // interleaved on another wire
        c.t(q(0));
        c.h(q(0));
        let compiled = CompiledCircuit::compile_fused(&c);
        // h-t-h on wire 0 fuse to one kernel; rz on wire 1 is its own.
        assert_eq!(compiled.stats().kernels_out, 2);
        let mut s = StateVector::zero(2);
        compiled.apply_unitaries(&mut s, 0);
        assert_states_close(&s, &reference_state(&c), 1e-12);
    }

    #[test]
    fn diagonal_runs_stay_diagonal() {
        let mut c = Circuit::new(1, 0);
        c.t(q(0));
        c.z(q(0));
        c.rz(0.4, q(0));
        let compiled = CompiledCircuit::compile_fused(&c);
        assert_eq!(compiled.ops().len(), 1);
        match &compiled.ops()[0] {
            Op::Unitary {
                kernel: Kernel::Diag { .. } | Kernel::Phase { .. },
                ..
            } => {}
            other => panic!("expected a diagonal kernel, got {other:?}"),
        }
    }

    #[test]
    fn fusion_stops_at_measure_and_condition() {
        let mut c = Circuit::new(1, 1);
        c.h(q(0));
        c.measure(q(0), Clbit::new(0));
        c.push(Instruction {
            gate: Gate::X,
            qubits: vec![q(0)],
            clbit: None,
            condition: Some(Clbit::new(0)),
        });
        c.h(q(0));
        let compiled = CompiledCircuit::compile_fused(&c);
        // h | measure | cond-x | h: nothing fuses.
        assert_eq!(compiled.ops().len(), 4);
        assert_eq!(compiled.prefix_ops(), 1);
    }

    #[test]
    fn prefix_covers_whole_circuit_without_measurement() {
        let c = mixed_circuit();
        let compiled = CompiledCircuit::compile_fused(&c);
        assert_eq!(compiled.prefix_ops(), compiled.ops().len());
    }

    #[test]
    #[should_panic(expected = "non-unitary")]
    fn measure_has_no_kernel() {
        Kernel::from_gate(&Gate::Measure, &[0]);
    }

    /// |++> on two wires — pair-kernel tests start from a superposition so
    /// diagonal and controlled sweeps have something to act on.
    fn plus_plus() -> StateVector {
        let mut s = StateVector::zero(2);
        s.apply_gate(&Gate::H, &[0]);
        s.apply_gate(&Gate::H, &[1]);
        s
    }

    #[test]
    fn pair_fusion_merges_cx_chains_into_one_kernel() {
        let mut c = Circuit::new(2, 0);
        c.h(q(0));
        c.cx(q(0), q(1));
        c.t(q(1));
        c.cx(q(0), q(1));
        c.h(q(1));
        let compiled = CompiledCircuit::compile_fused(&c);
        assert_eq!(compiled.stats().kernels_out, 1, "{:?}", compiled.ops());
        let mut s = StateVector::zero(2);
        compiled.apply_unitaries(&mut s, 0);
        assert_states_close(&s, &reference_state(&c), 1e-12);
    }

    #[test]
    fn lone_cx_keeps_its_specialized_kernel() {
        let mut c = Circuit::new(2, 0);
        c.cx(q(0), q(1));
        let compiled = CompiledCircuit::compile_fused(&c);
        assert!(matches!(
            compiled.ops()[0],
            Op::Unitary {
                kernel: Kernel::Cx { .. },
                ..
            }
        ));
    }

    #[test]
    fn diagonal_pair_runs_specialize_to_diag2() {
        let mut c = Circuit::new(2, 0);
        c.cz(q(0), q(1));
        c.t(q(0));
        c.rzz(0.3, q(0), q(1));
        c.cp(0.7, q(1), q(0));
        let compiled = CompiledCircuit::compile_fused(&c);
        assert_eq!(compiled.ops().len(), 1);
        assert!(matches!(
            compiled.ops()[0],
            Op::Unitary {
                kernel: Kernel::Diag2 { .. },
                ..
            }
        ));
        let mut s = plus_plus();
        compiled.apply_unitaries(&mut s, 0);
        let mut r = plus_plus();
        for instr in c.iter() {
            let ops: Vec<usize> = instr.qubits.iter().map(|x| x.index()).collect();
            r.apply_gate(&instr.gate, &ops);
        }
        assert_states_close(&s, &r, 1e-12);
    }

    #[test]
    fn controlled_form_blocks_specialize_to_c2() {
        // CX then T/Tdg on the target: block-diagonal in the control —
        // the shape every Toffoli decomposition chains.
        let mut c = Circuit::new(2, 0);
        c.cx(q(0), q(1));
        c.tdg(q(1));
        let compiled = CompiledCircuit::compile_fused(&c);
        assert_eq!(compiled.ops().len(), 1);
        assert!(matches!(
            compiled.ops()[0],
            Op::Unitary {
                kernel: Kernel::C2 { .. },
                ..
            }
        ));
        let mut s = plus_plus();
        compiled.apply_unitaries(&mut s, 0);
        let mut r = plus_plus();
        for instr in c.iter() {
            let ops: Vec<usize> = instr.qubits.iter().map(|x| x.index()).collect();
            r.apply_gate(&instr.gate, &ops);
        }
        assert_states_close(&s, &r, 1e-12);
    }

    #[test]
    fn conflicting_pairs_flush_cleanly() {
        // CXs walking down a line: each new pair must flush the previous
        // block; the result still matches the reference.
        let mut c = Circuit::new(3, 0);
        c.h(q(0));
        c.cx(q(0), q(1));
        c.t(q(1));
        c.cx(q(1), q(2));
        c.h(q(2));
        c.cx(q(0), q(2));
        let compiled = CompiledCircuit::compile_fused(&c);
        let mut s = StateVector::zero(3);
        compiled.apply_unitaries(&mut s, 0);
        assert_states_close(&s, &reference_state(&c), 1e-12);
        assert!(compiled.stats().kernels_out < compiled.stats().gates_in);
    }
}
