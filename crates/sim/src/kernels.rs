//! Specialized gate kernels and single-qubit gate fusion.
//!
//! [`StateVector::apply_gate`](crate::StateVector::apply_gate) routes every
//! gate through a generic dispatch that re-derives the gate's matrix (trig
//! included) on every application. The Monte-Carlo executor replays the same
//! circuit thousands of times, so this module compiles a circuit **once**
//! into a list of [`Kernel`]s:
//!
//! * **diagonal kernels** (`Z`/`S`/`T`/`Rz`/`Phase`/`CZ`/`CP`/`RZZ`) are pure
//!   phase multiplications — no amplitude mixing, and phase gates touch only
//!   the `|1>` half of the state;
//! * **permutation kernels** (`X`/`CX`/`SWAP`) are index bit-flips — element
//!   swaps with no arithmetic at all;
//! * **general 1q kernels** carry a precomputed 2x2 matrix, so `Rx`/`Ry`/`U`
//!   pay their trig once per circuit instead of once per shot.
//!
//! On top of specialization, [`CompiledCircuit::compile_fused`] merges runs of consecutive
//! single-qubit gates on the same wire into one 2x2 matrix (gates on other
//! wires may interleave — disjoint-support unitaries commute). Fusion never
//! crosses a measurement, reset, or classically-conditioned instruction.

use crate::complex::C64;
use crate::state::StateVector;
use caqr_circuit::{Circuit, Gate, Instruction};

/// One precompiled state-vector operation.
///
/// Every kernel is unitary; measurement and reset stay in the executor,
/// which owns the randomness.
#[derive(Debug, Clone, PartialEq)]
pub enum Kernel {
    /// A general single-qubit unitary (possibly a fused run of gates).
    U1 {
        /// Target qubit.
        q: usize,
        /// Row-major 2x2 matrix.
        m: [[C64; 2]; 2],
    },
    /// A diagonal single-qubit gate `diag(m0, m1)` with `m0 != 1`.
    Diag {
        /// Target qubit.
        q: usize,
        /// Factor on the `|0>` amplitudes.
        m0: C64,
        /// Factor on the `|1>` amplitudes.
        m1: C64,
    },
    /// A phase gate `diag(1, m1)`: only the `|1>` half is touched.
    Phase {
        /// Target qubit.
        q: usize,
        /// Factor on the `|1>` amplitudes.
        m1: C64,
    },
    /// Pauli-X as an index bit-flip (no arithmetic).
    FlipX {
        /// Target qubit.
        q: usize,
    },
    /// Hadamard as lane-wise sums and a real scale (no complex products).
    Had {
        /// Target qubit.
        q: usize,
    },
    /// CNOT as a conditional index bit-flip.
    Cx {
        /// Control qubit.
        c: usize,
        /// Target qubit.
        t: usize,
    },
    /// SWAP as a pairwise index exchange.
    Swap {
        /// First qubit.
        a: usize,
        /// Second qubit.
        b: usize,
    },
    /// Controlled phase on the `|11>` subspace.
    CPhase {
        /// First qubit (symmetric).
        a: usize,
        /// Second qubit.
        b: usize,
        /// Phase factor.
        phase: C64,
    },
    /// `exp(-i angle/2 Z (x) Z)`: a phase keyed on the parity of two bits.
    Rzz {
        /// First qubit (symmetric).
        a: usize,
        /// Second qubit.
        b: usize,
        /// Factor on even-parity basis states.
        even: C64,
        /// Factor on odd-parity basis states.
        odd: C64,
    },
}

impl Kernel {
    /// Compiles a unitary gate into its specialized kernel.
    ///
    /// # Panics
    ///
    /// Panics on `Measure`/`Reset` — those are not unitary kernels.
    pub fn from_gate(gate: &Gate, qubits: &[usize]) -> Kernel {
        match *gate {
            Gate::X => Kernel::FlipX { q: qubits[0] },
            Gate::Z => Kernel::Phase {
                q: qubits[0],
                m1: C64::real(-1.0),
            },
            Gate::S => Kernel::Phase {
                q: qubits[0],
                m1: C64::I,
            },
            Gate::Sdg => Kernel::Phase {
                q: qubits[0],
                m1: -C64::I,
            },
            Gate::T => Kernel::Phase {
                q: qubits[0],
                m1: C64::cis(std::f64::consts::FRAC_PI_4),
            },
            Gate::Tdg => Kernel::Phase {
                q: qubits[0],
                m1: C64::cis(-std::f64::consts::FRAC_PI_4),
            },
            Gate::Phase(a) => Kernel::Phase {
                q: qubits[0],
                m1: C64::cis(a),
            },
            Gate::Rz(a) => Kernel::Diag {
                q: qubits[0],
                m0: C64::cis(-a / 2.0),
                m1: C64::cis(a / 2.0),
            },
            Gate::H => Kernel::Had { q: qubits[0] },
            Gate::Y | Gate::Rx(_) | Gate::Ry(_) | Gate::U(..) => Kernel::U1 {
                q: qubits[0],
                m: gate_matrix(gate),
            },
            Gate::Cx => Kernel::Cx {
                c: qubits[0],
                t: qubits[1],
            },
            Gate::Cz => Kernel::CPhase {
                a: qubits[0],
                b: qubits[1],
                phase: C64::real(-1.0),
            },
            Gate::Cp(a) => Kernel::CPhase {
                a: qubits[0],
                b: qubits[1],
                phase: C64::cis(a),
            },
            Gate::Rzz(a) => Kernel::Rzz {
                a: qubits[0],
                b: qubits[1],
                even: C64::cis(-a / 2.0),
                odd: C64::cis(a / 2.0),
            },
            Gate::Swap => Kernel::Swap {
                a: qubits[0],
                b: qubits[1],
            },
            Gate::Measure | Gate::Reset => panic!("non-unitary {gate} has no kernel"),
        }
    }

    /// Applies the kernel to `state`.
    pub fn apply(&self, state: &mut StateVector) {
        match *self {
            Kernel::U1 { q, m } => state.apply_1q(q, m),
            Kernel::Diag { q, m0, m1 } => state.diag_1q(q, m0, m1),
            Kernel::Phase { q, m1 } => state.phase_1q(q, m1),
            Kernel::FlipX { q } => state.flip_1q(q),
            Kernel::Had { q } => state.apply_h(q),
            Kernel::Cx { c, t } => state.apply_cx(c, t),
            Kernel::Swap { a, b } => state.apply_swap(a, b),
            Kernel::CPhase { a, b, phase } => state.apply_cphase(a, b, phase),
            Kernel::Rzz { a, b, even, odd } => state.apply_rzz_factors(a, b, even, odd),
        }
    }
}

/// The 2x2 matrix of a single-qubit gate (same formulas as the generic
/// `apply_gate` path, so kernelized and generic execution agree bit for bit
/// on unfused gates).
fn gate_matrix(gate: &Gate) -> [[C64; 2]; 2] {
    let s2 = std::f64::consts::FRAC_1_SQRT_2;
    match *gate {
        Gate::H => [
            [C64::real(s2), C64::real(s2)],
            [C64::real(s2), C64::real(-s2)],
        ],
        Gate::X => [[C64::ZERO, C64::ONE], [C64::ONE, C64::ZERO]],
        Gate::Y => [[C64::ZERO, -C64::I], [C64::I, C64::ZERO]],
        Gate::Z => [[C64::ONE, C64::ZERO], [C64::ZERO, C64::real(-1.0)]],
        Gate::S => [[C64::ONE, C64::ZERO], [C64::ZERO, C64::I]],
        Gate::Sdg => [[C64::ONE, C64::ZERO], [C64::ZERO, -C64::I]],
        Gate::T => [
            [C64::ONE, C64::ZERO],
            [C64::ZERO, C64::cis(std::f64::consts::FRAC_PI_4)],
        ],
        Gate::Tdg => [
            [C64::ONE, C64::ZERO],
            [C64::ZERO, C64::cis(-std::f64::consts::FRAC_PI_4)],
        ],
        Gate::Rx(a) => {
            let (c, s) = ((a / 2.0).cos(), (a / 2.0).sin());
            [
                [C64::real(c), C64::new(0.0, -s)],
                [C64::new(0.0, -s), C64::real(c)],
            ]
        }
        Gate::Ry(a) => {
            let (c, s) = ((a / 2.0).cos(), (a / 2.0).sin());
            [[C64::real(c), C64::real(-s)], [C64::real(s), C64::real(c)]]
        }
        Gate::Rz(a) => [
            [C64::cis(-a / 2.0), C64::ZERO],
            [C64::ZERO, C64::cis(a / 2.0)],
        ],
        Gate::Phase(a) => [[C64::ONE, C64::ZERO], [C64::ZERO, C64::cis(a)]],
        Gate::U(theta, phi, lambda) => {
            let (c, s) = ((theta / 2.0).cos(), (theta / 2.0).sin());
            [
                [C64::real(c), -(C64::cis(lambda).scale(s))],
                [C64::cis(phi).scale(s), C64::cis(phi + lambda).scale(c)],
            ]
        }
        _ => panic!("{gate} is not a single-qubit unitary"),
    }
}

/// `b * a` for row-major 2x2 complex matrices (`a` applied first).
fn mat_mul(b: [[C64; 2]; 2], a: [[C64; 2]; 2]) -> [[C64; 2]; 2] {
    let mut out = [[C64::ZERO; 2]; 2];
    for (i, row) in out.iter_mut().enumerate() {
        for (j, cell) in row.iter_mut().enumerate() {
            *cell = b[i][0] * a[0][j] + b[i][1] * a[1][j];
        }
    }
    out
}

/// One step of a compiled circuit: a unitary kernel (optionally
/// classically conditioned) or a stochastic boundary.
#[derive(Debug, Clone)]
pub enum Op {
    /// A unitary kernel. `cond` is the classical bit that gates it, and
    /// `index` is the originating instruction index (the *last* fused
    /// instruction) — the noisy executor uses it to look up error rates.
    Unitary {
        /// The precompiled kernel.
        kernel: Kernel,
        /// Classical condition bit, if any.
        cond: Option<usize>,
        /// Originating instruction index.
        index: usize,
    },
    /// A projective measurement.
    Measure {
        /// Measured qubit.
        q: usize,
        /// Destination classical bit.
        clbit: usize,
        /// Originating instruction index.
        index: usize,
    },
    /// An unconditional reset to `|0>`.
    Reset {
        /// Reset qubit.
        q: usize,
        /// Originating instruction index.
        index: usize,
    },
}

/// Fusion statistics for instrumentation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FuseStats {
    /// Unitary gates in the source circuit.
    pub gates_in: usize,
    /// Unitary kernels emitted after fusion.
    pub kernels_out: usize,
}

/// A circuit compiled into kernels, ready for repeated replay.
#[derive(Debug, Clone)]
pub struct CompiledCircuit {
    ops: Vec<Op>,
    num_qubits: usize,
    stats: FuseStats,
}

impl CompiledCircuit {
    /// Compiles `circuit` one instruction per kernel (no fusion). This is
    /// the representation the **noisy** executor needs: stochastic error
    /// channels interleave between instructions, so gates cannot merge
    /// across them, but each still gets its specialized kernel and its
    /// matrix/trig precomputed once.
    pub fn compile(circuit: &Circuit) -> Self {
        let order: Vec<usize> = (0..circuit.len()).collect();
        Self::compile_ordered(circuit, &order)
    }

    /// [`CompiledCircuit::compile`] over an explicit execution order.
    ///
    /// `order` is a permutation of instruction indices; each emitted op
    /// keeps its **original** index, so noise tables precomputed on the
    /// source schedule still line up. The executor uses this to defer
    /// measurements of retired qubits to the end of the program.
    ///
    /// # Panics
    ///
    /// Panics if `order` indexes out of range.
    pub fn compile_ordered(circuit: &Circuit, order: &[usize]) -> Self {
        let instrs = circuit.instructions();
        let mut ops = Vec::with_capacity(order.len());
        let mut stats = FuseStats::default();
        for &index in order {
            let instr = &instrs[index];
            ops.push(match instr.gate {
                Gate::Measure => Op::Measure {
                    q: instr.qubits[0].index(),
                    clbit: instr.clbit.expect("measure has a clbit").index(),
                    index,
                },
                Gate::Reset => Op::Reset {
                    q: instr.qubits[0].index(),
                    index,
                },
                ref gate => {
                    stats.gates_in += 1;
                    stats.kernels_out += 1;
                    Op::Unitary {
                        kernel: Kernel::from_gate(gate, &operand_indices(instr)),
                        cond: instr.condition.map(|c| c.index()),
                        index,
                    }
                }
            });
        }
        CompiledCircuit {
            ops,
            num_qubits: circuit.num_qubits(),
            stats,
        }
    }

    /// Compiles `circuit` with single-qubit fusion: runs of unconditioned
    /// 1q gates on the same wire collapse into one kernel, floating past
    /// interleaved operations on *other* wires (disjoint-support unitaries
    /// commute). Every pending run flushes at a measurement, reset, or
    /// conditioned instruction, so no kernel crosses a stochastic or
    /// classically-dependent boundary. Only valid for **noiseless**
    /// execution, where nothing stochastic sits between gates.
    pub fn compile_fused(circuit: &Circuit) -> Self {
        let order: Vec<usize> = (0..circuit.len()).collect();
        Self::compile_fused_ordered(circuit, &order)
    }

    /// [`CompiledCircuit::compile_fused`] over an explicit execution order
    /// (see [`CompiledCircuit::compile_ordered`]). Fusion operates on the
    /// reordered sequence: with measurements deferred to the tail, runs on
    /// a wire fuse across points where a measurement of another qubit used
    /// to sit.
    ///
    /// # Panics
    ///
    /// Panics if `order` indexes out of range.
    pub fn compile_fused_ordered(circuit: &Circuit, order: &[usize]) -> Self {
        let instrs = circuit.instructions();
        let mut fuser = Fuser::new(circuit.num_qubits());
        let mut ops: Vec<Op> = Vec::with_capacity(order.len());
        let mut stats = FuseStats::default();
        for &index in order {
            let instr = &instrs[index];
            match instr.gate {
                Gate::Measure => {
                    fuser.flush_all(&mut ops, &mut stats);
                    ops.push(Op::Measure {
                        q: instr.qubits[0].index(),
                        clbit: instr.clbit.expect("measure has a clbit").index(),
                        index,
                    });
                }
                Gate::Reset => {
                    fuser.flush_all(&mut ops, &mut stats);
                    ops.push(Op::Reset {
                        q: instr.qubits[0].index(),
                        index,
                    });
                }
                ref gate if instr.condition.is_some() => {
                    // A conditioned gate depends on the classical record;
                    // nothing may float past it, and it never fuses.
                    fuser.flush_all(&mut ops, &mut stats);
                    stats.gates_in += 1;
                    stats.kernels_out += 1;
                    ops.push(Op::Unitary {
                        kernel: Kernel::from_gate(gate, &operand_indices(instr)),
                        cond: instr.condition.map(|c| c.index()),
                        index,
                    });
                }
                ref gate if gate.is_two_qubit() => {
                    let (a, b) = (instr.qubits[0].index(), instr.qubits[1].index());
                    fuser.flush_wire(a, &mut ops, &mut stats);
                    fuser.flush_wire(b, &mut ops, &mut stats);
                    stats.gates_in += 1;
                    stats.kernels_out += 1;
                    ops.push(Op::Unitary {
                        kernel: Kernel::from_gate(gate, &[a, b]),
                        cond: None,
                        index,
                    });
                }
                ref gate => {
                    stats.gates_in += 1;
                    fuser.absorb(instr.qubits[0].index(), gate, index);
                }
            }
        }
        fuser.flush_all(&mut ops, &mut stats);
        CompiledCircuit {
            ops,
            num_qubits: circuit.num_qubits(),
            stats,
        }
    }

    /// The compiled operations in execution order.
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// The width of the source circuit.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Fusion statistics.
    pub fn stats(&self) -> FuseStats {
        self.stats
    }

    /// The number of leading ops before the first measurement or reset —
    /// the deterministic prefix a noiseless executor may snapshot.
    pub fn prefix_ops(&self) -> usize {
        self.ops
            .iter()
            .position(|op| matches!(op, Op::Measure { .. } | Op::Reset { .. }))
            .unwrap_or(self.ops.len())
    }

    /// Applies every unitary op to `state`, skipping conditioned kernels
    /// whose bit is 0 in `clreg` and panicking on measurement/reset —
    /// a convenience for tests and for building prefix snapshots.
    ///
    /// # Panics
    ///
    /// Panics if the program contains a measurement or reset.
    pub fn apply_unitaries(&self, state: &mut StateVector, clreg: u64) {
        for op in &self.ops {
            match op {
                Op::Unitary { kernel, cond, .. } => {
                    if let Some(bit) = cond {
                        if clreg >> bit & 1 == 0 {
                            continue;
                        }
                    }
                    kernel.apply(state);
                }
                Op::Measure { .. } | Op::Reset { .. } => {
                    panic!("apply_unitaries on a circuit with measurements")
                }
            }
        }
    }
}

/// Per-wire pending fusion state: the accumulated 2x2 matrix, whether any
/// absorbed gate was non-diagonal, and the first/last instruction indices
/// of the run.
struct Pending {
    m: [[C64; 2]; 2],
    diagonal: bool,
    first: usize,
    last: usize,
}

/// Greedy single-qubit fuser.
struct Fuser {
    pending: Vec<Option<Pending>>,
}

impl Fuser {
    fn new(num_qubits: usize) -> Self {
        Fuser {
            pending: (0..num_qubits).map(|_| None).collect(),
        }
    }

    fn absorb(&mut self, q: usize, gate: &Gate, index: usize) {
        let m = gate_matrix(gate);
        match &mut self.pending[q] {
            Some(p) => {
                p.m = mat_mul(m, p.m);
                p.diagonal &= gate.is_diagonal();
                p.last = index;
            }
            slot => {
                *slot = Some(Pending {
                    m,
                    diagonal: gate.is_diagonal(),
                    first: index,
                    last: index,
                });
            }
        }
    }

    fn flush_wire(&mut self, q: usize, ops: &mut Vec<Op>, stats: &mut FuseStats) {
        if let Some(p) = self.pending[q].take() {
            stats.kernels_out += 1;
            ops.push(Op::Unitary {
                kernel: specialize(q, &p),
                cond: None,
                index: p.last,
            });
        }
    }

    /// Flushes every pending run, in order of each run's first gate, so
    /// emission is deterministic (the runs act on disjoint wires, so any
    /// order is mathematically equivalent).
    fn flush_all(&mut self, ops: &mut Vec<Op>, stats: &mut FuseStats) {
        let mut runs: Vec<(usize, Pending)> = Vec::new();
        for (q, slot) in self.pending.iter_mut().enumerate() {
            if let Some(p) = slot.take() {
                runs.push((q, p));
            }
        }
        runs.sort_by_key(|(_, p)| p.first);
        for (q, p) in runs {
            stats.kernels_out += 1;
            ops.push(Op::Unitary {
                kernel: specialize(q, &p),
                cond: None,
                index: p.last,
            });
        }
    }
}

/// Picks the cheapest kernel for a fused run: phase-only when the matrix
/// stayed diagonal with a unit `|0>` factor, diagonal when off-diagonals
/// vanished, the lane-wise Hadamard when the product is exactly H,
/// general otherwise.
fn specialize(q: usize, p: &Pending) -> Kernel {
    if p.diagonal {
        if p.m[0][0] == C64::ONE {
            Kernel::Phase { q, m1: p.m[1][1] }
        } else {
            Kernel::Diag {
                q,
                m0: p.m[0][0],
                m1: p.m[1][1],
            }
        }
    } else {
        let s = std::f64::consts::FRAC_1_SQRT_2;
        let h = [[C64::real(s), C64::real(s)], [C64::real(s), C64::real(-s)]];
        if p.m == h {
            Kernel::Had { q }
        } else {
            Kernel::U1 { q, m: p.m }
        }
    }
}

fn operand_indices(instr: &Instruction) -> Vec<usize> {
    instr.qubits.iter().map(|q| q.index()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use caqr_circuit::{Clbit, Qubit};

    fn q(i: usize) -> Qubit {
        Qubit::new(i)
    }

    /// Reference: run the circuit's unitaries through the generic path.
    fn reference_state(circuit: &Circuit) -> StateVector {
        let mut s = StateVector::zero(circuit.num_qubits());
        for instr in circuit.iter() {
            let ops: Vec<usize> = instr.qubits.iter().map(|x| x.index()).collect();
            s.apply_gate(&instr.gate, &ops);
        }
        s
    }

    fn assert_states_close(a: &StateVector, b: &StateVector, tol: f64) {
        for i in 0..1usize << a.num_qubits() {
            let d = (a.amplitude(i) - b.amplitude(i)).abs2();
            assert!(d < tol * tol, "index {i}: |diff|^2 = {d}");
        }
    }

    fn mixed_circuit() -> Circuit {
        let mut c = Circuit::new(3, 0);
        c.h(q(0));
        c.t(q(0));
        c.rz(0.3, q(1));
        c.z(q(1));
        c.cx(q(0), q(1));
        c.ry(0.7, q(2));
        c.rx(0.2, q(2));
        c.swap(q(1), q(2));
        c.cp(0.9, q(0), q(2));
        c.rzz(1.1, q(0), q(1));
        c.x(q(0));
        c.h(q(0));
        c
    }

    #[test]
    fn unfused_kernels_match_generic_apply() {
        let c = mixed_circuit();
        let mut s = StateVector::zero(3);
        for op in CompiledCircuit::compile(&c).ops() {
            match op {
                Op::Unitary { kernel, .. } => kernel.apply(&mut s),
                _ => unreachable!(),
            }
        }
        // Unfused kernels use identical arithmetic: exact agreement.
        assert_states_close(&s, &reference_state(&c), 1e-15);
    }

    #[test]
    fn fused_program_matches_reference() {
        let c = mixed_circuit();
        let compiled = CompiledCircuit::compile_fused(&c);
        let mut s = StateVector::zero(3);
        compiled.apply_unitaries(&mut s, 0);
        assert_states_close(&s, &reference_state(&c), 1e-12);
        let stats = compiled.stats();
        assert!(
            stats.kernels_out < stats.gates_in,
            "fusion merged nothing: {stats:?}"
        );
    }

    #[test]
    fn fusion_merges_runs_across_other_wires() {
        let mut c = Circuit::new(2, 0);
        c.h(q(0));
        c.rz(0.2, q(1)); // interleaved on another wire
        c.t(q(0));
        c.h(q(0));
        let compiled = CompiledCircuit::compile_fused(&c);
        // h-t-h on wire 0 fuse to one kernel; rz on wire 1 is its own.
        assert_eq!(compiled.stats().kernels_out, 2);
        let mut s = StateVector::zero(2);
        compiled.apply_unitaries(&mut s, 0);
        assert_states_close(&s, &reference_state(&c), 1e-12);
    }

    #[test]
    fn diagonal_runs_stay_diagonal() {
        let mut c = Circuit::new(1, 0);
        c.t(q(0));
        c.z(q(0));
        c.rz(0.4, q(0));
        let compiled = CompiledCircuit::compile_fused(&c);
        assert_eq!(compiled.ops().len(), 1);
        match &compiled.ops()[0] {
            Op::Unitary {
                kernel: Kernel::Diag { .. } | Kernel::Phase { .. },
                ..
            } => {}
            other => panic!("expected a diagonal kernel, got {other:?}"),
        }
    }

    #[test]
    fn fusion_stops_at_measure_and_condition() {
        let mut c = Circuit::new(1, 1);
        c.h(q(0));
        c.measure(q(0), Clbit::new(0));
        c.push(Instruction {
            gate: Gate::X,
            qubits: vec![q(0)],
            clbit: None,
            condition: Some(Clbit::new(0)),
        });
        c.h(q(0));
        let compiled = CompiledCircuit::compile_fused(&c);
        // h | measure | cond-x | h: nothing fuses.
        assert_eq!(compiled.ops().len(), 4);
        assert_eq!(compiled.prefix_ops(), 1);
    }

    #[test]
    fn prefix_covers_whole_circuit_without_measurement() {
        let c = mixed_circuit();
        let compiled = CompiledCircuit::compile_fused(&c);
        assert_eq!(compiled.prefix_ops(), compiled.ops().len());
    }

    #[test]
    #[should_panic(expected = "non-unitary")]
    fn measure_has_no_kernel() {
        Kernel::from_gate(&Gate::Measure, &[0]);
    }
}
