//! Sparse-support execution of low-entanglement circuits.
//!
//! Arithmetic-heavy benchmark circuits (the RevLib multiplier, for one)
//! keep almost all of their amplitude mass on a handful of basis states:
//! every gate is a permutation or a phase except for a few Hadamards, so
//! the reachable support stays tiny while the dense engine still sweeps
//! all `2^n` amplitudes per kernel. [`SparseState`] wraps the dense
//! [`StateVector`] storage with a sorted list of (possibly) nonzero
//! physical indices and applies every kernel by visiting only those
//! entries — per-op cost scales with the support size `s`, not `2^n`.
//!
//! # Bit-exactness contract
//!
//! The sparse bodies perform, per visited amplitude, exactly the
//! floating-point operations of the scalar dense bodies, in the same
//! order — and every skipped amplitude is exactly zero, whose dense
//! contribution is the FP identity (`x + 0.0 == x` for the probability
//! accumulations, multiplication maps zeros to zeros). Probabilities,
//! measurement draws, and therefore histograms are bit-identical to the
//! dense engine; only the *sign bits* of zero amplitudes may differ,
//! which no observable reads. The executor exploits this by enabling the
//! sparse engine inside configurations that are bit-identity-tested
//! against the dense reference.
//!
//! # Eligibility
//!
//! [`support_bound`] decides eligibility per circuit at plan time with
//! an index-set shadow simulation: diagonal kernels keep the set,
//! X/CX/SWAP permute it, mixing kernels union it with its translates,
//! and conditioned gates take the union of both branches. The bound is
//! sound under *any* stochastic Pauli pattern — Pauli events are XOR
//! translations, which commute through the union/permutation structure —
//! so a circuit admitted at plan time can never blow up at run time.
//! ([`SparseState`] still carries a belt-and-braces dense fallback for
//! kernels it does not specialize.)

use crate::complex::C64;
use crate::kernels::{CompiledCircuit, Kernel, Op};
use crate::state::StateVector;
use caqr_circuit::Gate;
use rand::Rng;
use rand_chacha::ChaCha8Rng;

/// The state operations the per-shot execution path needs, implemented
/// by both the dense [`StateVector`] and the sparse [`SparseState`]. The
/// executor's chunked hot path is generic over this trait, so one body
/// of replay/fork/sampling logic serves both engines.
pub(crate) trait SimState {
    /// Overwrites this state with a copy of `src`.
    fn load(&mut self, src: &Self);
    /// Resets to |0...0> with an identity bit permutation.
    fn set_zero(&mut self);
    /// Applies one compiled kernel.
    fn apply_kernel(&mut self, kernel: &Kernel);
    /// Applies a gate through the generic path (noise Paulis, reference
    /// execution).
    fn apply_gate(&mut self, gate: &Gate, qubits: &[usize]);
    /// Applies `X^x Z^z` (logical masks, Z first, global phase dropped).
    fn apply_pauli_masks(&mut self, x: u64, z: u64);
    /// Sum of `|amp|^2` where the index bits under `mask` equal `value`.
    fn masked_sum(&self, mask: usize, value: usize) -> f64;
    /// Physical bit position of logical qubit `q`.
    fn phys_bit(&self, q: usize) -> usize;
    /// Projective measurement of qubit `q`.
    fn measure(&mut self, q: usize, rng: &mut ChaCha8Rng) -> bool;
    /// Reset of qubit `q` to |0>.
    fn reset(&mut self, q: usize, rng: &mut ChaCha8Rng);
    /// One amplitude-damping trajectory step on qubit `q`.
    fn amplitude_damp(&mut self, q: usize, gamma: f64, rng: &mut ChaCha8Rng);
}

impl SimState for StateVector {
    fn load(&mut self, src: &Self) {
        StateVector::load(self, src);
    }

    fn set_zero(&mut self) {
        StateVector::set_zero(self);
    }

    fn apply_kernel(&mut self, kernel: &Kernel) {
        kernel.apply(self);
    }

    fn apply_gate(&mut self, gate: &Gate, qubits: &[usize]) {
        StateVector::apply_gate(self, gate, qubits);
    }

    fn apply_pauli_masks(&mut self, x: u64, z: u64) {
        StateVector::apply_pauli_masks(self, x, z);
    }

    fn masked_sum(&self, mask: usize, value: usize) -> f64 {
        StateVector::masked_sum(self, mask, value)
    }

    fn phys_bit(&self, q: usize) -> usize {
        StateVector::phys_bit(self, q)
    }

    fn measure(&mut self, q: usize, rng: &mut ChaCha8Rng) -> bool {
        StateVector::measure(self, q, rng)
    }

    fn reset(&mut self, q: usize, rng: &mut ChaCha8Rng) {
        StateVector::reset(self, q, rng);
    }

    fn amplitude_damp(&mut self, q: usize, gamma: f64, rng: &mut ChaCha8Rng) {
        StateVector::amplitude_damp(self, q, gamma, rng);
    }
}

/// A state vector plus a sorted support list of its (possibly) nonzero
/// physical amplitude indices.
///
/// The dense backing always holds the amplitudes the dense engine would
/// hold (up to zero-sign bits, see the module docs); the support list is
/// purely an iteration accelerator. Entries are dropped from the support
/// only when they compute to an *exact* zero — there is no epsilon
/// pruning anywhere, which is what keeps the engine bit-exact.
pub(crate) struct SparseState {
    inner: StateVector,
    /// Sorted physical indices covering every possibly-nonzero
    /// amplitude. May contain exact-zero entries (a harmless superset);
    /// never misses a nonzero one.
    supp: Vec<usize>,
    /// Scratch: deduplicated pair bases during mixing sweeps.
    bases: Vec<usize>,
    /// Scratch: stashed amplitudes during XOR translations.
    stash: Vec<C64>,
    /// Dense-fallback flag: the backing holds the full state and the
    /// support list is stale. Set on unspecialized kernels or support
    /// blow-up; cleared by the next `set_zero`.
    dense: bool,
}

impl SparseState {
    /// The all-zeros state |0...0>.
    pub(crate) fn new(n: usize, wide: bool) -> Self {
        let mut inner = StateVector::zero(n);
        inner.set_wide(wide);
        SparseState {
            inner,
            supp: vec![0],
            bases: Vec::new(),
            stash: Vec::new(),
            dense: false,
        }
    }

    /// Builds a sparse state from a dense one by scanning for nonzero
    /// amplitudes once (used to convert the plan-time snapshot).
    pub(crate) fn from_dense(src: &StateVector) -> Self {
        let inner = src.clone();
        let supp = inner
            .amps()
            .iter()
            .enumerate()
            .filter(|(_, a)| a.re != 0.0 || a.im != 0.0)
            .map(|(i, _)| i)
            .collect();
        SparseState {
            inner,
            supp,
            bases: Vec::new(),
            stash: Vec::new(),
            dense: false,
        }
    }

    /// Current support size (meaningless after a dense fallback).
    #[cfg(test)]
    pub(crate) fn support_len(&self) -> usize {
        self.supp.len()
    }

    /// Whether the dense fallback has engaged.
    #[cfg(test)]
    pub(crate) fn is_dense(&self) -> bool {
        self.dense
    }

    /// Read access to the dense backing (tests compare amplitudes).
    #[cfg(test)]
    pub(crate) fn backing(&self) -> &StateVector {
        &self.inner
    }

    /// Switches to dense sweeps permanently (until the next `set_zero`).
    /// The backing already holds the full state, so nothing needs
    /// materializing.
    fn go_dense(&mut self) {
        self.dense = true;
    }

    fn bit(&self, q: usize) -> usize {
        1usize << self.inner.phys_bit(q)
    }

    /// Rewrites every support amplitude in place with `f(index, amp)`.
    /// The support is unchanged: diagonal factors never create or
    /// destroy support (a zero stays zero, and dropping an entry that
    /// became zero is optional anyway).
    fn for_support(&mut self, f: impl Fn(usize, C64) -> C64) {
        for k in 0..self.supp.len() {
            let i = self.supp[k];
            let amps = self.inner.amps_mut();
            amps[i] = f(i, amps[i]);
        }
    }

    /// Applies a pair transform on physical bit `b`: every support-
    /// touching pair `(base, base | b)` is visited exactly once, both
    /// outputs are written to the backing (matching the dense sweep's
    /// values bit for bit), and the exactly-nonzero outputs become the
    /// new support.
    fn mix_support_pairs(&mut self, b: usize, f: impl Fn(C64, C64) -> (C64, C64)) {
        self.bases.clear();
        self.bases.extend(self.supp.iter().map(|&i| i & !b));
        self.bases.sort_unstable();
        self.bases.dedup();
        self.supp.clear();
        for k in 0..self.bases.len() {
            let base = self.bases[k];
            let amps = self.inner.amps_mut();
            let (o0, o1) = f(amps[base], amps[base | b]);
            amps[base] = o0;
            amps[base | b] = o1;
            if o0.re != 0.0 || o0.im != 0.0 {
                self.supp.push(base);
            }
            if o1.re != 0.0 || o1.im != 0.0 {
                self.supp.push(base | b);
            }
        }
        self.supp.sort_unstable();
        // Belt-and-braces: the plan-time bound makes blow-up unreachable,
        // but if the support ever covers a quarter of the space, dense
        // sweeps are cheaper than sorted-list maintenance.
        if self.supp.len() * 4 > self.inner.amps().len() {
            self.go_dense();
        }
    }

    /// Moves every support amplitude from `i` to `i ^ xm`, mapping the
    /// value through `f(source_index, amp)` on the way (the dense Pauli
    /// sweep's convention: the sign comes from the source index). A pure
    /// permutation of the support — stash, zero, scatter — so colliding
    /// pairs (`i` and `i ^ xm` both in support) swap losslessly.
    fn translate(&mut self, xm: usize, f: impl Fn(usize, C64) -> C64) {
        self.stash.clear();
        for k in 0..self.supp.len() {
            let i = self.supp[k];
            let v = self.inner.amps_mut()[i];
            self.stash.push(v);
            self.inner.amps_mut()[i] = C64::ZERO;
        }
        for k in 0..self.supp.len() {
            let i = self.supp[k];
            self.inner.amps_mut()[i ^ xm] = f(i, self.stash[k]);
            self.supp[k] = i ^ xm;
        }
        self.supp.sort_unstable();
    }

    /// Applies a full 4x4 on the physical bit pair `(bs, bl)` (small and
    /// large bit, matching the dense quad layout): every support-touching
    /// quad is visited once, all four outputs are written with exactly
    /// the dense scalar sweep's accumulation order, and the
    /// exactly-nonzero outputs become the new support. `pm` is already
    /// permuted to physical quad order (`s + 2*l`).
    fn mix_support_quads(&mut self, bs: usize, bl: usize, pm: &[[C64; 4]; 4]) {
        let both = bs | bl;
        self.bases.clear();
        self.bases.extend(self.supp.iter().map(|&i| i & !both));
        self.bases.sort_unstable();
        self.bases.dedup();
        self.supp.clear();
        for k in 0..self.bases.len() {
            let base = self.bases[k];
            let idx = [base, base | bs, base | bl, base | both];
            let amps = self.inner.amps_mut();
            let v = [amps[idx[0]], amps[idx[1]], amps[idx[2]], amps[idx[3]]];
            let mut out = [C64::ZERO; 4];
            for (row, o) in pm.iter().zip(out.iter_mut()) {
                let mut acc = C64::ZERO;
                for (c, amp) in row.iter().zip(v.iter()) {
                    acc += C64::new(c.re * amp.re - c.im * amp.im, c.re * amp.im + c.im * amp.re);
                }
                *o = acc;
            }
            for (o, &i) in out.iter().zip(idx.iter()) {
                amps[i] = *o;
                if o.re != 0.0 || o.im != 0.0 {
                    self.supp.push(i);
                }
            }
        }
        self.supp.sort_unstable();
        if self.supp.len() * 4 > self.inner.amps().len() {
            self.go_dense();
        }
    }

    /// Applies a block-diagonal (controlled-form) pair: a 1q mix on the
    /// target bit with the matrix selected by the control bit of each
    /// pair base. Exactly-identity halves are skipped untouched, the
    /// dense sweep's `do0`/`do1` convention.
    fn mix_support_pairs_ctrl(
        &mut self,
        cb: usize,
        tb: usize,
        m0: &[[C64; 2]; 2],
        m1: &[[C64; 2]; 2],
    ) {
        const ID2: [[C64; 2]; 2] = [[C64::ONE, C64::ZERO], [C64::ZERO, C64::ONE]];
        let (do0, do1) = (*m0 != ID2, *m1 != ID2);
        self.bases.clear();
        self.bases.extend(self.supp.iter().map(|&i| i & !tb));
        self.bases.sort_unstable();
        self.bases.dedup();
        self.supp.clear();
        for k in 0..self.bases.len() {
            let base = self.bases[k];
            let (active, m) = if base & cb == 0 { (do0, m0) } else { (do1, m1) };
            let amps = self.inner.amps_mut();
            let (a0, a1) = (amps[base], amps[base | tb]);
            let (o0, o1) = if active {
                (m[0][0] * a0 + m[0][1] * a1, m[1][0] * a0 + m[1][1] * a1)
            } else {
                (a0, a1)
            };
            amps[base] = o0;
            amps[base | tb] = o1;
            if o0.re != 0.0 || o0.im != 0.0 {
                self.supp.push(base);
            }
            if o1.re != 0.0 || o1.im != 0.0 {
                self.supp.push(base | tb);
            }
        }
        self.supp.sort_unstable();
        if self.supp.len() * 4 > self.inner.amps().len() {
            self.go_dense();
        }
    }

    /// CNOT: translates only the support entries whose `cond_bit` is
    /// set by `xm` (the target bit). Two-phase like [`Self::translate`].
    fn translate_controlled(&mut self, cond_bit: usize, xm: usize) {
        self.stash.clear();
        for k in 0..self.supp.len() {
            let i = self.supp[k];
            if i & cond_bit == 0 {
                continue;
            }
            let v = self.inner.amps_mut()[i];
            self.stash.push(v);
            self.inner.amps_mut()[i] = C64::ZERO;
        }
        let mut sk = 0usize;
        for k in 0..self.supp.len() {
            let i = self.supp[k];
            if i & cond_bit == 0 {
                continue;
            }
            self.inner.amps_mut()[i ^ xm] = self.stash[sk];
            sk += 1;
            self.supp[k] = i ^ xm;
        }
        self.supp.sort_unstable();
    }

    /// `P(q = 1)`: ascending support walk over the bit-set entries —
    /// the same nonzero terms, in the same order, as the dense ascending
    /// block walk (skipped terms are exact zeros contributing `+0.0`).
    fn prob_one_sparse(&self, q: usize) -> f64 {
        let b = self.bit(q);
        let mut sum = 0.0;
        for &i in &self.supp {
            if i & b != 0 {
                sum += self.inner.amps()[i].abs2();
            }
        }
        sum
    }

    /// Collapse of qubit `q` to `value`, mirroring the dense
    /// keep-sum / rescale / zero sweep.
    fn project_sparse(&mut self, q: usize, value: bool) {
        let b = self.bit(q);
        let keep = if value {
            self.prob_one_sparse(q)
        } else {
            let mut sum = 0.0;
            for &i in &self.supp {
                if i & b == 0 {
                    sum += self.inner.amps()[i].abs2();
                }
            }
            sum
        };
        let scale = if keep > 0.0 { 1.0 / keep.sqrt() } else { 0.0 };
        let mut w = 0usize;
        for k in 0..self.supp.len() {
            let i = self.supp[k];
            let amps = self.inner.amps_mut();
            if (i & b != 0) == value {
                amps[i] = amps[i].scale(scale);
                self.supp[w] = i;
                w += 1;
            } else {
                amps[i] = C64::ZERO;
            }
        }
        self.supp.truncate(w);
    }

    fn apply_kernel_sparse(&mut self, kernel: &Kernel) {
        match *kernel {
            Kernel::Phase { q, m1 } => {
                let b = self.bit(q);
                self.for_support(|i, a| if i & b != 0 { m1 * a } else { a });
            }
            Kernel::Diag { q, m0, m1 } => {
                let b = self.bit(q);
                self.for_support(|i, a| if i & b != 0 { m1 * a } else { m0 * a });
            }
            Kernel::FlipX { q } => {
                let b = self.bit(q);
                self.translate(b, |_, a| a);
            }
            Kernel::Had { q } => {
                let s = std::f64::consts::FRAC_1_SQRT_2;
                let b = self.bit(q);
                self.mix_support_pairs(b, |a0, a1| ((a0 + a1).scale(s), (a0 - a1).scale(s)));
            }
            Kernel::U1 { q, m } => {
                let b = self.bit(q);
                self.mix_support_pairs(b, |a0, a1| {
                    (m[0][0] * a0 + m[0][1] * a1, m[1][0] * a0 + m[1][1] * a1)
                });
            }
            Kernel::Cx { c, t } => {
                let (cb, tb) = (self.bit(c), self.bit(t));
                self.translate_controlled(cb, tb);
            }
            // SWAP is an O(1) bit-permutation relabel in the backing;
            // the physical support indices do not move.
            Kernel::Swap { a, b } => self.inner.apply_swap(a, b),
            Kernel::CPhase { a, b, phase } => {
                let m = self.bit(a) | self.bit(b);
                self.for_support(|i, amp| if i & m == m { phase * amp } else { amp });
            }
            Kernel::Rzz { a, b, even, odd } => {
                let (ab, bb) = (self.bit(a), self.bit(b));
                self.for_support(|i, amp| {
                    if (i & ab != 0) != (i & bb != 0) {
                        odd * amp
                    } else {
                        even * amp
                    }
                });
            }
            Kernel::Diag2 { a, b, ref d } => {
                let (ab, bb) = (self.bit(a), self.bit(b));
                let d = *d;
                self.for_support(|i, amp| {
                    let v = usize::from(i & ab != 0) | (usize::from(i & bb != 0) << 1);
                    d[v] * amp
                });
            }
            Kernel::U2 { a, b, ref m } => {
                let (pa, pb) = (self.bit(a), self.bit(b));
                let (bs, bl) = (pa.min(pb), pa.max(pb));
                // Same quad permutation as the dense sweep: physical
                // index is s + 2*l, logical gives `a` weight 1, `b` 2.
                let (js, jl) = if pa < pb { (1usize, 2) } else { (2usize, 1) };
                let perm = [0, js, jl, js + jl];
                let mut pm = [[C64::ZERO; 4]; 4];
                for (pr, r) in perm.iter().enumerate() {
                    for (pc, c) in perm.iter().enumerate() {
                        pm[pr][pc] = m[*r][*c];
                    }
                }
                self.mix_support_quads(bs, bl, &pm);
            }
            Kernel::C2 {
                c,
                t,
                ref m0,
                ref m1,
            } => {
                let (cb, tb) = (self.bit(c), self.bit(t));
                self.mix_support_pairs_ctrl(cb, tb, m0, m1);
            }
        }
    }
}

impl SimState for SparseState {
    fn load(&mut self, src: &Self) {
        if self.dense || src.dense {
            self.inner.load(&src.inner);
            self.supp.clear();
            self.supp.extend_from_slice(&src.supp);
            self.dense = src.dense;
            return;
        }
        // O(s) fork: zero our support, copy theirs. Positions outside
        // both supports keep stale exact-zero values, which differ from
        // a full copy in zero-sign bits at most.
        for k in 0..self.supp.len() {
            let i = self.supp[k];
            self.inner.amps_mut()[i] = C64::ZERO;
        }
        self.inner.copy_map_from(&src.inner);
        for &i in &src.supp {
            self.inner.amps_mut()[i] = src.inner.amps()[i];
        }
        self.supp.clear();
        self.supp.extend_from_slice(&src.supp);
    }

    fn set_zero(&mut self) {
        if self.dense {
            // A dense-fallback shot does not poison the next one: the
            // full reset restores the support invariant exactly.
            self.inner.set_zero();
            self.dense = false;
        } else {
            for k in 0..self.supp.len() {
                let i = self.supp[k];
                self.inner.amps_mut()[i] = C64::ZERO;
            }
            self.inner.amps_mut()[0] = C64::ONE;
            self.inner.reset_map();
        }
        self.supp.clear();
        self.supp.push(0);
    }

    fn apply_kernel(&mut self, kernel: &Kernel) {
        if self.dense {
            kernel.apply(&mut self.inner);
        } else {
            self.apply_kernel_sparse(kernel);
        }
    }

    fn apply_gate(&mut self, gate: &Gate, qubits: &[usize]) {
        if self.dense {
            self.inner.apply_gate(gate, qubits);
            return;
        }
        match gate {
            Gate::X => {
                let b = self.bit(qubits[0]);
                self.translate(b, |_, a| a);
            }
            Gate::Y => {
                let b = self.bit(qubits[0]);
                self.mix_support_pairs(b, |a0, a1| {
                    (C64::new(a1.im, -a1.re), C64::new(-a0.im, a0.re))
                });
            }
            Gate::Z => {
                let b = self.bit(qubits[0]);
                let m = C64::real(-1.0);
                self.for_support(|i, a| if i & b != 0 { m * a } else { a });
            }
            // Only stochastic Paulis reach this path on the sparse
            // engine (the chunked executor applies everything else as
            // kernels); keep a correct fallback regardless.
            _ => {
                self.go_dense();
                self.inner.apply_gate(gate, qubits);
            }
        }
    }

    fn apply_pauli_masks(&mut self, x: u64, z: u64) {
        if self.dense {
            self.inner.apply_pauli_masks(x, z);
            return;
        }
        let n = self.inner.num_qubits();
        let mut xm = 0usize;
        let mut zm = 0usize;
        for q in 0..n {
            if x >> q & 1 == 1 {
                xm |= 1 << self.inner.phys_bit(q);
            }
            if z >> q & 1 == 1 {
                zm |= 1 << self.inner.phys_bit(q);
            }
        }
        if xm == 0 && zm == 0 {
            return;
        }
        if xm == 0 {
            self.for_support(|i, a| {
                if (i & zm).count_ones() & 1 == 1 {
                    -a
                } else {
                    a
                }
            });
            return;
        }
        // Same convention as the dense sweep: `out[i ^ xm] = ±in[i]`,
        // sign from the source index.
        self.translate(xm, move |i, a| {
            if (i & zm).count_ones() & 1 == 1 {
                -a
            } else {
                a
            }
        });
    }

    fn masked_sum(&self, mask: usize, value: usize) -> f64 {
        if self.dense {
            return self.inner.masked_sum(mask, value);
        }
        if mask == 0 {
            // Fold from +0.0 explicitly: `Iterator::sum` seeds with -0.0,
            // which would leak a sign bit on an empty support.
            return self
                .supp
                .iter()
                .fold(0.0, |acc, &i| acc + self.inner.amps()[i].abs2());
        }
        // The dense walk visits runs at `value | s` for `s` *descending*
        // over submasks of the free high bits, ascending inside each
        // run. Sort the matching support entries into that exact visit
        // order so the partial sums round identically.
        let run = 1usize << mask.trailing_zeros();
        let high_free = (self.inner.amps().len() - 1) & !mask & !(run - 1);
        let mut matching: Vec<usize> = self
            .supp
            .iter()
            .copied()
            .filter(|&i| i & mask == value)
            .collect();
        matching.sort_unstable_by_key(|&i| (std::cmp::Reverse(i & high_free), i));
        matching
            .iter()
            .fold(0.0, |acc, &i| acc + self.inner.amps()[i].abs2())
    }

    fn phys_bit(&self, q: usize) -> usize {
        self.inner.phys_bit(q)
    }

    fn measure(&mut self, q: usize, rng: &mut ChaCha8Rng) -> bool {
        if self.dense {
            return self.inner.measure(q, rng);
        }
        let p1 = self.prob_one_sparse(q);
        let outcome = rng.gen_bool(p1.clamp(0.0, 1.0));
        self.project_sparse(q, outcome);
        outcome
    }

    fn reset(&mut self, q: usize, rng: &mut ChaCha8Rng) {
        // Mirrors the dense reset: measure, then X on a 1 outcome.
        if self.measure(q, rng) {
            self.apply_gate(&Gate::X, &[q]);
        }
    }

    fn amplitude_damp(&mut self, q: usize, gamma: f64, rng: &mut ChaCha8Rng) {
        // Thermal relaxation disables the chunked path, so the sparse
        // engine never reaches here in practice; stay correct anyway.
        self.go_dense();
        self.inner.amplitude_damp(q, gamma, rng);
    }
}

/// Upper-bounds the reachable amplitude support of `program` with an
/// index-set shadow simulation, or `None` once the set exceeds `cap`.
///
/// Diagonal kernels and measurements keep the set; X/CX/SWAP permute it;
/// mixing kernels union it with its operand-bit translates; resets and
/// conditioned gates take the union of both branches. The bound holds
/// under any stochastic Pauli pattern: a Pauli event is an XOR
/// translation, and every rule here maps translated inputs to translated
/// (subsets of) outputs.
pub(crate) fn support_bound(program: &CompiledCircuit, cap: usize) -> Option<usize> {
    let mut set: Vec<usize> = vec![0];
    let mut max = 1usize;
    // S := S ∪ (S ^ b).
    fn grow(set: &mut Vec<usize>, b: usize) {
        let mut out: Vec<usize> = set.iter().map(|&i| i ^ b).collect();
        out.extend_from_slice(set);
        out.sort_unstable();
        out.dedup();
        *set = out;
    }
    // S := f(S), or S ∪ f(S) when the op is conditioned.
    fn permute(set: &mut Vec<usize>, both: bool, f: impl Fn(usize) -> usize) {
        if both {
            let mut out: Vec<usize> = set.iter().map(|&i| f(i)).collect();
            out.extend_from_slice(set);
            out.sort_unstable();
            out.dedup();
            *set = out;
        } else {
            for i in set.iter_mut() {
                *i = f(*i);
            }
            set.sort_unstable();
        }
    }
    for op in program.ops() {
        match op {
            Op::Measure { .. } => {}
            Op::Reset { q, .. } => grow(&mut set, 1 << q),
            Op::Unitary { kernel, cond, .. } => {
                let both = cond.is_some();
                match *kernel {
                    Kernel::Phase { .. }
                    | Kernel::Diag { .. }
                    | Kernel::CPhase { .. }
                    | Kernel::Rzz { .. }
                    | Kernel::Diag2 { .. } => {}
                    Kernel::FlipX { q } => permute(&mut set, both, |i| i ^ (1 << q)),
                    Kernel::Had { q } | Kernel::U1 { q, .. } => grow(&mut set, 1 << q),
                    Kernel::Cx { c, t } => permute(&mut set, both, |i| {
                        if i >> c & 1 == 1 {
                            i ^ (1 << t)
                        } else {
                            i
                        }
                    }),
                    Kernel::Swap { a, b } => permute(&mut set, both, |i| {
                        if (i >> a ^ i >> b) & 1 == 1 {
                            i ^ (1 << a) ^ (1 << b)
                        } else {
                            i
                        }
                    }),
                    Kernel::U2 { a, b, .. } | Kernel::C2 { c: a, t: b, .. } => {
                        grow(&mut set, 1 << a);
                        grow(&mut set, 1 << b);
                    }
                }
            }
        }
        max = max.max(set.len());
        if set.len() > cap {
            return None;
        }
    }
    Some(max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use caqr_circuit::{Circuit, Qubit};
    use rand::SeedableRng;

    fn q(i: usize) -> Qubit {
        Qubit::new(i)
    }

    /// Applies a compiled program to both engines and asserts the dense
    /// backing agrees with the dense engine bit for bit on every nonzero
    /// amplitude (zeros may differ in sign only).
    fn assert_matches_dense(circuit: &Circuit) {
        let program = CompiledCircuit::compile(circuit);
        let n = circuit.num_qubits();
        let mut dense = StateVector::zero(n);
        let mut sparse = SparseState::new(n, true);
        for op in program.ops() {
            let Op::Unitary { kernel, .. } = op else {
                continue;
            };
            kernel.apply(&mut dense);
            sparse.apply_kernel(kernel);
        }
        assert!(!sparse.is_dense(), "circuit should stay on the sparse path");
        for i in 0..dense.amps().len() {
            let (d, s) = (dense.amps()[i], sparse.backing().amps()[i]);
            if d.re != 0.0 || d.im != 0.0 {
                assert_eq!((d.re, d.im), (s.re, s.im), "amplitude {i} diverged");
            } else {
                assert_eq!((s.re, s.im), (0.0, 0.0), "phantom amplitude at {i}");
            }
        }
    }

    #[test]
    fn kernel_bodies_match_dense_bit_for_bit() {
        // Every specialized sparse kernel body at least once, with a
        // support that stays genuinely sparse (one Hadamard).
        let mut c = Circuit::new(5, 0);
        c.h(q(0));
        c.t(q(0));
        c.cx(q(0), q(1));
        c.x(q(2));
        c.tdg(q(1));
        c.push_gate(Gate::S, &[q(2)]);
        c.swap(q(1), q(3));
        c.cz(q(0), q(3));
        c.rz(0.37, q(3));
        c.rzz(1.1, q(0), q(2));
        c.push_gate(Gate::Y, &[q(4)]);
        c.z(q(0));
        c.push_gate(Gate::Sdg, &[q(3)]);
        c.cx(q(3), q(4));
        c.h(q(0));
        assert_matches_dense(&c);
    }

    #[test]
    fn fused_kernel_bodies_match_dense_bit_for_bit() {
        // Pair-gate runs fuse into the U2 (full 4x4) and C2 (controlled
        // form) kernels; both must run sparse and agree with the dense
        // sweeps exactly.
        let mut c = Circuit::new(5, 0);
        c.cx(q(0), q(1));
        c.h(q(0));
        c.h(q(1));
        c.cx(q(0), q(1)); // CX·(H⊗H)·CX: mixes both wires -> U2
        c.t(q(0));
        c.cx(q(1), q(2));
        c.push_gate(Gate::Rx(0.3), &[q(2)]); // CX + target rotation -> C2
        let program = CompiledCircuit::compile_fused(&c);
        let has = |pred: fn(&Kernel) -> bool| {
            program
                .ops()
                .iter()
                .any(|op| matches!(op, Op::Unitary { kernel, .. } if pred(kernel)))
        };
        assert!(has(|k| matches!(k, Kernel::U2 { .. })), "fusion makes a U2");
        assert!(has(|k| matches!(k, Kernel::C2 { .. })), "fusion makes a C2");
        let mut dense = StateVector::zero(5);
        let mut sparse = SparseState::new(5, true);
        for op in program.ops() {
            let Op::Unitary { kernel, .. } = op else {
                continue;
            };
            kernel.apply(&mut dense);
            sparse.apply_kernel(kernel);
        }
        assert!(!sparse.is_dense(), "fused run must stay on the sparse path");
        for i in 0..dense.amps().len() {
            let (d, s) = (dense.amps()[i], sparse.backing().amps()[i]);
            if d.re != 0.0 || d.im != 0.0 {
                assert_eq!((d.re, d.im), (s.re, s.im), "amplitude {i} diverged");
            } else {
                assert_eq!((s.re, s.im), (0.0, 0.0), "phantom amplitude at {i}");
            }
        }
    }

    #[test]
    fn c2_identity_half_skips_like_dense() {
        // A lone CX fused with a control-side phase leaves the c=0 half
        // exactly identity; the sparse body must skip it untouched, the
        // dense `do0`/`do1` convention.
        let mut sparse = SparseState::new(3, true);
        let mut dense = StateVector::zero(3);
        const ID2: [[C64; 2]; 2] = [[C64::ONE, C64::ZERO], [C64::ZERO, C64::ONE]];
        let flip: [[C64; 2]; 2] = [[C64::ZERO, C64::ONE], [C64::ONE, C64::ZERO]];
        for k in [
            Kernel::Had { q: 0 },
            Kernel::C2 {
                c: 0,
                t: 1,
                m0: ID2,
                m1: flip,
            },
        ] {
            k.apply(&mut dense);
            sparse.apply_kernel(&k);
        }
        assert!(!sparse.is_dense());
        assert_eq!(sparse.support_len(), 2, "|00> + |11> support");
        for i in 0..dense.amps().len() {
            let (d, s) = (dense.amps()[i], sparse.backing().amps()[i]);
            assert_eq!((d.re + 0.0, d.im + 0.0), (s.re + 0.0, s.im + 0.0));
        }
    }

    #[test]
    fn interference_prunes_support() {
        // H then H is the identity: the middle doubles the support, the
        // second H cancels one branch to an exact zero, and the sparse
        // engine must drop it instead of letting dead indices accrete.
        let mut c = Circuit::new(4, 0);
        c.x(q(1));
        c.h(q(0));
        c.cx(q(0), q(2));
        c.cx(q(0), q(2));
        c.h(q(0));
        let program = CompiledCircuit::compile(&c);
        let mut sparse = SparseState::new(4, true);
        for op in program.ops() {
            if let Op::Unitary { kernel, .. } = op {
                sparse.apply_kernel(kernel);
            }
        }
        assert_eq!(sparse.support_len(), 1, "H·H must collapse the support");
    }

    #[test]
    fn measure_and_reset_match_dense_draws() {
        // Same seed, same draw sequence, same collapse: outcomes and
        // post-measurement amplitudes agree bit for bit.
        let mut dense = StateVector::zero(3);
        let mut sparse = SparseState::new(3, true);
        let ops = [
            Kernel::Had { q: 0 },
            Kernel::Cx { c: 0, t: 1 },
            Kernel::Phase {
                q: 1,
                m1: C64::cis(std::f64::consts::FRAC_PI_4),
            },
        ];
        for k in &ops {
            k.apply(&mut dense);
            sparse.apply_kernel(k);
        }
        let mut rng_d = ChaCha8Rng::seed_from_u64(7);
        let mut rng_s = ChaCha8Rng::seed_from_u64(7);
        for qi in [1usize, 0, 2] {
            let d = SimState::measure(&mut dense, qi, &mut rng_d);
            let s = sparse.measure(qi, &mut rng_s);
            assert_eq!(d, s, "measurement outcome diverged on qubit {qi}");
        }
        SimState::reset(&mut dense, 0, &mut rng_d);
        sparse.reset(0, &mut rng_s);
        for i in 0..dense.amps().len() {
            let (d, s) = (dense.amps()[i], sparse.backing().amps()[i]);
            assert_eq!((d.re + 0.0, d.im + 0.0), (s.re + 0.0, s.im + 0.0));
        }
    }

    #[test]
    fn masked_sum_matches_dense_order() {
        let mut dense = StateVector::zero(4);
        let mut sparse = SparseState::new(4, true);
        for k in [
            Kernel::Had { q: 0 },
            Kernel::Cx { c: 0, t: 2 },
            Kernel::Had { q: 1 },
            Kernel::Phase {
                q: 2,
                m1: C64::cis(0.3),
            },
        ] {
            k.apply(&mut dense);
            sparse.apply_kernel(&k);
        }
        for (mask, value) in [
            (0usize, 0usize),
            (0b100, 0b100),
            (0b101, 0b001),
            (0b1010, 0),
        ] {
            let d = StateVector::masked_sum(&dense, mask, value);
            let s = sparse.masked_sum(mask, value);
            assert_eq!(
                d.to_bits(),
                s.to_bits(),
                "sum order diverged for mask {mask:#b}"
            );
        }
    }

    #[test]
    fn pauli_masks_match_dense() {
        let mut dense = StateVector::zero(3);
        let mut sparse = SparseState::new(3, true);
        for k in [Kernel::Had { q: 1 }, Kernel::Cx { c: 1, t: 2 }] {
            k.apply(&mut dense);
            sparse.apply_kernel(&k);
        }
        SimState::apply_pauli_masks(&mut dense, 0b011, 0b110);
        sparse.apply_pauli_masks(0b011, 0b110);
        for i in 0..dense.amps().len() {
            let (d, s) = (dense.amps()[i], sparse.backing().amps()[i]);
            assert_eq!((d.re + 0.0, d.im + 0.0), (s.re + 0.0, s.im + 0.0));
        }
    }

    #[test]
    fn sparse_fork_matches_from_scratch() {
        // load() from a sparse snapshot must reproduce the snapshot's
        // observable state even when the destination held a wider
        // support (stale crumbs must be zeroed).
        let mut snap = SparseState::new(3, true);
        for k in [Kernel::Had { q: 0 }, Kernel::Cx { c: 0, t: 1 }] {
            snap.apply_kernel(&k);
        }
        let mut scratch = SparseState::new(3, true);
        for k in [
            Kernel::Had { q: 0 },
            Kernel::Had { q: 1 },
            Kernel::Had { q: 2 },
        ] {
            scratch.apply_kernel(&k);
        }
        scratch.load(&snap);
        assert_eq!(scratch.support_len(), snap.support_len());
        for i in 0..snap.backing().amps().len() {
            let (a, b) = (snap.backing().amps()[i], scratch.backing().amps()[i]);
            assert_eq!((a.re + 0.0, a.im + 0.0), (b.re + 0.0, b.im + 0.0));
        }
    }

    #[test]
    fn support_bound_tracks_structure() {
        // Diagonals and permutations keep the bound at 1; each fresh
        // Hadamard doubles it.
        let mut c = Circuit::new(6, 0);
        c.x(q(0));
        c.cx(q(0), q(1));
        c.t(q(1));
        c.swap(q(1), q(2));
        let program = CompiledCircuit::compile(&c);
        assert_eq!(support_bound(&program, 64), Some(1));
        c.h(q(3));
        c.h(q(4));
        let program = CompiledCircuit::compile(&c);
        assert_eq!(support_bound(&program, 64), Some(4));
        // Exceeding the cap bails.
        c.h(q(0));
        c.h(q(1));
        c.h(q(2));
        c.h(q(5));
        let program = CompiledCircuit::compile(&c);
        assert_eq!(support_bound(&program, 16), None);
    }

    #[test]
    fn unspecialized_gate_falls_back_dense() {
        let mut sparse = SparseState::new(3, true);
        sparse.apply_kernel(&Kernel::Had { q: 0 });
        sparse.apply_gate(&Gate::Rx(0.7), &[1]);
        assert!(sparse.is_dense());
        let mut dense = StateVector::zero(3);
        dense.apply_gate(&Gate::H, &[0]);
        dense.apply_gate(&Gate::Rx(0.7), &[1]);
        for i in 0..dense.amps().len() {
            let (d, s) = (dense.amps()[i], sparse.backing().amps()[i]);
            assert_eq!((d.re + 0.0, d.im + 0.0), (s.re + 0.0, s.im + 0.0));
        }
        // set_zero restores the sparse invariant.
        sparse.set_zero();
        assert!(!sparse.is_dense());
        assert_eq!(sparse.support_len(), 1);
    }

    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Bit-exactness of the sparse engine over *fused* programs —
        /// random pair-gate runs produce U2/C2/Diag2 kernels, and the
        /// backing must agree with the dense engine on every nonzero
        /// amplitude whether or not the belt-and-braces dense fallback
        /// engaged along the way.
        #[test]
        fn fused_sparse_matches_dense_on_random_pair_runs(
            specs in proptest::collection::vec((0u8..=7, 0u32..25, 0u32..1000), 1..24),
        ) {
            let n = 5usize;
            let mut c = Circuit::new(n, 0);
            let mut hadamards = 0usize;
            for &(op, qsel, amil) in &specs {
                let q0 = qsel as usize % n;
                let q1 = (qsel as usize / n) % n;
                let a = f64::from(amil) * 0.006_283;
                match op {
                    0 => {
                        if hadamards < 2 {
                            hadamards += 1;
                            c.h(q(q0));
                        }
                    }
                    1 => c.t(q(q0)),
                    2 => c.rz(a, q(q0)),
                    3 => c.x(q(q0)),
                    4..=6 if q0 == q1 => {}
                    // A CX chased with a rotation fuses into C2 or U2.
                    4 => {
                        c.cx(q(q0), q(q1));
                        c.push_gate(Gate::Rx(a), &[q(q1)]);
                    }
                    5 => {
                        c.cx(q(q0), q(q1));
                        c.push_gate(Gate::Ry(a), &[q(q0)]);
                        c.cx(q(q0), q(q1));
                    }
                    6 => c.cz(q(q0), q(q1)),
                    _ => c.push_gate(Gate::S, &[q(q0)]),
                }
            }
            let program = CompiledCircuit::compile_fused(&c);
            let mut dense = StateVector::zero(n);
            let mut sparse = SparseState::new(n, true);
            for op in program.ops() {
                let Op::Unitary { kernel, .. } = op else { continue };
                kernel.apply(&mut dense);
                sparse.apply_kernel(kernel);
            }
            for i in 0..dense.amps().len() {
                let (d, s) = (dense.amps()[i], sparse.backing().amps()[i]);
                prop_assert_eq!((d.re + 0.0, d.im + 0.0), (s.re + 0.0, s.im + 0.0));
            }
        }
    }
}
