//! Circuit execution: ideal and noisy Monte-Carlo shots.
//!
//! This is the hot path behind every "real machine" number in the
//! reproduction (Table 3, Figs. 15/16, mirror fidelity), so the executor
//! is built around three optimizations — all invisible in the results:
//!
//! 1. **Deterministic shot parallelism** — each shot draws from its own
//!    ChaCha8 stream keyed by `(seed, shot_index)`
//!    ([`crate::parallel::shot_rng`]), shots are sharded over scoped
//!    threads, and histograms merge by addition, so the output is
//!    bit-identical at any thread count.
//! 2. **Precompiled kernels** — the circuit is compiled once into
//!    specialized stride kernels ([`crate::kernels`]); in noiseless runs,
//!    consecutive single-qubit gates on a wire fuse into one matrix. All
//!    noise probabilities (gate, idle, readout) are likewise hoisted into
//!    tables before the first shot.
//! 3. **Prefix snapshotting** — everything before the first measurement or
//!    reset is deterministic unless a stochastic noise event fires, so the
//!    prefix is simulated once and snapshotted. A shot first walks only
//!    the prefix's Bernoulli draws (no state work); if none fire — always,
//!    for ideal runs — it forks from the snapshot. Shots where an error
//!    does fire replay in full from |0...0> with a fresh copy of their
//!    stream, so they remain bit-exact.
//! 4. **Deferred measurement sampling** — a measurement whose qubit and
//!    classical bit are never consulted afterwards commutes past the rest
//!    of the circuit, so such measurements move to the end of the program
//!    and are sampled *without collapsing*: each bit draws against a
//!    conditional probability computed from masked amplitude sums
//!    (`StateVector::masked_sum`), replacing two full projection sweeps
//!    per measurement with read-only walks over shrinking subsets. On
//!    compiled benchmark circuits (no feed-forward) every measurement
//!    qualifies, which also extends the snapshot prefix across the whole
//!    unitary body. Sampling is disabled under the thermal-relaxation
//!    channel, whose state-dependent draws do not commute trivially.
//! 5. **Pauli-frame forwarding** — under the Pauli-twirl channel every
//!    noise draw is state-independent, so the body partitions into runs
//!    of unconditioned unitaries whose Bernoulli draws can be walked
//!    *ahead* of the state work. A shot pre-walks the whole prefix's
//!    draws; the recorded Paulis then conjugate forward through the
//!    prefix kernels as an `(x, z)` bit-mask frame (Clifford conjugation,
//!    global phase dropped — probabilities are exactly phase-invariant).
//!    When every event conjugates cleanly to the end — always, on
//!    Clifford-only bodies — the shot *still forks from the snapshot* and
//!    materializes the residual frame as one sweep, so a dirty shot costs
//!    the same as a clean one. Only a frame stalling against a
//!    non-Clifford kernel forces a from-zero replay, and even then the
//!    frame streams through each run until it stalls. The stream is never
//!    rewound.
//! 6. **Engine dispatch** — fully Clifford circuits (common for GHZ /
//!    syndrome-style dynamic workloads) skip the dense state vector
//!    entirely and run on an Aaronson–Gottesman stabilizer tableau
//!    ([`crate::tableau`]): `O(n)` per gate, `O(n^2)` per measurement,
//!    and no `2^n` memory, so width is not capped at the dense limit.
//!    [`Engine::Auto`] (the default) picks the tableau only for
//!    noiseless Clifford circuits; [`Engine::Stabilizer`] extends it to
//!    Pauli-twirl noise (errors are Paulis, hence Clifford) and, on
//!    non-Clifford circuits, seeds the prefix snapshot from a tableau
//!    simulation of the maximal Clifford prefix.
//!
//! Each noisy shot is one Monte-Carlo trajectory: stochastic Pauli errors
//! are inserted according to the [`NoiseModel`], so averaging over shots
//! samples the noisy output distribution.

use crate::counts::Counts;
use crate::kernels::{conjugate_pauli, CompiledCircuit, Op};
use crate::noise::{IdleDraw, NoiseModel, NoiseTables};
use crate::parallel::{self, shot_rng};
use crate::sparse::{support_bound, SimState, SparseState};
use crate::state::StateVector;
use crate::tableau::{self, Tableau};
use caqr_circuit::depth::Schedule;
use caqr_circuit::{Circuit, Gate};
use rand::Rng;
use rand_chacha::ChaCha8Rng;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// A cancellable run observed its stop callback and abandoned the
/// remaining shots. No partial histogram is returned — a truncated
/// histogram would silently break the deterministic-shot contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interrupted;

impl fmt::Display for Interrupted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("shot execution interrupted by the stop callback")
    }
}

impl std::error::Error for Interrupted {}

/// Shots each worker executes between stop-callback checks in
/// [`Executor::run_shots_cancellable`]. Small enough that a deadline
/// overruns by at most a few dozen shots per worker, large enough that
/// the check (often an `Instant::now` behind a `CancelToken`) stays off
/// the per-shot hot path.
const CANCEL_CHUNK: usize = 32;

/// Which simulation engine [`Executor`] uses for a circuit.
///
/// The tableau engine is exact on Clifford circuits (H/S/S†/X/Y/Z/CX/CZ/
/// SWAP plus measurement and reset) and runs in polynomial time and
/// memory, so it is never width-limited. It draws from the same per-shot
/// streams as the dense engine but consumes them differently (a
/// deterministic tableau measurement burns no randomness, a dense one
/// always burns one draw), so the two engines agree in distribution, not
/// bit for bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// Dense state vector, except noiseless fully-Clifford circuits run
    /// on the stabilizer tableau. The default.
    #[default]
    Auto,
    /// Dense state vector always.
    Dense,
    /// Stabilizer tableau wherever legal: whole-circuit for Clifford
    /// circuits (ideal or Pauli-twirl noise — stochastic Paulis are
    /// Clifford), and the maximal Clifford prefix of non-Clifford
    /// circuits seeds the snapshot through a tableau-to-dense
    /// conversion. Thermal relaxation needs amplitudes and falls back
    /// to the dense engine.
    Stabilizer,
}

impl Engine {
    /// Lower-case name, as accepted by CLI `--engine` flags.
    pub fn as_str(self) -> &'static str {
        match self {
            Engine::Auto => "auto",
            Engine::Dense => "dense",
            Engine::Stabilizer => "stabilizer",
        }
    }
}

impl std::str::FromStr for Engine {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "auto" => Ok(Engine::Auto),
            "dense" => Ok(Engine::Dense),
            "stabilizer" => Ok(Engine::Stabilizer),
            other => Err(format!(
                "unknown engine '{other}' (expected auto, dense, or stabilizer)"
            )),
        }
    }
}

impl fmt::Display for Engine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Which kernel bodies a run's state-vector sweeps dispatched to (see
/// `crate::wide`). Purely observational — the wide and scalar bodies
/// are bit-identical by contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KernelDispatch {
    /// Lane-parallel wide bodies (the default).
    #[default]
    Wide,
    /// Scalar fallback bodies ([`Executor::with_wide`]`(false)`).
    Scalar,
    /// No dense sweeps ran: the stabilizer tableau carried the circuit.
    Tableau,
    /// Support-tracked sparse sweeps carried the dense work (see
    /// `crate::sparse`); bit-identical to the dense engines by
    /// construction.
    Sparse,
}

impl KernelDispatch {
    /// Lower-case name for metrics surfaces.
    pub fn as_str(self) -> &'static str {
        match self {
            KernelDispatch::Wide => "wide",
            KernelDispatch::Scalar => "scalar",
            KernelDispatch::Tableau => "tableau",
            KernelDispatch::Sparse => "sparse",
        }
    }
}

impl fmt::Display for KernelDispatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Executes circuits shot by shot, with optional calibration-driven noise.
///
/// # Examples
///
/// ```
/// use caqr_circuit::{Circuit, Qubit};
/// use caqr_sim::Executor;
///
/// let mut c = Circuit::new(1, 1);
/// c.x(Qubit::new(0));
/// c.measure(Qubit::new(0), caqr_circuit::Clbit::new(0));
/// let counts = Executor::ideal().run_shots(&c, 100, 0);
/// assert_eq!(counts.get(1), 100);
/// ```
#[derive(Debug, Clone)]
pub struct Executor {
    noise: Option<NoiseModel>,
    /// Worker threads for `run_shots`; 0 = one per core.
    threads: usize,
    /// Specialized/fused kernels (true) or the naive per-instruction
    /// dense-matrix reference path (false).
    kernels: bool,
    /// Noiseless-prefix snapshotting.
    snapshot: bool,
    /// Collapse-free sampling of deferred terminal measurements.
    sampling: bool,
    /// Engine selection (dense vs stabilizer tableau).
    engine: Engine,
    /// Lane-parallel wide kernel bodies (bit-identical to scalar).
    wide: bool,
    /// Chunked fusion of noisy bodies under the Pauli-twirl channel.
    chunked: bool,
    /// Support-tracked sparse sweeps on provably low-support circuits
    /// (bit-identical to dense).
    sparse: bool,
}

/// Instrumentation from one [`Executor::run_shots_traced`] call.
#[derive(Debug, Clone, Copy, Default)]
pub struct ShotReport {
    /// Shots executed.
    pub shots: usize,
    /// Worker threads used.
    pub threads: usize,
    /// Unitary gates in the source circuit.
    pub gates_in: usize,
    /// Kernels after fusion (equals `gates_in` when fusion is off).
    pub kernels_out: usize,
    /// Compiled ops in the snapshotted deterministic prefix (0 = snapshot
    /// disabled or inapplicable).
    pub prefix_ops: usize,
    /// Shots that forked from the snapshot instead of replaying the
    /// prefix.
    pub snapshot_forks: usize,
    /// Measurements deferred to the program tail and sampled without
    /// collapse (0 = sampling disabled or inapplicable).
    pub deferred_measures: usize,
    /// Which kernel bodies the dense sweeps dispatched to, or
    /// [`KernelDispatch::Tableau`] when no dense sweep ran.
    pub kernel_dispatch: KernelDispatch,
    /// Unitary gates absorbed by the stabilizer tableau: every gate on
    /// whole-circuit tableau runs, the Clifford prefix length under
    /// [`Engine::Stabilizer`] handoff, 0 on pure dense runs.
    pub stabilizer_prefix_gates: usize,
    /// Wall-clock microseconds spent converting the tableau to the dense
    /// snapshot (0 unless the prefix handoff ran).
    pub tableau_to_dense_us: u64,
    /// Wall-clock time of the whole run.
    pub wall: Duration,
}

impl ShotReport {
    /// Shots per wall-clock second.
    pub fn shots_per_sec(&self) -> f64 {
        self.shots as f64 / self.wall.as_secs_f64().max(1e-12)
    }
}

impl Executor {
    /// A noiseless executor with kernels, snapshotting, deferred-measure
    /// sampling, and auto threads.
    pub fn ideal() -> Self {
        Executor {
            noise: None,
            threads: 0,
            kernels: true,
            snapshot: true,
            sampling: true,
            engine: Engine::Auto,
            wide: true,
            chunked: true,
            sparse: true,
        }
    }

    /// A noisy executor driven by `model`.
    pub fn noisy(model: NoiseModel) -> Self {
        Executor {
            noise: Some(model),
            ..Executor::ideal()
        }
    }

    /// The noise model, if any.
    pub fn noise(&self) -> Option<&NoiseModel> {
        self.noise.as_ref()
    }

    /// Sets the worker-thread count for [`Executor::run_shots`]; 0 (the
    /// default) means one worker per available core. The histogram does
    /// not depend on this value.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Enables or disables the specialized/fused kernel path. Disabled,
    /// every gate goes through the generic dense matrix product — the
    /// reference the kernel path is property-tested against.
    pub fn with_kernels(mut self, on: bool) -> Self {
        self.kernels = on;
        self
    }

    /// Enables or disables noiseless-prefix snapshotting.
    pub fn with_snapshot(mut self, on: bool) -> Self {
        self.snapshot = on;
        self
    }

    /// Enables or disables deferred-measurement sampling. Disabled, every
    /// measurement collapses the state in program order. The two settings
    /// draw the same probabilities in a different stream order, so they
    /// agree in distribution but not bit for bit.
    pub fn with_sampling(mut self, on: bool) -> Self {
        self.sampling = on;
        self
    }

    /// Selects the simulation engine (see [`Engine`]). [`Engine::Dense`]
    /// pins the dense state vector; [`Engine::Stabilizer`] uses the
    /// tableau wherever legal. Engine choice changes how randomness is
    /// consumed, so histograms agree across engines in distribution, not
    /// bit for bit.
    pub fn with_engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self
    }

    /// Enables or disables the lane-parallel wide kernel bodies. Both
    /// settings produce bit-identical histograms (see `crate::wide`);
    /// the flag exists for benchmarking attribution.
    pub fn with_wide(mut self, on: bool) -> Self {
        self.wide = on;
        self
    }

    /// Enables or disables chunked fusion of noisy bodies under the
    /// Pauli-twirl channel. Disabled, noisy shots apply gates one
    /// kernel at a time with draws interleaved. Both settings walk the
    /// same draw sequence; they differ only in floating-point evaluation
    /// order inside event-free chunks.
    pub fn with_chunked_fusion(mut self, on: bool) -> Self {
        self.chunked = on;
        self
    }

    /// Enables or disables the support-tracked sparse engine. It engages
    /// only on circuits whose plan-time support bound proves the state
    /// stays on a tiny fraction of the basis (see `crate::sparse`),
    /// and it is bit-identical to the dense engine on every observable,
    /// so the flag exists for benchmarking attribution.
    pub fn with_sparse(mut self, on: bool) -> Self {
        self.sparse = on;
        self
    }

    /// The reference configuration: sequential, generic gate application,
    /// no snapshotting, collapse-based measurement, dense engine, scalar
    /// kernel bodies. Same per-shot streams, none of the fast paths.
    pub fn reference(self) -> Self {
        self.with_threads(1)
            .with_kernels(false)
            .with_snapshot(false)
            .with_sampling(false)
            .with_engine(Engine::Dense)
            .with_wide(false)
            .with_chunked_fusion(false)
            .with_sparse(false)
    }

    /// Runs `shots` shots and histograms the classical register.
    ///
    /// For a fixed `(circuit, shots, seed)` the histogram is bit-identical
    /// at every thread count; shot `i` always consumes the stream
    /// [`crate::parallel::shot_rng`]`(seed, i)`.
    ///
    /// # Panics
    ///
    /// Panics if the circuit is wider than the dense simulator limit, has
    /// more than 64 classical bits, or still carries unbound symbolic
    /// rotation slots (bind the template first).
    pub fn run_shots(&self, circuit: &Circuit, shots: usize, seed: u64) -> Counts {
        self.run_shots_traced(circuit, shots, seed).0
    }

    /// [`Executor::run_shots`] plus throughput/fusion/snapshot
    /// instrumentation.
    ///
    /// # Panics
    ///
    /// Panics if the circuit is wider than the dense simulator limit, has
    /// more than 64 classical bits, or still carries unbound symbolic
    /// rotation slots (bind the template first).
    pub fn run_shots_traced(
        &self,
        circuit: &Circuit,
        shots: usize,
        seed: u64,
    ) -> (Counts, ShotReport) {
        self.run_shots_cancellable(circuit, shots, seed, &|| false)
            .expect("a never-stopping run cannot be interrupted")
    }

    /// [`Executor::run_shots_traced`] under a cooperative stop callback,
    /// checked every `CANCEL_CHUNK` (32) shots on every worker.
    ///
    /// When the callback returns `true`, a shared flag tells every shard
    /// to abandon its remaining shots at the next checkpoint and the whole
    /// run reports [`Interrupted`] — no partial histogram escapes. This is
    /// the hook `caqr-serve` drives with per-request deadlines; it keeps
    /// the uncancelled hot path free of atomics beyond one relaxed load
    /// per chunk.
    ///
    /// # Errors
    ///
    /// [`Interrupted`] when the stop callback fired before the last shot
    /// completed.
    ///
    /// # Panics
    ///
    /// Panics if the circuit is wider than the dense simulator limit, has
    /// more than 64 classical bits, or still carries unbound symbolic
    /// rotation slots (bind the template first).
    pub fn run_shots_cancellable(
        &self,
        circuit: &Circuit,
        shots: usize,
        seed: u64,
        should_stop: &(dyn Fn() -> bool + Sync),
    ) -> Result<(Counts, ShotReport), Interrupted> {
        let started = Instant::now();
        if let Some(tplan) = self.tableau_plan(circuit) {
            return self.run_shots_tableau(&tplan, shots, seed, should_stop, started);
        }
        let plan = self.plan(circuit);
        let workers = parallel::effective_workers(self.threads, shots);
        let stopped = AtomicBool::new(false);
        let shards = parallel::run_shards(workers, shots, |range| {
            let mut counts = Counts::new(circuit.num_clbits());
            let mut scratch = ShotScratch::new(circuit.num_qubits(), self.wide);
            let mut forks = 0usize;
            for (done, shot) in range.enumerate() {
                if done % CANCEL_CHUNK == 0 && (stopped.load(Ordering::Relaxed) || should_stop()) {
                    stopped.store(true, Ordering::Relaxed);
                    break;
                }
                let (value, forked) = plan.run_shot(seed, shot as u64, &mut scratch);
                counts.record(value);
                forks += usize::from(forked);
            }
            (counts, forks)
        });
        if stopped.load(Ordering::Relaxed) {
            return Err(Interrupted);
        }
        let mut counts = Counts::new(circuit.num_clbits());
        let mut forks = 0;
        for (shard, shard_forks) in &shards {
            counts.merge(shard);
            forks += shard_forks;
        }
        let stats = plan.program.stats();
        let report = ShotReport {
            shots,
            threads: workers,
            gates_in: stats.gates_in,
            kernels_out: stats.kernels_out,
            prefix_ops: if plan.snapshot.is_some() {
                plan.boundary_op
            } else {
                0
            },
            snapshot_forks: forks,
            deferred_measures: plan.tail.tail_len,
            kernel_dispatch: if plan.sparse {
                KernelDispatch::Sparse
            } else if self.wide {
                KernelDispatch::Wide
            } else {
                KernelDispatch::Scalar
            },
            stabilizer_prefix_gates: plan.stabilizer_prefix_gates,
            tableau_to_dense_us: plan.tableau_to_dense_us,
            wall: started.elapsed(),
        };
        Ok((counts, report))
    }

    /// Runs one shot and returns the final classical register value.
    ///
    /// Equivalent to shot 0 of [`Executor::run_shots`] with the same seed.
    pub fn run_once(&self, circuit: &Circuit, seed: u64) -> u64 {
        if let Some(tplan) = self.tableau_plan(circuit) {
            let mut tab = Tableau::new(circuit.num_qubits());
            return tplan.run_shot(&mut tab, seed, 0);
        }
        let plan = self.plan(circuit);
        let mut scratch = ShotScratch::new(circuit.num_qubits(), self.wide);
        plan.run_shot(seed, 0, &mut scratch).0
    }

    /// Builds the whole-circuit tableau plan when the engine selection
    /// and the circuit allow it (see [`Engine`]); `None` falls through to
    /// the dense planner.
    fn tableau_plan<'c>(&self, circuit: &'c Circuit) -> Option<TableauPlan<'c>> {
        let allowed = match self.engine {
            Engine::Dense => false,
            Engine::Auto => self.noise.is_none(),
            Engine::Stabilizer => true,
        };
        if !allowed || !tableau::is_clifford_circuit(circuit) {
            return None;
        }
        let tables = self.noise.as_ref().map(|n| {
            let schedule = Schedule::asap(circuit, &n.device().duration_model());
            NoiseTables::precompute(n, circuit, &schedule)
        });
        if let Some(t) = &tables {
            // Thermal relaxation draws against amplitudes the tableau
            // does not have; only stochastic Paulis stay Clifford.
            if !matches!(t.channel, crate::noise::IdleChannel::PauliTwirl) {
                return None;
            }
        }
        let gates = circuit
            .instructions()
            .iter()
            .filter(|i| !matches!(i.gate, Gate::Measure | Gate::Reset))
            .count();
        Some(TableauPlan {
            circuit,
            tables,
            gates,
        })
    }

    /// The sharded shot loop of the whole-circuit tableau engine; same
    /// determinism and cancellation contracts as the dense loop.
    fn run_shots_tableau(
        &self,
        plan: &TableauPlan<'_>,
        shots: usize,
        seed: u64,
        should_stop: &(dyn Fn() -> bool + Sync),
        started: Instant,
    ) -> Result<(Counts, ShotReport), Interrupted> {
        let circuit = plan.circuit;
        let workers = parallel::effective_workers(self.threads, shots);
        let stopped = AtomicBool::new(false);
        let shards = parallel::run_shards(workers, shots, |range| {
            let mut counts = Counts::new(circuit.num_clbits());
            let mut tab = Tableau::new(circuit.num_qubits());
            for (done, shot) in range.enumerate() {
                if done % CANCEL_CHUNK == 0 && (stopped.load(Ordering::Relaxed) || should_stop()) {
                    stopped.store(true, Ordering::Relaxed);
                    break;
                }
                counts.record(plan.run_shot(&mut tab, seed, shot as u64));
            }
            counts
        });
        if stopped.load(Ordering::Relaxed) {
            return Err(Interrupted);
        }
        let mut counts = Counts::new(circuit.num_clbits());
        for shard in &shards {
            counts.merge(shard);
        }
        let report = ShotReport {
            shots,
            threads: workers,
            gates_in: plan.gates,
            kernels_out: plan.gates,
            prefix_ops: 0,
            snapshot_forks: 0,
            deferred_measures: 0,
            kernel_dispatch: KernelDispatch::Tableau,
            stabilizer_prefix_gates: plan.gates,
            tableau_to_dense_us: 0,
            wall: started.elapsed(),
        };
        Ok((counts, report))
    }

    /// Builds the per-circuit execution plan: compiled kernels, hoisted
    /// noise tables, the deferred-measurement order, and (when legal) the
    /// prefix snapshot.
    fn plan<'c>(&self, circuit: &'c Circuit) -> ShotPlan<'c> {
        // An unbound slot is a NaN-boxed angle: simulating it would not
        // crash, it would silently poison every amplitude. Fail loudly at
        // the single entry point every run path funnels through.
        assert!(
            !caqr_circuit::parametric::has_slots(circuit),
            "cannot simulate a parametric template: bind its slots to concrete angles first"
        );
        let tables = self.noise.as_ref().map(|n| {
            let schedule = Schedule::asap(circuit, &n.device().duration_model());
            NoiseTables::precompute(n, circuit, &schedule)
        });
        // Deferring a measurement commutes it past Pauli-twirl noise on
        // other qubits; thermal relaxation mutates the state against
        // state-dependent probabilities, so it keeps program order.
        let samplable = match &tables {
            None => true,
            Some(t) => matches!(t.channel, crate::noise::IdleChannel::PauliTwirl),
        };
        let tail = if self.sampling && samplable {
            deferral_order(circuit)
        } else {
            DeferredTail {
                order: (0..circuit.len()).collect(),
                ..DeferredTail::default()
            }
        };
        // Noiseless programs fuse at compile time: nothing stochastic
        // sits between instructions, so gates merge freely. Noisy
        // Pauli-twirl programs stay unfused here and fuse per chunk
        // below, where the draw pre-walk decides event-free regions.
        let fused = self.kernels && self.noise.is_none();
        let program = if fused {
            CompiledCircuit::compile_fused_ordered(circuit, &tail.order)
        } else {
            CompiledCircuit::compile_ordered(circuit, &tail.order)
        };
        let boundary_op = program.prefix_ops();
        // Execution-order position of the first measurement or reset; the
        // instructions before it are the snapshot prefix.
        let instrs = circuit.instructions();
        let boundary_pos = tail
            .order
            .iter()
            .position(|&i| matches!(instrs[i].gate, Gate::Measure | Gate::Reset))
            .unwrap_or(tail.order.len());
        // Prefix forking is legal when the prefix draws can be walked
        // without the state: always for no noise, for the Pauli-twirl
        // channel (fixed probabilities), and for any channel whose prefix
        // probabilities are all zero. Thermal relaxation draws against
        // state-dependent probabilities, so it only qualifies when silent.
        // (Under thermal relaxation the order is the identity, so the
        // execution-order position doubles as the instruction bound.)
        let forkable = match &tables {
            None => true,
            Some(t) => match t.channel {
                crate::noise::IdleChannel::PauliTwirl => true,
                crate::noise::IdleChannel::ThermalRelaxation => t.is_zero_before(boundary_pos),
            },
        };
        let mut plan = ShotPlan {
            circuit,
            tables,
            program,
            kernels: self.kernels,
            tail,
            boundary_op,
            boundary_pos,
            snapshot: None,
            chunks: None,
            prefix_chunks: 0,
            sparse: false,
            sparse_snapshot: None,
            stabilizer_prefix_gates: 0,
            tableau_to_dense_us: 0,
        };
        // Chunked frame forwarding: legal exactly when the Pauli-twirl
        // channel makes every draw state-independent, so a chunk's draws
        // can be walked before its state work.
        let chunkable = self.kernels
            && self.chunked
            && match &plan.tables {
                None => false,
                Some(t) => matches!(t.channel, crate::noise::IdleChannel::PauliTwirl),
            };
        if chunkable {
            let (chunks, prefix_chunks) = build_chunks(&plan.program, &plan.tail);
            plan.chunks = Some(chunks);
            plan.prefix_chunks = prefix_chunks;
            // Sparse engagement: only when a plan-time index-set bound
            // proves the support stays under 1/64th of the basis — which
            // admits arithmetic/reversible circuits (permutations and
            // phases with a few Hadamards) and rejects everything else
            // before any per-shot cost is paid. The bound is sound under
            // every stochastic Pauli pattern, so it is per-circuit, not
            // per-shot.
            let cap = (1usize << circuit.num_qubits()) >> 6;
            plan.sparse = self.sparse
                && self.engine != Engine::Dense
                && cap > 0
                && support_bound(&plan.program, cap).is_some();
        }
        if self.snapshot && forkable && boundary_op > 0 {
            let mut state = StateVector::zero(circuit.num_qubits());
            state.set_wide(self.wide);
            if self.engine == Engine::Stabilizer {
                // Seed the snapshot from a tableau simulation of the
                // maximal unconditioned Clifford prefix; amplitudes
                // agree with the dense build up to rounding.
                let mut rest = 0usize;
                let instrs = circuit.instructions();
                let exec_prefix = &plan.tail.order[..plan.boundary_pos];
                let mut tab = Tableau::new(circuit.num_qubits());
                while rest < exec_prefix.len() {
                    let instr = &instrs[exec_prefix[rest]];
                    if instr.condition.is_some() || !tableau::is_clifford_gate(&instr.gate) {
                        break;
                    }
                    let mut qs = [0usize; 2];
                    for (i, qb) in instr.qubits.iter().enumerate() {
                        qs[i] = qb.index();
                    }
                    tab.apply(&instr.gate, &qs[..instr.qubits.len()]);
                    rest += 1;
                }
                if rest > 0 {
                    let handoff = Instant::now();
                    state = tab.to_state_vector();
                    state.set_wide(self.wide);
                    plan.tableau_to_dense_us = handoff.elapsed().as_micros() as u64;
                    plan.stabilizer_prefix_gates = rest;
                    // The remaining prefix instructions apply through
                    // the generic gate path below.
                    for &idx in &exec_prefix[rest..] {
                        let instr = &instrs[idx];
                        if instr.condition.is_some() {
                            continue;
                        }
                        let operands: Vec<usize> = instr.qubits.iter().map(|q| q.index()).collect();
                        state.apply_gate(&instr.gate, &operands);
                    }
                    if plan.sparse {
                        plan.sparse_snapshot = Some(SparseState::from_dense(&state));
                    }
                    plan.snapshot = Some(state);
                    return plan;
                }
            }
            // The classical register is still all-zero before the
            // first measurement, so conditioned prefix gates never
            // execute.
            for op in &plan.program.ops()[..boundary_op] {
                if let Op::Unitary { cond: Some(_), .. } = op {
                    continue;
                }
                plan.apply_unitary_op(op, &mut state);
            }
            if plan.sparse {
                plan.sparse_snapshot = Some(SparseState::from_dense(&state));
            }
            plan.snapshot = Some(state);
        }
        plan
    }
}

/// Partitions the program body into chunks for the noisy frame-forwarded
/// path and returns `(chunks, prefix_chunks)`, where the first
/// `prefix_chunks` chunks lie entirely before the first measurement or
/// reset. Each maximal run of unconditioned unitaries becomes one
/// [`Chunk::Run`].
fn build_chunks(program: &CompiledCircuit, tail: &DeferredTail) -> (Vec<Chunk>, usize) {
    let ops = program.ops();
    let body = &ops[..ops.len() - tail.tail_len];
    let mut chunks: Vec<Chunk> = Vec::new();
    let mut run: Option<usize> = None;
    for (pos, op) in body.iter().enumerate() {
        if matches!(op, Op::Unitary { cond: None, .. }) {
            run.get_or_insert(pos);
        } else {
            if let Some(start) = run.take() {
                chunks.push(Chunk::Run { start, end: pos });
            }
            chunks.push(Chunk::Inline { pos });
        }
    }
    if let Some(start) = run.take() {
        chunks.push(Chunk::Run {
            start,
            end: body.len(),
        });
    }
    let prefix_chunks = chunks
        .iter()
        .position(|c| match c {
            Chunk::Inline { pos } => {
                matches!(body[*pos], Op::Measure { .. } | Op::Reset { .. })
            }
            Chunk::Run { .. } => false,
        })
        .unwrap_or(chunks.len());
    (chunks, prefix_chunks)
}

/// The deferred-measurement execution plan: a permutation of instruction
/// indices with deferrable measurements moved (order-preserved) to the
/// tail, plus the bookkeeping needed to sample them at the end.
#[derive(Debug, Default)]
struct DeferredTail {
    /// Execution order: body instructions, then deferred measurements.
    order: Vec<usize>,
    /// Number of deferred measurements at the end of `order`.
    tail_len: usize,
    /// Wire each tail measurement reads at the end, after relabeling
    /// through the SWAPs it commuted past.
    tail_wires: Vec<usize>,
    /// Deterministic outcome flips (bit `k` = tail measurement `k`): set
    /// when the measurement commuted past an odd number of circuit X/Y
    /// gates on its wire.
    base_flips: u64,
    /// `carry_idle[j][s]` / `carry_gate[j][s]`: tail measurements whose
    /// reported outcome flips when an X/Y noise event fires on operand
    /// slot `s` of body instruction `j` — before (idle) or after (gate
    /// noise) the gate acts. The two differ only across a SWAP, where the
    /// dead state changes wires mid-instruction.
    carry_idle: Vec<Vec<u64>>,
    carry_gate: Vec<Vec<u64>>,
}

/// A successful deferral walk: the final wire carrying the dead state,
/// the deterministic outcome flip, and the `(instr, slot, is_post_gate)`
/// positions where a stochastic X/Y would flip the reported bit.
type DeferralTrace = (usize, bool, Vec<(usize, usize, bool)>);

/// Decides whether the measurement at `start` commutes to the end of the
/// circuit. Walks forward tracking the wire that carries the measured
/// (logically dead) state: SWAPs relabel it, Z-diagonal gates commute
/// exactly, X/Y gates flip the eventual outcome deterministically, and
/// further measurements of the wire are Z-projectors that commute too.
/// Anything else that touches the wire — entangling two-qubit gates,
/// non-diagonal rotations, resets — blocks deferral. Returns the final
/// wire, the deterministic flip, and every `(instr, slot, pre/post)`
/// where a stochastic X/Y on the wire would flip the reported outcome.
fn trace_deferral(instrs: &[caqr_circuit::Instruction], start: usize) -> Option<DeferralTrace> {
    let mut wire = instrs[start].qubits[0].index();
    let mut flip = false;
    // (instruction, operand slot, is_post_gate)
    let mut touches: Vec<(usize, usize, bool)> = Vec::new();
    for (j, instr) in instrs.iter().enumerate().skip(start + 1) {
        let Some(slot) = instr.qubits.iter().position(|q| q.index() == wire) else {
            continue;
        };
        match instr.gate {
            Gate::Swap if instr.condition.is_none() => {
                touches.push((j, slot, false));
                wire = instr.qubits[1 - slot].index();
                touches.push((j, 1 - slot, true));
            }
            Gate::X | Gate::Y if instr.condition.is_none() => {
                touches.push((j, slot, false));
                touches.push((j, slot, true));
                flip = !flip;
            }
            // Z-diagonal single-qubit gates commute with the deferred
            // Z-projector whether or not their condition fires.
            Gate::Z | Gate::S | Gate::Sdg | Gate::T | Gate::Tdg | Gate::Rz(_) | Gate::Phase(_) => {
                touches.push((j, slot, false));
                touches.push((j, slot, true));
            }
            // A later Z-measurement of the same wire commutes with ours;
            // only its pre-measurement idle noise can flip us.
            Gate::Measure => touches.push((j, slot, false)),
            _ => return None,
        }
    }
    Some((wire, flip, touches))
}

/// Computes the deferred-measurement execution order. A measurement
/// defers when (a) its classical bit is never read by a condition nor
/// rewritten by a later measurement, and (b) every later touch of its
/// wire commutes with the Z-projector (see [`trace_deferral`]).
fn deferral_order(circuit: &Circuit) -> DeferredTail {
    let instrs = circuit.instructions();
    // Last position each clbit is read by a condition / written by a
    // measurement: a deferrable measurement must be the final writer of
    // an unread-afterwards bit.
    let mut last_read = vec![0usize; circuit.num_clbits()];
    let mut last_write = vec![0usize; circuit.num_clbits()];
    for (j, instr) in instrs.iter().enumerate() {
        if let Some(c) = instr.condition {
            last_read[c.index()] = last_read[c.index()].max(j);
        }
        if matches!(instr.gate, Gate::Measure) {
            let c = instr.clbit.expect("measure has a clbit").index();
            last_write[c] = last_write[c].max(j);
        }
    }
    let mut out = DeferredTail {
        carry_idle: instrs.iter().map(|i| vec![0u64; i.qubits.len()]).collect(),
        carry_gate: instrs.iter().map(|i| vec![0u64; i.qubits.len()]).collect(),
        ..DeferredTail::default()
    };
    let mut deferred = vec![false; instrs.len()];
    let mut tail: Vec<usize> = Vec::new();
    for (i, instr) in instrs.iter().enumerate() {
        if !matches!(instr.gate, Gate::Measure) || instr.condition.is_some() {
            continue;
        }
        let c = instr.clbit.expect("measure has a clbit").index();
        if last_read[c] > i || last_write[c] > i || tail.len() >= 64 {
            continue;
        }
        let Some((wire, flip, touches)) = trace_deferral(instrs, i) else {
            continue;
        };
        let k = tail.len();
        deferred[i] = true;
        tail.push(i);
        out.tail_wires.push(wire);
        if flip {
            out.base_flips |= 1 << k;
        }
        for (j, slot, post) in touches {
            if post {
                out.carry_gate[j][slot] |= 1 << k;
            } else {
                out.carry_idle[j][slot] |= 1 << k;
            }
        }
    }
    out.order = (0..instrs.len()).filter(|&i| !deferred[i]).collect();
    out.tail_len = tail.len();
    out.order.extend(tail);
    out
}

/// One body segment of the chunked noisy fast path.
enum Chunk {
    /// Unconditioned unitary ops `[start, end)` of the program body.
    /// Event-free shots apply the kernels directly; shots with noise
    /// events stream the events through the run as a Pauli frame (see
    /// [`ShotPlan::exec_run`]).
    Run { start: usize, end: usize },
    /// A measurement, reset, or conditioned gate at body position `pos`,
    /// executed in place against the live register and state.
    Inline { pos: usize },
}

/// One stochastic Pauli recorded by a chunk pre-walk: apply `pauli` to
/// qubit `q` immediately before (`post == false`) or after
/// (`post == true`) the unitary at body position `pos`.
struct PauliEvent {
    pos: usize,
    q: usize,
    post: bool,
    pauli: Gate,
}

/// The body position an event applies at: before `pos` for idle (pre)
/// events, after it — i.e. before `pos + 1` — for gate (post) events.
fn event_boundary(ev: &PauliEvent) -> usize {
    ev.pos + usize::from(ev.post)
}

/// Folds a recorded Pauli into `(x, z)` frame masks. `Y ∝ XZ`; the
/// global phase drops, which leaves every probability exactly unchanged.
fn merge_event(ev: &PauliEvent, x: &mut u64, z: &mut u64) {
    let bit = 1u64 << ev.q;
    match ev.pauli {
        Gate::X => *x ^= bit,
        Gate::Y => {
            *x ^= bit;
            *z ^= bit;
        }
        Gate::Z => *z ^= bit,
        _ => unreachable!("noise events are Paulis"),
    }
}

/// Per-worker mutable storage reused across shots.
struct ShotScratch {
    state: StateVector,
    /// Sparse twin of `state`, created lazily on the first sparse shot
    /// (plans that never go sparse never pay for it).
    sparse: Option<SparseState>,
    /// Wide-kernel setting, for the lazy sparse construction.
    wide: bool,
    /// Pauli events recorded by chunk pre-walks (chunked path only).
    events: Vec<PauliEvent>,
    /// Cumulative event counts, one per prefix chunk (chunked path only).
    ends: Vec<usize>,
}

impl ShotScratch {
    fn new(num_qubits: usize, wide: bool) -> Self {
        let mut state = StateVector::zero(num_qubits);
        state.set_wide(wide);
        ShotScratch {
            state,
            sparse: None,
            wide,
            events: Vec::new(),
            ends: Vec::new(),
        }
    }
}

/// The whole-circuit stabilizer-engine plan: no compiled program, no
/// snapshot — per-shot tableau simulation straight off the instruction
/// list.
struct TableauPlan<'c> {
    circuit: &'c Circuit,
    tables: Option<NoiseTables>,
    /// Unitary gates in the circuit (for the report).
    gates: usize,
}

impl TableauPlan<'_> {
    /// Runs one shot on `tab` (cleared first); returns the final
    /// classical register.
    fn run_shot(&self, tab: &mut Tableau, seed: u64, shot: u64) -> u64 {
        let mut rng = shot_rng(seed, shot);
        tab.clear();
        let mut clreg: u64 = 0;
        for (index, instr) in self.circuit.instructions().iter().enumerate() {
            // Idle decoherence: stochastic Paulis are Clifford, so they
            // apply to the tableau like any other gate.
            if let Some(tables) = &self.tables {
                for (draw, qb) in tables.idle[index].iter().zip(&instr.qubits) {
                    let IdleDraw::Twirl(p) = *draw else {
                        unreachable!("tableau runs require the Pauli-twirl channel")
                    };
                    if p > 0.0 && rng.gen_bool(p) {
                        let pauli = NoiseModel::random_pauli(&mut rng);
                        tab.apply(&pauli, &[qb.index()]);
                    }
                }
            }
            match instr.gate {
                Gate::Measure => {
                    let mut bit = tab.measure(instr.qubits[0].index(), &mut rng);
                    if let Some(tables) = &self.tables {
                        let p = tables.readout[index];
                        if p > 0.0 && rng.gen_bool(p) {
                            bit = !bit;
                        }
                    }
                    let clbit = instr.clbit.expect("measure has a clbit").index();
                    if bit {
                        clreg |= 1 << clbit;
                    } else {
                        clreg &= !(1 << clbit);
                    }
                }
                Gate::Reset => tab.reset(instr.qubits[0].index(), &mut rng),
                ref gate => {
                    if let Some(c) = instr.condition {
                        if clreg >> c.index() & 1 == 0 {
                            continue;
                        }
                    }
                    let mut qs = [0usize; 2];
                    for (i, qb) in instr.qubits.iter().enumerate() {
                        qs[i] = qb.index();
                    }
                    tab.apply(gate, &qs[..instr.qubits.len()]);
                    if let Some(tables) = &self.tables {
                        let p = tables.gate[index];
                        if p > 0.0 {
                            for qb in &instr.qubits {
                                if rng.gen_bool(p) {
                                    let pauli = NoiseModel::random_pauli(&mut rng);
                                    tab.apply(&pauli, &[qb.index()]);
                                }
                            }
                        }
                    }
                }
            }
        }
        clreg
    }
}

/// Everything `run_shots` precomputes once per circuit.
struct ShotPlan<'c> {
    circuit: &'c Circuit,
    tables: Option<NoiseTables>,
    program: CompiledCircuit,
    kernels: bool,
    /// Execution order plus deferred-tail sampling bookkeeping.
    tail: DeferredTail,
    /// Ops before the first measurement/reset.
    boundary_op: usize,
    /// Execution-order position of the first measurement/reset.
    boundary_pos: usize,
    /// State after the deterministic prefix, when forking is enabled.
    snapshot: Option<StateVector>,
    /// Body partition for the chunked noisy fast path (`None` = stream
    /// ops one at a time).
    chunks: Option<Vec<Chunk>>,
    /// Chunks entirely before the first measurement/reset.
    prefix_chunks: usize,
    /// Shots run on the support-tracked sparse engine (implies
    /// `chunks.is_some()` and a proven support bound).
    sparse: bool,
    /// `snapshot` converted for sparse forking.
    sparse_snapshot: Option<SparseState>,
    /// Clifford prefix length absorbed by the tableau handoff.
    stabilizer_prefix_gates: usize,
    /// Microseconds the tableau-to-dense conversion took.
    tableau_to_dense_us: u64,
}

impl ShotPlan<'_> {
    /// Runs one shot; returns `(clreg, forked_from_snapshot)`.
    fn run_shot(&self, seed: u64, shot: u64, scratch: &mut ShotScratch) -> (u64, bool) {
        if self.chunks.is_some() {
            // Destructure for disjoint borrows of the state and the
            // event scratch.
            let ShotScratch {
                state,
                sparse,
                wide,
                events,
                ends,
            } = scratch;
            if self.sparse {
                let n = self.circuit.num_qubits();
                let sp = sparse.get_or_insert_with(|| SparseState::new(n, *wide));
                return self.run_shot_chunked(
                    seed,
                    shot,
                    self.sparse_snapshot.as_ref(),
                    sp,
                    events,
                    ends,
                );
            }
            return self.run_shot_chunked(seed, shot, self.snapshot.as_ref(), state, events, ends);
        }
        let scratch = &mut scratch.state;
        let mut rng = shot_rng(seed, shot);
        if let Some(snapshot) = &self.snapshot {
            if self.prefix_event_free(&mut rng) {
                scratch.load(snapshot);
                let value = self.finish_shot(self.boundary_op, &mut rng, scratch);
                return (value, true);
            }
            // A prefix error fired: replay in full with a fresh copy of
            // this shot's stream so the draw sequence matches exactly.
            rng = shot_rng(seed, shot);
        }
        scratch.set_zero();
        (self.finish_shot(0, &mut rng, scratch), false)
    }

    /// Runs one shot over the chunk partition. Every chunk's Bernoulli
    /// draws are walked before its state work (legal because Pauli-twirl
    /// draws are state-independent), so the stream position never needs
    /// rewinding. Event-free shots fork from the snapshot. Shots whose
    /// events all conjugate forward through the prefix kernels *also*
    /// fork, then materialize the carried `(x, z)` frame as one sweep —
    /// exactly equivalent to replaying with the Paulis applied in place,
    /// because conjugation moves each Pauli past a Clifford kernel at the
    /// cost of a global phase only, and probabilities are exactly
    /// phase-invariant. Only a frame that stalls against a non-Clifford
    /// kernel forces a from-zero replay with the recorded Paulis
    /// interleaved at their exact positions.
    fn run_shot_chunked<S: SimState>(
        &self,
        seed: u64,
        shot: u64,
        snapshot: Option<&S>,
        state: &mut S,
        ev_buf: &mut Vec<PauliEvent>,
        ends: &mut Vec<usize>,
    ) -> (u64, bool) {
        let chunks = self.chunks.as_deref().expect("chunked shots have chunks");
        let mut rng = shot_rng(seed, shot);
        let mut clreg: u64 = 0;
        let mut body_flips: u64 = 0;
        let mut forked = false;
        let mut first = 0usize;
        if let Some(snapshot) = snapshot {
            // Pre-walk every prefix chunk up front; if nothing fired the
            // shot forks from the snapshot, otherwise the recorded event
            // slices drive the frame-forwarded fork or a from-zero replay
            // of the same chunks.
            ev_buf.clear();
            ends.clear();
            for chunk in &chunks[..self.prefix_chunks] {
                match chunk {
                    Chunk::Run { start, end } => {
                        self.prewalk_run(*start, *end, &mut rng, ev_buf, &mut body_flips);
                    }
                    Chunk::Inline { pos } => {
                        self.prewalk_inline(*pos, &mut rng, ev_buf, &mut body_flips);
                    }
                }
                ends.push(ev_buf.len());
            }
            if ev_buf.is_empty() {
                state.load(snapshot);
                forked = true;
            } else if let Some((x, z)) = self.forward_frame(ev_buf) {
                state.load(snapshot);
                state.apply_pauli_masks(x, z);
                forked = true;
            } else {
                state.set_zero();
                let mut ev0 = 0usize;
                for (chunk, &ev1) in chunks[..self.prefix_chunks].iter().zip(ends.iter()) {
                    let events = &ev_buf[ev0..ev1];
                    match chunk {
                        Chunk::Run { start, end } => {
                            self.exec_run(*start, *end, events, state);
                        }
                        // A conditioned prefix gate is deterministically
                        // skipped (the register is still zero); only its
                        // idle events act.
                        Chunk::Inline { .. } => {
                            for ev in events {
                                state.apply_gate(&ev.pauli, &[ev.q]);
                            }
                        }
                    }
                    ev0 = ev1;
                }
            }
            first = self.prefix_chunks;
        } else {
            state.set_zero();
        }
        for chunk in &chunks[first..] {
            match chunk {
                Chunk::Inline { pos } => {
                    let op = &self.program.ops()[*pos];
                    self.exec_op(op, &mut rng, state, &mut clreg, &mut body_flips);
                }
                Chunk::Run { start, end } => {
                    ev_buf.clear();
                    self.prewalk_run(*start, *end, &mut rng, ev_buf, &mut body_flips);
                    self.exec_run(*start, *end, ev_buf, state);
                }
            }
        }
        if self.tail.tail_len > 0 {
            self.sample_tail(&mut rng, state, body_flips, &mut clreg);
        }
        (clreg, forked)
    }

    /// Conjugates every recorded prefix event forward through the prefix
    /// kernels into a single end-of-prefix `(x, z)` frame, or `None` when
    /// some event stalls against a non-Clifford kernel on its wire.
    /// Conditioned prefix ops are deterministically skipped (the register
    /// is still zero), so the frame passes through them unchanged.
    fn forward_frame(&self, events: &[PauliEvent]) -> Option<(u64, u64)> {
        let ops = self.program.ops();
        let (mut x, mut z) = (0u64, 0u64);
        let mut k = 0usize;
        for (pos, op) in ops[..self.boundary_op].iter().enumerate() {
            while k < events.len() && event_boundary(&events[k]) <= pos {
                merge_event(&events[k], &mut x, &mut z);
                k += 1;
            }
            if (x, z) == (0, 0) {
                continue;
            }
            match op {
                Op::Unitary { cond: Some(_), .. } => {}
                Op::Unitary { kernel, .. } => {
                    (x, z) = conjugate_pauli(kernel, x, z)?;
                }
                _ => unreachable!("the prefix holds only unitaries"),
            }
        }
        while k < events.len() {
            merge_event(&events[k], &mut x, &mut z);
            k += 1;
        }
        Some((x, z))
    }

    /// Walks the noise draws of run chunk `[start, end)` without touching
    /// the state, recording fired Paulis (draw order matches
    /// [`ShotPlan::exec_op`] exactly).
    fn prewalk_run(
        &self,
        start: usize,
        end: usize,
        rng: &mut ChaCha8Rng,
        events: &mut Vec<PauliEvent>,
        body_flips: &mut u64,
    ) {
        let ops = self.program.ops();
        let tables = self.tables.as_ref().expect("chunked runs require noise");
        for (pos, op) in ops.iter().enumerate().take(end).skip(start) {
            let index = op_index(op);
            let instr = &self.circuit.instructions()[index];
            for (slot, (draw, qb)) in tables.idle[index].iter().zip(&instr.qubits).enumerate() {
                let IdleDraw::Twirl(p) = *draw else {
                    unreachable!("chunking requires the Pauli-twirl channel")
                };
                if p > 0.0 && rng.gen_bool(p) {
                    let pauli = NoiseModel::random_pauli(rng);
                    if matches!(pauli, Gate::X | Gate::Y) && self.tail.tail_len > 0 {
                        *body_flips ^= self.tail.carry_idle[index][slot];
                    }
                    events.push(PauliEvent {
                        pos,
                        q: qb.index(),
                        post: false,
                        pauli,
                    });
                }
            }
            let p = tables.gate[index];
            if p > 0.0 {
                for (slot, qb) in instr.qubits.iter().enumerate() {
                    if rng.gen_bool(p) {
                        let pauli = NoiseModel::random_pauli(rng);
                        if matches!(pauli, Gate::X | Gate::Y) && self.tail.tail_len > 0 {
                            *body_flips ^= self.tail.carry_gate[index][slot];
                        }
                        events.push(PauliEvent {
                            pos,
                            q: qb.index(),
                            post: true,
                            pauli,
                        });
                    }
                }
            }
        }
    }

    /// Walks the idle draws of a conditioned prefix gate (its condition
    /// bit is still zero, so the gate itself — and its gate-noise draws —
    /// are deterministically skipped, exactly as in
    /// [`ShotPlan::exec_op`]).
    fn prewalk_inline(
        &self,
        pos: usize,
        rng: &mut ChaCha8Rng,
        events: &mut Vec<PauliEvent>,
        body_flips: &mut u64,
    ) {
        let ops = self.program.ops();
        debug_assert!(
            matches!(ops[pos], Op::Unitary { cond: Some(_), .. }),
            "only conditioned gates precede the first measurement inline"
        );
        let index = op_index(&ops[pos]);
        let instr = &self.circuit.instructions()[index];
        let tables = self.tables.as_ref().expect("chunked runs require noise");
        for (slot, (draw, qb)) in tables.idle[index].iter().zip(&instr.qubits).enumerate() {
            let IdleDraw::Twirl(p) = *draw else {
                unreachable!("chunking requires the Pauli-twirl channel")
            };
            if p > 0.0 && rng.gen_bool(p) {
                let pauli = NoiseModel::random_pauli(rng);
                if matches!(pauli, Gate::X | Gate::Y) && self.tail.tail_len > 0 {
                    *body_flips ^= self.tail.carry_idle[index][slot];
                }
                events.push(PauliEvent {
                    pos,
                    q: qb.index(),
                    post: false,
                    pauli,
                });
            }
        }
    }

    /// Applies run chunk `[start, end)`. Event-free shots apply the
    /// kernels directly. Otherwise the recorded Paulis stream through
    /// the run as an `(x, z)` frame: each event conjugates forward
    /// through the kernels it crosses (Clifford conjugation on bit
    /// masks, global phase dropped — probabilities are exactly
    /// phase-invariant) and the surviving frame materializes as one
    /// sweep at the end of the run; a frame that stalls against a
    /// non-Clifford kernel materializes at the stall instead.
    fn exec_run<S: SimState>(
        &self,
        start: usize,
        end: usize,
        events: &[PauliEvent],
        state: &mut S,
    ) {
        let ops = self.program.ops();
        if events.is_empty() {
            for op in &ops[start..end] {
                let Op::Unitary { kernel, .. } = op else {
                    unreachable!("runs hold unitaries");
                };
                state.apply_kernel(kernel);
            }
            return;
        }
        let mut carry = (0u64, 0u64);
        let mut k = 0usize;
        for (pos, op) in ops.iter().enumerate().take(end).skip(start) {
            while k < events.len() && event_boundary(&events[k]) <= pos {
                merge_event(&events[k], &mut carry.0, &mut carry.1);
                k += 1;
            }
            let Op::Unitary { kernel, .. } = op else {
                unreachable!("runs hold unitaries");
            };
            if carry != (0, 0) {
                match conjugate_pauli(kernel, carry.0, carry.1) {
                    Some(next) => carry = next,
                    None => {
                        state.apply_pauli_masks(carry.0, carry.1);
                        carry = (0, 0);
                    }
                }
            }
            state.apply_kernel(kernel);
        }
        while k < events.len() {
            debug_assert_eq!(event_boundary(&events[k]), end);
            merge_event(&events[k], &mut carry.0, &mut carry.1);
            k += 1;
        }
        if carry != (0, 0) {
            state.apply_pauli_masks(carry.0, carry.1);
        }
    }

    /// Runs the program body from op `start`, then samples the deferred
    /// tail; returns the final classical register.
    fn finish_shot(&self, start: usize, rng: &mut ChaCha8Rng, state: &mut StateVector) -> u64 {
        let (mut clreg, body_flips) = self.run_ops(start, rng, state);
        if self.tail.tail_len > 0 {
            self.sample_tail(rng, state, body_flips, &mut clreg);
        }
        clreg
    }

    /// Walks the prefix's Bernoulli draws without touching the state;
    /// returns `true` when no stochastic event fires. The draw sequence
    /// mirrors [`ShotPlan::run_ops`] over the same instructions, so a
    /// clean walk leaves the stream exactly where a clean replay would.
    fn prefix_event_free(&self, rng: &mut ChaCha8Rng) -> bool {
        let Some(tables) = &self.tables else {
            return true;
        };
        for &idx in &self.tail.order[..self.boundary_pos] {
            for draw in &tables.idle[idx] {
                match *draw {
                    IdleDraw::Twirl(p) => {
                        if p > 0.0 && rng.gen_bool(p) {
                            return false;
                        }
                    }
                    // Only reachable when the prefix is probability-zero
                    // (see `plan`), so there is nothing to draw.
                    IdleDraw::Thermal { .. } => {}
                }
            }
            let instr = &self.circuit.instructions()[idx];
            if instr.condition.is_some() {
                // Skipped deterministically: no measurement has run, so
                // the register — and therefore the condition bit — is 0.
                continue;
            }
            let p = tables.gate[idx];
            if p > 0.0 {
                for _ in 0..instr.qubits.len() {
                    if rng.gen_bool(p) {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// Executes compiled ops from `start` to the start of the deferred
    /// tail; returns `(clreg, body_flips)`, where bit `k` of `body_flips`
    /// records that an X/Y noise event landed on the dead wire of tail
    /// measurement `k` — the sampler XORs it out of the reported bit.
    fn run_ops(&self, start: usize, rng: &mut ChaCha8Rng, state: &mut StateVector) -> (u64, u64) {
        let mut clreg: u64 = 0;
        let mut body_flips: u64 = 0;
        let ops = self.program.ops();
        for op in &ops[start..ops.len() - self.tail.tail_len] {
            self.exec_op(op, rng, state, &mut clreg, &mut body_flips);
        }
        (clreg, body_flips)
    }

    /// Executes one body op — idle draws, condition check, gate/measure/
    /// reset, gate-noise draws — against the live register and state.
    fn exec_op<S: SimState>(
        &self,
        op: &Op,
        rng: &mut ChaCha8Rng,
        state: &mut S,
        clreg: &mut u64,
        body_flips: &mut u64,
    ) {
        // Idle decoherence over the gaps preceding this instruction.
        // (Fused programs carry no tables — fusion requires no noise.)
        if let Some(tables) = &self.tables {
            let index = op_index(op);
            let instr = &self.circuit.instructions()[index];
            for (slot, (draw, q)) in tables.idle[index].iter().zip(&instr.qubits).enumerate() {
                match *draw {
                    IdleDraw::Twirl(p) => {
                        if p > 0.0 && rng.gen_bool(p) {
                            let pauli = NoiseModel::random_pauli(rng);
                            if matches!(pauli, Gate::X | Gate::Y) && self.tail.tail_len > 0 {
                                *body_flips ^= self.tail.carry_idle[index][slot];
                            }
                            state.apply_gate(&pauli, &[q.index()]);
                        }
                    }
                    IdleDraw::Thermal { gamma, pz } => {
                        if gamma > 0.0 {
                            state.amplitude_damp(q.index(), gamma, rng);
                        }
                        if pz > 0.0 && rng.gen_bool(pz) {
                            state.apply_gate(&Gate::Z, &[q.index()]);
                        }
                    }
                }
            }
        }
        match op {
            Op::Unitary { cond, index, .. } => {
                // Conditional gates consult the (possibly misread)
                // register.
                if let Some(bit) = cond {
                    if *clreg >> bit & 1 == 0 {
                        return;
                    }
                }
                self.apply_unitary_op(op, state);
                if let Some(tables) = &self.tables {
                    let p = tables.gate[*index];
                    if p > 0.0 {
                        let instr = &self.circuit.instructions()[*index];
                        for (slot, q) in instr.qubits.iter().enumerate() {
                            if rng.gen_bool(p) {
                                let pauli = NoiseModel::random_pauli(rng);
                                if matches!(pauli, Gate::X | Gate::Y) && self.tail.tail_len > 0 {
                                    *body_flips ^= self.tail.carry_gate[*index][slot];
                                }
                                state.apply_gate(&pauli, &[q.index()]);
                            }
                        }
                    }
                }
            }
            Op::Measure { q, clbit, index } => {
                let mut bit = state.measure(*q, rng);
                if let Some(tables) = &self.tables {
                    let p = tables.readout[*index];
                    if p > 0.0 && rng.gen_bool(p) {
                        bit = !bit;
                    }
                }
                if bit {
                    *clreg |= 1 << clbit;
                } else {
                    *clreg &= !(1 << clbit);
                }
            }
            Op::Reset { q, .. } => state.reset(*q, rng),
        }
    }

    /// Samples the deferred measurement tail without collapsing `state`.
    ///
    /// Bits are drawn sequentially against conditional probabilities: the
    /// mass of the fixed assignment so far (`kept`) and the mass of its
    /// `q = 1` refinement are masked amplitude sums over shrinking,
    /// read-only subsets — no projection or renormalization sweeps. A
    /// Pauli-twirl X/Y that fires on a tail qubit is tracked as a
    /// classical flip of that qubit's outcome (Z leaves probabilities
    /// untouched), which is exactly its action this late in the circuit.
    ///
    /// Each measurement reads its *final* wire — the one its dead state
    /// sits on after the SWAPs it commuted past — and the reported bit is
    /// XOR-corrected by the deterministic flips from crossed X/Y gates
    /// (`base_flips`) and this shot's stochastic flips from body noise on
    /// the dead wire (`body_flips`, accumulated by [`ShotPlan::run_ops`]).
    fn sample_tail<S: SimState>(
        &self,
        rng: &mut ChaCha8Rng,
        state: &S,
        body_flips: u64,
        clreg: &mut u64,
    ) {
        let ops = self.program.ops();
        let mut mask = 0usize;
        let mut value = 0usize;
        let mut kept = f64::NAN;
        let mut flips = 0u64;
        let tail_start = ops.len() - self.tail.tail_len;
        for (k, op) in ops[tail_start..].iter().enumerate() {
            let Op::Measure { clbit, index, .. } = op else {
                unreachable!("the deferred tail contains only measurements");
            };
            let q = self.tail.tail_wires[k];
            if let Some(tables) = &self.tables {
                for draw in &tables.idle[*index] {
                    match *draw {
                        IdleDraw::Twirl(p) => {
                            if p > 0.0 && rng.gen_bool(p) {
                                match NoiseModel::random_pauli(rng) {
                                    Gate::X | Gate::Y => flips ^= 1 << q,
                                    _ => {}
                                }
                            }
                        }
                        // Deferral is disabled under thermal relaxation.
                        IdleDraw::Thermal { .. } => {
                            unreachable!("thermal relaxation never defers measurements")
                        }
                    }
                }
            }
            // Masks address physical amplitude bits: the wire's position
            // under the state's SWAP-absorbing permutation. The tail holds
            // no swaps, so the permutation is stable while sampling.
            let qb = 1usize << state.phys_bit(q);
            // `one` is the mass of the q = 1 refinement when q is fresh;
            // a repeat read of an already-fixed qubit is deterministic.
            let (p_raw, one) = if mask & qb != 0 {
                (f64::from(u8::from(value & qb != 0)), None)
            } else {
                if kept.is_nan() {
                    kept = state.masked_sum(0, 0);
                }
                let one = state.masked_sum(mask | qb, value | qb);
                let p = if kept > 0.0 { one / kept } else { 0.0 };
                (p, Some(one))
            };
            let flipped = flips >> q & 1 == 1;
            let p1 = if flipped { 1.0 - p_raw } else { p_raw };
            let outcome = rng.gen_bool(p1.clamp(0.0, 1.0));
            let raw = outcome != flipped;
            if let Some(one) = one {
                mask |= qb;
                if raw {
                    value |= qb;
                    kept = one;
                } else {
                    kept = (kept - one).max(0.0);
                }
            }
            // Undo the flips accumulated after the measurement's original
            // position to recover the outcome it would have read in place.
            let undo = (self.tail.base_flips ^ body_flips) >> k & 1 == 1;
            let mut bit = outcome != undo;
            if let Some(tables) = &self.tables {
                let p = tables.readout[*index];
                if p > 0.0 && rng.gen_bool(p) {
                    bit = !bit;
                }
            }
            if bit {
                *clreg |= 1 << clbit;
            } else {
                *clreg &= !(1 << clbit);
            }
        }
    }

    /// Applies one unitary op (condition already checked by the caller)
    /// through the kernel or the generic reference path.
    fn apply_unitary_op<S: SimState>(&self, op: &Op, state: &mut S) {
        let Op::Unitary { kernel, index, .. } = op else {
            unreachable!("apply_unitary_op on a non-unitary op");
        };
        if self.kernels {
            state.apply_kernel(kernel);
        } else {
            let instr = &self.circuit.instructions()[*index];
            let operands: Vec<usize> = instr.qubits.iter().map(|q| q.index()).collect();
            state.apply_gate(&instr.gate, &operands);
        }
    }
}

/// The originating instruction index of a compiled op.
fn op_index(op: &Op) -> usize {
    match op {
        Op::Unitary { index, .. } | Op::Measure { index, .. } | Op::Reset { index, .. } => *index,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use caqr_arch::Device;
    use caqr_circuit::{Clbit, Qubit};

    fn q(i: usize) -> Qubit {
        Qubit::new(i)
    }

    fn c(i: usize) -> Clbit {
        Clbit::new(i)
    }

    #[test]
    fn deterministic_circuit() {
        let mut circ = Circuit::new(2, 2);
        circ.x(q(0));
        circ.measure_all();
        let counts = Executor::ideal().run_shots(&circ, 50, 1);
        assert_eq!(counts.get(0b01), 50);
    }

    #[test]
    fn bell_pair_correlated() {
        let mut circ = Circuit::new(2, 2);
        circ.h(q(0));
        circ.cx(q(0), q(1));
        circ.measure_all();
        let counts = Executor::ideal().run_shots(&circ, 1000, 2);
        assert_eq!(counts.get(0b01) + counts.get(0b10), 0);
        let p00 = counts.probability(0b00);
        assert!((0.4..0.6).contains(&p00), "p00 = {p00}");
    }

    #[test]
    fn mid_circuit_measure_and_conditional_reset() {
        // Put q0 in |1>, measure-and-reset it, then use it again: the wire
        // must behave as a fresh |0>.
        let mut circ = Circuit::new(1, 2);
        circ.x(q(0));
        circ.measure(q(0), c(0));
        circ.cond_x(q(0), c(0)); // resets to |0>
        circ.measure(q(0), c(1)); // must read 0
        let counts = Executor::ideal().run_shots(&circ, 100, 3);
        assert_eq!(counts.get(0b01), 100, "{counts}");
    }

    #[test]
    fn reuse_wire_runs_second_qubits_gates() {
        // BV-style reuse on 2 wires standing in for 3 logical qubits.
        let mut circ = Circuit::new(2, 3);
        // Logical q0 on wire 0: H . CX into target . H -> deterministic |1>
        // (hidden-string bit 1).
        circ.h(q(0));
        circ.x(q(1));
        circ.h(q(1));
        circ.cx(q(0), q(1));
        circ.h(q(0));
        circ.measure(q(0), c(0));
        circ.cond_x(q(0), c(0));
        // Logical q2 reuses wire 0.
        circ.h(q(0));
        circ.cx(q(0), q(1));
        circ.h(q(0));
        circ.measure(q(0), c(1));
        let counts = Executor::ideal().run_shots(&circ, 200, 4);
        // Both data bits read 1 (hidden string 11).
        assert_eq!(counts.get(0b011), 200, "{counts}");
    }

    #[test]
    fn builtin_reset_equivalent() {
        let mut circ = Circuit::new(1, 1);
        circ.h(q(0));
        circ.reset(q(0));
        circ.measure(q(0), c(0));
        let counts = Executor::ideal().run_shots(&circ, 100, 5);
        assert_eq!(counts.get(0), 100);
    }

    #[test]
    fn noise_degrades_fidelity() {
        // A long CX ladder on Mumbai qubits 0-1: ideal output is |00>.
        let mut circ = Circuit::new(2, 2);
        for _ in 0..20 {
            circ.cx(q(0), q(1));
        }
        circ.measure_all();
        let dev = Device::mumbai(0);
        let noisy = Executor::noisy(NoiseModel::from_device(dev));
        let counts = noisy.run_shots(&circ, 500, 6);
        let p_correct = counts.probability(0b00);
        assert!(p_correct < 1.0, "noise must disturb some shots");
        assert!(p_correct > 0.5, "20 CXs should not destroy the state");
    }

    #[test]
    fn noise_scale_zero_is_ideal() {
        let mut circ = Circuit::new(2, 2);
        circ.h(q(0));
        circ.cx(q(0), q(1));
        circ.measure_all();
        let dev = Device::mumbai(0);
        let quiet = Executor::noisy(NoiseModel::from_device(dev).with_scale(0.0));
        let counts = quiet.run_shots(&circ, 400, 7);
        assert_eq!(counts.get(0b01) + counts.get(0b10), 0);
    }

    #[test]
    fn thermal_relaxation_channel_biases_toward_zero() {
        use crate::noise::IdleChannel;
        // A qubit prepared in |1> that idles a long time while the other
        // wire burns through measurements: under thermal relaxation it
        // decays toward |0>; under the ideal executor it stays |1>.
        let mut circ = Circuit::new(2, 3);
        circ.x(q(1));
        circ.measure(q(0), c(0));
        circ.measure(q(0), c(1));
        circ.measure(q(1), c(2));
        let dev = Device::mumbai(0);
        let noisy = Executor::noisy(
            NoiseModel::from_device(dev)
                .with_scale(30.0)
                .with_idle_channel(IdleChannel::ThermalRelaxation),
        );
        let counts = noisy.run_shots(&circ, 600, 17);
        let decayed: usize = counts
            .iter()
            .filter(|(v, _)| v >> 2 & 1 == 0)
            .map(|(_, n)| n)
            .sum();
        assert!(decayed > 0, "expected some T1 decay: {counts}");
    }

    #[test]
    fn run_once_reproducible() {
        let mut circ = Circuit::new(1, 1);
        circ.h(q(0));
        circ.measure(q(0), c(0));
        let e = Executor::ideal();
        assert_eq!(e.run_once(&circ, 42), e.run_once(&circ, 42));
    }

    #[test]
    fn misread_feed_forward_uses_recorded_bit() {
        // With 100% readout error the recorded bit is always wrong; the
        // conditional X keys off the *recorded* value, leaving the qubit in
        // |1> when it measured 1 (recorded 0 -> no flip) etc.
        let dev = Device::mumbai(0);
        // scale such that readout error saturates at clamp 0.75; instead
        // verify statistically: high noise increases 11/00 confusion.
        let noisy = Executor::noisy(NoiseModel::from_device(dev).with_scale(10.0));
        let mut circ = Circuit::new(1, 2);
        circ.x(q(0));
        circ.measure(q(0), c(0));
        circ.cond_x(q(0), c(0));
        circ.measure(q(0), c(1));
        let counts = noisy.run_shots(&circ, 500, 8);
        // In the ideal world c1 is always 0; with heavy readout noise it
        // sometimes reads 1.
        let ones: usize = counts
            .iter()
            .filter(|(v, _)| v >> 1 & 1 == 1)
            .map(|(_, n)| n)
            .sum();
        assert!(ones > 0, "heavy noise should corrupt the reset");
    }

    /// A noisy mid-circuit workload exercising idle gaps, feed-forward,
    /// readout flips, and resets — the adversarial case for every fast
    /// path.
    fn stress_circuit() -> Circuit {
        let mut circ = Circuit::new(3, 4);
        circ.h(q(0));
        circ.rz(0.37, q(0));
        circ.h(q(0));
        circ.x(q(1));
        circ.cx(q(0), q(1));
        circ.cx(q(1), q(2));
        circ.measure(q(0), c(0));
        circ.cond_x(q(0), c(0));
        circ.h(q(0));
        circ.swap(q(0), q(2));
        circ.reset(q(1));
        circ.h(q(1));
        circ.cx(q(1), q(2));
        circ.measure(q(0), c(1));
        circ.measure(q(1), c(2));
        circ.measure(q(2), c(3));
        circ
    }

    #[test]
    fn histograms_bit_identical_across_thread_counts() {
        let circ = stress_circuit();
        let noisy = NoiseModel::from_device(Device::mumbai(0)).with_scale(4.0);
        for exec in [Executor::ideal(), Executor::noisy(noisy)] {
            let reference = exec.clone().with_threads(1).run_shots(&circ, 513, 11);
            for threads in [2, 8] {
                let counts = exec.clone().with_threads(threads).run_shots(&circ, 513, 11);
                assert_eq!(counts, reference, "threads={threads}");
            }
        }
    }

    #[test]
    fn snapshot_on_off_bit_identical() {
        let circ = stress_circuit();
        let noisy = NoiseModel::from_device(Device::mumbai(0)).with_scale(4.0);
        for exec in [Executor::ideal(), Executor::noisy(noisy)] {
            let on = exec.clone().with_snapshot(true).run_shots(&circ, 400, 13);
            let off = exec.clone().with_snapshot(false).run_shots(&circ, 400, 13);
            assert_eq!(on, off);
        }
    }

    #[test]
    fn kernels_match_generic_reference_bit_exactly() {
        // Unfused kernels perform the same arithmetic as the dense path
        // (identity multiplications are exact), so even measurement
        // thresholds agree bit for bit on a noisy circuit.
        let circ = stress_circuit();
        let noisy = NoiseModel::from_device(Device::mumbai(0)).with_scale(4.0);
        let fast = Executor::noisy(noisy.clone()).run_shots(&circ, 400, 19);
        let slow = Executor::noisy(noisy)
            .with_kernels(false)
            .run_shots(&circ, 400, 19);
        assert_eq!(fast, slow);
    }

    #[test]
    fn fused_ideal_matches_reference_histogram() {
        let circ = stress_circuit();
        let fast = Executor::ideal().run_shots(&circ, 400, 23);
        let slow = Executor::ideal()
            .with_kernels(false)
            .run_shots(&circ, 400, 23);
        assert_eq!(fast, slow);
    }

    #[test]
    fn sampling_on_off_agree_statistically() {
        // Deferred sampling draws the same probabilities in a different
        // stream order, so it matches collapse-based execution in
        // distribution (not bit for bit): compare histograms by total
        // variation distance.
        let circ = stress_circuit();
        let noisy = NoiseModel::from_device(Device::mumbai(0)).with_scale(2.0);
        let shots = 4000usize;
        let on = Executor::noisy(noisy.clone()).run_shots(&circ, shots, 43);
        let off = Executor::noisy(noisy)
            .with_sampling(false)
            .run_shots(&circ, shots, 44);
        let tvd: f64 = (0..16u64)
            .map(|v| (on.probability(v) - off.probability(v)).abs())
            .sum::<f64>()
            / 2.0;
        assert!(tvd < 0.08, "sampled vs collapsed TVD = {tvd}");
    }

    #[test]
    fn sampling_preserves_entanglement_correlations() {
        // Both Bell measurements defer; the conditional draw of the second
        // bit must honour the first exactly.
        let mut circ = Circuit::new(2, 2);
        circ.h(q(0));
        circ.cx(q(0), q(1));
        circ.measure_all();
        let counts = Executor::ideal().run_shots(&circ, 2000, 47);
        assert_eq!(counts.get(0b01) + counts.get(0b10), 0, "{counts}");
        let p00 = counts.probability(0b00);
        assert!((0.4..0.6).contains(&p00), "p00 = {p00}");
    }

    #[test]
    fn repeated_deferred_measurement_is_deterministic() {
        // The same qubit measured twice into different clbits: the second
        // (deferred) read must repeat the first outcome.
        let mut circ = Circuit::new(1, 2);
        circ.h(q(0));
        circ.measure(q(0), c(0));
        circ.measure(q(0), c(1));
        let counts = Executor::ideal().run_shots(&circ, 500, 53);
        assert_eq!(counts.get(0b01) + counts.get(0b10), 0, "{counts}");
    }

    #[test]
    fn clbit_overwrite_order_survives_deferral() {
        // Two measurements write the same clbit; the later one must win
        // even though deferral is in play: |1> reads 1, X flips to |0>,
        // the final read overwrites c0 with 0.
        let mut circ = Circuit::new(1, 1);
        circ.x(q(0));
        circ.measure(q(0), c(0));
        circ.x(q(0));
        circ.measure(q(0), c(0));
        let counts = Executor::ideal().run_shots(&circ, 200, 59);
        assert_eq!(counts.get(0), 200, "{counts}");
    }

    /// GHZ state, then the first wire is measured, swapped away, flipped,
    /// phased, and re-measured — every commutation rule at once.
    fn commuting_circuit() -> Circuit {
        let mut circ = Circuit::new(3, 4);
        circ.h(q(0));
        circ.cx(q(0), q(1));
        circ.cx(q(1), q(2));
        circ.measure(q(0), c(0));
        circ.swap(q(0), q(2));
        circ.x(q(2));
        circ.t(q(2));
        circ.measure(q(2), c(1));
        circ.measure(q(0), c(2));
        circ.measure(q(1), c(3));
        circ
    }

    #[test]
    fn deferral_commutes_past_swaps_diagonals_and_flips() {
        // All four measurements defer: c0 relabels through the SWAP onto
        // wire 2 and crosses the X (deterministic flip) and T (diagonal).
        // GHZ collapse bit b gives c0 = b, c1 = !b (post-X re-read),
        // c2 = b (the GHZ partner swapped onto wire 0), c3 = b.
        let circ = commuting_circuit();
        let (counts, report) = Executor::ideal().run_shots_traced(&circ, 2000, 67);
        assert_eq!(report.deferred_measures, 4);
        assert_eq!(counts.get(0b0010) + counts.get(0b1101), 2000, "{counts}");
        assert!(counts.get(0b0010) > 400, "{counts}");
        assert!(counts.get(0b1101) > 400, "{counts}");
    }

    #[test]
    fn commuted_sampling_matches_collapse_statistically() {
        // Under Pauli-twirl noise the deferred path must XOR-correct the
        // reported bits for X/Y events that land on the dead wire after
        // the measurement's original position (the carry masks); compare
        // against in-place collapse by total variation distance. The
        // threshold is calibrated to bite: with these seeds the correct
        // implementation measures 0.020 and dropping the body-flip
        // correction measures 0.069.
        let circ = commuting_circuit();
        let noisy = NoiseModel::from_device(Device::mumbai(0)).with_scale(6.0);
        let shots = 4000usize;
        let on = Executor::noisy(noisy.clone()).run_shots(&circ, shots, 71);
        let off = Executor::noisy(noisy)
            .with_sampling(false)
            .run_shots(&circ, shots, 73);
        let tvd: f64 = (0..16u64)
            .map(|v| (on.probability(v) - off.probability(v)).abs())
            .sum::<f64>()
            / 2.0;
        assert!(tvd < 0.045, "sampled vs collapsed TVD = {tvd}");
    }

    #[test]
    fn deferred_measures_reported() {
        let circ = stress_circuit();
        // The three terminal measurements defer; c0 feeds a conditional
        // and stays inline.
        let (_, report) = Executor::ideal().run_shots_traced(&circ, 16, 61);
        assert_eq!(report.deferred_measures, 3);
        let (_, off) = Executor::ideal()
            .with_sampling(false)
            .run_shots_traced(&circ, 16, 61);
        assert_eq!(off.deferred_measures, 0);
        use crate::noise::IdleChannel;
        let thermal = NoiseModel::from_device(Device::mumbai(0))
            .with_idle_channel(IdleChannel::ThermalRelaxation);
        let (_, t) = Executor::noisy(thermal).run_shots_traced(&circ, 16, 61);
        assert_eq!(t.deferred_measures, 0, "thermal relaxation never defers");
    }

    #[test]
    fn run_once_is_shot_zero_of_run_shots() {
        let circ = stress_circuit();
        let exec = Executor::noisy(NoiseModel::from_device(Device::mumbai(0)).with_scale(4.0));
        let single = exec.run_once(&circ, 29);
        let counts = exec.run_shots(&circ, 1, 29);
        assert_eq!(counts.get(single), 1);
    }

    #[test]
    fn cancellable_run_matches_uncancelled() {
        let circ = stress_circuit();
        let exec = Executor::ideal();
        let (cancellable, _) = exec
            .run_shots_cancellable(&circ, 300, 11, &|| false)
            .expect("never-stopping");
        assert_eq!(cancellable, exec.run_shots(&circ, 300, 11));
    }

    #[test]
    fn tripped_stop_callback_interrupts() {
        let circ = stress_circuit();
        let err = Executor::ideal()
            .run_shots_cancellable(&circ, 10_000, 13, &|| true)
            .unwrap_err();
        assert_eq!(err, Interrupted);
        assert!(err.to_string().contains("interrupted"));
    }

    #[test]
    fn mid_run_stop_interrupts_all_shards() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let circ = stress_circuit();
        let calls = AtomicUsize::new(0);
        // Fire after a few checkpoints so some shots have already run.
        let result =
            Executor::ideal()
                .with_threads(4)
                .run_shots_cancellable(&circ, 50_000, 17, &|| {
                    calls.fetch_add(1, Ordering::Relaxed) >= 4
                });
        assert_eq!(result.unwrap_err(), Interrupted);
    }

    #[test]
    fn snapshot_forks_are_reported() {
        // Ideal deep prefix: every shot forks from the snapshot.
        let mut circ = Circuit::new(2, 2);
        for i in 0..10 {
            circ.h(q(0));
            circ.rz(0.1 * i as f64, q(0));
            circ.h(q(0));
            circ.cx(q(0), q(1));
        }
        circ.measure_all();
        let (_, report) = Executor::ideal().run_shots_traced(&circ, 64, 31);
        assert!(report.prefix_ops > 0);
        assert_eq!(report.snapshot_forks, 64);
        assert!(
            report.kernels_out < report.gates_in,
            "fusion should shrink the H.CX ladder"
        );
        let (_, off) = Executor::ideal()
            .with_snapshot(false)
            .run_shots_traced(&circ, 64, 31);
        assert_eq!(off.prefix_ops, 0);
        assert_eq!(off.snapshot_forks, 0);
    }

    #[test]
    fn thermal_relaxation_disables_prefix_fork() {
        use crate::noise::IdleChannel;
        let circ = stress_circuit();
        let model = NoiseModel::from_device(Device::mumbai(0))
            .with_idle_channel(IdleChannel::ThermalRelaxation);
        let (_, report) = Executor::noisy(model).run_shots_traced(&circ, 32, 37);
        assert_eq!(
            report.prefix_ops, 0,
            "state-dependent draws cannot fast-forward"
        );
    }

    #[test]
    fn silent_thermal_relaxation_still_forks() {
        use crate::noise::IdleChannel;
        let circ = stress_circuit();
        let model = NoiseModel::from_device(Device::mumbai(0))
            .with_scale(0.0)
            .with_idle_channel(IdleChannel::ThermalRelaxation);
        let (_, report) = Executor::noisy(model).run_shots_traced(&circ, 32, 41);
        assert!(
            report.prefix_ops > 0,
            "zero-probability prefix is deterministic"
        );
        assert_eq!(report.snapshot_forks, 32);
    }

    #[test]
    #[should_panic(expected = "bind its slots")]
    fn unbound_template_is_rejected() {
        let mut c = Circuit::new(1, 1);
        c.rz(
            caqr_circuit::Param::Slot(0).to_raw(),
            caqr_circuit::Qubit::new(0),
        );
        c.measure(caqr_circuit::Qubit::new(0), caqr_circuit::Clbit::new(0));
        Executor::ideal().run_shots(&c, 1, 0);
    }
}
