//! Circuit execution: ideal and noisy Monte-Carlo shots.

use crate::counts::Counts;
use crate::noise::NoiseModel;
use crate::state::StateVector;
use caqr_circuit::depth::Schedule;
use caqr_circuit::{Circuit, Gate};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Executes circuits shot by shot, with optional calibration-driven noise.
///
/// Each noisy shot is one Monte-Carlo trajectory: stochastic Pauli errors
/// are inserted according to the [`NoiseModel`], so averaging over shots
/// samples the noisy output distribution.
///
/// # Examples
///
/// ```
/// use caqr_circuit::{Circuit, Qubit};
/// use caqr_sim::Executor;
///
/// let mut c = Circuit::new(1, 1);
/// c.x(Qubit::new(0));
/// c.measure(Qubit::new(0), caqr_circuit::Clbit::new(0));
/// let counts = Executor::ideal().run_shots(&c, 100, 0);
/// assert_eq!(counts.get(1), 100);
/// ```
#[derive(Debug, Clone)]
pub struct Executor {
    noise: Option<NoiseModel>,
}

impl Executor {
    /// A noiseless executor.
    pub fn ideal() -> Self {
        Executor { noise: None }
    }

    /// A noisy executor driven by `model`.
    pub fn noisy(model: NoiseModel) -> Self {
        Executor { noise: Some(model) }
    }

    /// The noise model, if any.
    pub fn noise(&self) -> Option<&NoiseModel> {
        self.noise.as_ref()
    }

    /// Runs `shots` shots and histograms the classical register.
    ///
    /// # Panics
    ///
    /// Panics if the circuit is wider than the dense simulator limit or has
    /// more than 64 classical bits.
    pub fn run_shots(&self, circuit: &Circuit, shots: usize, seed: u64) -> Counts {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut counts = Counts::new(circuit.num_clbits());
        // The idle-noise schedule depends only on the circuit; hoist it.
        let schedule = self
            .noise
            .as_ref()
            .map(|n| Schedule::asap(circuit, &n.device().duration_model()));
        for _ in 0..shots {
            counts.record(self.run_single(circuit, schedule.as_ref(), &mut rng));
        }
        counts
    }

    /// Runs one shot and returns the final classical register value.
    pub fn run_once(&self, circuit: &Circuit, seed: u64) -> u64 {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let schedule = self
            .noise
            .as_ref()
            .map(|n| Schedule::asap(circuit, &n.device().duration_model()));
        self.run_single(circuit, schedule.as_ref(), &mut rng)
    }

    fn run_single(
        &self,
        circuit: &Circuit,
        schedule: Option<&Schedule>,
        rng: &mut impl Rng,
    ) -> u64 {
        let mut state = StateVector::zero(circuit.num_qubits());
        let mut clreg: u64 = 0;
        let mut busy_until = vec![0u64; circuit.num_qubits()];

        for (idx, instr) in circuit.iter().enumerate() {
            // Idle decoherence over the gap since each operand last worked.
            if let (Some(noise), Some(schedule)) = (&self.noise, schedule) {
                let start = schedule.start(idx);
                for q in &instr.qubits {
                    let gap = start.saturating_sub(busy_until[q.index()]);
                    match noise.idle_channel() {
                        crate::noise::IdleChannel::PauliTwirl => {
                            let p = noise.idle_error(q.index(), gap);
                            if p > 0.0 && rng.gen_bool(p) {
                                state.apply_gate(&NoiseModel::random_pauli(rng), &[q.index()]);
                            }
                        }
                        crate::noise::IdleChannel::ThermalRelaxation => {
                            let gamma = noise.idle_gamma(q.index(), gap);
                            if gamma > 0.0 {
                                state.amplitude_damp(q.index(), gamma, rng);
                            }
                            let pz = noise.idle_dephase(q.index(), gap);
                            if pz > 0.0 && rng.gen_bool(pz) {
                                state.apply_gate(&Gate::Z, &[q.index()]);
                            }
                        }
                    }
                    busy_until[q.index()] = schedule.finish(idx);
                }
            }

            // Conditional gates consult the (possibly misread) register.
            if let Some(cond) = instr.condition {
                if clreg >> cond.index() & 1 == 0 {
                    continue;
                }
            }

            let operands: Vec<usize> = instr.qubits.iter().map(|q| q.index()).collect();
            match instr.gate {
                Gate::Measure => {
                    let q = operands[0];
                    let mut bit = state.measure(q, rng);
                    if let Some(noise) = &self.noise {
                        let p = noise.readout_error(q);
                        if p > 0.0 && rng.gen_bool(p) {
                            bit = !bit;
                        }
                    }
                    let c = instr.clbit.expect("measure has a clbit").index();
                    if bit {
                        clreg |= 1 << c;
                    } else {
                        clreg &= !(1 << c);
                    }
                }
                Gate::Reset => state.reset(operands[0], rng),
                ref gate => {
                    state.apply_gate(gate, &operands);
                    if let Some(noise) = &self.noise {
                        let p = noise.gate_error(instr);
                        for &q in &operands {
                            if p > 0.0 && rng.gen_bool(p) {
                                state.apply_gate(&NoiseModel::random_pauli(rng), &[q]);
                            }
                        }
                    }
                }
            }
        }
        clreg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use caqr_arch::Device;
    use caqr_circuit::{Clbit, Qubit};

    fn q(i: usize) -> Qubit {
        Qubit::new(i)
    }

    fn c(i: usize) -> Clbit {
        Clbit::new(i)
    }

    #[test]
    fn deterministic_circuit() {
        let mut circ = Circuit::new(2, 2);
        circ.x(q(0));
        circ.measure_all();
        let counts = Executor::ideal().run_shots(&circ, 50, 1);
        assert_eq!(counts.get(0b01), 50);
    }

    #[test]
    fn bell_pair_correlated() {
        let mut circ = Circuit::new(2, 2);
        circ.h(q(0));
        circ.cx(q(0), q(1));
        circ.measure_all();
        let counts = Executor::ideal().run_shots(&circ, 1000, 2);
        assert_eq!(counts.get(0b01) + counts.get(0b10), 0);
        let p00 = counts.probability(0b00);
        assert!((0.4..0.6).contains(&p00), "p00 = {p00}");
    }

    #[test]
    fn mid_circuit_measure_and_conditional_reset() {
        // Put q0 in |1>, measure-and-reset it, then use it again: the wire
        // must behave as a fresh |0>.
        let mut circ = Circuit::new(1, 2);
        circ.x(q(0));
        circ.measure(q(0), c(0));
        circ.cond_x(q(0), c(0)); // resets to |0>
        circ.measure(q(0), c(1)); // must read 0
        let counts = Executor::ideal().run_shots(&circ, 100, 3);
        assert_eq!(counts.get(0b01), 100, "{counts}");
    }

    #[test]
    fn reuse_wire_runs_second_qubits_gates() {
        // BV-style reuse on 2 wires standing in for 3 logical qubits.
        let mut circ = Circuit::new(2, 3);
        // Logical q0 on wire 0: H . CX into target . H -> deterministic |1>
        // (hidden-string bit 1).
        circ.h(q(0));
        circ.x(q(1));
        circ.h(q(1));
        circ.cx(q(0), q(1));
        circ.h(q(0));
        circ.measure(q(0), c(0));
        circ.cond_x(q(0), c(0));
        // Logical q2 reuses wire 0.
        circ.h(q(0));
        circ.cx(q(0), q(1));
        circ.h(q(0));
        circ.measure(q(0), c(1));
        let counts = Executor::ideal().run_shots(&circ, 200, 4);
        // Both data bits read 1 (hidden string 11).
        assert_eq!(counts.get(0b011), 200, "{counts}");
    }

    #[test]
    fn builtin_reset_equivalent() {
        let mut circ = Circuit::new(1, 1);
        circ.h(q(0));
        circ.reset(q(0));
        circ.measure(q(0), c(0));
        let counts = Executor::ideal().run_shots(&circ, 100, 5);
        assert_eq!(counts.get(0), 100);
    }

    #[test]
    fn noise_degrades_fidelity() {
        // A long CX ladder on Mumbai qubits 0-1: ideal output is |00>.
        let mut circ = Circuit::new(2, 2);
        for _ in 0..20 {
            circ.cx(q(0), q(1));
        }
        circ.measure_all();
        let dev = Device::mumbai(0);
        let noisy = Executor::noisy(NoiseModel::from_device(dev));
        let counts = noisy.run_shots(&circ, 500, 6);
        let p_correct = counts.probability(0b00);
        assert!(p_correct < 1.0, "noise must disturb some shots");
        assert!(p_correct > 0.5, "20 CXs should not destroy the state");
    }

    #[test]
    fn noise_scale_zero_is_ideal() {
        let mut circ = Circuit::new(2, 2);
        circ.h(q(0));
        circ.cx(q(0), q(1));
        circ.measure_all();
        let dev = Device::mumbai(0);
        let quiet = Executor::noisy(NoiseModel::from_device(dev).with_scale(0.0));
        let counts = quiet.run_shots(&circ, 400, 7);
        assert_eq!(counts.get(0b01) + counts.get(0b10), 0);
    }

    #[test]
    fn thermal_relaxation_channel_biases_toward_zero() {
        use crate::noise::IdleChannel;
        // A qubit prepared in |1> that idles a long time while the other
        // wire burns through measurements: under thermal relaxation it
        // decays toward |0>; under the ideal executor it stays |1>.
        let mut circ = Circuit::new(2, 3);
        circ.x(q(1));
        circ.measure(q(0), c(0));
        circ.measure(q(0), c(1));
        circ.measure(q(1), c(2));
        let dev = Device::mumbai(0);
        let noisy = Executor::noisy(
            NoiseModel::from_device(dev)
                .with_scale(30.0)
                .with_idle_channel(IdleChannel::ThermalRelaxation),
        );
        let counts = noisy.run_shots(&circ, 600, 17);
        let decayed: usize = counts
            .iter()
            .filter(|(v, _)| v >> 2 & 1 == 0)
            .map(|(_, n)| n)
            .sum();
        assert!(decayed > 0, "expected some T1 decay: {counts}");
    }

    #[test]
    fn run_once_reproducible() {
        let mut circ = Circuit::new(1, 1);
        circ.h(q(0));
        circ.measure(q(0), c(0));
        let e = Executor::ideal();
        assert_eq!(e.run_once(&circ, 42), e.run_once(&circ, 42));
    }

    #[test]
    fn misread_feed_forward_uses_recorded_bit() {
        // With 100% readout error the recorded bit is always wrong; the
        // conditional X keys off the *recorded* value, leaving the qubit in
        // |1> when it measured 1 (recorded 0 -> no flip) etc.
        let dev = Device::mumbai(0);
        // scale such that readout error saturates at clamp 0.75; instead
        // verify statistically: high noise increases 11/00 confusion.
        let noisy = Executor::noisy(NoiseModel::from_device(dev).with_scale(10.0));
        let mut circ = Circuit::new(1, 2);
        circ.x(q(0));
        circ.measure(q(0), c(0));
        circ.cond_x(q(0), c(0));
        circ.measure(q(0), c(1));
        let counts = noisy.run_shots(&circ, 500, 8);
        // In the ideal world c1 is always 0; with heavy readout noise it
        // sometimes reads 1.
        let ones: usize = counts
            .iter()
            .filter(|(v, _)| v >> 1 & 1 == 1)
            .map(|(_, n)| n)
            .sum();
        assert!(ones > 0, "heavy noise should corrupt the reset");
    }
}
