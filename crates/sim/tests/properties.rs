//! Property tests pinning the fast simulator paths to naive references.
//!
//! Four contracts are exercised on randomly generated circuits:
//!
//! * The specialized/fused kernel pipeline produces the same amplitudes as
//!   an independent textbook dense-matrix simulator (within 1e-10 — fusion
//!   reorders floating-point products, so exact equality is not expected).
//! * `run_shots` histograms are bit-identical across thread counts, for
//!   both ideal and noisy executors.
//! * The stabilizer-tableau engine agrees with the dense engine in
//!   distribution on random dynamic Clifford circuits (mid-circuit
//!   measurement, reset, and feed-forward included).
//! * The support-tracked sparse engine is bit-identical to the dense
//!   engine on random low-support noisy circuits.

use caqr_arch::Device;
use caqr_circuit::{Circuit, Clbit, Gate, Qubit};
use caqr_sim::{
    metrics, CompiledCircuit, Engine, Executor, KernelDispatch, NoiseModel, StateVector,
};
use proptest::collection;
use proptest::prelude::*;

/// One (opcode, qubit-selector, angle-millis) triple decodes to one gate.
type OpSpec = (u8, u32, u32);

/// Decodes a spec into a unitary-only circuit on `n` qubits (with
/// `clbits` classical bits for callers that append measurements),
/// covering every unitary `Gate` variant.
fn unitary_circuit(n: usize, clbits: usize, specs: &[OpSpec]) -> Circuit {
    let mut c = Circuit::new(n, clbits);
    for &(op, qsel, amil) in specs {
        let q0 = qsel as usize % n;
        let q1 = (qsel as usize / n) % n;
        let a = f64::from(amil) * 0.006_283;
        let gate = match op % 18 {
            0 => Gate::H,
            1 => Gate::X,
            2 => Gate::Y,
            3 => Gate::Z,
            4 => Gate::S,
            5 => Gate::Sdg,
            6 => Gate::T,
            7 => Gate::Tdg,
            8 => Gate::Rx(a),
            9 => Gate::Ry(a),
            10 => Gate::Rz(a),
            11 => Gate::Phase(a),
            12 => Gate::U(a, 0.7 * a, 1.3 * a),
            13 => Gate::Cx,
            14 => Gate::Cz,
            15 => Gate::Cp(a),
            16 => Gate::Rzz(a),
            _ => Gate::Swap,
        };
        let qubits = if gate.num_qubits() == 2 {
            if q0 == q1 {
                continue; // degenerate selector: skip this spec
            }
            vec![Qubit::new(q0), Qubit::new(q1)]
        } else {
            vec![Qubit::new(q0)]
        };
        c.push(caqr_circuit::Instruction::gate(gate, qubits));
    }
    c
}

/// Decodes a spec into a dynamic Clifford circuit on `n` qubits and `n`
/// classical bits: the nine Clifford gates plus mid-circuit measurement,
/// reset, and a classically-conditioned X (feed-forward). Callers append
/// terminal measurements.
fn clifford_dynamic_circuit(n: usize, specs: &[OpSpec]) -> Circuit {
    let mut c = Circuit::new(n, n);
    for &(op, qsel, _) in specs {
        let q0 = qsel as usize % n;
        let q1 = (qsel as usize / n) % n;
        match op % 12 {
            0 => c.h(Qubit::new(q0)),
            1 => c.x(Qubit::new(q0)),
            2 => c.push_gate(Gate::Y, &[Qubit::new(q0)]),
            3 => c.z(Qubit::new(q0)),
            4 => c.push_gate(Gate::S, &[Qubit::new(q0)]),
            5 => c.push_gate(Gate::Sdg, &[Qubit::new(q0)]),
            6..=8 if q0 == q1 => continue, // degenerate selector
            6 => c.cx(Qubit::new(q0), Qubit::new(q1)),
            7 => c.cz(Qubit::new(q0), Qubit::new(q1)),
            8 => c.swap(Qubit::new(q0), Qubit::new(q1)),
            9 => c.measure(Qubit::new(q0), Clbit::new(q0)),
            10 => c.reset(Qubit::new(q0)),
            _ => c.cond_x(Qubit::new(q0), Clbit::new(q1)),
        }
    }
    c
}

/// Decodes a spec into a circuit whose state support stays small: mostly
/// diagonal/permutation gates (which never enlarge the support) plus at
/// most two `H` gates, so the sparse engine's `support_bound` admits it
/// at 8 qubits.
fn low_support_circuit(n: usize, specs: &[OpSpec]) -> Circuit {
    let mut c = Circuit::new(n, n);
    let mut hadamards = 0usize;
    for &(op, qsel, amil) in specs {
        let q0 = qsel as usize % n;
        let q1 = (qsel as usize / n) % n;
        let a = f64::from(amil) * 0.006_283;
        match op % 12 {
            0 => c.x(Qubit::new(q0)),
            1 => c.z(Qubit::new(q0)),
            2 => c.push_gate(Gate::S, &[Qubit::new(q0)]),
            3 => c.t(Qubit::new(q0)),
            4 => c.rz(a, Qubit::new(q0)),
            5 => c.push_gate(Gate::Phase(a), &[Qubit::new(q0)]),
            6 => {
                if hadamards < 2 {
                    hadamards += 1;
                    c.h(Qubit::new(q0));
                }
            }
            7..=10 if q0 == q1 => continue, // degenerate selector
            7 => c.cx(Qubit::new(q0), Qubit::new(q1)),
            8 => c.cz(Qubit::new(q0), Qubit::new(q1)),
            9 => c.cp(a, Qubit::new(q0), Qubit::new(q1)),
            10 => c.rzz(a, Qubit::new(q0), Qubit::new(q1)),
            _ => {
                if q0 != q1 {
                    c.swap(Qubit::new(q0), Qubit::new(q1));
                }
            }
        }
    }
    c
}

/// A deliberately naive dense simulator: complex numbers as `(f64, f64)`
/// tuples, per-index bit tests, no strides, no fusion — independent of
/// every code path under test.
struct Reference {
    amps: Vec<(f64, f64)>,
}

fn cmul(a: (f64, f64), b: (f64, f64)) -> (f64, f64) {
    (a.0 * b.0 - a.1 * b.1, a.0 * b.1 + a.1 * b.0)
}

fn cadd(a: (f64, f64), b: (f64, f64)) -> (f64, f64) {
    (a.0 + b.0, a.1 + b.1)
}

fn cis(a: f64) -> (f64, f64) {
    (a.cos(), a.sin())
}

impl Reference {
    fn zero(n: usize) -> Self {
        let mut amps = vec![(0.0, 0.0); 1 << n];
        amps[0] = (1.0, 0.0);
        Reference { amps }
    }

    fn apply_m2(&mut self, q: usize, m: [[(f64, f64); 2]; 2]) {
        let bit = 1usize << q;
        for i in 0..self.amps.len() {
            if i & bit == 0 {
                let (a0, a1) = (self.amps[i], self.amps[i | bit]);
                self.amps[i] = cadd(cmul(m[0][0], a0), cmul(m[0][1], a1));
                self.amps[i | bit] = cadd(cmul(m[1][0], a0), cmul(m[1][1], a1));
            }
        }
    }

    fn apply(&mut self, gate: &Gate, qs: &[usize]) {
        let s = std::f64::consts::FRAC_1_SQRT_2;
        let z = (0.0, 0.0);
        let one = (1.0, 0.0);
        match *gate {
            Gate::H => self.apply_m2(qs[0], [[(s, 0.0), (s, 0.0)], [(s, 0.0), (-s, 0.0)]]),
            Gate::X => self.apply_m2(qs[0], [[z, one], [one, z]]),
            Gate::Y => self.apply_m2(qs[0], [[z, (0.0, -1.0)], [(0.0, 1.0), z]]),
            Gate::Z => self.apply_m2(qs[0], [[one, z], [z, (-1.0, 0.0)]]),
            Gate::S => self.apply_m2(qs[0], [[one, z], [z, (0.0, 1.0)]]),
            Gate::Sdg => self.apply_m2(qs[0], [[one, z], [z, (0.0, -1.0)]]),
            Gate::T => self.apply_m2(qs[0], [[one, z], [z, cis(std::f64::consts::FRAC_PI_4)]]),
            Gate::Tdg => self.apply_m2(qs[0], [[one, z], [z, cis(-std::f64::consts::FRAC_PI_4)]]),
            Gate::Rx(a) => {
                let (c, sn) = ((a / 2.0).cos(), (a / 2.0).sin());
                self.apply_m2(qs[0], [[(c, 0.0), (0.0, -sn)], [(0.0, -sn), (c, 0.0)]]);
            }
            Gate::Ry(a) => {
                let (c, sn) = ((a / 2.0).cos(), (a / 2.0).sin());
                self.apply_m2(qs[0], [[(c, 0.0), (-sn, 0.0)], [(sn, 0.0), (c, 0.0)]]);
            }
            Gate::Rz(a) => self.apply_m2(qs[0], [[cis(-a / 2.0), z], [z, cis(a / 2.0)]]),
            Gate::Phase(a) => self.apply_m2(qs[0], [[one, z], [z, cis(a)]]),
            Gate::U(theta, phi, lambda) => {
                let (c, sn) = ((theta / 2.0).cos(), (theta / 2.0).sin());
                let m01 = cmul((-sn, 0.0), cis(lambda));
                let m10 = cmul((sn, 0.0), cis(phi));
                let m11 = cmul((c, 0.0), cis(phi + lambda));
                self.apply_m2(qs[0], [[(c, 0.0), m01], [m10, m11]]);
            }
            Gate::Cx => {
                let (cb, tb) = (1usize << qs[0], 1usize << qs[1]);
                for i in 0..self.amps.len() {
                    if i & cb != 0 && i & tb == 0 {
                        self.amps.swap(i, i | tb);
                    }
                }
            }
            Gate::Cz => self.controlled_phase(qs[0], qs[1], (-1.0, 0.0)),
            Gate::Cp(a) => self.controlled_phase(qs[0], qs[1], cis(a)),
            Gate::Rzz(a) => {
                let (ab, bb) = (1usize << qs[0], 1usize << qs[1]);
                for (i, amp) in self.amps.iter_mut().enumerate() {
                    let parity = (i & ab != 0) ^ (i & bb != 0);
                    let f = if parity { cis(a / 2.0) } else { cis(-a / 2.0) };
                    *amp = cmul(f, *amp);
                }
            }
            Gate::Swap => {
                let (ab, bb) = (1usize << qs[0], 1usize << qs[1]);
                for i in 0..self.amps.len() {
                    if i & ab != 0 && i & bb == 0 {
                        self.amps.swap(i, i ^ ab ^ bb);
                    }
                }
            }
            Gate::Measure | Gate::Reset => unreachable!("unitary circuits only"),
        }
    }

    fn controlled_phase(&mut self, a: usize, b: usize, phase: (f64, f64)) {
        let (ab, bb) = (1usize << a, 1usize << b);
        for (i, amp) in self.amps.iter_mut().enumerate() {
            if i & ab != 0 && i & bb != 0 {
                *amp = cmul(phase, *amp);
            }
        }
    }
}

/// Runs `circuit` through the compiled-kernel pipeline (optionally fused)
/// and returns the final amplitudes.
fn kernel_amplitudes(circuit: &Circuit, fused: bool) -> StateVector {
    let program = if fused {
        CompiledCircuit::compile_fused(circuit)
    } else {
        CompiledCircuit::compile(circuit)
    };
    let mut state = StateVector::zero(circuit.num_qubits());
    program.apply_unitaries(&mut state, 0);
    state
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn fused_kernels_match_naive_reference(
        n in 2usize..=10,
        specs in collection::vec((0u8..=255, 0u32..10_000, 0u32..1000), 1..40),
    ) {
        let circuit = unitary_circuit(n, 0, &specs);
        let mut reference = Reference::zero(n);
        for instr in &circuit {
            let qs: Vec<usize> = instr.qubits.iter().map(|q| q.index()).collect();
            reference.apply(&instr.gate, &qs);
        }
        for fused in [false, true] {
            let state = kernel_amplitudes(&circuit, fused);
            for (i, &(re, im)) in reference.amps.iter().enumerate() {
                let got = state.amplitude(i);
                prop_assert!(
                    (got.re - re).abs() < 1e-10 && (got.im - im).abs() < 1e-10,
                    "fused={fused} amp[{i}]: kernel ({}, {}) vs reference ({re}, {im})",
                    got.re,
                    got.im
                );
            }
        }
    }

    #[test]
    fn histograms_bit_identical_across_threads(
        n in 2usize..=6,
        specs in collection::vec((0u8..=255, 0u32..10_000, 0u32..1000), 1..25),
        seed in 0u64..1_000_000,
    ) {
        let mut circuit = unitary_circuit(n, n, &specs);
        for q in 0..n {
            circuit.measure(Qubit::new(q), Clbit::new(q));
        }
        let noisy = NoiseModel::from_device(Device::mumbai(0)).with_scale(3.0);
        for exec in [Executor::ideal(), Executor::noisy(noisy.clone())] {
            let reference = exec.clone().with_threads(1).run_shots(&circuit, 96, seed);
            for threads in [2usize, 8] {
                let counts = exec
                    .clone()
                    .with_threads(threads)
                    .run_shots(&circuit, 96, seed);
                prop_assert_eq!(&counts, &reference);
            }
        }
    }

    #[test]
    fn tableau_matches_dense_on_dynamic_clifford_circuits(
        n in 2usize..=5,
        specs in collection::vec((0u8..=255, 0u32..10_000, 0u32..1000), 1..30),
        seed in 0u64..1_000_000,
    ) {
        let mut circuit = clifford_dynamic_circuit(n, &specs);
        for q in 0..n {
            circuit.measure(Qubit::new(q), Clbit::new(q));
        }
        let shots = 4096;
        let (dense, _) = Executor::ideal()
            .with_engine(Engine::Dense)
            .run_shots_traced(&circuit, shots, seed);
        let (tab, report) = Executor::ideal()
            .with_engine(Engine::Stabilizer)
            .run_shots_traced(&circuit, shots, seed ^ 0x9e37_79b9);
        prop_assert_eq!(report.kernel_dispatch, KernelDispatch::Tableau);
        prop_assert_eq!(dense.total(), shots);
        prop_assert_eq!(tab.total(), shots);
        // Clifford measurement probabilities are dyadic, so per-clbit
        // marginals either agree exactly or differ by >= 1/4 if an engine
        // is wrong; the sampling error at 4096 shots is ~0.011 per bit,
        // leaving a wide margin below the 0.08 gate.
        for bit in 0..n {
            let diff = (metrics::z_expectation(&dense, bit)
                - metrics::z_expectation(&tab, bit))
                .abs()
                / 2.0;
            prop_assert!(
                diff < 0.08,
                "clbit {bit}: dense vs tableau P(1) differ by {diff:.4}"
            );
        }
    }

    #[test]
    fn sparse_engine_bit_identical_to_dense_sweeps(
        specs in collection::vec((0u8..=255, 0u32..10_000, 0u32..1000), 1..30),
        seed in 0u64..1_000_000,
    ) {
        let n = 8;
        let mut circuit = low_support_circuit(n, &specs);
        for q in 0..n {
            circuit.measure(Qubit::new(q), Clbit::new(q));
        }
        let noisy = NoiseModel::from_device(Device::mumbai(0)).with_scale(3.0);
        for exec in [Executor::ideal(), Executor::noisy(noisy.clone())] {
            let reference = exec
                .clone()
                .with_sparse(false)
                .run_shots(&circuit, 96, seed);
            let counts = exec.clone().run_shots(&circuit, 96, seed);
            prop_assert_eq!(&counts, &reference);
        }
    }
}

/// The randomized sparse property above does not pin which dispatch the
/// planner picked (fusion can merge gates into support-growing unitaries);
/// this deterministic companion guarantees the sparse path itself is
/// exercised and bit-identical.
#[test]
fn sparse_dispatch_engages_on_low_support_circuit() {
    let n = 8;
    let mut circuit = Circuit::new(n, n);
    circuit.h(Qubit::new(0));
    for i in 0..n - 1 {
        circuit.cx(Qubit::new(i), Qubit::new(i + 1));
    }
    for i in 0..n {
        circuit.t(Qubit::new(i));
        circuit.cz(Qubit::new(i), Qubit::new((i + 3) % n));
    }
    circuit.measure_all();
    let noisy = NoiseModel::from_device(Device::mumbai(0));
    let (counts, report) = Executor::noisy(noisy.clone()).run_shots_traced(&circuit, 256, 17);
    assert_eq!(report.kernel_dispatch, KernelDispatch::Sparse);
    let (dense, dense_report) = Executor::noisy(noisy)
        .with_sparse(false)
        .run_shots_traced(&circuit, 256, 17);
    assert_eq!(dense_report.kernel_dispatch, KernelDispatch::Wide);
    assert_eq!(counts, dense);
}
