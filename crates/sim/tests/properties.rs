//! Property tests pinning the fast simulator paths to naive references.
//!
//! Two contracts are exercised on randomly generated circuits:
//!
//! * The specialized/fused kernel pipeline produces the same amplitudes as
//!   an independent textbook dense-matrix simulator (within 1e-10 — fusion
//!   reorders floating-point products, so exact equality is not expected).
//! * `run_shots` histograms are bit-identical across thread counts, for
//!   both ideal and noisy executors.

use caqr_arch::Device;
use caqr_circuit::{Circuit, Clbit, Gate, Qubit};
use caqr_sim::{CompiledCircuit, Executor, NoiseModel, StateVector};
use proptest::collection;
use proptest::prelude::*;

/// One (opcode, qubit-selector, angle-millis) triple decodes to one gate.
type OpSpec = (u8, u32, u32);

/// Decodes a spec into a unitary-only circuit on `n` qubits (with
/// `clbits` classical bits for callers that append measurements),
/// covering every unitary `Gate` variant.
fn unitary_circuit(n: usize, clbits: usize, specs: &[OpSpec]) -> Circuit {
    let mut c = Circuit::new(n, clbits);
    for &(op, qsel, amil) in specs {
        let q0 = qsel as usize % n;
        let q1 = (qsel as usize / n) % n;
        let a = f64::from(amil) * 0.006_283;
        let gate = match op % 18 {
            0 => Gate::H,
            1 => Gate::X,
            2 => Gate::Y,
            3 => Gate::Z,
            4 => Gate::S,
            5 => Gate::Sdg,
            6 => Gate::T,
            7 => Gate::Tdg,
            8 => Gate::Rx(a),
            9 => Gate::Ry(a),
            10 => Gate::Rz(a),
            11 => Gate::Phase(a),
            12 => Gate::U(a, 0.7 * a, 1.3 * a),
            13 => Gate::Cx,
            14 => Gate::Cz,
            15 => Gate::Cp(a),
            16 => Gate::Rzz(a),
            _ => Gate::Swap,
        };
        let qubits = if gate.num_qubits() == 2 {
            if q0 == q1 {
                continue; // degenerate selector: skip this spec
            }
            vec![Qubit::new(q0), Qubit::new(q1)]
        } else {
            vec![Qubit::new(q0)]
        };
        c.push(caqr_circuit::Instruction::gate(gate, qubits));
    }
    c
}

/// A deliberately naive dense simulator: complex numbers as `(f64, f64)`
/// tuples, per-index bit tests, no strides, no fusion — independent of
/// every code path under test.
struct Reference {
    amps: Vec<(f64, f64)>,
}

fn cmul(a: (f64, f64), b: (f64, f64)) -> (f64, f64) {
    (a.0 * b.0 - a.1 * b.1, a.0 * b.1 + a.1 * b.0)
}

fn cadd(a: (f64, f64), b: (f64, f64)) -> (f64, f64) {
    (a.0 + b.0, a.1 + b.1)
}

fn cis(a: f64) -> (f64, f64) {
    (a.cos(), a.sin())
}

impl Reference {
    fn zero(n: usize) -> Self {
        let mut amps = vec![(0.0, 0.0); 1 << n];
        amps[0] = (1.0, 0.0);
        Reference { amps }
    }

    fn apply_m2(&mut self, q: usize, m: [[(f64, f64); 2]; 2]) {
        let bit = 1usize << q;
        for i in 0..self.amps.len() {
            if i & bit == 0 {
                let (a0, a1) = (self.amps[i], self.amps[i | bit]);
                self.amps[i] = cadd(cmul(m[0][0], a0), cmul(m[0][1], a1));
                self.amps[i | bit] = cadd(cmul(m[1][0], a0), cmul(m[1][1], a1));
            }
        }
    }

    fn apply(&mut self, gate: &Gate, qs: &[usize]) {
        let s = std::f64::consts::FRAC_1_SQRT_2;
        let z = (0.0, 0.0);
        let one = (1.0, 0.0);
        match *gate {
            Gate::H => self.apply_m2(qs[0], [[(s, 0.0), (s, 0.0)], [(s, 0.0), (-s, 0.0)]]),
            Gate::X => self.apply_m2(qs[0], [[z, one], [one, z]]),
            Gate::Y => self.apply_m2(qs[0], [[z, (0.0, -1.0)], [(0.0, 1.0), z]]),
            Gate::Z => self.apply_m2(qs[0], [[one, z], [z, (-1.0, 0.0)]]),
            Gate::S => self.apply_m2(qs[0], [[one, z], [z, (0.0, 1.0)]]),
            Gate::Sdg => self.apply_m2(qs[0], [[one, z], [z, (0.0, -1.0)]]),
            Gate::T => self.apply_m2(qs[0], [[one, z], [z, cis(std::f64::consts::FRAC_PI_4)]]),
            Gate::Tdg => self.apply_m2(qs[0], [[one, z], [z, cis(-std::f64::consts::FRAC_PI_4)]]),
            Gate::Rx(a) => {
                let (c, sn) = ((a / 2.0).cos(), (a / 2.0).sin());
                self.apply_m2(qs[0], [[(c, 0.0), (0.0, -sn)], [(0.0, -sn), (c, 0.0)]]);
            }
            Gate::Ry(a) => {
                let (c, sn) = ((a / 2.0).cos(), (a / 2.0).sin());
                self.apply_m2(qs[0], [[(c, 0.0), (-sn, 0.0)], [(sn, 0.0), (c, 0.0)]]);
            }
            Gate::Rz(a) => self.apply_m2(qs[0], [[cis(-a / 2.0), z], [z, cis(a / 2.0)]]),
            Gate::Phase(a) => self.apply_m2(qs[0], [[one, z], [z, cis(a)]]),
            Gate::U(theta, phi, lambda) => {
                let (c, sn) = ((theta / 2.0).cos(), (theta / 2.0).sin());
                let m01 = cmul((-sn, 0.0), cis(lambda));
                let m10 = cmul((sn, 0.0), cis(phi));
                let m11 = cmul((c, 0.0), cis(phi + lambda));
                self.apply_m2(qs[0], [[(c, 0.0), m01], [m10, m11]]);
            }
            Gate::Cx => {
                let (cb, tb) = (1usize << qs[0], 1usize << qs[1]);
                for i in 0..self.amps.len() {
                    if i & cb != 0 && i & tb == 0 {
                        self.amps.swap(i, i | tb);
                    }
                }
            }
            Gate::Cz => self.controlled_phase(qs[0], qs[1], (-1.0, 0.0)),
            Gate::Cp(a) => self.controlled_phase(qs[0], qs[1], cis(a)),
            Gate::Rzz(a) => {
                let (ab, bb) = (1usize << qs[0], 1usize << qs[1]);
                for (i, amp) in self.amps.iter_mut().enumerate() {
                    let parity = (i & ab != 0) ^ (i & bb != 0);
                    let f = if parity { cis(a / 2.0) } else { cis(-a / 2.0) };
                    *amp = cmul(f, *amp);
                }
            }
            Gate::Swap => {
                let (ab, bb) = (1usize << qs[0], 1usize << qs[1]);
                for i in 0..self.amps.len() {
                    if i & ab != 0 && i & bb == 0 {
                        self.amps.swap(i, i ^ ab ^ bb);
                    }
                }
            }
            Gate::Measure | Gate::Reset => unreachable!("unitary circuits only"),
        }
    }

    fn controlled_phase(&mut self, a: usize, b: usize, phase: (f64, f64)) {
        let (ab, bb) = (1usize << a, 1usize << b);
        for (i, amp) in self.amps.iter_mut().enumerate() {
            if i & ab != 0 && i & bb != 0 {
                *amp = cmul(phase, *amp);
            }
        }
    }
}

/// Runs `circuit` through the compiled-kernel pipeline (optionally fused)
/// and returns the final amplitudes.
fn kernel_amplitudes(circuit: &Circuit, fused: bool) -> StateVector {
    let program = if fused {
        CompiledCircuit::compile_fused(circuit)
    } else {
        CompiledCircuit::compile(circuit)
    };
    let mut state = StateVector::zero(circuit.num_qubits());
    program.apply_unitaries(&mut state, 0);
    state
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn fused_kernels_match_naive_reference(
        n in 2usize..=10,
        specs in collection::vec((0u8..=255, 0u32..10_000, 0u32..1000), 1..40),
    ) {
        let circuit = unitary_circuit(n, 0, &specs);
        let mut reference = Reference::zero(n);
        for instr in &circuit {
            let qs: Vec<usize> = instr.qubits.iter().map(|q| q.index()).collect();
            reference.apply(&instr.gate, &qs);
        }
        for fused in [false, true] {
            let state = kernel_amplitudes(&circuit, fused);
            for (i, &(re, im)) in reference.amps.iter().enumerate() {
                let got = state.amplitude(i);
                prop_assert!(
                    (got.re - re).abs() < 1e-10 && (got.im - im).abs() < 1e-10,
                    "fused={fused} amp[{i}]: kernel ({}, {}) vs reference ({re}, {im})",
                    got.re,
                    got.im
                );
            }
        }
    }

    #[test]
    fn histograms_bit_identical_across_threads(
        n in 2usize..=6,
        specs in collection::vec((0u8..=255, 0u32..10_000, 0u32..1000), 1..25),
        seed in 0u64..1_000_000,
    ) {
        let mut circuit = unitary_circuit(n, n, &specs);
        for q in 0..n {
            circuit.measure(Qubit::new(q), Clbit::new(q));
        }
        let noisy = NoiseModel::from_device(Device::mumbai(0)).with_scale(3.0);
        for exec in [Executor::ideal(), Executor::noisy(noisy.clone())] {
            let reference = exec.clone().with_threads(1).run_shots(&circuit, 96, seed);
            for threads in [2usize, 8] {
                let counts = exec
                    .clone()
                    .with_threads(threads)
                    .run_shots(&circuit, 96, seed);
                prop_assert_eq!(&counts, &reference);
            }
        }
    }
}
