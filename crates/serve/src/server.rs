//! The server facade: configuration plus backend selection.
//!
//! Two transports serve the same handlers and share one [`AppState`]
//! (compile cache, response cache, metrics):
//!
//! - `event_loop` (private) — the default on Unix. N reactor shards run
//!   a readiness loop (`poll(2)` via caqr-reactor) over non-blocking
//!   sockets; compute requests dispatch to a panic-isolated worker pool.
//! - `threaded` (private) — thread-per-connection with blocking I/O; the
//!   portable fallback and the semantic reference implementation.
//!
//! [`Backend::Auto`] picks the reactor and falls back to threads when the
//! platform cannot poll (non-Unix builds). Both honor the same drain
//! sequence: after [`ShutdownHandle::shutdown`], new requests get `503`
//! for a grace window while in-flight work finishes, then every thread
//! exits and [`Server::join`] returns.

use crate::handlers::{AppState, RequestLimits};
use crate::http::HttpLimits;
use crate::{event_loop, threaded};
use std::io;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;

/// Which transport serves the sockets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backend {
    /// The reactor where supported, threads elsewhere.
    #[default]
    Auto,
    /// The event-driven reactor (errors where unsupported).
    Reactor,
    /// Thread-per-connection blocking I/O.
    Threaded,
}

/// Everything tunable about one server instance.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port `0` picks an ephemeral port.
    pub addr: String,
    /// Transport selection (see [`Backend`]).
    pub backend: Backend,
    /// Reactor shards, each with its own `SO_REUSEPORT` listener and
    /// readiness loop. `1` (the default) binds one plain listener; the
    /// threaded backend ignores this.
    pub shards: usize,
    /// Worker threads; `0` = one per core (capped at 8).
    pub workers: usize,
    /// Requests (reactor) or connections (threaded) waiting for a worker
    /// before admission control answers `429`.
    pub queue_capacity: usize,
    /// Open connections the reactor holds before refusing new ones.
    pub max_connections: usize,
    /// Compile-cache entries shared across requests.
    pub cache_capacity: usize,
    /// Whole-response cache entries (see [`crate::respcache`]).
    pub response_cache_capacity: usize,
    /// Per-request caps (deadline ceiling, shots, batch size).
    pub request_limits: RequestLimits,
    /// HTTP framing caps (head/body bytes).
    pub http_limits: HttpLimits,
    /// How long an idle keep-alive connection is held open.
    pub keep_alive_idle: Duration,
    /// How long a started-but-unfinished request may dribble in before
    /// the reactor evicts the connection (slow-loris posture).
    pub request_stall: Duration,
    /// How long new requests keep getting a clean `503` after shutdown,
    /// so clients racing the drain see a refusal instead of a reset.
    pub drain_grace: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            backend: Backend::Auto,
            shards: 1,
            workers: 0,
            queue_capacity: 64,
            max_connections: 1024,
            cache_capacity: 256,
            response_cache_capacity: 1024,
            request_limits: RequestLimits::default(),
            http_limits: HttpLimits::default(),
            keep_alive_idle: Duration::from_secs(10),
            request_stall: Duration::from_secs(10),
            drain_grace: Duration::from_millis(400),
        }
    }
}

/// Triggers the drain sequence from another thread (or a signal watcher).
#[derive(Clone)]
pub struct ShutdownHandle {
    inner: HandleInner,
}

#[derive(Clone)]
enum HandleInner {
    Threaded(Arc<threaded::Shared>),
    Reactor(Arc<event_loop::Control>),
}

impl ShutdownHandle {
    /// Starts the shutdown: stop admitting, drain, exit. Idempotent.
    pub fn shutdown(&self) {
        match &self.inner {
            HandleInner::Threaded(shared) => shared.shutdown(),
            HandleInner::Reactor(control) => control.shutdown(),
        }
    }
}

impl std::fmt::Debug for ShutdownHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShutdownHandle").finish_non_exhaustive()
    }
}

/// A running server on one of the two backends.
pub struct Server {
    inner: ServerInner,
}

enum ServerInner {
    Threaded(threaded::ThreadedServer),
    Reactor(event_loop::ReactorServer),
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("local_addr", &self.local_addr())
            .field("backend", &self.backend())
            .finish()
    }
}

impl Server {
    /// Binds `config.addr` and starts the configured backend.
    ///
    /// # Errors
    ///
    /// Propagates socket bind/configuration failures; [`Backend::Reactor`]
    /// additionally errors with `Unsupported` on platforms without
    /// readiness I/O (where [`Backend::Auto`] silently falls back).
    pub fn bind(config: ServerConfig) -> io::Result<Server> {
        let state = Arc::new(AppState::with_capacities(
            config.cache_capacity,
            config.response_cache_capacity,
            config.request_limits.clone(),
        ));
        let inner = match config.backend {
            Backend::Threaded => {
                ServerInner::Threaded(threaded::ThreadedServer::bind(config, state)?)
            }
            Backend::Reactor => {
                ServerInner::Reactor(event_loop::ReactorServer::bind(config, state)?)
            }
            Backend::Auto => {
                match event_loop::ReactorServer::bind(config.clone(), Arc::clone(&state)) {
                    Ok(server) => ServerInner::Reactor(server),
                    Err(e) if e.kind() == io::ErrorKind::Unsupported => {
                        ServerInner::Threaded(threaded::ThreadedServer::bind(config, state)?)
                    }
                    Err(e) => return Err(e),
                }
            }
        };
        Ok(Server { inner })
    }

    /// The transport actually serving (resolves [`Backend::Auto`]).
    pub fn backend(&self) -> Backend {
        match &self.inner {
            ServerInner::Threaded(_) => Backend::Threaded,
            ServerInner::Reactor(_) => Backend::Reactor,
        }
    }

    /// The bound address (resolves port `0`).
    pub fn local_addr(&self) -> SocketAddr {
        match &self.inner {
            ServerInner::Threaded(server) => server.local_addr(),
            ServerInner::Reactor(server) => server.local_addr(),
        }
    }

    /// A handle that triggers graceful shutdown.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle {
            inner: match &self.inner {
                ServerInner::Threaded(server) => HandleInner::Threaded(server.shared()),
                ServerInner::Reactor(server) => HandleInner::Reactor(server.control()),
            },
        }
    }

    /// Blocks until the drain sequence completes and every thread has
    /// exited. Call [`ShutdownHandle::shutdown`] first (or from another
    /// thread) or this blocks forever.
    pub fn join(self) {
        match self.inner {
            ServerInner::Threaded(server) => server.join(),
            ServerInner::Reactor(server) => server.join(),
        }
    }
}

/// Resolves a worker-count request: `0` means one per core, capped at 8;
/// explicit requests are capped at 64.
pub(crate) fn effective_workers(requested: usize) -> usize {
    if requested > 0 {
        return requested.min(64);
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .clamp(1, 8)
}
