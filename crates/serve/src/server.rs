//! The connection machinery: acceptor, bounded queue, worker pool,
//! supervisor, and the drain sequence.
//!
//! ```text
//!              ┌───────────┐   bounded    ┌──────────┐
//!   TCP ──────▶│ acceptor  │──▶ queue ───▶│ workers  │──▶ handlers
//!              │ (429 when │   (Condvar)  │ (panic-  │
//!              │  full)    │              │ isolated)│
//!              └───────────┘              └──────────┘
//!                     ▲                        ▲
//!                     └───── supervisor ───────┘ (replaces dead workers)
//! ```
//!
//! Shutdown ([`ShutdownHandle::shutdown`] or a signal relayed by the
//! binary) runs in three steps: the acceptor stops enqueueing and answers
//! `503` to new connections for a short grace window; workers drain every
//! queued connection and finish their in-flight request; keep-alive
//! requests arriving mid-drain get `503 Connection: close`. Then every
//! thread exits and [`Server::join`] returns.

use crate::handlers::{self, AppState, RequestLimits};
use crate::http::{
    read_request, write_response, BadRequest, HttpLimits, NoRequest, Response, POLL_TICK,
};
use std::collections::VecDeque;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Everything tunable about one server instance.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port `0` picks an ephemeral port.
    pub addr: String,
    /// Worker threads; `0` = one per core (capped at 8).
    pub workers: usize,
    /// Accepted connections waiting for a worker before the acceptor
    /// starts answering `429`.
    pub queue_capacity: usize,
    /// Compile-cache entries shared across requests.
    pub cache_capacity: usize,
    /// Per-request caps (deadline ceiling, shots, batch size).
    pub request_limits: RequestLimits,
    /// HTTP framing caps (head/body bytes).
    pub http_limits: HttpLimits,
    /// How long an idle keep-alive connection is held open.
    pub keep_alive_idle: Duration,
    /// How long the acceptor keeps answering `503` to new connections
    /// after shutdown, so clients see a clean refusal instead of a reset.
    pub drain_grace: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 0,
            queue_capacity: 64,
            cache_capacity: 256,
            request_limits: RequestLimits::default(),
            http_limits: HttpLimits::default(),
            keep_alive_idle: Duration::from_secs(10),
            drain_grace: Duration::from_millis(400),
        }
    }
}

/// State shared by the acceptor, workers, and supervisor.
struct Shared {
    state: AppState,
    queue: Mutex<VecDeque<TcpStream>>,
    available: Condvar,
    draining: AtomicBool,
    config: ServerConfig,
}

impl Shared {
    fn draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    fn lock_queue(&self) -> MutexGuard<'_, VecDeque<TcpStream>> {
        self.queue
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

/// Triggers the drain sequence from another thread (or a signal watcher).
#[derive(Clone)]
pub struct ShutdownHandle {
    shared: Arc<Shared>,
}

impl ShutdownHandle {
    /// Starts the shutdown: stop accepting, drain, exit. Idempotent.
    pub fn shutdown(&self) {
        self.shared.draining.store(true, Ordering::SeqCst);
        self.shared.available.notify_all();
    }
}

impl std::fmt::Debug for ShutdownHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShutdownHandle")
            .field("draining", &self.shared.draining())
            .finish()
    }
}

/// A running server: bound socket, acceptor, worker pool, supervisor.
pub struct Server {
    local_addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    supervisor: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("local_addr", &self.local_addr)
            .field("draining", &self.shared.draining())
            .finish()
    }
}

impl Server {
    /// Binds `config.addr` and starts the acceptor, workers, and
    /// supervisor.
    ///
    /// # Errors
    ///
    /// Propagates socket bind/configuration failures.
    pub fn bind(config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;

        let worker_count = effective_workers(config.workers);
        let shared = Arc::new(Shared {
            state: AppState::new(config.cache_capacity, config.request_limits.clone()),
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            draining: AtomicBool::new(false),
            config,
        });

        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("caqr-acceptor".into())
                .spawn(move || accept_loop(&shared, &listener))?
        };

        let mut workers = Vec::with_capacity(worker_count);
        for index in 0..worker_count {
            workers.push(spawn_worker(Arc::clone(&shared), index)?);
        }
        let supervisor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("caqr-supervisor".into())
                .spawn(move || supervise(shared, workers))?
        };

        Ok(Server {
            local_addr,
            shared,
            acceptor: Some(acceptor),
            supervisor: Some(supervisor),
        })
    }

    /// The bound address (resolves port `0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A handle that triggers graceful shutdown.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Blocks until the drain sequence completes and every thread has
    /// exited. Call [`ShutdownHandle::shutdown`] first (or from another
    /// thread) or this blocks forever.
    pub fn join(mut self) {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        if let Some(supervisor) = self.supervisor.take() {
            let _ = supervisor.join();
        }
    }
}

fn effective_workers(requested: usize) -> usize {
    if requested > 0 {
        return requested.min(64);
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .clamp(1, 8)
}

/// Accepts connections into the bounded queue; answers `429` inline when
/// it is full, and `503` during the drain grace window.
fn accept_loop(shared: &Shared, listener: &TcpListener) {
    while !shared.draining() {
        match listener.accept() {
            Ok((stream, _)) => {
                shared
                    .state
                    .metrics
                    .connections_accepted
                    .fetch_add(1, Ordering::Relaxed);
                let mut queue = shared.lock_queue();
                if queue.len() >= shared.config.queue_capacity {
                    drop(queue);
                    shared
                        .state
                        .metrics
                        .rejected_429
                        .fetch_add(1, Ordering::Relaxed);
                    let response = Response::error(429, "server is at capacity")
                        .with_header("Retry-After", "1");
                    respond_inline(stream, &response);
                } else {
                    queue.push_back(stream);
                    drop(queue);
                    shared.available.notify_one();
                }
            }
            Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }

    // Drain grace: a clean 503 beats a connection reset for clients that
    // race the shutdown.
    let deadline = Instant::now() + shared.config.drain_grace;
    while Instant::now() < deadline {
        match listener.accept() {
            Ok((stream, _)) => {
                respond_inline(stream, &Response::error(503, "server is shutting down"));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
    shared.available.notify_all();
}

/// Writes one response on a just-accepted connection and closes it.
fn respond_inline(stream: TcpStream, response: &Response) {
    let mut stream = stream;
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
    let _ = write_response(&mut stream, response, false);
}

fn spawn_worker(shared: Arc<Shared>, index: usize) -> io::Result<JoinHandle<()>> {
    std::thread::Builder::new()
        .name(format!("caqr-worker-{index}"))
        .spawn(move || {
            while let Some(stream) = next_connection(&shared) {
                serve_connection(&shared, stream);
            }
        })
}

/// Blocks for the next queued connection; `None` once draining and empty.
fn next_connection(shared: &Shared) -> Option<TcpStream> {
    let mut queue = shared.lock_queue();
    loop {
        if let Some(stream) = queue.pop_front() {
            return Some(stream);
        }
        if shared.draining() {
            return None;
        }
        let (guard, _) = shared
            .available
            .wait_timeout(queue, POLL_TICK)
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        queue = guard;
    }
}

/// Serves one connection: requests in a keep-alive loop, each under
/// `catch_unwind` so a handler panic answers `500` and the worker (and
/// the process) survive.
fn serve_connection(shared: &Shared, stream: TcpStream) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut write_half = stream;
    let _ = read_half.set_read_timeout(Some(POLL_TICK));
    let _ = write_half.set_write_timeout(Some(Duration::from_secs(10)));
    let _ = write_half.set_nodelay(true);
    let mut reader = io::BufReader::new(read_half);

    let mut served = 0usize;
    loop {
        let idle_deadline = Instant::now() + shared.config.keep_alive_idle;
        let mut keep_waiting = || !shared.draining() && Instant::now() < idle_deadline;
        match read_request(&mut reader, &shared.config.http_limits, &mut keep_waiting) {
            Ok(Ok(request)) => {
                // A connection pulled from the queue gets its first request
                // served even mid-drain (it was admitted before shutdown);
                // later keep-alive requests are refused.
                if shared.draining() && served > 0 {
                    let response = Response::error(503, "server is shutting down");
                    shared.state.metrics.record_status(response.status);
                    let _ = write_response(&mut write_half, &response, false);
                    return;
                }
                served += 1;
                shared
                    .state
                    .metrics
                    .requests_total
                    .fetch_add(1, Ordering::Relaxed);

                let response = match catch_unwind(AssertUnwindSafe(|| {
                    handlers::handle(&shared.state, &request)
                })) {
                    Ok(response) => response,
                    Err(_) => {
                        shared
                            .state
                            .metrics
                            .handler_panics
                            .fetch_add(1, Ordering::Relaxed);
                        Response::error(500, "internal error: request handler panicked")
                    }
                };
                shared.state.metrics.record_status(response.status);

                let keep_alive = !request.wants_close() && !shared.draining();
                if write_response(&mut write_half, &response, keep_alive).is_err() || !keep_alive {
                    return;
                }
            }
            Ok(Err(NoRequest::Closed | NoRequest::StopWaiting)) => return,
            Err(BadRequest(message)) => {
                let status = if message.contains("too large") {
                    431
                } else {
                    400
                };
                let response = Response::error(status, &message);
                shared.state.metrics.record_status(status);
                let _ = write_response(&mut write_half, &response, false);
                // Closing with unread request bytes (e.g. an oversized body
                // we refused to read) can RST the connection before the
                // client sees the response; drain a bounded amount first.
                discard_pending(&mut reader);
                return;
            }
        }
    }
}

/// Reads and discards whatever the peer already sent, up to 1 MiB,
/// stopping at the first timeout tick.
fn discard_pending(reader: &mut io::BufReader<TcpStream>) {
    use io::Read as _;
    let mut scratch = [0u8; 8192];
    let mut discarded = 0usize;
    while discarded < 1 << 20 {
        match reader.read(&mut scratch) {
            Ok(0) | Err(_) => return,
            Ok(n) => discarded += n,
        }
    }
}

/// Replaces worker threads that die (a panic that escapes the per-request
/// guard) until drain, then reaps everything.
fn supervise(shared: Arc<Shared>, mut workers: Vec<JoinHandle<()>>) {
    loop {
        if shared.draining() {
            for handle in workers {
                let _ = handle.join();
            }
            return;
        }
        for (index, slot) in workers.iter_mut().enumerate() {
            if slot.is_finished() {
                match spawn_worker(Arc::clone(&shared), index) {
                    Ok(fresh) => {
                        let dead = std::mem::replace(slot, fresh);
                        let _ = dead.join();
                        shared
                            .state
                            .metrics
                            .workers_replaced
                            .fetch_add(1, Ordering::Relaxed);
                    }
                    Err(_) => break, // try again next tick
                }
            }
        }
        std::thread::sleep(Duration::from_millis(100));
    }
}
