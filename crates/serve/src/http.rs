//! A minimal, defensive HTTP/1.1 implementation.
//!
//! Supports exactly what the service needs: request-line + headers +
//! `Content-Length` or `Transfer-Encoding: chunked` bodies, keep-alive,
//! and hard limits on header and body size so a hostile peer cannot make
//! the server allocate unboundedly. Chunked bodies are decoded through
//! [`caqr_wire::ChunkedDecoder`] under the same body cap, which is what
//! lets the streaming-compile endpoint consume a request as it arrives.
//! Other transfer encodings are deliberately rejected.
//!
//! Two parsing front-ends share these rules: [`read_request`] reads from a
//! blocking socket (the threaded backend), while [`find_head_end`] +
//! [`parse_head`] support the reactor backend's incremental per-connection
//! assembler, which receives bytes as readiness events deliver them.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Caps applied while reading one request.
#[derive(Debug, Clone)]
pub struct HttpLimits {
    /// Maximum bytes for the request line plus all headers.
    pub max_head_bytes: usize,
    /// Maximum `Content-Length` accepted.
    pub max_body_bytes: usize,
}

impl Default for HttpLimits {
    fn default() -> Self {
        HttpLimits {
            max_head_bytes: 16 * 1024,
            max_body_bytes: 4 * 1024 * 1024,
        }
    }
}

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    /// `GET`, `POST`, ...
    pub method: String,
    /// The request target, e.g. `/v1/compile`.
    pub path: String,
    /// Header name/value pairs, in arrival order, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// The body (empty without `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// Case-insensitive header lookup.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    /// `true` when the client asked to close the connection.
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// Why [`read_request`] returned no request.
#[derive(Debug, PartialEq, Eq)]
pub enum NoRequest {
    /// The peer closed the connection cleanly between requests.
    Closed,
    /// The wait callback asked us to stop (idle keep-alive timeout or
    /// shutdown drain) before any request bytes arrived.
    StopWaiting,
}

/// A malformed or oversized request. The server answers 400 (or 431) and
/// closes.
#[derive(Debug)]
pub struct BadRequest(pub String);

impl std::fmt::Display for BadRequest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bad request: {}", self.0)
    }
}

/// The result of one read attempt on a connection.
pub type ReadResult = Result<Result<Request, NoRequest>, BadRequest>;

/// How a request's body is delimited on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BodyFraming {
    /// `Content-Length: n` (0 when the header is absent).
    Length(usize),
    /// `Transfer-Encoding: chunked`.
    Chunked,
}

/// Decides the body framing from the parsed headers, enforcing the body
/// cap on declared lengths. Chunked is accepted, identity is a no-op,
/// anything else is rejected; a `Content-Length` alongside chunked is
/// request smuggling and refused outright (RFC 9112 §6.3).
fn body_framing(request: &Request, limits: &HttpLimits) -> Result<BodyFraming, BadRequest> {
    if let Some(te) = request.header("transfer-encoding") {
        if te.eq_ignore_ascii_case("chunked") {
            if request.header("content-length").is_some() {
                return Err(BadRequest(
                    "content-length conflicts with chunked transfer encoding".into(),
                ));
            }
            return Ok(BodyFraming::Chunked);
        }
        if !te.eq_ignore_ascii_case("identity") {
            return Err(BadRequest(format!(
                "transfer encoding '{te}' not supported"
            )));
        }
    }
    match request.header("content-length") {
        None => Ok(BodyFraming::Length(0)),
        Some(len) => {
            let len: usize = len
                .parse()
                .map_err(|_| BadRequest("bad content-length".into()))?;
            if len > limits.max_body_bytes {
                return Err(BadRequest(format!(
                    "body of {len} bytes exceeds the {}-byte limit",
                    limits.max_body_bytes
                )));
            }
            Ok(BodyFraming::Length(len))
        }
    }
}

/// Reads one request.
///
/// The stream must already carry a read timeout; while *no* byte of a new
/// request has arrived, each timeout tick calls `keep_waiting` — return
/// `false` to give up (idle keep-alive expiry, shutdown drain). Once the
/// first byte is in, a timeout is a slow/stalled client and fails the
/// read.
///
/// # Errors
///
/// [`BadRequest`] on malformed syntax, unsupported framing, or exceeded
/// [`HttpLimits`]; I/O problems and stalls map to [`NoRequest::Closed`].
pub fn read_request(
    reader: &mut BufReader<TcpStream>,
    limits: &HttpLimits,
    keep_waiting: &mut dyn FnMut() -> bool,
) -> ReadResult {
    let mut head_bytes = 0usize;

    // Request line — the only read allowed to wait around. `partial`
    // persists across timeout ticks so a slowly-arriving line is never
    // dropped.
    let mut partial = Vec::new();
    let line = loop {
        match read_line(reader, &mut partial, limits.max_head_bytes) {
            Ok(Some(line)) if line.is_empty() => continue, // stray CRLF between requests
            Ok(Some(line)) => break line,
            Ok(None) => return Ok(Err(NoRequest::Closed)),
            Err(e) if is_timeout(&e) => {
                if !partial.is_empty() {
                    return Ok(Err(NoRequest::Closed)); // stalled mid-request
                }
                if !keep_waiting() {
                    return Ok(Err(NoRequest::StopWaiting));
                }
            }
            Err(_) => return Ok(Err(NoRequest::Closed)),
        }
    };
    head_bytes += line.len();

    let mut parts = line.split_whitespace();
    let method = parts.next().unwrap_or("").to_string();
    let path = parts.next().unwrap_or("").to_string();
    let version = parts.next().unwrap_or("");
    if method.is_empty() || path.is_empty() || !version.starts_with("HTTP/1.") {
        return Err(BadRequest(format!("malformed request line '{line}'")));
    }

    let mut headers = Vec::new();
    loop {
        let mut partial = Vec::new();
        let cap = limits.max_head_bytes.saturating_sub(head_bytes).max(2);
        let line = match read_line(reader, &mut partial, cap) {
            Ok(Some(line)) => line,
            Ok(None) => return Ok(Err(NoRequest::Closed)),
            Err(e) if is_timeout(&e) => return Ok(Err(NoRequest::Closed)),
            Err(_) => return Ok(Err(NoRequest::Closed)),
        };
        head_bytes += line.len() + 2;
        if head_bytes > limits.max_head_bytes {
            return Err(BadRequest("headers too large".into()));
        }
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(BadRequest(format!("malformed header '{line}'")));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
        if headers.len() > 64 {
            return Err(BadRequest("too many headers".into()));
        }
    }

    let mut request = Request {
        method,
        path,
        headers,
        body: Vec::new(),
    };
    match body_framing(&request, limits)? {
        BodyFraming::Length(0) => {}
        BodyFraming::Length(len) => {
            let mut body = vec![0u8; len];
            if reader.read_exact(&mut body).is_err() {
                return Ok(Err(NoRequest::Closed)); // truncated or stalled body
            }
            request.body = body;
        }
        BodyFraming::Chunked => {
            let mut decoder = caqr_wire::ChunkedDecoder::new(limits.max_body_bytes);
            let mut body = Vec::new();
            while !decoder.is_done() {
                let available = match reader.fill_buf() {
                    Ok(a) => a,
                    // Mid-body timeouts are stalls, same as a truncated
                    // Content-Length body.
                    Err(_) => return Ok(Err(NoRequest::Closed)),
                };
                if available.is_empty() {
                    return Ok(Err(NoRequest::Closed)); // EOF mid-body
                }
                let consumed = decoder
                    .push(available, &mut body)
                    .map_err(|e| BadRequest(format!("bad chunked body: {e}")))?;
                reader.consume(consumed);
            }
            request.body = body;
        }
    }
    Ok(Ok(request))
}

/// Reads one CRLF (or LF) terminated line into `buf`, returning it
/// without the terminator. `Ok(None)` on clean EOF before any byte. On a
/// timeout the bytes read so far stay in `buf`, so the caller can retry
/// without losing them.
fn read_line(
    reader: &mut BufReader<TcpStream>,
    buf: &mut Vec<u8>,
    cap: usize,
) -> io::Result<Option<String>> {
    loop {
        let available = reader.fill_buf()?;
        if available.is_empty() {
            return if buf.is_empty() {
                Ok(None)
            } else {
                Err(io::Error::new(io::ErrorKind::UnexpectedEof, "eof in line"))
            };
        }
        if let Some(pos) = available.iter().position(|&b| b == b'\n') {
            buf.extend_from_slice(&available[..pos]);
            reader.consume(pos + 1);
            if buf.last() == Some(&b'\r') {
                buf.pop();
            }
            let line = String::from_utf8(std::mem::take(buf))
                .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-utf8 line"))?;
            return Ok(Some(line));
        }
        let take = available.len();
        buf.extend_from_slice(available);
        reader.consume(take);
        if buf.len() > cap {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "line too long"));
        }
    }
}

fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// Finds the end of a request head in `buf`: the index one past the blank
/// line. Accepts `\r\n\r\n` and the bare-LF forms the blocking parser
/// tolerates (`\n\n`, `\n\r\n`).
pub fn find_head_end(buf: &[u8]) -> Option<usize> {
    let mut i = 0;
    while i < buf.len() {
        if buf[i] == b'\n' {
            match (buf.get(i + 1), buf.get(i + 2)) {
                (Some(b'\n'), _) => return Some(i + 2),
                (Some(b'\r'), Some(b'\n')) => return Some(i + 3),
                _ => {}
            }
        }
        i += 1;
    }
    None
}

/// Parses a complete request head (everything up to and including the
/// blank line) under the same rules as [`read_request`]: stray leading
/// CRLFs are skipped, header names are lower-cased, at most 64 headers,
/// identity or chunked transfer encoding, and `Content-Length` capped by
/// `limits`. Returns the request (body still empty) and its
/// [`BodyFraming`]; chunked bodies are assembled incrementally by the
/// caller ([`crate::conn::Conn`]).
///
/// # Errors
///
/// [`BadRequest`] with the same messages the blocking path produces, so
/// the 400-vs-431 status mapping stays identical across backends.
pub fn parse_head(head: &[u8], limits: &HttpLimits) -> Result<(Request, BodyFraming), BadRequest> {
    let text =
        std::str::from_utf8(head).map_err(|_| BadRequest("head is not valid UTF-8".into()))?;
    let mut lines = text.split('\n').map(|l| l.strip_suffix('\r').unwrap_or(l));

    let line = loop {
        match lines.next() {
            Some("") => continue, // stray CRLF between requests
            Some(line) => break line,
            None => return Err(BadRequest("empty request head".into())),
        }
    };
    let mut parts = line.split_whitespace();
    let method = parts.next().unwrap_or("").to_string();
    let path = parts.next().unwrap_or("").to_string();
    let version = parts.next().unwrap_or("");
    if method.is_empty() || path.is_empty() || !version.starts_with("HTTP/1.") {
        return Err(BadRequest(format!("malformed request line '{line}'")));
    }

    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(BadRequest(format!("malformed header '{line}'")));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
        if headers.len() > 64 {
            return Err(BadRequest("too many headers".into()));
        }
    }

    let request = Request {
        method,
        path,
        headers,
        body: Vec::new(),
    };
    let framing = body_framing(&request, limits)?;
    Ok((request, framing))
}

/// One response, ready to serialize.
#[derive(Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Extra headers (`Content-Type`, `Content-Length`, `Connection` are
    /// emitted automatically).
    pub headers: Vec<(String, String)>,
    /// The body.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: impl Into<Vec<u8>>) -> Self {
        Response {
            status,
            headers: vec![("Content-Type".into(), "application/json".into())],
            body: body.into(),
        }
    }

    /// The standard error envelope: `{"error": "..."}`.
    pub fn error(status: u16, message: &str) -> Self {
        let body = caqr_wire::Value::obj(vec![("error", caqr_wire::Value::str(message))]).encode();
        Response::json(status, body)
    }

    /// Adds a header.
    pub fn with_header(mut self, name: &str, value: &str) -> Self {
        self.headers.push((name.into(), value.into()));
        self
    }

    /// The full wire form — status line, headers, body — as one buffer,
    /// declaring `Connection: keep-alive` or `close`. The reactor queues
    /// these bytes on a connection's outbound buffer; [`write_response`]
    /// sends them on a blocking socket.
    pub fn serialize(&self, keep_alive: bool) -> Vec<u8> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\nContent-Length: {}\r\nConnection: {}\r\n",
            self.status,
            status_text(self.status),
            self.body.len(),
            if keep_alive { "keep-alive" } else { "close" },
        );
        for (name, value) in &self.headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str("\r\n");
        let mut bytes = head.into_bytes();
        bytes.extend_from_slice(&self.body);
        bytes
    }
}

/// Writes `response`, declaring `Connection: keep-alive` or `close`.
///
/// # Errors
///
/// Propagates socket write failures (the caller drops the connection).
pub fn write_response(
    stream: &mut TcpStream,
    response: &Response,
    keep_alive: bool,
) -> io::Result<()> {
    stream.write_all(&response.serialize(keep_alive))?;
    stream.flush()
}

/// The reason phrase for every status the service emits.
pub fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// Polls `deadline` for [`read_request`]'s wait callback: `true` while
/// `now < deadline` and `stop` has not fired.
pub fn wait_until(deadline: Instant, stop: &dyn Fn() -> bool) -> impl Fn() -> bool + '_ {
    move || Instant::now() < deadline && !stop()
}

/// A conservative per-tick socket timeout for polling reads: long enough
/// to avoid busy-waiting, short enough that shutdown and idle expiry are
/// observed promptly.
pub const POLL_TICK: Duration = Duration::from_millis(100);
