//! Request routing and the endpoint handlers.
//!
//! Handlers are pure functions from ([`AppState`], [`Request`]) to
//! [`Response`]; the transport (connection lifecycle, panic isolation,
//! draining) lives in [`crate::server`]. Status mapping:
//!
//! * `400` — the body is not valid JSON, or required fields are missing;
//! * `422` — well-formed JSON describing something uncompilable: a bad
//!   circuit, an unknown strategy/device, an out-of-range shot count;
//! * `504` — the request's deadline fired ([`CaqrError::DeadlineExceeded`]
//!   from a pass boundary, or the simulator's shot-chunk check);
//! * `500` — a handler panic (mapped by the worker, not here).

use crate::http::{Request, Response};
use crate::metrics::{ReactorMetrics, ServerMetrics};
use crate::respcache::ResponseCache;
use caqr::{CancelToken, CaqrError, CostModelSpec, RouterConfig, RoutingBackendSpec, Strategy};
use caqr_arch::{Device, Topology};
use caqr_circuit::{qasm, Circuit};
use caqr_engine::{
    BatchOptions, BatchRequest, BindJob, CompileCache, CompileJob, Engine, EngineMetrics,
    FailedJob, JobError, JobOutcome, StreamJobError,
};
use caqr_sim::{Executor, NoiseModel};
use caqr_stream::{StreamError, StreamOptions};
use caqr_wire::{circuit, Value};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

/// Caps on what one request may ask for.
#[derive(Debug, Clone)]
pub struct RequestLimits {
    /// Deadline applied when the request names none.
    pub default_timeout: Duration,
    /// Hard ceiling on any requested `timeout_ms`.
    pub max_timeout: Duration,
    /// Hard ceiling on `shots` for `/v1/simulate`.
    pub max_shots: usize,
    /// Hard ceiling on `jobs` for `/v1/compile-batch`.
    pub max_batch_jobs: usize,
}

impl Default for RequestLimits {
    fn default() -> Self {
        RequestLimits {
            default_timeout: Duration::from_secs(30),
            max_timeout: Duration::from_secs(120),
            max_shots: 1 << 16,
            max_batch_jobs: 256,
        }
    }
}

/// Everything the handlers share across requests.
#[derive(Debug)]
pub struct AppState {
    /// The cross-request compile cache (content-addressed, LRU).
    pub cache: CompileCache,
    /// Whole-response cache over compute bodies — identical request bytes
    /// are answered without re-running the engine ([`crate::respcache`]).
    pub response_cache: ResponseCache,
    /// Cumulative engine metrics, merged after every compile run.
    pub engine_metrics: Mutex<EngineMetrics>,
    /// Serving counters.
    pub metrics: ServerMetrics,
    /// Reactor counters, installed once by the event-driven backend when
    /// it starts; `/metrics` includes them when present.
    pub reactor: OnceLock<Arc<ReactorMetrics>>,
    /// Per-request caps.
    pub limits: RequestLimits,
    /// Memoized devices by (spec, seed): building `mumbai` costs ~10x a
    /// whole cache-hit request, and the workload reuses a handful of
    /// specs. Bounded at [`DEVICE_MEMO_CAP`] entries, evicting the oldest.
    devices: Mutex<Vec<((String, u64), Device)>>,
}

/// Memoized device slots — a few specs cover any realistic workload.
const DEVICE_MEMO_CAP: usize = 16;

impl AppState {
    /// State with `cache_capacity` compile-cache entries and the default
    /// response-cache size.
    pub fn new(cache_capacity: usize, limits: RequestLimits) -> Self {
        AppState::with_capacities(cache_capacity, 1024, limits)
    }

    /// State with explicit compile-cache and response-cache capacities.
    pub fn with_capacities(
        cache_capacity: usize,
        response_capacity: usize,
        limits: RequestLimits,
    ) -> Self {
        AppState {
            cache: CompileCache::new(cache_capacity.max(1)),
            response_cache: ResponseCache::new(response_capacity.max(1)),
            engine_metrics: Mutex::new(EngineMetrics::default()),
            metrics: ServerMetrics::default(),
            reactor: OnceLock::new(),
            limits,
            devices: Mutex::new(Vec::new()),
        }
    }

    /// A device for `spec` at `seed`, built at most once per memo slot.
    fn device(&self, spec: &str, seed: u64) -> Result<Device, Reject> {
        let mut memo = self
            .devices
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        if let Some((_, device)) = memo.iter().find(|((s, d), _)| s == spec && *d == seed) {
            return Ok(device.clone());
        }
        let device = parse_device(spec, seed)?;
        if memo.len() >= DEVICE_MEMO_CAP {
            memo.remove(0);
        }
        memo.push(((spec.to_string(), seed), device.clone()));
        Ok(device)
    }

    fn merge_engine_metrics(&self, metrics: &EngineMetrics) {
        // Survive a poisoned lock: a panic elsewhere must not take
        // /metrics down with it.
        let mut guard = self
            .engine_metrics
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        guard.merge(metrics);
    }
}

/// The compute endpoints — the work units the reactor hands to worker
/// threads. Cheap routes (`/healthz`, `/metrics`, cache hits, 404/405)
/// never become an `Endpoint`; they are answered inline by [`route`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Endpoint {
    /// `POST /v1/compile`.
    Compile,
    /// `POST /v1/compile-batch`.
    CompileBatch,
    /// `POST /v1/simulate`.
    Simulate,
    /// `POST /v1/bind-run`.
    BindRun,
    /// `POST /v1/compile-stream` — the body is raw OpenQASM text, fed to
    /// the bounded-memory streaming pipeline instead of a JSON envelope.
    CompileStream,
}

impl Endpoint {
    /// The response-cache namespace for this endpoint; `None` means the
    /// endpoint's responses are never cached (see [`crate::respcache`]).
    ///
    /// Bind-run responses are body-addressed like everything else: the
    /// request bytes include the bound `values`, so two bindings of the
    /// same template occupy distinct entries and can never cross-serve.
    fn cache_key(self) -> Option<u8> {
        match self {
            Endpoint::Compile => Some(1),
            Endpoint::Simulate => Some(2),
            Endpoint::BindRun => Some(3),
            Endpoint::CompileBatch => None,
            // Streaming bodies can be megabytes of QASM; caching whole
            // request bytes as a key would defeat the memory bound.
            Endpoint::CompileStream => None,
        }
    }
}

/// The routing decision for one request.
pub enum Routed {
    /// Answer now, on the transport thread — no compute involved.
    Done(Response),
    /// Real work: run [`execute`] on a worker thread.
    Dispatch(Endpoint),
}

/// Routes one request: cheap endpoints and response-cache hits are
/// answered immediately, compute goes to a worker. Both backends route
/// through here so caching behaves identically everywhere.
pub fn route(state: &AppState, request: &Request) -> Routed {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => Routed::Done(Response::json(
            200,
            r#"{"status":"ok"}"#.as_bytes().to_vec(),
        )),
        ("GET", "/metrics") => Routed::Done(metrics(state)),
        ("POST", "/v1/compile") => route_compute(state, Endpoint::Compile, &request.body),
        ("POST", "/v1/compile-batch") => Routed::Dispatch(Endpoint::CompileBatch),
        ("POST", "/v1/simulate") => route_compute(state, Endpoint::Simulate, &request.body),
        ("POST", "/v1/bind-run") => route_compute(state, Endpoint::BindRun, &request.body),
        ("POST", "/v1/compile-stream") => Routed::Dispatch(Endpoint::CompileStream),
        (
            _,
            "/healthz" | "/metrics" | "/v1/compile" | "/v1/compile-batch" | "/v1/simulate"
            | "/v1/bind-run" | "/v1/compile-stream",
        ) => Routed::Done(Response::error(405, "method not allowed")),
        _ => Routed::Done(Response::error(404, "no such endpoint")),
    }
}

fn route_compute(state: &AppState, endpoint: Endpoint, body: &[u8]) -> Routed {
    if let Some(key) = endpoint.cache_key() {
        if let Some(cached) = state.response_cache.lookup(key, body) {
            state
                .metrics
                .response_cache_hits
                .fetch_add(1, Ordering::Relaxed);
            return Routed::Done(Response::json(200, cached));
        }
    }
    Routed::Dispatch(endpoint)
}

/// Runs one dispatched compute request, feeding successes back into the
/// response cache.
pub fn execute(state: &AppState, endpoint: Endpoint, body: &[u8]) -> Response {
    let response = match endpoint {
        Endpoint::Compile => compile(state, body),
        Endpoint::CompileBatch => compile_batch(state, body),
        Endpoint::Simulate => simulate(state, body),
        Endpoint::BindRun => bind_run(state, body),
        Endpoint::CompileStream => compile_stream(state, body),
    };
    if let Some(key) = endpoint.cache_key() {
        state
            .metrics
            .response_cache_misses
            .fetch_add(1, Ordering::Relaxed);
        if response.status == 200 {
            state.response_cache.store(key, body, &response.body);
        }
    }
    response
}

/// Routes and, if needed, executes one request in place — the threaded
/// backend's (and the unit tests') single entry point.
pub fn handle(state: &AppState, request: &Request) -> Response {
    match route(state, request) {
        Routed::Done(response) => response,
        Routed::Dispatch(endpoint) => execute(state, endpoint, &request.body),
    }
}

/// `GET /metrics`: the engine object is [`EngineMetrics::to_json`]
/// verbatim — the same bytes `caqr compile-batch --metrics --json` prints
/// — wrapped next to the serving counters (and the reactor counters when
/// the event-driven backend is running).
fn metrics(state: &AppState) -> Response {
    let engine = state
        .engine_metrics
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
        .to_json();
    let server = state.metrics.to_value().encode();
    let body = match state.reactor.get() {
        None => format!("{{\"engine\":{engine},\"server\":{server}}}"),
        Some(reactor) => format!(
            "{{\"engine\":{engine},\"server\":{server},\"reactor\":{}}}",
            reactor.to_value().encode()
        ),
    };
    Response::json(200, body.into_bytes())
}

/// A request the handler rejected before (or instead of) doing work.
struct Reject {
    status: u16,
    message: String,
    /// 1-based source line for QASM parse errors, so a client streaming a
    /// generated program can point at the offending statement.
    line: Option<usize>,
}

impl Reject {
    fn bad(message: impl Into<String>) -> Reject {
        Reject {
            status: 400,
            message: message.into(),
            line: None,
        }
    }

    fn unprocessable(message: impl Into<String>) -> Reject {
        Reject {
            status: 422,
            message: message.into(),
            line: None,
        }
    }

    /// A 422 anchored to a source line (`0` = no single line, per
    /// [`qasm::ParseQasmError::line`]).
    fn unprocessable_at(line: usize, message: impl Into<String>) -> Reject {
        Reject {
            status: 422,
            message: message.into(),
            line: (line > 0).then_some(line),
        }
    }

    fn into_response(self) -> Response {
        match self.line {
            None => Response::error(self.status, &self.message),
            Some(line) => {
                let body = Value::obj(vec![
                    ("error", Value::str(self.message)),
                    ("line", Value::num(line as u64)),
                ])
                .encode();
                Response::json(self.status, body.into_bytes())
            }
        }
    }
}

fn parse_body(body: &[u8]) -> Result<Value, Reject> {
    let text = std::str::from_utf8(body).map_err(|_| Reject::bad("body is not UTF-8"))?;
    let value = caqr_wire::parse(text).map_err(|e| Reject::bad(format!("invalid JSON: {e}")))?;
    if value.as_object().is_none() {
        return Err(Reject::bad("request body must be a JSON object"));
    }
    Ok(value)
}

/// Extracts the circuit from `"circuit"` (wire form) or `"qasm"` (OpenQASM
/// 2.0 text) — exactly one must be present.
fn circuit_field(body: &Value) -> Result<Circuit, Reject> {
    match (body.get("circuit"), body.get("qasm")) {
        (Some(_), Some(_)) => Err(Reject::bad("give either 'circuit' or 'qasm', not both")),
        (Some(wire), None) => circuit::circuit_from_value(wire)
            .map_err(|e| Reject::unprocessable(format!("bad circuit: {e}"))),
        (None, Some(qasm_text)) => {
            let text = qasm_text
                .as_str()
                .ok_or_else(|| Reject::bad("'qasm' must be a string"))?;
            qasm::from_qasm(text)
                .map_err(|e| Reject::unprocessable_at(e.line(), format!("bad QASM: {e}")))
        }
        (None, None) => Err(Reject::bad("missing 'circuit' or 'qasm'")),
    }
}

fn strategy_field(body: &Value, key: &str, default: Strategy) -> Result<Strategy, Reject> {
    let Some(value) = body.get(key) else {
        return Ok(default);
    };
    let name = value
        .as_str()
        .ok_or_else(|| Reject::bad(format!("'{key}' must be a string")))?;
    parse_strategy(name).ok_or_else(|| {
        Reject::unprocessable(format!(
            "unknown strategy '{name}' (baseline | qs-max | qs-min-depth | qs-min-swap | qs-max-esp | sr)"
        ))
    })
}

/// The optional `"router"` field: a routing cost-model spec in the CLI's
/// `--cost-model` grammar. Absent means `default` (the server-wide Hop
/// default, or the batch-level value inside `jobs[]`).
fn router_field(body: &Value, default: CostModelSpec) -> Result<CostModelSpec, Reject> {
    let Some(value) = body.get("router") else {
        return Ok(default);
    };
    let spec = value
        .as_str()
        .ok_or_else(|| Reject::bad("'router' must be a string"))?;
    CostModelSpec::parse(spec).map_err(|e| Reject::unprocessable(format!("bad router: {e}")))
}

/// The optional `"routing_backend"` field: `swap | dpqa`. Absent means
/// `default` (the server-wide SWAP default, or the batch-level value
/// inside `jobs[]`). A DPQA job on a non-grid device fails later with
/// the typed [`CaqrError::BackendDeviceMismatch`], reported as 422.
fn routing_backend_field(
    body: &Value,
    default: RoutingBackendSpec,
) -> Result<RoutingBackendSpec, Reject> {
    let Some(value) = body.get("routing_backend") else {
        return Ok(default);
    };
    let spec = value
        .as_str()
        .ok_or_else(|| Reject::bad("'routing_backend' must be a string"))?;
    RoutingBackendSpec::parse(spec)
        .map_err(|e| Reject::unprocessable(format!("bad routing_backend: {e}")))
}

/// The CLI's strategy names, plus each [`Strategy`]'s `Display` form so a
/// strategy string read from a response round-trips.
fn parse_strategy(name: &str) -> Option<Strategy> {
    match name {
        "baseline" => Some(Strategy::Baseline),
        "qs-max" | "qs-max-reuse" => Some(Strategy::QsMaxReuse),
        "qs-min-depth" => Some(Strategy::QsMinDepth),
        "qs-min-swap" => Some(Strategy::QsMinSwap),
        "qs-max-esp" => Some(Strategy::QsMaxEsp),
        "sr" => Some(Strategy::Sr),
        _ => None,
    }
}

/// The CLI's device grammar: `mumbai | heavy-hex:<n> | line:<n> |
/// grid:<r>x<c>`, seeded by `seed`.
fn parse_device(spec: &str, seed: u64) -> Result<Device, Reject> {
    if spec == "mumbai" {
        return Ok(Device::mumbai(seed));
    }
    let parsed = spec.strip_prefix("heavy-hex:").map(|n| {
        n.parse::<usize>()
            .ok()
            .filter(|&n| (1..=2048).contains(&n))
            .map(|n| Device::scaled_heavy_hex(n, seed))
    });
    if let Some(device) = parsed {
        return device
            .ok_or_else(|| Reject::unprocessable(format!("bad heavy-hex size in '{spec}'")));
    }
    if let Some(n) = spec.strip_prefix("line:") {
        let n = n
            .parse::<usize>()
            .ok()
            .filter(|&n| (1..=4096).contains(&n))
            .ok_or_else(|| Reject::unprocessable(format!("bad line size in '{spec}'")))?;
        return Ok(Device::with_synthetic_calibration(Topology::line(n), seed));
    }
    if let Some(dims) = spec.strip_prefix("grid:") {
        let parsed = dims.split_once('x').and_then(|(r, c)| {
            let r = r
                .parse::<usize>()
                .ok()
                .filter(|&r| (1..=256).contains(&r))?;
            let c = c
                .parse::<usize>()
                .ok()
                .filter(|&c| (1..=256).contains(&c))?;
            Some((r, c))
        });
        let (r, c) =
            parsed.ok_or_else(|| Reject::unprocessable(format!("bad grid spec in '{spec}'")))?;
        // Grid devices carry DPQA geometry: identical topology and
        // calibration for the SWAP backend, and a valid movement target
        // for `"routing_backend":"dpqa"`.
        return Ok(Device::dpqa_grid(r, c, seed));
    }
    Err(Reject::unprocessable(format!(
        "unknown device '{spec}' (mumbai | heavy-hex:<n> | line:<n> | grid:<r>x<c>)"
    )))
}

fn device_field(state: &AppState, body: &Value, seed: u64) -> Result<Device, Reject> {
    let spec = match body.get("device") {
        None => "mumbai",
        Some(value) => value
            .as_str()
            .ok_or_else(|| Reject::bad("'device' must be a string"))?,
    };
    state.device(spec, seed)
}

fn u64_field(body: &Value, key: &str, default: u64) -> Result<u64, Reject> {
    match body.get(key) {
        None => Ok(default),
        Some(value) => value
            .as_u64()
            .ok_or_else(|| Reject::bad(format!("'{key}' must be a non-negative integer"))),
    }
}

/// The request's [`CancelToken`]: `timeout_ms` clamped to the server's
/// ceiling, or the default deadline when absent.
fn deadline_token(body: &Value, limits: &RequestLimits) -> Result<CancelToken, Reject> {
    let timeout = match body.get("timeout_ms") {
        None => limits.default_timeout,
        Some(value) => {
            let ms = value
                .as_u64()
                .ok_or_else(|| Reject::bad("'timeout_ms' must be a non-negative integer"))?;
            Duration::from_millis(ms).min(limits.max_timeout)
        }
    };
    Ok(CancelToken::with_timeout(timeout))
}

/// One successful job as a wire object (compile + batch share the shape).
fn outcome_value(outcome: &JobOutcome) -> Value {
    Value::obj(vec![
        ("ok", Value::Bool(true)),
        ("name", Value::str(outcome.name.clone())),
        ("strategy", Value::str(outcome.strategy.to_string())),
        ("router", Value::str(outcome.router_label())),
        ("routing_backend", Value::str(outcome.backend.to_string())),
        ("qubits", Value::num(outcome.report.qubits as u64)),
        ("depth", Value::num(outcome.report.depth as u64)),
        ("duration_dt", Value::num(outcome.report.duration_dt)),
        ("swaps", Value::num(outcome.report.swaps as u64)),
        (
            "movement_stages",
            Value::num(outcome.report.movement_stages as u64),
        ),
        (
            "two_qubit_gates",
            Value::num(outcome.report.two_qubit_gates as u64),
        ),
        ("esp", Value::Num(outcome.report.esp)),
        ("cache_hit", Value::Bool(outcome.cache_hit)),
        (
            "circuit",
            circuit::circuit_to_value(&outcome.report.circuit),
        ),
    ])
}

fn failure_value(failed: &FailedJob) -> Value {
    Value::obj(vec![
        ("ok", Value::Bool(false)),
        ("name", Value::str(failed.name.clone())),
        ("strategy", Value::str(failed.strategy.to_string())),
        ("router", Value::str(failed.router_label())),
        ("routing_backend", Value::str(failed.backend.to_string())),
        ("error", Value::str(failed.error.to_string())),
    ])
}

/// Maps one failed job to a whole-request error response.
fn failure_response(failed: &FailedJob) -> Response {
    match &failed.error {
        JobError::Compile(CaqrError::DeadlineExceeded { phase }) => {
            Response::error(504, &format!("deadline exceeded (in '{phase}')"))
        }
        JobError::Compile(e) => Response::error(422, &format!("compile error: {e}")),
        JobError::Panic(msg) => Response::error(500, &format!("compile panicked: {msg}")),
        JobError::Bind(msg) => Response::error(422, &format!("bind error: {msg}")),
    }
}

/// `POST /v1/compile`: one circuit through the engine (and the shared
/// cache), returning the full report with the compiled circuit in wire
/// form.
fn compile(state: &AppState, body: &[u8]) -> Response {
    match compile_inner(state, body) {
        Ok(response) => response,
        Err(reject) => reject.into_response(),
    }
}

fn compile_inner(state: &AppState, body: &[u8]) -> Result<Response, Reject> {
    let body = parse_body(body)?;
    let circuit = circuit_field(&body)?;
    let strategy = strategy_field(&body, "strategy", Strategy::Sr)?;
    let router = router_field(&body, CostModelSpec::Hop)?;
    let backend = routing_backend_field(&body, RoutingBackendSpec::Swap)?;
    let seed = u64_field(&body, "seed", 2023)?;
    let device = device_field(state, &body, seed)?;
    let name = match body.get("name") {
        None => "request".to_string(),
        Some(value) => value
            .as_str()
            .ok_or_else(|| Reject::bad("'name' must be a string"))?
            .to_string(),
    };
    let token = deadline_token(&body, &state.limits)?;

    let request = BatchRequest::new(vec![CompileJob::new(name, circuit, device, strategy)
        .with_router(
            RouterConfig::new()
                .with_backend(backend)
                .with_cost_model(router),
        )])
    .with_options(BatchOptions::with_workers(1));
    let report = Engine::run_shared(&request, Some(&state.cache), &token);
    state.merge_engine_metrics(&report.metrics);

    Ok(match &report.results[0] {
        Ok(outcome) => Response::json(200, outcome_value(outcome).encode().into_bytes()),
        Err(failed) => failure_response(failed),
    })
}

/// `POST /v1/compile-batch`: a job array through the engine pool. Job
/// failures are reported per-entry; the request only fails wholesale when
/// the batch-level deadline fires.
fn compile_batch(state: &AppState, body: &[u8]) -> Response {
    match compile_batch_inner(state, body) {
        Ok(response) => response,
        Err(reject) => reject.into_response(),
    }
}

fn compile_batch_inner(state: &AppState, body: &[u8]) -> Result<Response, Reject> {
    let body = parse_body(body)?;
    let default_strategy = strategy_field(&body, "strategy", Strategy::Sr)?;
    let default_router = router_field(&body, CostModelSpec::Hop)?;
    let default_backend = routing_backend_field(&body, RoutingBackendSpec::Swap)?;
    let seed = u64_field(&body, "seed", 2023)?;
    let device = device_field(state, &body, seed)?;
    let workers = u64_field(&body, "workers", 0)? as usize;
    let token = deadline_token(&body, &state.limits)?;

    let entries = body
        .get("jobs")
        .and_then(Value::as_array)
        .ok_or_else(|| Reject::bad("missing 'jobs' array"))?;
    if entries.is_empty() {
        return Err(Reject::bad("'jobs' must not be empty"));
    }
    if entries.len() > state.limits.max_batch_jobs {
        return Err(Reject::unprocessable(format!(
            "{} jobs exceeds the per-request limit of {}",
            entries.len(),
            state.limits.max_batch_jobs
        )));
    }

    let mut jobs = Vec::with_capacity(entries.len());
    for (index, entry) in entries.iter().enumerate() {
        if entry.as_object().is_none() {
            return Err(Reject::bad(format!("jobs[{index}] must be an object")));
        }
        let circuit = circuit_field(entry).map_err(|r| Reject {
            message: format!("jobs[{index}]: {}", r.message),
            ..r
        })?;
        let strategy = strategy_field(entry, "strategy", default_strategy).map_err(|r| Reject {
            message: format!("jobs[{index}]: {}", r.message),
            ..r
        })?;
        let router = router_field(entry, default_router).map_err(|r| Reject {
            message: format!("jobs[{index}]: {}", r.message),
            ..r
        })?;
        let backend = routing_backend_field(entry, default_backend).map_err(|r| Reject {
            message: format!("jobs[{index}]: {}", r.message),
            ..r
        })?;
        let name = match entry.get("name") {
            None => format!("job-{index}"),
            Some(value) => value
                .as_str()
                .ok_or_else(|| Reject::bad(format!("jobs[{index}]: 'name' must be a string")))?
                .to_string(),
        };
        jobs.push(
            CompileJob::new(name, circuit, device.clone(), strategy).with_router(
                RouterConfig::new()
                    .with_backend(backend)
                    .with_cost_model(router),
            ),
        );
    }

    let request = BatchRequest::new(jobs).with_options(BatchOptions::with_workers(workers.min(16)));
    let report = Engine::run_shared(&request, Some(&state.cache), &token);
    state.merge_engine_metrics(&report.metrics);

    // A deadline that cancelled the whole batch answers 504; individual
    // compile errors stay per-entry so one bad job cannot hide the rest.
    if report.ok_count() == 0 {
        if let Some(Err(failed)) = report.results.first() {
            if matches!(
                failed.error,
                JobError::Compile(CaqrError::DeadlineExceeded { .. })
            ) {
                return Ok(failure_response(failed));
            }
        }
    }

    let results: Vec<Value> = report
        .results
        .iter()
        .map(|result| match result {
            Ok(outcome) => outcome_value(outcome),
            Err(failed) => failure_value(failed),
        })
        .collect();
    let body = format!(
        "{{\"results\":{},\"metrics\":{}}}",
        Value::Arr(results).encode(),
        report.metrics.to_json()
    );
    Ok(Response::json(200, body.into_bytes()))
}

/// `POST /v1/simulate`: Monte-Carlo shots over a circuit, ideal or with
/// the device noise model, under the request deadline.
fn simulate(state: &AppState, body: &[u8]) -> Response {
    match simulate_inner(state, body) {
        Ok(response) => response,
        Err(reject) => reject.into_response(),
    }
}

fn simulate_inner(state: &AppState, body: &[u8]) -> Result<Response, Reject> {
    let body = parse_body(body)?;
    let circuit = circuit_field(&body)?;
    if circuit.num_qubits() > caqr_sim::state::MAX_QUBITS {
        return Err(Reject::unprocessable(format!(
            "{} qubits exceeds the simulator's limit of {}",
            circuit.num_qubits(),
            caqr_sim::state::MAX_QUBITS
        )));
    }
    if circuit.num_clbits() > 64 {
        return Err(Reject::unprocessable(format!(
            "{} clbits exceeds the simulator's limit of 64",
            circuit.num_clbits()
        )));
    }
    let shots = u64_field(&body, "shots", 1024)? as usize;
    if shots == 0 || shots > state.limits.max_shots {
        return Err(Reject::unprocessable(format!(
            "'shots' must be between 1 and {}",
            state.limits.max_shots
        )));
    }
    let seed = u64_field(&body, "seed", 2023)?;
    let token = deadline_token(&body, &state.limits)?;

    let executor = match body.get("noise").map(|v| v.as_str()) {
        None | Some(Some("ideal")) => Executor::ideal(),
        Some(Some("device")) => {
            Executor::noisy(NoiseModel::from_device(device_field(state, &body, seed)?))
        }
        Some(Some(other)) => {
            return Err(Reject::unprocessable(format!(
                "unknown noise model '{other}' (ideal | device)"
            )))
        }
        Some(None) => return Err(Reject::bad("'noise' must be a string")),
    };

    let run = executor.run_shots_cancellable(&circuit, shots, seed, &|| token.is_cancelled());
    let (counts, shot_report) = match run {
        Ok(done) => done,
        Err(_) => return Ok(Response::error(504, "deadline exceeded (in 'simulate')")),
    };
    state.metrics.sim.record(&shot_report);

    let histogram: Vec<(String, Value)> = counts
        .iter()
        .map(|(value, n)| (value.to_string(), Value::num(n as u64)))
        .collect();
    let response = Value::obj(vec![
        ("shots", Value::num(shot_report.shots as u64)),
        ("counts", Value::Obj(histogram)),
    ]);
    Ok(Response::json(200, response.encode().into_bytes()))
}

/// `POST /v1/bind-run`: compile a parametric template if cold, bind the
/// requested angle values into the routed artifact, and simulate the
/// result — the compile-once/bind-forever fast path for variational
/// optimizer loops.
///
/// The routed template is cached in the shared compile cache under a
/// values-independent key, so a warm request pays only the O(gates) bind
/// plus the simulation. `"cache_hit"` reports whether the template was
/// warm; the bind/compile time split lands in `/metrics` (`bind_us`,
/// `template_cache_hits`).
fn bind_run(state: &AppState, body: &[u8]) -> Response {
    match bind_run_inner(state, body) {
        Ok(response) => response,
        Err(reject) => reject.into_response(),
    }
}

fn bind_run_inner(state: &AppState, body: &[u8]) -> Result<Response, Reject> {
    let body = parse_body(body)?;
    let template = body
        .get("template")
        .ok_or_else(|| Reject::bad("missing 'template' (wire-form parametric circuit)"))?;
    let template = circuit::parametric_from_value(template)
        .map_err(|e| Reject::unprocessable(format!("bad template: {e}")))?;
    let values = body
        .get("values")
        .and_then(Value::as_array)
        .ok_or_else(|| Reject::bad("missing 'values' array"))?;
    let values: Vec<f64> = values
        .iter()
        .map(|v| {
            v.as_f64()
                .ok_or_else(|| Reject::bad("'values' must be numbers"))
        })
        .collect::<Result<_, _>>()?;
    let strategy = strategy_field(&body, "strategy", Strategy::Sr)?;
    let router = router_field(&body, CostModelSpec::Hop)?;
    let backend = routing_backend_field(&body, RoutingBackendSpec::Swap)?;
    let seed = u64_field(&body, "seed", 2023)?;
    let device = device_field(state, &body, seed)?;
    let name = match body.get("name") {
        None => "bind-run".to_string(),
        Some(value) => value
            .as_str()
            .ok_or_else(|| Reject::bad("'name' must be a string"))?
            .to_string(),
    };
    let shots = u64_field(&body, "shots", 1024)? as usize;
    if shots == 0 || shots > state.limits.max_shots {
        return Err(Reject::unprocessable(format!(
            "'shots' must be between 1 and {}",
            state.limits.max_shots
        )));
    }
    let executor = match body.get("noise").map(|v| v.as_str()) {
        None | Some(Some("ideal")) => Executor::ideal(),
        Some(Some("device")) => Executor::noisy(NoiseModel::from_device(device.clone())),
        Some(Some(other)) => {
            return Err(Reject::unprocessable(format!(
                "unknown noise model '{other}' (ideal | device)"
            )))
        }
        Some(None) => return Err(Reject::bad("'noise' must be a string")),
    };
    let token = deadline_token(&body, &state.limits)?;

    let job = BindJob::new(name, template, values, device, strategy).with_router(
        RouterConfig::new()
            .with_backend(backend)
            .with_cost_model(router),
    );
    let report = Engine::bind_shared(&job, Some(&state.cache), &token);
    state.merge_engine_metrics(&report.metrics);
    let outcome = match &report.result {
        Ok(outcome) => outcome,
        Err(failed) => return Ok(failure_response(failed)),
    };

    // The bound artifact spans the whole device; simulate only the
    // physical qubits it actually touches.
    let (compact, _) = outcome.report.circuit.compact_qubits();
    if compact.num_qubits() > caqr_sim::state::MAX_QUBITS {
        return Err(Reject::unprocessable(format!(
            "{} compiled qubits exceeds the simulator's limit of {}",
            compact.num_qubits(),
            caqr_sim::state::MAX_QUBITS
        )));
    }
    if compact.num_clbits() > 64 {
        return Err(Reject::unprocessable(format!(
            "{} clbits exceeds the simulator's limit of 64",
            compact.num_clbits()
        )));
    }
    let run = executor.run_shots_cancellable(&compact, shots, seed, &|| token.is_cancelled());
    let (counts, shot_report) = match run {
        Ok(done) => done,
        Err(_) => return Ok(Response::error(504, "deadline exceeded (in 'simulate')")),
    };
    state.metrics.sim.record(&shot_report);

    let histogram: Vec<(String, Value)> = counts
        .iter()
        .map(|(value, n)| (value.to_string(), Value::num(n as u64)))
        .collect();
    // No wall-clock fields: the body must be a pure function of the
    // request bytes so response-cache replays stay byte-identical
    // (`cache_hit` is the one spliced exception, as on /v1/compile).
    let response = Value::obj(vec![
        ("ok", Value::Bool(true)),
        ("name", Value::str(outcome.name.clone())),
        ("strategy", Value::str(outcome.strategy.to_string())),
        ("router", Value::str(outcome.router_label())),
        ("routing_backend", Value::str(outcome.backend.to_string())),
        ("qubits", Value::num(outcome.report.qubits as u64)),
        ("depth", Value::num(outcome.report.depth as u64)),
        ("duration_dt", Value::num(outcome.report.duration_dt)),
        ("swaps", Value::num(outcome.report.swaps as u64)),
        (
            "movement_stages",
            Value::num(outcome.report.movement_stages as u64),
        ),
        (
            "two_qubit_gates",
            Value::num(outcome.report.two_qubit_gates as u64),
        ),
        ("esp", Value::Num(outcome.report.esp)),
        ("cache_hit", Value::Bool(outcome.template_cache_hit)),
        ("shots", Value::num(shot_report.shots as u64)),
        ("counts", Value::Obj(histogram)),
    ]);
    Ok(Response::json(200, response.encode().into_bytes()))
}

/// Body bytes per feed into the streaming parser. The transport hands
/// the handler a complete body today; slicing keeps per-feed work (and
/// deadline-check granularity) bounded regardless of body size.
const STREAM_FEED_BYTES: usize = 64 * 1024;

/// `POST /v1/compile-stream`: the body is raw OpenQASM 2.0 text (no JSON
/// envelope — typically delivered with `Transfer-Encoding: chunked`), fed
/// through the bounded-memory streaming pipeline. The response carries
/// the output digest and stage metrics instead of a materialized circuit:
/// the point of the endpoint is that the compiled program never exists in
/// one piece on the server.
fn compile_stream(state: &AppState, body: &[u8]) -> Response {
    match compile_stream_inner(state, body) {
        Ok(response) => response,
        Err(reject) => reject.into_response(),
    }
}

fn compile_stream_inner(state: &AppState, body: &[u8]) -> Result<Response, Reject> {
    if body.is_empty() {
        return Err(Reject::bad("empty body: expected OpenQASM 2.0 text"));
    }
    let token = CancelToken::with_timeout(state.limits.default_timeout);
    let outcome = Engine::compile_streamed(
        body.chunks(STREAM_FEED_BYTES),
        StreamOptions::default(),
        &token,
    );
    let outcome = match outcome {
        Ok(outcome) => outcome,
        Err(StreamJobError::Stream(StreamError::Parse(e))) => {
            return Err(Reject::unprocessable_at(e.line(), format!("bad QASM: {e}")))
        }
        Err(StreamJobError::Stream(e @ StreamError::WindowTooSmall { .. })) => {
            return Err(Reject::unprocessable(e.to_string()))
        }
        Err(StreamJobError::Cancelled(_)) => {
            return Ok(Response::error(504, "deadline exceeded (in 'stream')"))
        }
    };
    let m = outcome.report.metrics;
    let response = Value::obj(vec![
        ("ok", Value::Bool(true)),
        ("digest", Value::str(outcome.report.digest.to_string())),
        ("declared_qubits", Value::num(m.declared_qubits as u64)),
        ("wires", Value::num(m.wires as u64)),
        ("clbits", Value::num(m.clbits as u64)),
        ("gates_in", Value::num(m.gates_in)),
        ("gates_out", Value::num(m.gates_out)),
        ("resets_inserted", Value::num(m.resets_inserted)),
        ("chunks", Value::num(m.chunks)),
        ("peak_window", Value::num(m.peak_window as u64)),
        ("peak_live", Value::num(m.peak_live as u64)),
        ("cones_closed", Value::num(m.cones_closed)),
        ("peak_cone", Value::num(m.peak_cone as u64)),
    ]);
    Ok(Response::json(200, response.encode().into_bytes()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use caqr_circuit::Qubit;

    fn state() -> AppState {
        AppState::new(64, RequestLimits::default())
    }

    fn post(path: &str, body: &str) -> Request {
        Request {
            method: "POST".into(),
            path: path.into(),
            headers: Vec::new(),
            body: body.as_bytes().to_vec(),
        }
    }

    fn bell_wire() -> String {
        let mut c = Circuit::new(2, 2);
        c.h(Qubit::new(0));
        c.cx(Qubit::new(0), Qubit::new(1));
        c.measure_all();
        circuit::circuit_to_value(&c).encode()
    }

    #[test]
    fn healthz_and_unknown_routes() {
        let state = state();
        let ok = handle(
            &state,
            &Request {
                method: "GET".into(),
                path: "/healthz".into(),
                headers: Vec::new(),
                body: Vec::new(),
            },
        );
        assert_eq!(ok.status, 200);
        let missing = handle(&state, &post("/nope", "{}"));
        assert_eq!(missing.status, 404);
        let wrong_method = handle(&state, &post("/healthz", "{}"));
        assert_eq!(wrong_method.status, 405);
    }

    #[test]
    fn compile_roundtrip_and_cache_hit() {
        let state = state();
        let body = format!(r#"{{"circuit":{},"strategy":"sr"}}"#, bell_wire());
        let first = handle(&state, &post("/v1/compile", &body));
        assert_eq!(
            first.status,
            200,
            "{}",
            String::from_utf8_lossy(&first.body)
        );
        let parsed = caqr_wire::parse(std::str::from_utf8(&first.body).unwrap()).unwrap();
        assert_eq!(parsed.get("ok").and_then(Value::as_bool), Some(true));
        assert_eq!(
            parsed.get("cache_hit").and_then(Value::as_bool),
            Some(false)
        );
        assert!(parsed.get("circuit").is_some());

        let second = handle(&state, &post("/v1/compile", &body));
        let parsed = caqr_wire::parse(std::str::from_utf8(&second.body).unwrap()).unwrap();
        assert_eq!(parsed.get("cache_hit").and_then(Value::as_bool), Some(true));
    }

    #[test]
    fn malformed_and_unprocessable_bodies() {
        let state = state();
        assert_eq!(handle(&state, &post("/v1/compile", "{nope")).status, 400);
        assert_eq!(handle(&state, &post("/v1/compile", "[]")).status, 400);
        assert_eq!(handle(&state, &post("/v1/compile", "{}")).status, 400);
        let bad_strategy = format!(r#"{{"circuit":{},"strategy":"wat"}}"#, bell_wire());
        assert_eq!(
            handle(&state, &post("/v1/compile", &bad_strategy)).status,
            422
        );
        let bad_device = format!(r#"{{"circuit":{},"device":"torus:9"}}"#, bell_wire());
        assert_eq!(
            handle(&state, &post("/v1/compile", &bad_device)).status,
            422
        );
        let bad_qasm = r#"{"qasm":"OPENQASM 2.0;\nqreg q[2];\nbadgate q[0];"}"#;
        assert_eq!(handle(&state, &post("/v1/compile", bad_qasm)).status, 422);
    }

    #[test]
    fn unknown_router_is_422_and_routers_do_not_share_cache_entries() {
        let state = state();
        let bad = format!(r#"{{"circuit":{},"router":"dijkstra"}}"#, bell_wire());
        let response = handle(&state, &post("/v1/compile", &bad));
        assert_eq!(
            response.status,
            422,
            "{}",
            String::from_utf8_lossy(&response.body)
        );

        // Same circuit + strategy under two routers must compile twice:
        // the second request may not be served from the first's cache slot.
        let hop = format!(r#"{{"circuit":{},"router":"hop"}}"#, bell_wire());
        let first = handle(&state, &post("/v1/compile", &hop));
        assert_eq!(first.status, 200);
        let noise = format!(r#"{{"circuit":{},"router":"noise-aware"}}"#, bell_wire());
        let second = handle(&state, &post("/v1/compile", &noise));
        assert_eq!(second.status, 200);
        let parsed = caqr_wire::parse(std::str::from_utf8(&second.body).unwrap()).unwrap();
        assert_eq!(
            parsed.get("cache_hit").and_then(Value::as_bool),
            Some(false),
            "different router, different cache key"
        );
        assert_eq!(
            parsed.get("router").and_then(Value::as_str),
            Some("noise-aware")
        );
    }

    #[test]
    fn batch_applies_per_job_router_overrides() {
        let state = state();
        let body = format!(
            r#"{{"router":"lookahead","jobs":[{{"circuit":{},"name":"a"}},{{"circuit":{},"name":"b","router":"hop"}}]}}"#,
            bell_wire(),
            bell_wire()
        );
        let response = handle(&state, &post("/v1/compile-batch", &body));
        assert_eq!(
            response.status,
            200,
            "{}",
            String::from_utf8_lossy(&response.body)
        );
        let parsed = caqr_wire::parse(std::str::from_utf8(&response.body).unwrap()).unwrap();
        let results = parsed.get("results").and_then(Value::as_array).unwrap();
        assert_eq!(
            results[0].get("router").and_then(Value::as_str),
            Some("lookahead:8:0.5"),
            "batch-level default applies and round-trips in canonical form"
        );
        assert_eq!(
            results[1].get("router").and_then(Value::as_str),
            Some("hop")
        );
        let metrics = parsed.get("metrics").unwrap();
        let policies = metrics.get("policies").unwrap();
        assert!(policies.get("hop").is_some(), "per-policy attribution");
        assert!(policies.get("lookahead:8:0.5").is_some());
    }

    #[test]
    fn routing_backend_is_validated_up_front() {
        let state = state();
        let bad = format!(
            r#"{{"circuit":{},"routing_backend":"teleport"}}"#,
            bell_wire()
        );
        let response = handle(&state, &post("/v1/compile", &bad));
        assert_eq!(
            response.status,
            422,
            "{}",
            String::from_utf8_lossy(&response.body)
        );
        assert!(String::from_utf8_lossy(&response.body).contains("bad routing_backend"));
        let not_a_string = format!(r#"{{"circuit":{},"routing_backend":7}}"#, bell_wire());
        assert_eq!(
            handle(&state, &post("/v1/compile", &not_a_string)).status,
            400
        );
    }

    #[test]
    fn dpqa_backend_compiles_on_grid_devices_only() {
        let state = state();
        let ok = format!(
            r#"{{"circuit":{},"device":"grid:3x3","routing_backend":"dpqa"}}"#,
            bell_wire()
        );
        let response = handle(&state, &post("/v1/compile", &ok));
        assert_eq!(
            response.status,
            200,
            "{}",
            String::from_utf8_lossy(&response.body)
        );
        let parsed = caqr_wire::parse(std::str::from_utf8(&response.body).unwrap()).unwrap();
        assert_eq!(
            parsed.get("routing_backend").and_then(Value::as_str),
            Some("dpqa")
        );
        assert_eq!(parsed.get("router").and_then(Value::as_str), Some("dpqa"));
        assert_eq!(parsed.get("swaps").and_then(Value::as_u64), Some(0));
        assert!(
            parsed.get("movement_stages").and_then(Value::as_u64) > Some(0),
            "dpqa compile should report movement stages"
        );

        // Fixed-coupling devices cannot host the movement backend: the
        // typed mismatch surfaces as a 422 compile error, not a 500.
        let mismatch = format!(r#"{{"circuit":{},"routing_backend":"dpqa"}}"#, bell_wire());
        let response = handle(&state, &post("/v1/compile", &mismatch));
        assert_eq!(
            response.status,
            422,
            "{}",
            String::from_utf8_lossy(&response.body)
        );
        assert!(
            String::from_utf8_lossy(&response.body).contains("DPQA grid device"),
            "{}",
            String::from_utf8_lossy(&response.body)
        );
    }

    #[test]
    fn backends_do_not_share_cache_entries() {
        let state = state();
        let swap = format!(r#"{{"circuit":{},"device":"grid:3x3"}}"#, bell_wire());
        let first = handle(&state, &post("/v1/compile", &swap));
        assert_eq!(first.status, 200);
        let dpqa = format!(
            r#"{{"circuit":{},"device":"grid:3x3","routing_backend":"dpqa"}}"#,
            bell_wire()
        );
        let second = handle(&state, &post("/v1/compile", &dpqa));
        assert_eq!(second.status, 200);
        let parsed = caqr_wire::parse(std::str::from_utf8(&second.body).unwrap()).unwrap();
        assert_eq!(
            parsed.get("cache_hit").and_then(Value::as_bool),
            Some(false),
            "different backend, different cache key"
        );
    }

    #[test]
    fn batch_applies_per_job_routing_backend_overrides() {
        let state = state();
        let body = format!(
            r#"{{"device":"grid:3x3","jobs":[{{"circuit":{},"name":"a"}},{{"circuit":{},"name":"b","routing_backend":"dpqa"}}]}}"#,
            bell_wire(),
            bell_wire()
        );
        let response = handle(&state, &post("/v1/compile-batch", &body));
        assert_eq!(
            response.status,
            200,
            "{}",
            String::from_utf8_lossy(&response.body)
        );
        let parsed = caqr_wire::parse(std::str::from_utf8(&response.body).unwrap()).unwrap();
        let results = parsed.get("results").and_then(Value::as_array).unwrap();
        assert_eq!(
            results[0].get("routing_backend").and_then(Value::as_str),
            Some("swap"),
            "batch-level default applies"
        );
        assert_eq!(
            results[1].get("routing_backend").and_then(Value::as_str),
            Some("dpqa")
        );
        assert_eq!(
            results[1].get("router").and_then(Value::as_str),
            Some("dpqa")
        );
        let metrics = parsed.get("metrics").unwrap();
        let policies = metrics.get("policies").unwrap();
        assert!(policies.get("hop").is_some(), "per-policy attribution");
        assert!(policies.get("dpqa").is_some(), "per-backend attribution");

        // A bad per-job spec is rejected up front with the job index.
        let bad = format!(
            r#"{{"jobs":[{{"circuit":{},"routing_backend":"warp"}}]}}"#,
            bell_wire()
        );
        let response = handle(&state, &post("/v1/compile-batch", &bad));
        assert_eq!(response.status, 422);
        assert!(
            String::from_utf8_lossy(&response.body).contains("jobs[0]"),
            "{}",
            String::from_utf8_lossy(&response.body)
        );
    }

    #[test]
    fn expired_deadline_is_504() {
        let state = state();
        let body = format!(r#"{{"circuit":{},"timeout_ms":0}}"#, bell_wire());
        let response = handle(&state, &post("/v1/compile", &body));
        assert_eq!(
            response.status,
            504,
            "{}",
            String::from_utf8_lossy(&response.body)
        );
        assert_eq!(
            state.engine_metrics.lock().unwrap().jobs_failed,
            1,
            "the failed job still lands in the engine metrics"
        );
    }

    #[test]
    fn batch_mixes_success_and_failure() {
        let state = state();
        let body = format!(
            r#"{{"jobs":[{{"circuit":{},"name":"good"}},{{"qasm":"broken","name":"bad"}}]}}"#,
            bell_wire()
        );
        // A bad entry is rejected up front (422), not half-compiled.
        assert_eq!(
            handle(&state, &post("/v1/compile-batch", &body)).status,
            422
        );

        let body = format!(
            r#"{{"jobs":[{{"circuit":{},"name":"a"}},{{"circuit":{},"strategy":"baseline","name":"b"}}]}}"#,
            bell_wire(),
            bell_wire()
        );
        let response = handle(&state, &post("/v1/compile-batch", &body));
        assert_eq!(
            response.status,
            200,
            "{}",
            String::from_utf8_lossy(&response.body)
        );
        let parsed = caqr_wire::parse(std::str::from_utf8(&response.body).unwrap()).unwrap();
        let results = parsed.get("results").and_then(Value::as_array).unwrap();
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].get("name").and_then(Value::as_str), Some("a"));
        assert_eq!(
            results[1].get("strategy").and_then(Value::as_str),
            Some("baseline")
        );
        let metrics = parsed.get("metrics").unwrap();
        assert_eq!(metrics.get("jobs_total").and_then(Value::as_u64), Some(2));
    }

    #[test]
    fn simulate_bell_is_correlated() {
        let state = state();
        let body = format!(r#"{{"circuit":{},"shots":256,"seed":7}}"#, bell_wire());
        let response = handle(&state, &post("/v1/simulate", &body));
        assert_eq!(
            response.status,
            200,
            "{}",
            String::from_utf8_lossy(&response.body)
        );
        let parsed = caqr_wire::parse(std::str::from_utf8(&response.body).unwrap()).unwrap();
        assert_eq!(parsed.get("shots").and_then(Value::as_u64), Some(256));
        let counts = parsed.get("counts").and_then(Value::as_object).unwrap();
        let total: u64 = counts.iter().map(|(_, v)| v.as_u64().unwrap()).sum();
        assert_eq!(total, 256);
        for (key, _) in counts {
            assert!(
                key == "0" || key == "3",
                "bell outputs 00/11 only, got {key}"
            );
        }
    }

    #[test]
    fn simulate_surfaces_engine_dispatch_in_metrics() {
        let state = state();
        // An ideal Bell run is all-Clifford, so the auto engine carries it
        // on the stabilizer tableau.
        let body = format!(r#"{{"circuit":{},"shots":64,"seed":7}}"#, bell_wire());
        assert_eq!(handle(&state, &post("/v1/simulate", &body)).status, 200);
        let response = metrics(&state);
        let parsed = caqr_wire::parse(std::str::from_utf8(&response.body).unwrap()).unwrap();
        let sim = parsed.get("server").and_then(|s| s.get("sim")).unwrap();
        assert_eq!(
            sim.get("kernel_dispatch").and_then(Value::as_str),
            Some("tableau")
        );
        assert_eq!(sim.get("dispatch_tableau").and_then(Value::as_u64), Some(1));
        assert!(sim.get("stabilizer_prefix_gates").and_then(Value::as_u64) > Some(0));
        assert!(sim.get("tableau_to_dense_us").is_some());
    }

    #[test]
    fn simulate_guards() {
        let state = state();
        let big = circuit::circuit_to_value(&Circuit::new(30, 1)).encode();
        let body = format!(r#"{{"circuit":{}}}"#, big);
        assert_eq!(handle(&state, &post("/v1/simulate", &body)).status, 422);
        let zero_shots = format!(r#"{{"circuit":{},"shots":0}}"#, bell_wire());
        assert_eq!(
            handle(&state, &post("/v1/simulate", &zero_shots)).status,
            422
        );
        let bad_noise = format!(r#"{{"circuit":{},"noise":"cosmic"}}"#, bell_wire());
        assert_eq!(
            handle(&state, &post("/v1/simulate", &bad_noise)).status,
            422
        );
    }

    fn template_wire() -> String {
        use caqr_circuit::{Param, ParametricCircuit};
        let mut c = Circuit::new(2, 2);
        c.h(Qubit::new(0));
        c.rzz(Param::Slot(0).to_raw(), Qubit::new(0), Qubit::new(1));
        c.rx(Param::Slot(1).to_raw(), Qubit::new(0));
        c.rx(Param::Slot(1).to_raw(), Qubit::new(1));
        c.measure_all();
        circuit::parametric_to_value(&ParametricCircuit::new(c, 2).unwrap()).encode()
    }

    fn counts_of(response: &Response) -> Vec<(String, u64)> {
        let parsed = caqr_wire::parse(std::str::from_utf8(&response.body).unwrap()).unwrap();
        parsed
            .get("counts")
            .and_then(Value::as_object)
            .unwrap()
            .iter()
            .map(|(k, v)| (k.clone(), v.as_u64().unwrap()))
            .collect()
    }

    #[test]
    fn bind_run_compiles_once_and_binds_per_request() {
        let state = state();
        let body = format!(
            r#"{{"template":{},"values":[0.7,0.6],"shots":128,"seed":5}}"#,
            template_wire()
        );
        let first = handle(&state, &post("/v1/bind-run", &body));
        assert_eq!(
            first.status,
            200,
            "{}",
            String::from_utf8_lossy(&first.body)
        );
        let parsed = caqr_wire::parse(std::str::from_utf8(&first.body).unwrap()).unwrap();
        assert_eq!(parsed.get("ok").and_then(Value::as_bool), Some(true));
        assert_eq!(
            parsed.get("cache_hit").and_then(Value::as_bool),
            Some(false),
            "cold template"
        );
        assert_eq!(parsed.get("shots").and_then(Value::as_u64), Some(128));

        // Same template, new values: the routed template is warm, only the
        // bind and the simulation run.
        let rebound = format!(
            r#"{{"template":{},"values":[0.1,2.8],"shots":128,"seed":5}}"#,
            template_wire()
        );
        let second = handle(&state, &post("/v1/bind-run", &rebound));
        assert_eq!(second.status, 200);
        let parsed = caqr_wire::parse(std::str::from_utf8(&second.body).unwrap()).unwrap();
        assert_eq!(
            parsed.get("cache_hit").and_then(Value::as_bool),
            Some(true),
            "warm template"
        );
        let engine = state.engine_metrics.lock().unwrap();
        assert_eq!(engine.binds_total, 2);
        assert_eq!(engine.template_cache_hits, 1);
        assert_eq!(engine.template_cache_misses, 1);
        assert_eq!(engine.jobs_total, 1, "the template compiled exactly once");
    }

    /// Distinct bindings of one template must never cross-serve from the
    /// body-addressed response cache: the bound values are part of the
    /// request bytes, so each binding owns its own entry, and a replay
    /// returns that binding's own histogram.
    #[test]
    fn distinct_bindings_never_cross_serve_from_the_response_cache() {
        let state = state();
        let body_a = format!(
            r#"{{"template":{},"values":[0.7,0.6],"shots":256,"seed":9}}"#,
            template_wire()
        );
        let body_b = format!(
            r#"{{"template":{},"values":[0.1,2.8],"shots":256,"seed":9}}"#,
            template_wire()
        );
        let a = handle(&state, &post("/v1/bind-run", &body_a));
        let b = handle(&state, &post("/v1/bind-run", &body_b));
        assert_eq!(a.status, 200, "{}", String::from_utf8_lossy(&a.body));
        assert_eq!(b.status, 200);
        assert_eq!(
            state.metrics.response_cache_hits.load(Ordering::Relaxed),
            0,
            "distinct values are distinct cache entries"
        );
        assert_ne!(
            counts_of(&a),
            counts_of(&b),
            "the two bindings measure different circuits"
        );

        // Replaying binding A is a response-cache hit that serves A's own
        // histogram (with the warm-template flag spliced in) — engine
        // untouched.
        let binds_before = state.engine_metrics.lock().unwrap().binds_total;
        let replay = handle(&state, &post("/v1/bind-run", &body_a));
        assert_eq!(state.metrics.response_cache_hits.load(Ordering::Relaxed), 1);
        assert_eq!(counts_of(&replay), counts_of(&a));
        let parsed = caqr_wire::parse(std::str::from_utf8(&replay.body).unwrap()).unwrap();
        assert_eq!(parsed.get("cache_hit").and_then(Value::as_bool), Some(true));
        assert_eq!(
            state.engine_metrics.lock().unwrap().binds_total,
            binds_before,
            "a response-cache hit never reaches the engine"
        );
    }

    #[test]
    fn bind_run_guards() {
        let state = state();
        // Wrong arity is a 422 bind error; the template stays cached.
        let short = format!(
            r#"{{"template":{},"values":[0.7],"shots":16}}"#,
            template_wire()
        );
        let response = handle(&state, &post("/v1/bind-run", &short));
        assert_eq!(
            response.status,
            422,
            "{}",
            String::from_utf8_lossy(&response.body)
        );
        assert!(String::from_utf8_lossy(&response.body).contains("bind error"));
        // Missing pieces are 400s.
        assert_eq!(handle(&state, &post("/v1/bind-run", "{}")).status, 400);
        let no_values = format!(r#"{{"template":{}}}"#, template_wire());
        assert_eq!(
            handle(&state, &post("/v1/bind-run", &no_values)).status,
            400
        );
        // A concrete circuit is not a template (no "slots").
        let concrete = format!(r#"{{"template":{},"values":[]}}"#, bell_wire());
        assert_eq!(handle(&state, &post("/v1/bind-run", &concrete)).status, 422);
    }

    #[test]
    fn metrics_embeds_the_engine_json_shape() {
        let state = state();
        let body = format!(r#"{{"circuit":{}}}"#, bell_wire());
        handle(&state, &post("/v1/compile", &body));
        let response = metrics(&state);
        let parsed = caqr_wire::parse(std::str::from_utf8(&response.body).unwrap()).unwrap();
        let engine = parsed.get("engine").unwrap();
        assert_eq!(engine.get("type").and_then(Value::as_str), Some("metrics"));
        assert_eq!(engine.get("jobs_total").and_then(Value::as_u64), Some(1));
        assert!(engine.get("queue_wait_us").is_some());
        assert!(engine.get("compile_us").is_some());
        assert!(parsed.get("server").is_some());
    }

    #[test]
    fn compile_stream_reports_digest_and_reuse_metrics() {
        let state = state();
        // Three sequential single-qubit lifetimes: maximum reuse pressure.
        let mut qasm = String::from("OPENQASM 2.0;\nqreg q[3];\ncreg c[3];\n");
        for q in 0..3 {
            qasm.push_str(&format!("h q[{q}];\nmeasure q[{q}] -> c[{q}];\n"));
        }
        let response = handle(&state, &post("/v1/compile-stream", &qasm));
        assert_eq!(
            response.status,
            200,
            "{}",
            String::from_utf8_lossy(&response.body)
        );
        let parsed = caqr_wire::parse(std::str::from_utf8(&response.body).unwrap()).unwrap();
        assert_eq!(parsed.get("ok").and_then(Value::as_bool), Some(true));
        assert_eq!(
            parsed.get("declared_qubits").and_then(Value::as_u64),
            Some(3)
        );
        assert_eq!(
            parsed.get("wires").and_then(Value::as_u64),
            Some(1),
            "sequential lifetimes share one wire"
        );
        assert_eq!(
            parsed.get("resets_inserted").and_then(Value::as_u64),
            Some(2)
        );
        assert_eq!(parsed.get("cones_closed").and_then(Value::as_u64), Some(3));
        let digest = parsed.get("digest").and_then(Value::as_str).unwrap();
        assert_eq!(digest.len(), 32, "128-bit digest in hex");

        // Wrong method joins the standard 405 set.
        let get = Request {
            method: "GET".into(),
            path: "/v1/compile-stream".into(),
            headers: Vec::new(),
            body: Vec::new(),
        };
        assert_eq!(handle(&state, &get).status, 405);
    }

    #[test]
    fn qasm_parse_errors_carry_the_source_line() {
        let state = state();
        // Streaming endpoint: raw QASM body, error on line 3.
        let response = handle(
            &state,
            &post(
                "/v1/compile-stream",
                "OPENQASM 2.0;\nqreg q[1];\nbadgate q[0];\n",
            ),
        );
        assert_eq!(response.status, 422);
        let parsed = caqr_wire::parse(std::str::from_utf8(&response.body).unwrap()).unwrap();
        assert_eq!(
            parsed.get("error").and_then(Value::as_str),
            Some("bad QASM: qasm parse error at line 3: unknown gate 'badgate'")
        );
        assert_eq!(parsed.get("line").and_then(Value::as_u64), Some(3));

        // JSON endpoints surface the same shape through the 'qasm' field.
        let body = r#"{"qasm":"OPENQASM 2.0;\nqreg q[2];\nbadgate q[0];"}"#;
        let response = handle(&state, &post("/v1/compile", body));
        assert_eq!(response.status, 422);
        let parsed = caqr_wire::parse(std::str::from_utf8(&response.body).unwrap()).unwrap();
        assert_eq!(parsed.get("line").and_then(Value::as_u64), Some(3));
        assert!(parsed
            .get("error")
            .and_then(Value::as_str)
            .unwrap()
            .contains("line 3"));
    }

    #[test]
    fn compile_stream_rejects_empty_and_malformed_bodies() {
        let state = state();
        assert_eq!(handle(&state, &post("/v1/compile-stream", "")).status, 400);
        let response = handle(&state, &post("/v1/compile-stream", "qreg q[1]"));
        assert_eq!(response.status, 422, "missing semicolon");
    }
}
