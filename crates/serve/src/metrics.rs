//! Lock-free server counters, exported on `GET /metrics`.

use caqr_sim::{KernelDispatch, ShotReport};
use caqr_wire::Value;
use std::sync::atomic::{AtomicU64, Ordering};

/// Cumulative serving counters. All atomics with relaxed ordering —
/// `/metrics` is an observability snapshot, not a synchronization point.
#[derive(Debug, Default)]
pub struct ServerMetrics {
    /// Requests fully read and dispatched to a handler.
    pub requests_total: AtomicU64,
    /// Responses with a 2xx status.
    pub responses_2xx: AtomicU64,
    /// Responses with a 4xx status (excluding admission 429s, which never
    /// reach a worker).
    pub responses_4xx: AtomicU64,
    /// Responses with a 5xx status.
    pub responses_5xx: AtomicU64,
    /// Connections refused at the door because the accept queue was full.
    pub rejected_429: AtomicU64,
    /// Requests that hit their deadline and answered 504.
    pub deadline_504: AtomicU64,
    /// Requests whose handler panicked (answered 500, worker survived).
    pub handler_panics: AtomicU64,
    /// Requests answered 503 because they arrived during shutdown drain.
    pub draining_503: AtomicU64,
    /// Worker threads replaced by the supervisor after dying.
    pub workers_replaced: AtomicU64,
    /// Connections accepted into the queue.
    pub connections_accepted: AtomicU64,
    /// Requests answered straight from the body-addressed response cache.
    pub response_cache_hits: AtomicU64,
    /// Compute requests that missed the response cache and ran the engine.
    pub response_cache_misses: AtomicU64,
    /// Simulator-engine dispatch counters for `/v1/simulate` and
    /// `/v1/bind-run`, exported under `"sim"`.
    pub sim: SimMetrics,
}

/// Cumulative simulator-engine counters, fed from each run's
/// [`ShotReport`]. These surface which engine actually carried the shots
/// — wide/scalar dense sweeps, the stabilizer tableau, or the
/// support-tracked sparse engine — plus the tableau's absorbed-gate and
/// handoff-cost totals.
#[derive(Debug, Default)]
pub struct SimMetrics {
    /// Simulation runs whose dense sweeps used the wide kernel bodies.
    pub dispatch_wide: AtomicU64,
    /// Runs on the scalar fallback bodies.
    pub dispatch_scalar: AtomicU64,
    /// Runs carried entirely by the stabilizer tableau.
    pub dispatch_tableau: AtomicU64,
    /// Runs carried by the support-tracked sparse engine.
    pub dispatch_sparse: AtomicU64,
    /// Unitary gates absorbed by the stabilizer tableau, summed over runs.
    pub stabilizer_prefix_gates: AtomicU64,
    /// Microseconds spent converting tableaux to dense snapshots, summed
    /// over runs.
    pub tableau_to_dense_us: AtomicU64,
    /// Dispatch of the most recent run, as 1 + the
    /// wide/scalar/tableau/sparse index (0 = no run yet).
    last_dispatch: AtomicU64,
}

impl SimMetrics {
    /// Folds one run's instrumentation into the counters.
    pub fn record(&self, report: &ShotReport) {
        let (counter, idx) = match report.kernel_dispatch {
            KernelDispatch::Wide => (&self.dispatch_wide, 1),
            KernelDispatch::Scalar => (&self.dispatch_scalar, 2),
            KernelDispatch::Tableau => (&self.dispatch_tableau, 3),
            KernelDispatch::Sparse => (&self.dispatch_sparse, 4),
        };
        counter.fetch_add(1, Ordering::Relaxed);
        self.last_dispatch.store(idx, Ordering::Relaxed);
        self.stabilizer_prefix_gates
            .fetch_add(report.stabilizer_prefix_gates as u64, Ordering::Relaxed);
        self.tableau_to_dense_us
            .fetch_add(report.tableau_to_dense_us, Ordering::Relaxed);
    }

    /// The `"sim"` object for `GET /metrics`.
    pub fn to_value(&self) -> Value {
        let n = |a: &AtomicU64| Value::num(a.load(Ordering::Relaxed));
        let last = match self.last_dispatch.load(Ordering::Relaxed) {
            1 => KernelDispatch::Wide.as_str(),
            2 => KernelDispatch::Scalar.as_str(),
            3 => KernelDispatch::Tableau.as_str(),
            4 => KernelDispatch::Sparse.as_str(),
            _ => "none",
        };
        Value::obj(vec![
            ("kernel_dispatch", Value::str(last)),
            ("dispatch_wide", n(&self.dispatch_wide)),
            ("dispatch_scalar", n(&self.dispatch_scalar)),
            ("dispatch_tableau", n(&self.dispatch_tableau)),
            ("dispatch_sparse", n(&self.dispatch_sparse)),
            ("stabilizer_prefix_gates", n(&self.stabilizer_prefix_gates)),
            ("tableau_to_dense_us", n(&self.tableau_to_dense_us)),
        ])
    }
}

impl ServerMetrics {
    /// Bumps the status-class counter for one response.
    pub fn record_status(&self, status: u16) {
        let counter = match status {
            200..=299 => &self.responses_2xx,
            400..=499 => &self.responses_4xx,
            _ => &self.responses_5xx,
        };
        counter.fetch_add(1, Ordering::Relaxed);
        if status == 504 {
            self.deadline_504.fetch_add(1, Ordering::Relaxed);
        }
        if status == 503 {
            self.draining_503.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// The `"server"` object for `GET /metrics`.
    pub fn to_value(&self) -> Value {
        let n = |a: &AtomicU64| Value::num(a.load(Ordering::Relaxed));
        Value::obj(vec![
            ("requests_total", n(&self.requests_total)),
            ("responses_2xx", n(&self.responses_2xx)),
            ("responses_4xx", n(&self.responses_4xx)),
            ("responses_5xx", n(&self.responses_5xx)),
            ("rejected_429", n(&self.rejected_429)),
            ("deadline_504", n(&self.deadline_504)),
            ("handler_panics", n(&self.handler_panics)),
            ("draining_503", n(&self.draining_503)),
            ("workers_replaced", n(&self.workers_replaced)),
            ("connections_accepted", n(&self.connections_accepted)),
            ("response_cache_hits", n(&self.response_cache_hits)),
            ("response_cache_misses", n(&self.response_cache_misses)),
            ("sim", self.sim.to_value()),
        ])
    }
}

/// Counters specific to the event-driven backend, exported under
/// `"reactor"` on `GET /metrics` when that backend is running. Created by
/// the reactor with its shard count and installed into
/// [`crate::handlers::AppState`] via a `OnceLock`.
#[derive(Debug)]
pub struct ReactorMetrics {
    /// Currently open connections across all shards (gauge).
    pub open_connections: AtomicU64,
    /// Times a shard's `poll(2)` returned (readiness, timer, or wakeup).
    pub poll_cycles: AtomicU64,
    /// Cross-thread wakeups delivered to shard loops (worker completions,
    /// shutdown).
    pub wakeups: AtomicU64,
    /// Requests currently dispatched and waiting in the worker queue
    /// (gauge) — the reactor's accept-queue-depth analogue.
    pub dispatch_queue_depth: AtomicU64,
    /// Connections evicted for idling past the keep-alive window.
    pub idle_evictions: AtomicU64,
    /// Connections evicted for stalling mid-request (slow-loris posture).
    pub stall_evictions: AtomicU64,
    /// Requests fully parsed, per shard.
    pub shard_requests: Vec<AtomicU64>,
}

impl ReactorMetrics {
    /// Zeroed counters for `shards` reactor threads.
    pub fn new(shards: usize) -> ReactorMetrics {
        ReactorMetrics {
            open_connections: AtomicU64::new(0),
            poll_cycles: AtomicU64::new(0),
            wakeups: AtomicU64::new(0),
            dispatch_queue_depth: AtomicU64::new(0),
            idle_evictions: AtomicU64::new(0),
            stall_evictions: AtomicU64::new(0),
            shard_requests: (0..shards.max(1)).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// The `"reactor"` object for `GET /metrics`.
    pub fn to_value(&self) -> Value {
        let n = |a: &AtomicU64| Value::num(a.load(Ordering::Relaxed));
        Value::obj(vec![
            ("shards", Value::num(self.shard_requests.len() as u64)),
            ("open_connections", n(&self.open_connections)),
            ("poll_cycles", n(&self.poll_cycles)),
            ("wakeups", n(&self.wakeups)),
            ("dispatch_queue_depth", n(&self.dispatch_queue_depth)),
            ("idle_evictions", n(&self.idle_evictions)),
            ("stall_evictions", n(&self.stall_evictions)),
            (
                "shard_requests",
                Value::Arr(self.shard_requests.iter().map(n).collect()),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_classes_and_special_counters() {
        let m = ServerMetrics::default();
        m.record_status(200);
        m.record_status(201);
        m.record_status(422);
        m.record_status(503);
        m.record_status(504);
        m.record_status(500);
        assert_eq!(m.responses_2xx.load(Ordering::Relaxed), 2);
        assert_eq!(m.responses_4xx.load(Ordering::Relaxed), 1);
        assert_eq!(m.responses_5xx.load(Ordering::Relaxed), 3);
        assert_eq!(m.deadline_504.load(Ordering::Relaxed), 1);
        assert_eq!(m.draining_503.load(Ordering::Relaxed), 1);
        let v = m.to_value();
        assert_eq!(v.get("responses_5xx").and_then(Value::as_u64), Some(3));
        assert_eq!(v.get("deadline_504").and_then(Value::as_u64), Some(1));
    }

    #[test]
    fn sim_metrics_fold_shot_reports() {
        let m = SimMetrics::default();
        assert_eq!(
            m.to_value().get("kernel_dispatch").and_then(Value::as_str),
            Some("none")
        );
        let mut report = ShotReport {
            kernel_dispatch: KernelDispatch::Tableau,
            stabilizer_prefix_gates: 12,
            tableau_to_dense_us: 40,
            ..ShotReport::default()
        };
        m.record(&report);
        report.kernel_dispatch = KernelDispatch::Sparse;
        report.stabilizer_prefix_gates = 0;
        report.tableau_to_dense_us = 0;
        m.record(&report);
        let v = m.to_value();
        assert_eq!(
            v.get("kernel_dispatch").and_then(Value::as_str),
            Some("sparse")
        );
        assert_eq!(v.get("dispatch_tableau").and_then(Value::as_u64), Some(1));
        assert_eq!(v.get("dispatch_sparse").and_then(Value::as_u64), Some(1));
        assert_eq!(v.get("dispatch_wide").and_then(Value::as_u64), Some(0));
        assert_eq!(
            v.get("stabilizer_prefix_gates").and_then(Value::as_u64),
            Some(12)
        );
        assert_eq!(
            v.get("tableau_to_dense_us").and_then(Value::as_u64),
            Some(40)
        );
    }
}
