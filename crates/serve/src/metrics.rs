//! Lock-free server counters, exported on `GET /metrics`.

use caqr_wire::Value;
use std::sync::atomic::{AtomicU64, Ordering};

/// Cumulative serving counters. All atomics with relaxed ordering —
/// `/metrics` is an observability snapshot, not a synchronization point.
#[derive(Debug, Default)]
pub struct ServerMetrics {
    /// Requests fully read and dispatched to a handler.
    pub requests_total: AtomicU64,
    /// Responses with a 2xx status.
    pub responses_2xx: AtomicU64,
    /// Responses with a 4xx status (excluding admission 429s, which never
    /// reach a worker).
    pub responses_4xx: AtomicU64,
    /// Responses with a 5xx status.
    pub responses_5xx: AtomicU64,
    /// Connections refused at the door because the accept queue was full.
    pub rejected_429: AtomicU64,
    /// Requests that hit their deadline and answered 504.
    pub deadline_504: AtomicU64,
    /// Requests whose handler panicked (answered 500, worker survived).
    pub handler_panics: AtomicU64,
    /// Requests answered 503 because they arrived during shutdown drain.
    pub draining_503: AtomicU64,
    /// Worker threads replaced by the supervisor after dying.
    pub workers_replaced: AtomicU64,
    /// Connections accepted into the queue.
    pub connections_accepted: AtomicU64,
}

impl ServerMetrics {
    /// Bumps the status-class counter for one response.
    pub fn record_status(&self, status: u16) {
        let counter = match status {
            200..=299 => &self.responses_2xx,
            400..=499 => &self.responses_4xx,
            _ => &self.responses_5xx,
        };
        counter.fetch_add(1, Ordering::Relaxed);
        if status == 504 {
            self.deadline_504.fetch_add(1, Ordering::Relaxed);
        }
        if status == 503 {
            self.draining_503.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// The `"server"` object for `GET /metrics`.
    pub fn to_value(&self) -> Value {
        let n = |a: &AtomicU64| Value::num(a.load(Ordering::Relaxed));
        Value::obj(vec![
            ("requests_total", n(&self.requests_total)),
            ("responses_2xx", n(&self.responses_2xx)),
            ("responses_4xx", n(&self.responses_4xx)),
            ("responses_5xx", n(&self.responses_5xx)),
            ("rejected_429", n(&self.rejected_429)),
            ("deadline_504", n(&self.deadline_504)),
            ("handler_panics", n(&self.handler_panics)),
            ("draining_503", n(&self.draining_503)),
            ("workers_replaced", n(&self.workers_replaced)),
            ("connections_accepted", n(&self.connections_accepted)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_classes_and_special_counters() {
        let m = ServerMetrics::default();
        m.record_status(200);
        m.record_status(201);
        m.record_status(422);
        m.record_status(503);
        m.record_status(504);
        m.record_status(500);
        assert_eq!(m.responses_2xx.load(Ordering::Relaxed), 2);
        assert_eq!(m.responses_4xx.load(Ordering::Relaxed), 1);
        assert_eq!(m.responses_5xx.load(Ordering::Relaxed), 3);
        assert_eq!(m.deadline_504.load(Ordering::Relaxed), 1);
        assert_eq!(m.draining_503.load(Ordering::Relaxed), 1);
        let v = m.to_value();
        assert_eq!(v.get("responses_5xx").and_then(Value::as_u64), Some(3));
        assert_eq!(v.get("deadline_504").and_then(Value::as_u64), Some(1));
    }
}
