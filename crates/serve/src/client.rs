//! A minimal blocking HTTP/1.1 client for the load generator and the
//! integration suite. Speaks exactly the dialect the server emits:
//! status line + headers + `Content-Length` body, keep-alive by default.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// One response as seen by the client.
#[derive(Debug)]
pub struct ClientResponse {
    /// HTTP status code.
    pub status: u16,
    /// Headers, names lower-cased, in arrival order.
    pub headers: Vec<(String, String)>,
    /// The body.
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// Case-insensitive header lookup.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 (lossy — for assertions and display).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// A keep-alive connection to the server.
#[derive(Debug)]
pub struct Client {
    addr: SocketAddr,
    timeout: Duration,
    conn: Option<BufReader<TcpStream>>,
}

impl Client {
    /// Creates a client for `addr`; connections are opened lazily.
    pub fn connect(addr: SocketAddr) -> Client {
        Client {
            addr,
            timeout: Duration::from_secs(30),
            conn: None,
        }
    }

    /// Overrides the per-operation socket timeout (default 30 s).
    pub fn with_timeout(mut self, timeout: Duration) -> Client {
        self.timeout = timeout;
        self
    }

    fn stream(&mut self) -> io::Result<&mut BufReader<TcpStream>> {
        if self.conn.is_none() {
            let stream = TcpStream::connect_timeout(&self.addr, self.timeout)?;
            stream.set_read_timeout(Some(self.timeout))?;
            stream.set_write_timeout(Some(self.timeout))?;
            stream.set_nodelay(true)?;
            self.conn = Some(BufReader::new(stream));
        }
        Ok(self.conn.as_mut().expect("connection just created"))
    }

    /// `GET path`.
    ///
    /// # Errors
    ///
    /// Propagates socket and protocol failures; the connection is dropped
    /// so the next call reconnects.
    pub fn get(&mut self, path: &str) -> io::Result<ClientResponse> {
        self.request("GET", path, None)
    }

    /// `POST path` with a JSON body.
    ///
    /// # Errors
    ///
    /// Propagates socket and protocol failures; the connection is dropped
    /// so the next call reconnects.
    pub fn post(&mut self, path: &str, body: &[u8]) -> io::Result<ClientResponse> {
        self.request("POST", path, Some(body))
    }

    /// `POST path` with the body sent as `Transfer-Encoding: chunked`,
    /// one chunk per `chunk_size` slice — drives the server's
    /// incremental body-assembly path end to end.
    ///
    /// # Errors
    ///
    /// Propagates socket and protocol failures; the connection is dropped
    /// so the next call reconnects.
    pub fn post_chunked(
        &mut self,
        path: &str,
        body: &[u8],
        chunk_size: usize,
    ) -> io::Result<ClientResponse> {
        let chunks: Vec<&[u8]> = body.chunks(chunk_size.max(1)).collect();
        let framed = caqr_wire::chunked::encode(&chunks);
        let head = format!(
            "POST {path} HTTP/1.1\r\nHost: caqr\r\nContent-Type: application/octet-stream\r\nTransfer-Encoding: chunked\r\n\r\n"
        );
        self.exchange(&head, &framed)
    }

    fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&[u8]>,
    ) -> io::Result<ClientResponse> {
        let body = body.unwrap_or(&[]);
        let head = format!(
            "{method} {path} HTTP/1.1\r\nHost: caqr\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n",
            body.len()
        );
        self.exchange(&head, body)
    }

    fn exchange(&mut self, head: &str, payload: &[u8]) -> io::Result<ClientResponse> {
        // One transparent retry: a keep-alive connection the server closed
        // (idle expiry, drain) surfaces as an error on first use.
        let had_conn = self.conn.is_some();
        match self.exchange_once(head, payload) {
            Ok(response) => Ok(response),
            Err(e) if had_conn => {
                let _ = e;
                self.conn = None;
                self.exchange_once(head, payload)
            }
            Err(e) => {
                self.conn = None;
                Err(e)
            }
        }
    }

    fn exchange_once(&mut self, head: &str, payload: &[u8]) -> io::Result<ClientResponse> {
        let reader = self.stream()?;
        let result = (|| {
            let stream = reader.get_mut();
            stream.write_all(head.as_bytes())?;
            stream.write_all(payload)?;
            stream.flush()?;
            read_response(reader)
        })();
        match result {
            Ok(response) => {
                if response
                    .header("connection")
                    .is_some_and(|v| v.eq_ignore_ascii_case("close"))
                {
                    self.conn = None;
                }
                Ok(response)
            }
            Err(e) => {
                self.conn = None;
                Err(e)
            }
        }
    }
}

fn read_response(reader: &mut BufReader<TcpStream>) -> io::Result<ClientResponse> {
    let status_line = read_line(reader)?;
    let mut parts = status_line.split_whitespace();
    let version = parts.next().unwrap_or("");
    let status: u16 = parts
        .next()
        .and_then(|s| s.parse().ok())
        .filter(|_| version.starts_with("HTTP/1."))
        .ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("malformed status line '{status_line}'"),
            )
        })?;

    let mut headers = Vec::new();
    loop {
        let line = read_line(reader)?;
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
        }
        if headers.len() > 256 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "too many headers",
            ));
        }
    }

    let mut response = ClientResponse {
        status,
        headers,
        body: Vec::new(),
    };
    if let Some(len) = response.header("content-length") {
        let len: usize = len
            .parse()
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "bad content-length"))?;
        let mut body = vec![0u8; len];
        reader.read_exact(&mut body)?;
        response.body = body;
    }
    Ok(response)
}

fn read_line(reader: &mut BufReader<TcpStream>) -> io::Result<String> {
    let mut buf = Vec::new();
    loop {
        let available = reader.fill_buf()?;
        if available.is_empty() {
            return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "eof in line"));
        }
        if let Some(pos) = available.iter().position(|&b| b == b'\n') {
            buf.extend_from_slice(&available[..pos]);
            reader.consume(pos + 1);
            if buf.last() == Some(&b'\r') {
                buf.pop();
            }
            return String::from_utf8(buf)
                .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-utf8 line"));
        }
        let take = available.len();
        buf.extend_from_slice(available);
        reader.consume(take);
        if buf.len() > 64 * 1024 {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "line too long"));
        }
    }
}
