//! The event-driven backend ("the reactor"): N shard threads, each
//! running a readiness loop over one listener and the connections it
//! accepted, with compute dispatched to a shared worker pool.
//!
//! ```text
//!   TCP ──▶ shard 0 ─┐                       ┌─▶ worker 0 ─┐
//!   TCP ──▶ shard 1 ─┼─▶ job queue (Condvar) ┼─▶ worker 1 ─┼─▶ handlers
//!   TCP ──▶ shard N ─┘                       └─▶ worker M ─┘
//!            ▲                                      │
//!            └───── completion + self-pipe wake ────┘
//! ```
//!
//! Each shard owns a [`caqr_reactor::Poller`], a [`caqr_reactor::TimerWheel`]
//! (keep-alive idle + request-stall eviction), and a slab of
//! [`Conn`] state machines. Cheap requests (`/healthz`, `/metrics`,
//! response-cache hits) are answered inline on the shard thread; compute
//! goes to the worker queue and the connection's readiness interest is
//! muted until the completion comes back (natural backpressure). With
//! `shards > 1` every shard binds its own `SO_REUSEPORT` listener and the
//! kernel spreads incoming connections across them.
//!
//! Slot reuse is guarded twice: completions carry the connection
//! generation they were dispatched under (stale ones are dropped), and
//! slots freed during a loop pass only become reusable at the end of that
//! pass, so nothing issued earlier in the pass can alias a new occupant.

use crate::conn::{Conn, Filled, Phase, WriteOutcome};
use crate::handlers::{self, AppState, Endpoint, Routed};
use crate::http::{BadRequest, Request, Response};
use crate::metrics::ReactorMetrics;
use crate::server::{effective_workers, ServerConfig};
use caqr_reactor::{bind_reuseport, Event, Interest, Poller, TimerWheel, Token, Waker};
use std::collections::VecDeque;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// One compute request handed from a shard to the worker pool.
struct Job {
    shard: usize,
    slot: usize,
    gen: u64,
    endpoint: Endpoint,
    body: Vec<u8>,
}

/// A finished job on its way back to the shard that dispatched it.
struct Completion {
    slot: usize,
    gen: u64,
    response: Response,
}

/// State shared by every shard and worker.
pub(crate) struct Control {
    state: Arc<AppState>,
    config: ServerConfig,
    rmetrics: Arc<ReactorMetrics>,
    draining: AtomicBool,
    drain_started: Mutex<Option<Instant>>,
    queue: Mutex<VecDeque<Job>>,
    available: Condvar,
    /// Per-shard completion mailboxes (indexed by shard id).
    completions: Vec<Mutex<Vec<Completion>>>,
    /// Per-shard pollers' wakers (indexed by shard id).
    wakers: Vec<Waker>,
    /// Live worker handles; the drop guard pushes replacements here.
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl Control {
    fn draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    fn lock_queue(&self) -> MutexGuard<'_, VecDeque<Job>> {
        self.queue
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Starts the drain: flag it, wake every worker and shard. Idempotent
    /// (the grace window is anchored at the first call).
    pub(crate) fn shutdown(&self) {
        {
            let mut started = self
                .drain_started
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            if started.is_none() {
                *started = Some(Instant::now());
            }
        }
        self.draining.store(true, Ordering::SeqCst);
        self.available.notify_all();
        for waker in &self.wakers {
            waker.wake();
        }
    }

    fn grace_deadline(&self) -> Instant {
        let started = self
            .drain_started
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        started.unwrap_or_else(Instant::now) + self.config.drain_grace
    }
}

/// A running reactor server: shard threads plus the worker pool.
pub(crate) struct ReactorServer {
    local_addr: SocketAddr,
    control: Arc<Control>,
    shards: Vec<JoinHandle<()>>,
}

impl ReactorServer {
    /// Binds the listener(s) and starts shards and workers.
    pub(crate) fn bind(config: ServerConfig, state: Arc<AppState>) -> io::Result<ReactorServer> {
        let shard_count = config.shards.max(1);
        let mut listeners = Vec::with_capacity(shard_count);
        if shard_count == 1 {
            listeners.push(TcpListener::bind(&config.addr)?);
        } else {
            let base = config.addr.to_socket_addrs()?.next().ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidInput,
                    "bind address resolved to nothing",
                )
            })?;
            let first = bind_reuseport(base)?;
            let resolved = first.local_addr()?;
            listeners.push(first);
            for _ in 1..shard_count {
                listeners.push(bind_reuseport(resolved)?);
            }
        }
        for listener in &listeners {
            listener.set_nonblocking(true)?;
        }
        let local_addr = listeners[0].local_addr()?;

        // Pollers before anything that could observe the server: their
        // wakers must exist before the first worker or shard runs (and a
        // failure here is what makes `Backend::Auto` fall back).
        let mut pollers = Vec::with_capacity(shard_count);
        for _ in 0..shard_count {
            pollers.push(Poller::new()?);
        }
        let wakers: Vec<Waker> = pollers.iter().map(Poller::waker).collect();
        let rmetrics = Arc::new(ReactorMetrics::new(shard_count));
        let _ = state.reactor.set(Arc::clone(&rmetrics));

        let control = Arc::new(Control {
            state,
            config,
            rmetrics,
            draining: AtomicBool::new(false),
            drain_started: Mutex::new(None),
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            completions: (0..shard_count).map(|_| Mutex::new(Vec::new())).collect(),
            wakers,
            workers: Mutex::new(Vec::new()),
        });

        for index in 0..effective_workers(control.config.workers) {
            spawn_worker(Arc::clone(&control), index)?;
        }
        let mut shards = Vec::with_capacity(shard_count);
        for (id, (poller, listener)) in pollers.into_iter().zip(listeners).enumerate() {
            let control = Arc::clone(&control);
            shards.push(
                std::thread::Builder::new()
                    .name(format!("caqr-shard-{id}"))
                    .spawn(move || Shard::new(id, poller, listener, control).run())?,
            );
        }

        Ok(ReactorServer {
            local_addr,
            control,
            shards,
        })
    }

    pub(crate) fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    pub(crate) fn control(&self) -> Arc<Control> {
        Arc::clone(&self.control)
    }

    /// Joins every shard, then every worker (including respawns).
    pub(crate) fn join(mut self) {
        for handle in self.shards.drain(..) {
            let _ = handle.join();
        }
        loop {
            let handle = {
                let mut workers = self
                    .control
                    .workers
                    .lock()
                    .unwrap_or_else(|poisoned| poisoned.into_inner());
                workers.pop()
            };
            match handle {
                Some(handle) => {
                    let _ = handle.join();
                }
                None => return,
            }
        }
    }
}

// ---- the worker pool ----------------------------------------------------

fn spawn_worker(control: Arc<Control>, index: usize) -> io::Result<()> {
    let handle = std::thread::Builder::new()
        .name(format!("caqr-rworker-{index}"))
        .spawn({
            let control = Arc::clone(&control);
            move || {
                let _guard = RespawnGuard {
                    control: Arc::clone(&control),
                    index,
                };
                worker_loop(&control);
            }
        })?;
    control
        .workers
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
        .push(handle);
    Ok(())
}

/// Respawns the worker if its thread dies panicking (a panic that escaped
/// the per-request `catch_unwind`). Runs on the dying thread itself.
struct RespawnGuard {
    control: Arc<Control>,
    index: usize,
}

impl Drop for RespawnGuard {
    fn drop(&mut self) {
        if std::thread::panicking() && !self.control.draining() {
            self.control
                .state
                .metrics
                .workers_replaced
                .fetch_add(1, Ordering::Relaxed);
            let _ = spawn_worker(Arc::clone(&self.control), self.index);
        }
    }
}

/// Pops jobs until draining *and* the queue is empty (queued work is
/// always finished), pushing each completion back to its shard's mailbox
/// and waking that shard's poller.
fn worker_loop(control: &Control) {
    loop {
        let job = {
            let mut queue = control.lock_queue();
            loop {
                if let Some(job) = queue.pop_front() {
                    control
                        .rmetrics
                        .dispatch_queue_depth
                        .fetch_sub(1, Ordering::Relaxed);
                    break Some(job);
                }
                if control.draining() {
                    break None;
                }
                let (guard, _) = control
                    .available
                    .wait_timeout(queue, Duration::from_millis(500))
                    .unwrap_or_else(|poisoned| poisoned.into_inner());
                queue = guard;
            }
        };
        let Some(job) = job else { return };

        let response = match catch_unwind(AssertUnwindSafe(|| {
            handlers::execute(&control.state, job.endpoint, &job.body)
        })) {
            Ok(response) => response,
            Err(_) => {
                control
                    .state
                    .metrics
                    .handler_panics
                    .fetch_add(1, Ordering::Relaxed);
                Response::error(500, "internal error: request handler panicked")
            }
        };
        {
            let mut mailbox = control.completions[job.shard]
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            mailbox.push(Completion {
                slot: job.slot,
                gen: job.gen,
                response,
            });
        }
        control.rmetrics.wakeups.fetch_add(1, Ordering::Relaxed);
        control.wakers[job.shard].wake();
    }
}

// ---- the shard loop -----------------------------------------------------

const LISTENER: Token = Token(0);

/// Timer payload layout: bit 63 = kind, bits 32..=62 = low generation
/// bits, bits 0..=31 = slot. The generation bits are belt-and-braces on
/// top of the cancel discipline.
const KIND_IDLE: u64 = 0;
const KIND_STALL: u64 = 1;
const GEN_MASK: u64 = 0x7fff_ffff;

fn timer_data(kind: u64, slot: usize, gen: u64) -> u64 {
    (kind << 63) | ((gen & GEN_MASK) << 32) | (slot as u64 & 0xffff_ffff)
}

fn timer_parts(data: u64) -> (u64, usize, u64) {
    (
        data >> 63,
        (data & 0xffff_ffff) as usize,
        (data >> 32) & GEN_MASK,
    )
}

struct Shard {
    id: usize,
    control: Arc<Control>,
    poller: Poller,
    timers: TimerWheel,
    /// Connection slab; slot `s` is registered under `Token(s + 1)`.
    conns: Vec<Option<Conn>>,
    /// Slots available for fresh connections.
    free: Vec<usize>,
    /// Slots freed during the current loop pass; merged into `free` at the
    /// end of the pass (delayed reuse, see the module docs).
    freed: Vec<usize>,
    next_gen: u64,
    listener: Option<TcpListener>,
    drain_seen: bool,
}

impl Shard {
    fn new(id: usize, poller: Poller, listener: TcpListener, control: Arc<Control>) -> Shard {
        Shard {
            id,
            control,
            poller,
            timers: TimerWheel::new(512, Duration::from_millis(20)),
            conns: Vec::new(),
            free: Vec::new(),
            freed: Vec::new(),
            next_gen: 0,
            listener: Some(listener),
            drain_seen: false,
        }
    }

    fn run(mut self) {
        let registered = match self.listener.as_ref() {
            Some(listener) => self
                .poller
                .register(listener, LISTENER, Interest::READABLE)
                .is_ok(),
            None => false,
        };
        if !registered {
            return;
        }

        let mut events: Vec<Event> = Vec::new();
        let mut fired: Vec<u64> = Vec::new();
        loop {
            let timeout = self.poll_timeout();
            if self.poller.poll(&mut events, timeout).is_err() {
                break;
            }
            self.control
                .rmetrics
                .poll_cycles
                .fetch_add(1, Ordering::Relaxed);

            self.take_completions();
            for event in &events {
                self.on_event(*event);
            }
            self.timers.advance(Instant::now(), &mut fired);
            for data in fired.drain(..) {
                self.on_timer(data);
            }
            if self.control.draining() && self.drain_step() {
                break;
            }
            self.free.append(&mut self.freed);
        }
        self.cleanup();
    }

    fn poll_timeout(&self) -> Option<Duration> {
        let now = Instant::now();
        let timers = self.timers.next_timeout(now);
        if !self.control.draining() {
            return timers;
        }
        // Draining: wake at the grace deadline (to stop accepting) and
        // keep a short safety tick while in-flight work finishes.
        let grace = self.control.grace_deadline().saturating_duration_since(now);
        let cap = grace.min(Duration::from_millis(250));
        Some(timers.map_or(cap, |t| t.min(cap)))
    }

    // -- completions --

    fn take_completions(&mut self) {
        let completions = {
            let mut mailbox = self.control.completions[self.id]
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            std::mem::take(&mut *mailbox)
        };
        for completion in completions {
            self.finish(completion);
        }
    }

    fn finish(&mut self, completion: Completion) {
        let Completion {
            slot,
            gen,
            response,
        } = completion;
        let live = self
            .conns
            .get(slot)
            .and_then(Option::as_ref)
            .is_some_and(|conn| conn.gen == gen && conn.phase == Phase::Dispatched);
        if !live {
            return; // the connection died mid-flight; drop the response
        }
        self.control.state.metrics.record_status(response.status);
        let draining = self.control.draining();
        let close_requested = self.conns[slot]
            .as_ref()
            .is_some_and(|conn| conn.close_after_response);
        self.send_response(slot, &response, !close_requested && !draining);
    }

    // -- events --

    fn on_event(&mut self, event: Event) {
        if event.token == LISTENER {
            self.accept_ready();
            return;
        }
        let slot = event.token.0 - 1;
        let Some(phase) = self
            .conns
            .get(slot)
            .and_then(Option::as_ref)
            .map(|conn| conn.phase)
        else {
            return; // freed earlier in this pass
        };
        match phase {
            Phase::Reading => {
                if event.readable || event.closed {
                    let eof = match self.conns[slot].as_mut() {
                        Some(conn) => conn.fill() == Filled::Eof,
                        None => return,
                    };
                    self.consume_buffer(slot, eof);
                }
            }
            Phase::Writing => {
                if event.writable || event.closed {
                    self.drive_write(slot);
                }
            }
            Phase::Dispatched => {
                // Interest is muted; only errors/hangups surface. The
                // worker's completion will miss the generation and be
                // dropped.
                if event.closed {
                    self.close(slot);
                }
            }
        }
    }

    fn accept_ready(&mut self) {
        loop {
            let accepted = match self.listener.as_ref() {
                Some(listener) => listener.accept(),
                None => return,
            };
            match accepted {
                Ok((stream, _)) => self.admit(stream),
                Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(_) => return,
            }
        }
    }

    fn admit(&mut self, stream: TcpStream) {
        self.control
            .state
            .metrics
            .connections_accepted
            .fetch_add(1, Ordering::Relaxed);
        let open = self
            .control
            .rmetrics
            .open_connections
            .load(Ordering::Relaxed);
        if open >= self.control.config.max_connections as u64 {
            self.control
                .state
                .metrics
                .rejected_429
                .fetch_add(1, Ordering::Relaxed);
            refuse(
                stream,
                &Response::error(429, "server is at connection capacity")
                    .with_header("Retry-After", "1"),
            );
            return;
        }
        let Ok(mut conn) = Conn::new(stream) else {
            return;
        };
        self.next_gen += 1;
        conn.gen = self.next_gen;
        let slot = match self.free.pop() {
            Some(slot) => slot,
            None => {
                self.conns.push(None);
                self.conns.len() - 1
            }
        };
        if self
            .poller
            .register(conn.stream(), Token(slot + 1), Interest::READABLE)
            .is_err()
        {
            self.free.push(slot);
            return;
        }
        self.conns[slot] = Some(conn);
        self.control
            .rmetrics
            .open_connections
            .fetch_add(1, Ordering::Relaxed);
        self.update_read_timers(slot);
    }

    // -- request processing --

    /// Assembles and processes every complete request already buffered.
    /// Stops when the connection leaves `Reading` (dispatched, mid-write
    /// backpressure, or closed).
    fn consume_buffer(&mut self, slot: usize, eof: bool) {
        loop {
            let reading = self.conns[slot]
                .as_ref()
                .is_some_and(|conn| conn.phase == Phase::Reading);
            if !reading {
                return;
            }
            let parsed = match self.conns[slot].as_mut() {
                Some(conn) => conn.next_request(&self.control.config.http_limits),
                None => return,
            };
            match parsed {
                Ok(Some(request)) => self.process_request(slot, request),
                Ok(None) => break,
                Err(BadRequest(message)) => {
                    let status = if message.contains("too large") {
                        431
                    } else {
                        400
                    };
                    self.control.state.metrics.record_status(status);
                    if let Some(conn) = self.conns[slot].as_mut() {
                        conn.discard_pending();
                    }
                    let response = Response::error(status, &message);
                    self.send_response(slot, &response, false);
                    return;
                }
            }
        }
        // Still in Reading with no complete request buffered.
        if eof {
            // A half-closing client has sent everything it ever will.
            self.close(slot);
            return;
        }
        self.update_read_timers(slot);
    }

    fn process_request(&mut self, slot: usize, request: Request) {
        let control = Arc::clone(&self.control);
        control
            .state
            .metrics
            .requests_total
            .fetch_add(1, Ordering::Relaxed);
        control.rmetrics.shard_requests[self.id].fetch_add(1, Ordering::Relaxed);

        if control.draining() {
            let response = Response::error(503, "server is shutting down");
            control.state.metrics.record_status(response.status);
            self.send_response(slot, &response, false);
            return;
        }

        let close_requested = self.conns[slot]
            .as_ref()
            .is_some_and(|conn| conn.close_after_response);
        match handlers::route(&control.state, &request) {
            Routed::Done(response) => {
                control.state.metrics.record_status(response.status);
                self.send_response(slot, &response, !close_requested);
            }
            Routed::Dispatch(endpoint) => {
                let mut queue = control.lock_queue();
                if queue.len() >= control.config.queue_capacity {
                    drop(queue);
                    control
                        .state
                        .metrics
                        .rejected_429
                        .fetch_add(1, Ordering::Relaxed);
                    // Admission rejections skip `record_status`, matching
                    // the threaded acceptor (they never reach a worker).
                    let response = Response::error(429, "server is at capacity")
                        .with_header("Retry-After", "1");
                    self.send_response(slot, &response, !close_requested);
                    return;
                }
                let Some(gen) = self.conns[slot].as_ref().map(|conn| conn.gen) else {
                    return;
                };
                queue.push_back(Job {
                    shard: self.id,
                    slot,
                    gen,
                    endpoint,
                    body: request.body,
                });
                drop(queue);
                control
                    .rmetrics
                    .dispatch_queue_depth
                    .fetch_add(1, Ordering::Relaxed);
                control.available.notify_one();
                self.clear_timers(slot);
                if let Some(conn) = self.conns[slot].as_mut() {
                    conn.phase = Phase::Dispatched;
                }
                let _ = self.poller.reregister(Token(slot + 1), Interest::NONE);
            }
        }
    }

    // -- responses --

    fn send_response(&mut self, slot: usize, response: &Response, keep_alive: bool) {
        let bytes = response.serialize(keep_alive);
        self.clear_timers(slot);
        match self.conns[slot].as_mut() {
            Some(conn) => conn.start_response(bytes, !keep_alive),
            None => return,
        }
        self.drive_write(slot);
    }

    fn drive_write(&mut self, slot: usize) {
        let outcome = match self.conns[slot].as_mut() {
            Some(conn) => conn.write_step(),
            None => return,
        };
        match outcome {
            WriteOutcome::Done => {
                let close = self.conns[slot]
                    .as_ref()
                    .is_none_or(|conn| conn.close_after_response);
                if close {
                    self.close(slot);
                } else {
                    if let Some(conn) = self.conns[slot].as_mut() {
                        conn.rearm();
                    }
                    let _ = self.poller.reregister(Token(slot + 1), Interest::READABLE);
                    // Pipelined requests already buffered will not trigger
                    // another readiness event; process them now.
                    self.consume_buffer(slot, false);
                }
            }
            WriteOutcome::NeedWritable => {
                let _ = self.poller.reregister(Token(slot + 1), Interest::WRITABLE);
            }
            WriteOutcome::Error => self.close(slot),
        }
    }

    // -- timers --

    fn update_read_timers(&mut self, slot: usize) {
        let config = &self.control.config;
        let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else {
            return;
        };
        let gen = conn.gen;
        if conn.has_partial_request() {
            if let Some(key) = conn.idle_timer.take() {
                self.timers.cancel(key);
            }
            if conn.stall_timer.is_none() {
                let key = self
                    .timers
                    .insert(config.request_stall, timer_data(KIND_STALL, slot, gen));
                conn.stall_timer = Some(key);
            }
        } else {
            if let Some(key) = conn.stall_timer.take() {
                self.timers.cancel(key);
            }
            if conn.idle_timer.is_none() {
                let key = self
                    .timers
                    .insert(config.keep_alive_idle, timer_data(KIND_IDLE, slot, gen));
                conn.idle_timer = Some(key);
            }
        }
    }

    fn clear_timers(&mut self, slot: usize) {
        let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else {
            return;
        };
        if let Some(key) = conn.idle_timer.take() {
            self.timers.cancel(key);
        }
        if let Some(key) = conn.stall_timer.take() {
            self.timers.cancel(key);
        }
    }

    fn on_timer(&mut self, data: u64) {
        let (kind, slot, gen_bits) = timer_parts(data);
        let evict;
        match self.conns.get_mut(slot).and_then(Option::as_mut) {
            Some(conn) if conn.gen & GEN_MASK == gen_bits => {
                if kind == KIND_IDLE {
                    evict = conn.phase == Phase::Reading
                        && conn.idle_timer.is_some()
                        && !conn.has_partial_request();
                    conn.idle_timer = None;
                } else {
                    evict = conn.phase == Phase::Reading
                        && conn.stall_timer.is_some()
                        && conn.has_partial_request();
                    conn.stall_timer = None;
                }
            }
            _ => return,
        }
        if evict {
            let counter = if kind == KIND_IDLE {
                &self.control.rmetrics.idle_evictions
            } else {
                &self.control.rmetrics.stall_evictions
            };
            counter.fetch_add(1, Ordering::Relaxed);
            self.close(slot);
        }
    }

    // -- teardown --

    fn close(&mut self, slot: usize) {
        self.clear_timers(slot);
        let taken = self.conns.get_mut(slot).and_then(Option::take);
        if taken.is_some() {
            self.poller.deregister(Token(slot + 1));
            self.control
                .rmetrics
                .open_connections
                .fetch_sub(1, Ordering::Relaxed);
            self.freed.push(slot);
        }
    }

    /// One drain pass; `true` once this shard is finished. Sequence:
    /// close idle keep-alive connections immediately, keep accepting (and
    /// answering `503`) until the grace deadline, then stop accepting,
    /// reap readers, and wait for dispatched/writing work to finish.
    fn drain_step(&mut self) -> bool {
        if !self.drain_seen {
            self.drain_seen = true;
            for slot in 0..self.conns.len() {
                let idle = self.conns[slot].as_ref().is_some_and(|conn| {
                    conn.phase == Phase::Reading && !conn.has_partial_request()
                });
                if idle {
                    self.close(slot);
                }
            }
        }
        if Instant::now() < self.control.grace_deadline() {
            return false;
        }
        if self.listener.take().is_some() {
            self.poller.deregister(LISTENER);
        }
        for slot in 0..self.conns.len() {
            let reading = self.conns[slot]
                .as_ref()
                .is_some_and(|conn| conn.phase == Phase::Reading);
            if reading {
                self.close(slot);
            }
        }
        self.conns.iter().flatten().count() == 0
    }

    /// Closes everything still registered so the poller ends empty — no
    /// leaked registrations, whatever path ended the loop.
    fn cleanup(&mut self) {
        for slot in 0..self.conns.len() {
            self.close(slot);
        }
        if self.listener.take().is_some() {
            self.poller.deregister(LISTENER);
        }
        debug_assert!(self.poller.is_empty(), "leaked poller registrations");
    }
}

/// Best-effort one-response refusal on a just-accepted connection.
fn refuse(stream: TcpStream, response: &Response) {
    let mut stream = stream;
    let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
    let _ = io::Write::write_all(&mut stream, &response.serialize(false));
}
