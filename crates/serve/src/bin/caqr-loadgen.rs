//! `caqr-loadgen`: a closed-loop load generator for `caqr-serve`.
//!
//! ```text
//! caqr-loadgen (--url HOST:PORT | --port N) [--connections N]
//!              [--duration-ms N] [--quick] [--check] [--json]
//! ```
//!
//! Each connection is one thread running a closed loop (send, wait,
//! repeat) over a mixed workload drawn from the paper's benchmark suite:
//! compile requests cycling over (circuit x strategy) plus a simulate
//! request every fourth iteration. Reports throughput and latency
//! percentiles as a table or JSON (`--json`); `--check` exits non-zero
//! unless throughput is non-zero and no 5xx was seen (the CI smoke gate).

use caqr_serve::client::Client;
use caqr_wire::{circuit::circuit_to_value, Value};
use std::net::{SocketAddr, ToSocketAddrs};
use std::process::ExitCode;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Options {
    addr: SocketAddr,
    connections: usize,
    duration: Duration,
    check: bool,
    json: bool,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(passed) => {
            if passed {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(message) => {
            eprintln!("caqr-loadgen: {message}");
            eprintln!();
            eprintln!("usage: caqr-loadgen (--url HOST:PORT | --port N) [--connections N]");
            eprintln!("                    [--duration-ms N] [--quick] [--check] [--json]");
            ExitCode::FAILURE
        }
    }
}

fn parse(args: &[String]) -> Result<Options, String> {
    let mut url: Option<String> = None;
    let mut connections = 4usize;
    let mut duration_ms = 5000u64;
    let mut quick = false;
    let mut check = false;
    let mut json = false;

    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--url" => url = Some(it.next().ok_or("--url needs a value")?.clone()),
            "--port" => {
                let port: u16 = it
                    .next()
                    .ok_or("--port needs a value")?
                    .parse()
                    .map_err(|_| "bad --port value")?;
                url = Some(format!("127.0.0.1:{port}"));
            }
            "--connections" => {
                connections = it
                    .next()
                    .ok_or("--connections needs a value")?
                    .parse()
                    .map_err(|_| "bad --connections value")?;
            }
            "--duration-ms" => {
                duration_ms = it
                    .next()
                    .ok_or("--duration-ms needs a value")?
                    .parse()
                    .map_err(|_| "bad --duration-ms value")?;
            }
            "--quick" => quick = true,
            "--check" => check = true,
            "--json" => json = true,
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    let url = url.ok_or("--url or --port is required")?;
    let addr = url
        .to_socket_addrs()
        .map_err(|e| format!("cannot resolve '{url}': {e}"))?
        .next()
        .ok_or_else(|| format!("'{url}' resolved to no address"))?;
    if quick {
        duration_ms = duration_ms.min(1500);
        connections = connections.min(2);
    }
    Ok(Options {
        addr,
        connections: connections.clamp(1, 64),
        duration: Duration::from_millis(duration_ms.clamp(100, 600_000)),
        check,
        json,
    })
}

/// One prepared request: path + body, reused across the run.
struct Shot {
    path: &'static str,
    body: String,
}

/// The mixed workload: every benchmark under three strategies, plus a
/// simulate request per circuit. Compile bodies repeat, so the server's
/// shared cache gets realistic hit traffic.
fn workload() -> Vec<Shot> {
    let mut shots = Vec::new();
    let benches = [
        caqr_benchmarks::revlib::xor_5(),
        caqr_benchmarks::revlib::four_mod5(),
        caqr_benchmarks::revlib::rd32(),
        caqr_benchmarks::bv::bv_all_ones(5),
    ];
    for bench in &benches {
        let circuit = circuit_to_value(&bench.circuit).encode();
        for strategy in ["sr", "baseline", "qs-max"] {
            shots.push(Shot {
                path: "/v1/compile",
                body: format!(
                    r#"{{"circuit":{circuit},"strategy":"{strategy}","name":"{}"}}"#,
                    bench.name
                ),
            });
        }
        shots.push(Shot {
            path: "/v1/simulate",
            body: format!(r#"{{"circuit":{circuit},"shots":256,"seed":11}}"#),
        });
    }
    shots
}

struct Sample {
    status: u16,
    latency_us: u64,
}

fn run(args: &[String]) -> Result<bool, String> {
    let options = parse(args)?;
    let shots = Arc::new(workload());
    let next = Arc::new(AtomicUsize::new(0));
    let started = Instant::now();
    let deadline = started + options.duration;

    let mut threads = Vec::new();
    for _ in 0..options.connections {
        let shots = Arc::clone(&shots);
        let next = Arc::clone(&next);
        let addr = options.addr;
        threads.push(std::thread::spawn(move || {
            let mut client = Client::connect(addr).with_timeout(Duration::from_secs(30));
            let mut samples = Vec::new();
            while Instant::now() < deadline {
                let index = next.fetch_add(1, Ordering::Relaxed) % shots.len();
                let shot = &shots[index];
                let sent = Instant::now();
                match client.post(shot.path, shot.body.as_bytes()) {
                    Ok(response) => samples.push(Sample {
                        status: response.status,
                        latency_us: sent.elapsed().as_micros() as u64,
                    }),
                    Err(_) => samples.push(Sample {
                        status: 0,
                        latency_us: sent.elapsed().as_micros() as u64,
                    }),
                }
            }
            samples
        }));
    }

    let mut samples: Vec<Sample> = Vec::new();
    for thread in threads {
        samples.extend(thread.join().map_err(|_| "a load thread panicked")?);
    }
    let wall = started.elapsed();

    let total = samples.len();
    let ok = samples
        .iter()
        .filter(|s| (200..300).contains(&s.status))
        .count();
    let e4xx = samples
        .iter()
        .filter(|s| (400..500).contains(&s.status))
        .count();
    let e5xx = samples
        .iter()
        .filter(|s| (500..600).contains(&s.status))
        .count();
    let transport = samples.iter().filter(|s| s.status == 0).count();

    let mut latencies: Vec<u64> = samples
        .iter()
        .filter(|s| (200..300).contains(&s.status))
        .map(|s| s.latency_us)
        .collect();
    latencies.sort_unstable();
    let pct = |p: f64| -> u64 {
        if latencies.is_empty() {
            return 0;
        }
        let rank = ((latencies.len() as f64) * p).ceil() as usize;
        latencies[rank.clamp(1, latencies.len()) - 1]
    };
    let (p50, p90, p99) = (pct(0.50), pct(0.90), pct(0.99));
    let mean = if latencies.is_empty() {
        0
    } else {
        latencies.iter().sum::<u64>() / latencies.len() as u64
    };
    let throughput = ok as f64 / wall.as_secs_f64();

    if options.json {
        let report = Value::obj(vec![
            ("requests", Value::num(total as u64)),
            ("ok", Value::num(ok as u64)),
            ("errors_4xx", Value::num(e4xx as u64)),
            ("errors_5xx", Value::num(e5xx as u64)),
            ("transport_errors", Value::num(transport as u64)),
            ("connections", Value::num(options.connections as u64)),
            ("duration_ms", Value::num(wall.as_millis() as u64)),
            ("throughput_rps", Value::Num(throughput)),
            (
                "latency_us",
                Value::obj(vec![
                    ("p50", Value::num(p50)),
                    ("p90", Value::num(p90)),
                    ("p99", Value::num(p99)),
                    ("mean", Value::num(mean)),
                ]),
            ),
        ]);
        println!("{}", report.encode());
    } else {
        println!("connections      {}", options.connections);
        println!("duration         {:.2} s", wall.as_secs_f64());
        println!("requests         {total}");
        println!("ok               {ok}");
        println!("errors (4xx)     {e4xx}");
        println!("errors (5xx)     {e5xx}");
        println!("transport errors {transport}");
        println!("throughput       {throughput:.1} req/s");
        println!("latency p50      {:.2} ms", p50 as f64 / 1e3);
        println!("latency p90      {:.2} ms", p90 as f64 / 1e3);
        println!("latency p99      {:.2} ms", p99 as f64 / 1e3);
        println!("latency mean     {:.2} ms", mean as f64 / 1e3);
    }

    if options.check {
        if ok == 0 {
            eprintln!("caqr-loadgen: check FAILED: no successful responses");
            return Ok(false);
        }
        if e5xx > 0 || transport > 0 {
            eprintln!(
                "caqr-loadgen: check FAILED: {e5xx} server errors, {transport} transport errors"
            );
            return Ok(false);
        }
        eprintln!("caqr-loadgen: check passed");
    }
    Ok(true)
}
