//! `caqr-loadgen`: a load generator for `caqr-serve`.
//!
//! ```text
//! caqr-loadgen (--url HOST:PORT | --port N) [--connections N]
//!              [--duration-ms N] [--rate N] [--ramp-ms N]
//!              [--quick] [--check] [--json]
//! ```
//!
//! The workload is a mix drawn from the paper's benchmark suite: compile
//! requests cycling over (circuit x strategy) plus a simulate request per
//! circuit, plus bind-run requests cycling distinct angle bindings of one
//! QAOA template, plus a streaming-compile request whose raw-QASM body is
//! delivered as `Transfer-Encoding: chunked` frames. Compile bodies
//! repeat, so the server's caches see realistic hit traffic; the distinct
//! bindings exercise the engine's template cache (compile once, bind per
//! request); the chunked body keeps the incremental body-assembly path
//! under concurrent load.
//!
//! Up to 64 connections the generator runs one blocking thread per
//! connection (closed loop). Above that — or when `--rate`/`--ramp-ms`
//! asks for arrival pacing — it switches to the event-driven engine
//! ([`caqr_serve::loadgen`]): one thread, every connection on a readiness
//! loop, supporting 512+ keep-alive connections, a connection ramp,
//! open-loop arrivals, and per-connection error accounting.
//!
//! Reports a table or JSON (`--json`); `--check` exits non-zero unless
//! some requests succeeded, no 5xx/transport error was seen, and the
//! engine's template cache saw at least one hit on the repeated bind-run
//! traffic (the CI smoke gate).

use caqr_serve::client::Client;
use caqr_serve::loadgen::{self, LoadConfig, Shot};
use caqr_wire::{
    circuit::{circuit_to_value, parametric_to_value},
    Value,
};
use std::net::{SocketAddr, ToSocketAddrs};
use std::process::ExitCode;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Options {
    addr: SocketAddr,
    connections: usize,
    duration: Duration,
    ramp: Duration,
    rate: Option<f64>,
    check: bool,
    json: bool,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(passed) => {
            if passed {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(message) => {
            eprintln!("caqr-loadgen: {message}");
            eprintln!();
            eprintln!("usage: caqr-loadgen (--url HOST:PORT | --port N) [--connections N]");
            eprintln!("                    [--duration-ms N] [--rate N] [--ramp-ms N]");
            eprintln!("                    [--quick] [--check] [--json]");
            ExitCode::FAILURE
        }
    }
}

fn parse(args: &[String]) -> Result<Options, String> {
    let mut url: Option<String> = None;
    let mut connections = 4usize;
    let mut connections_given = false;
    let mut duration_ms = 5000u64;
    let mut ramp_ms = 0u64;
    let mut rate: Option<f64> = None;
    let mut quick = false;
    let mut check = false;
    let mut json = false;

    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--url" => url = Some(it.next().ok_or("--url needs a value")?.clone()),
            "--port" => {
                let port: u16 = it
                    .next()
                    .ok_or("--port needs a value")?
                    .parse()
                    .map_err(|_| "bad --port value")?;
                url = Some(format!("127.0.0.1:{port}"));
            }
            "--connections" => {
                connections = it
                    .next()
                    .ok_or("--connections needs a value")?
                    .parse()
                    .map_err(|_| "bad --connections value")?;
                connections_given = true;
            }
            "--duration-ms" => {
                duration_ms = it
                    .next()
                    .ok_or("--duration-ms needs a value")?
                    .parse()
                    .map_err(|_| "bad --duration-ms value")?;
            }
            "--ramp-ms" => {
                ramp_ms = it
                    .next()
                    .ok_or("--ramp-ms needs a value")?
                    .parse()
                    .map_err(|_| "bad --ramp-ms value")?;
            }
            "--rate" => {
                let parsed: f64 = it
                    .next()
                    .ok_or("--rate needs a value")?
                    .parse()
                    .map_err(|_| "bad --rate value")?;
                if !parsed.is_finite() || parsed <= 0.0 {
                    return Err("--rate must be positive".into());
                }
                rate = Some(parsed);
            }
            "--quick" => quick = true,
            "--check" => check = true,
            "--json" => json = true,
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    let url = url.ok_or("--url or --port is required")?;
    let addr = url
        .to_socket_addrs()
        .map_err(|e| format!("cannot resolve '{url}': {e}"))?
        .next()
        .ok_or_else(|| format!("'{url}' resolved to no address"))?;
    if quick {
        duration_ms = duration_ms.min(1500);
        // Only shrink the fleet when the caller did not size it — a CI
        // smoke run may want `--quick --connections 128` verbatim.
        if !connections_given {
            connections = connections.min(2);
        }
    }
    Ok(Options {
        addr,
        connections: connections.clamp(1, 4096),
        duration: Duration::from_millis(duration_ms.clamp(100, 600_000)),
        ramp: Duration::from_millis(ramp_ms.min(60_000)),
        rate,
        check,
        json,
    })
}

/// The mixed workload: every benchmark under three strategies, plus a
/// simulate request per circuit.
fn workload() -> Vec<Shot> {
    let mut shots = Vec::new();
    let benches = [
        caqr_benchmarks::revlib::xor_5(),
        caqr_benchmarks::revlib::four_mod5(),
        caqr_benchmarks::revlib::rd32(),
        caqr_benchmarks::bv::bv_all_ones(5),
    ];
    for bench in &benches {
        let circuit = circuit_to_value(&bench.circuit).encode();
        for strategy in ["sr", "baseline", "qs-max"] {
            let body = format!(
                r#"{{"circuit":{circuit},"strategy":"{strategy}","name":"{}"}}"#,
                bench.name
            );
            shots.push(Shot::post("/v1/compile", body.as_bytes()));
        }
        let body = format!(r#"{{"circuit":{circuit},"shots":256,"seed":11}}"#);
        shots.push(Shot::post("/v1/simulate", body.as_bytes()));
    }
    // One streaming compile per cycle: raw OpenQASM delivered in 256-byte
    // chunked frames straight into the bounded-memory pipeline.
    let qasm_text = caqr_circuit::qasm::to_qasm(&caqr_benchmarks::bv::bv_all_ones(5).circuit);
    shots.push(Shot::post_chunked(
        "/v1/compile-stream",
        qasm_text.as_bytes(),
        256,
    ));
    shots.extend(bind_run_shots());
    shots
}

/// Bind-run requests: one QAOA template, several distinct angle bindings.
///
/// The bodies differ only in `values`, so on the server every request maps
/// to the *same* engine template-cache entry (compile once) but a distinct
/// response-cache entry (bindings must never cross-serve). Repeat traffic
/// therefore produces both template-cache hits and response-cache hits.
fn bind_run_shots() -> Vec<Shot> {
    let bench =
        caqr_benchmarks::qaoa::qaoa_benchmark(5, 0.5, caqr_benchmarks::qaoa::GraphKind::Random, 7);
    let graph = bench.graph.expect("QAOA benchmarks carry their graph");
    let template = caqr_benchmarks::qaoa::maxcut_template(&graph, 1);
    let template = parametric_to_value(&template).encode();
    [(0.7, 0.6), (0.4, 1.1), (0.9, 0.35)]
        .iter()
        .map(|(gamma, mixer)| {
            let body = format!(
                r#"{{"template":{template},"values":[{gamma},{mixer}],"shots":128,"seed":17,"name":"qaoa-bind"}}"#
            );
            Shot::post("/v1/bind-run", body.as_bytes())
        })
        .collect()
}

struct Tally {
    requests: u64,
    ok: u64,
    e4xx: u64,
    e5xx: u64,
    transport: u64,
    parked: u64,
    latencies: Vec<u64>,
    wall: Duration,
    mode: &'static str,
}

fn run(args: &[String]) -> Result<bool, String> {
    let options = parse(args)?;
    let shots = workload();

    let event_mode = options.connections > 64 || options.rate.is_some() || !options.ramp.is_zero();
    let tally = if event_mode {
        run_event(&options, &shots)?
    } else {
        run_threads(&options, &shots)
    };

    let mut latencies = tally.latencies;
    latencies.sort_unstable();
    let pct = |p: f64| -> u64 {
        if latencies.is_empty() {
            return 0;
        }
        let rank = ((latencies.len() as f64) * p).ceil() as usize;
        latencies[rank.clamp(1, latencies.len()) - 1]
    };
    let (p50, p90, p99) = (pct(0.50), pct(0.90), pct(0.99));
    let mean = if latencies.is_empty() {
        0
    } else {
        latencies.iter().sum::<u64>() / latencies.len() as u64
    };
    let throughput = tally.ok as f64 / tally.wall.as_secs_f64();

    if options.json {
        let mut fields = vec![
            ("requests", Value::num(tally.requests)),
            ("ok", Value::num(tally.ok)),
            ("errors_4xx", Value::num(tally.e4xx)),
            ("errors_5xx", Value::num(tally.e5xx)),
            ("transport_errors", Value::num(tally.transport)),
            ("parked_connections", Value::num(tally.parked)),
            ("connections", Value::num(options.connections as u64)),
            ("mode", Value::str(tally.mode)),
            ("duration_ms", Value::num(tally.wall.as_millis() as u64)),
            ("throughput_rps", Value::Num(throughput)),
            (
                "latency_us",
                Value::obj(vec![
                    ("p50", Value::num(p50)),
                    ("p90", Value::num(p90)),
                    ("p99", Value::num(p99)),
                    ("mean", Value::num(mean)),
                ]),
            ),
        ];
        if let Some(rate) = options.rate {
            fields.push(("offered_rate_rps", Value::Num(rate)));
        }
        println!("{}", Value::obj(fields).encode());
    } else {
        println!("mode             {}", tally.mode);
        println!("connections      {}", options.connections);
        if let Some(rate) = options.rate {
            println!("offered rate     {rate:.1} req/s");
        }
        println!("duration         {:.2} s", tally.wall.as_secs_f64());
        println!("requests         {}", tally.requests);
        println!("ok               {}", tally.ok);
        println!("errors (4xx)     {}", tally.e4xx);
        println!("errors (5xx)     {}", tally.e5xx);
        println!("transport errors {}", tally.transport);
        println!("parked conns     {}", tally.parked);
        println!("throughput       {throughput:.1} req/s");
        println!("latency p50      {:.2} ms", p50 as f64 / 1e3);
        println!("latency p90      {:.2} ms", p90 as f64 / 1e3);
        println!("latency p99      {:.2} ms", p99 as f64 / 1e3);
        println!("latency mean     {:.2} ms", mean as f64 / 1e3);
    }

    if options.check {
        if tally.ok == 0 {
            eprintln!("caqr-loadgen: check FAILED: no successful responses");
            return Ok(false);
        }
        if tally.e5xx > 0 || tally.transport > 0 {
            eprintln!(
                "caqr-loadgen: check FAILED: {} server errors, {} transport errors",
                tally.e5xx, tally.transport
            );
            return Ok(false);
        }
        match template_cache_hits_after_probe(options.addr) {
            Ok(hits) if hits > 0 => {}
            Ok(hits) => {
                eprintln!(
                    "caqr-loadgen: check FAILED: engine template_cache_hits = {hits} \
                     after repeated bind-run traffic (expected > 0)"
                );
                return Ok(false);
            }
            Err(message) => {
                eprintln!("caqr-loadgen: check FAILED: {message}");
                return Ok(false);
            }
        }
        eprintln!("caqr-loadgen: check passed");
    }
    Ok(true)
}

/// The event-driven engine: any connection count, optional open loop.
fn run_event(options: &Options, shots: &[Shot]) -> Result<Tally, String> {
    let config = LoadConfig {
        addr: options.addr,
        connections: options.connections,
        duration: options.duration,
        ramp: options.ramp,
        rate: options.rate,
    };
    let report = loadgen::run(&config, shots).map_err(|e| format!("load engine failed: {e}"))?;
    Ok(Tally {
        requests: report.responses + report.transport_errors,
        ok: report.ok,
        e4xx: report.errors_4xx,
        e5xx: report.errors_5xx,
        transport: report.transport_errors,
        parked: report.per_conn.iter().filter(|c| c.parked).count() as u64,
        latencies: report.latencies_us,
        wall: report.elapsed,
        mode: if options.rate.is_some() {
            "event-open-loop"
        } else {
            "event-closed-loop"
        },
    })
}

/// The original thread-per-connection closed loop, kept for small runs.
fn run_threads(options: &Options, shots: &[Shot]) -> Tally {
    struct Sample {
        status: u16,
        latency_us: u64,
    }
    let shots: Arc<Vec<Shot>> = Arc::new(shots.to_vec());
    let next = Arc::new(AtomicUsize::new(0));
    let started = Instant::now();
    let deadline = started + options.duration;

    let mut threads = Vec::new();
    for _ in 0..options.connections {
        let shots = Arc::clone(&shots);
        let next = Arc::clone(&next);
        let addr = options.addr;
        threads.push(std::thread::spawn(move || {
            let mut client = Client::connect(addr).with_timeout(Duration::from_secs(30));
            let mut samples = Vec::new();
            while Instant::now() < deadline {
                let index = next.fetch_add(1, Ordering::Relaxed) % shots.len();
                let shot = &shots[index];
                let sent = Instant::now();
                let result = match shot.chunk_size {
                    Some(size) => client.post_chunked(&shot.path, &shot.body, size),
                    None => client.post(&shot.path, &shot.body),
                };
                match result {
                    Ok(response) => samples.push(Sample {
                        status: response.status,
                        latency_us: sent.elapsed().as_micros() as u64,
                    }),
                    Err(_) => samples.push(Sample {
                        status: 0,
                        latency_us: sent.elapsed().as_micros() as u64,
                    }),
                }
            }
            samples
        }));
    }

    let mut samples: Vec<Sample> = Vec::new();
    for thread in threads {
        if let Ok(mine) = thread.join() {
            samples.extend(mine);
        }
    }
    let wall = started.elapsed();

    Tally {
        requests: samples.len() as u64,
        ok: samples
            .iter()
            .filter(|s| (200..300).contains(&s.status))
            .count() as u64,
        e4xx: samples
            .iter()
            .filter(|s| (400..500).contains(&s.status))
            .count() as u64,
        e5xx: samples
            .iter()
            .filter(|s| (500..600).contains(&s.status))
            .count() as u64,
        transport: samples.iter().filter(|s| s.status == 0).count() as u64,
        parked: 0,
        latencies: samples
            .iter()
            .filter(|s| (200..300).contains(&s.status))
            .map(|s| s.latency_us)
            .collect(),
        wall,
        mode: "threads-closed-loop",
    }
}

/// Replays each bind-run shot once, then reads the engine's
/// `template_cache_hits` counter off `/metrics`.
///
/// The replay makes the assertion deterministic regardless of how far the
/// timed run rotated through the workload: each distinct binding is either
/// already in the response cache (the engine bound it during the run) or
/// reaches the engine now — so after all three, at least two bindings of
/// the same template have hit the engine and the second onward were
/// template-cache hits.
fn template_cache_hits_after_probe(addr: SocketAddr) -> Result<u64, String> {
    let mut client = Client::connect(addr).with_timeout(Duration::from_secs(30));
    for shot in bind_run_shots() {
        let response = client
            .post(&shot.path, &shot.body)
            .map_err(|e| format!("bind-run probe failed: {e}"))?;
        if response.status != 200 {
            return Err(format!(
                "bind-run probe returned {}: {}",
                response.status,
                response.text()
            ));
        }
    }
    let response = client
        .get("/metrics")
        .map_err(|e| format!("GET /metrics failed: {e}"))?;
    if response.status != 200 {
        return Err(format!("GET /metrics returned {}", response.status));
    }
    let parsed = caqr_wire::parse(&response.text())
        .map_err(|e| format!("/metrics body did not parse: {e}"))?;
    parsed
        .get("engine")
        .and_then(|engine| engine.get("template_cache_hits"))
        .and_then(Value::as_u64)
        .ok_or_else(|| "/metrics is missing engine.template_cache_hits".into())
}
