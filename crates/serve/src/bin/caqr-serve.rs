//! The `caqr-serve` binary: bind, print the address, serve until SIGTERM.
//!
//! ```text
//! caqr-serve [--port N] [--addr HOST] [--backend reactor|threaded|auto]
//!            [--shards N] [--workers N] [--queue N] [--max-connections N]
//!            [--cache N] [--default-timeout-ms N]
//! ```
//!
//! `--port 0` (the default) binds an ephemeral port; the chosen address is
//! printed as the first stdout line (`listening on 127.0.0.1:PORT`) so
//! scripts and the load generator can pick it up. `--shards N` runs N
//! reactor threads, each with its own `SO_REUSEPORT` listener. The process
//! raises its open-file soft limit at startup (the many-connections
//! posture) and parks — no polling — until SIGTERM/SIGINT trigger the
//! graceful drain; it exits 0 once every in-flight request has been
//! answered.

use caqr_serve::{signal, Backend, Server, ServerConfig};
use std::process::ExitCode;
use std::time::Duration;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("caqr-serve: {message}");
            eprintln!();
            eprintln!(
                "usage: caqr-serve [--port N] [--addr HOST] [--backend reactor|threaded|auto]"
            );
            eprintln!(
                "                  [--shards N] [--workers N] [--queue N] [--max-connections N]"
            );
            eprintln!("                  [--cache N] [--default-timeout-ms N]");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let mut host = "127.0.0.1".to_string();
    let mut port = 0u16;
    let mut config = ServerConfig::default();

    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--port" => {
                port = it
                    .next()
                    .ok_or("--port needs a value")?
                    .parse()
                    .map_err(|_| "bad --port value")?;
            }
            "--addr" => {
                host = it.next().ok_or("--addr needs a value")?.clone();
            }
            "--backend" => {
                config.backend = match it.next().ok_or("--backend needs a value")?.as_str() {
                    "reactor" => Backend::Reactor,
                    "threaded" => Backend::Threaded,
                    "auto" => Backend::Auto,
                    other => return Err(format!("unknown backend '{other}'")),
                };
            }
            "--shards" => {
                config.shards = it
                    .next()
                    .ok_or("--shards needs a value")?
                    .parse::<usize>()
                    .map_err(|_| "bad --shards value")?
                    .clamp(1, 64);
            }
            "--workers" => {
                config.workers = it
                    .next()
                    .ok_or("--workers needs a value")?
                    .parse()
                    .map_err(|_| "bad --workers value")?;
            }
            "--queue" => {
                config.queue_capacity = it
                    .next()
                    .ok_or("--queue needs a value")?
                    .parse()
                    .map_err(|_| "bad --queue value")?;
            }
            "--max-connections" => {
                config.max_connections = it
                    .next()
                    .ok_or("--max-connections needs a value")?
                    .parse()
                    .map_err(|_| "bad --max-connections value")?;
            }
            "--cache" => {
                config.cache_capacity = it
                    .next()
                    .ok_or("--cache needs a value")?
                    .parse()
                    .map_err(|_| "bad --cache value")?;
            }
            "--default-timeout-ms" => {
                let ms: u64 = it
                    .next()
                    .ok_or("--default-timeout-ms needs a value")?
                    .parse()
                    .map_err(|_| "bad --default-timeout-ms value")?;
                config.request_limits.default_timeout = Duration::from_millis(ms);
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    config.addr = format!("{host}:{port}");

    // Best effort: without this, 512-connection runs can exhaust the
    // default 1024-fd soft limit (connections + pipes + listeners).
    let _ = caqr_reactor::raise_nofile_limit();

    signal::install_handlers();
    let server = Server::bind(config).map_err(|e| format!("bind failed: {e}"))?;
    println!("listening on {}", server.local_addr());

    let handle = server.shutdown_handle();
    signal::wait_for_shutdown();
    eprintln!("caqr-serve: shutdown requested, draining");
    handle.shutdown();
    server.join();
    Ok(())
}
