//! The `caqr-serve` binary: bind, print the address, serve until SIGTERM.
//!
//! ```text
//! caqr-serve [--port N] [--addr HOST] [--workers N] [--queue N]
//!            [--cache N] [--default-timeout-ms N]
//! ```
//!
//! `--port 0` (the default) binds an ephemeral port; the chosen address is
//! printed as the first stdout line (`listening on 127.0.0.1:PORT`) so
//! scripts and the load generator can pick it up. SIGTERM/SIGINT trigger
//! the graceful drain; the process exits 0 once every in-flight request
//! has been answered.

use caqr_serve::{signal, Server, ServerConfig};
use std::process::ExitCode;
use std::time::Duration;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("caqr-serve: {message}");
            eprintln!();
            eprintln!("usage: caqr-serve [--port N] [--addr HOST] [--workers N] [--queue N]");
            eprintln!("                  [--cache N] [--default-timeout-ms N]");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let mut host = "127.0.0.1".to_string();
    let mut port = 0u16;
    let mut config = ServerConfig::default();

    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--port" => {
                port = it
                    .next()
                    .ok_or("--port needs a value")?
                    .parse()
                    .map_err(|_| "bad --port value")?;
            }
            "--addr" => {
                host = it.next().ok_or("--addr needs a value")?.clone();
            }
            "--workers" => {
                config.workers = it
                    .next()
                    .ok_or("--workers needs a value")?
                    .parse()
                    .map_err(|_| "bad --workers value")?;
            }
            "--queue" => {
                config.queue_capacity = it
                    .next()
                    .ok_or("--queue needs a value")?
                    .parse()
                    .map_err(|_| "bad --queue value")?;
            }
            "--cache" => {
                config.cache_capacity = it
                    .next()
                    .ok_or("--cache needs a value")?
                    .parse()
                    .map_err(|_| "bad --cache value")?;
            }
            "--default-timeout-ms" => {
                let ms: u64 = it
                    .next()
                    .ok_or("--default-timeout-ms needs a value")?
                    .parse()
                    .map_err(|_| "bad --default-timeout-ms value")?;
                config.request_limits.default_timeout = Duration::from_millis(ms);
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    config.addr = format!("{host}:{port}");

    signal::install_handlers();
    let server = Server::bind(config).map_err(|e| format!("bind failed: {e}"))?;
    println!("listening on {}", server.local_addr());

    let handle = server.shutdown_handle();
    while !signal::shutdown_requested() {
        std::thread::sleep(Duration::from_millis(50));
    }
    eprintln!("caqr-serve: shutdown requested, draining");
    handle.shutdown();
    server.join();
    Ok(())
}
