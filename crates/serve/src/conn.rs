//! Per-connection state for the event-driven backend: an incremental
//! request assembler and a buffered response writer over one non-blocking
//! socket.
//!
//! The connection walks an explicit state machine:
//!
//! ```text
//!   reading-head ──▶ reading-body ──▶ dispatched ──▶ writing-response
//!        ▲  (both are Phase::Reading;   (worker owns   │
//!        │   progress lives in the       the request)  │ keep-alive
//!        └───────────────────────────────────────────────┘
//! ```
//!
//! The reactor shard owns the socket and calls [`Conn::fill`] on read
//! readiness, [`Conn::next_request`] to assemble, and [`Conn::write_step`]
//! on write readiness. Nothing here blocks: every method does as much as
//! the socket allows and returns.

use crate::http::{find_head_end, parse_head, BadRequest, BodyFraming, HttpLimits, Request};
use caqr_reactor::TimerKey;
use caqr_wire::ChunkedDecoder;
use std::io::{self, Read, Write};
use std::net::TcpStream;

/// Where a connection is in its request/response cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Waiting for (more of) a request: reading-head until the blank line
    /// arrives, reading-body until `Content-Length` bytes follow.
    Reading,
    /// A fully-parsed request is with the worker pool; reads are paused
    /// (backpressure) until the completion comes back.
    Dispatched,
    /// Flushing a response; interest is write-readiness.
    Writing,
}

/// What [`Conn::fill`] observed on the socket.
#[derive(Debug, PartialEq, Eq)]
pub enum Filled {
    /// Bytes may have arrived; the socket would now block.
    Drained,
    /// The peer closed (EOF) or the socket errored.
    Eof,
}

/// One client connection owned by a reactor shard.
#[derive(Debug)]
pub struct Conn {
    stream: TcpStream,
    /// Stamps dispatched work; a completion whose generation does not
    /// match the slot's current occupant is dropped (slot-reuse ABA).
    pub gen: u64,
    /// The connection's lifecycle phase.
    pub phase: Phase,
    /// Requests fully parsed on this connection.
    pub served: u64,
    /// `Connection: close` was requested by the in-flight request.
    pub close_after_response: bool,
    /// Idle keep-alive timer (armed in Reading with no partial request).
    pub idle_timer: Option<TimerKey>,
    /// Mid-request stall timer (armed once partial bytes exist).
    pub stall_timer: Option<TimerKey>,
    inbuf: Vec<u8>,
    /// Head already scanned for the blank line (resume point, so a
    /// byte-at-a-time peer costs linear, not quadratic, scanning).
    scanned: usize,
    /// Parsed head waiting for its body.
    pending: Option<PendingRequest>,
    outbuf: Vec<u8>,
    written: usize,
}

/// A parsed head whose body is still arriving.
#[derive(Debug)]
struct PendingRequest {
    request: Request,
    body: BodyState,
}

/// Body-assembly progress for a pending request.
#[derive(Debug)]
enum BodyState {
    /// Fixed-length body: the head is still at the front of `inbuf` and
    /// the body occupies `head_end..head_end + body_len` once complete.
    Length {
        /// One past the head's blank line in `inbuf`.
        head_end: usize,
        /// Declared `Content-Length`.
        body_len: usize,
    },
    /// Chunked body: the head has been drained from `inbuf`; buffered
    /// bytes run through the decoder as they arrive, so only decoded
    /// body plus at most one socket read is ever held.
    Chunked {
        decoder: ChunkedDecoder,
        body: Vec<u8>,
    },
}

impl Conn {
    /// Wraps a just-accepted stream, switching it to non-blocking.
    ///
    /// # Errors
    ///
    /// Propagates `set_nonblocking` failure (the caller drops the socket).
    pub fn new(stream: TcpStream) -> io::Result<Conn> {
        stream.set_nonblocking(true)?;
        let _ = stream.set_nodelay(true);
        Ok(Conn {
            stream,
            gen: 0,
            phase: Phase::Reading,
            served: 0,
            close_after_response: false,
            idle_timer: None,
            stall_timer: None,
            inbuf: Vec::new(),
            scanned: 0,
            pending: None,
            outbuf: Vec::new(),
            written: 0,
        })
    }

    /// The underlying socket (for poller registration).
    pub fn stream(&self) -> &TcpStream {
        &self.stream
    }

    /// Reads everything currently available into the inbound buffer.
    pub fn fill(&mut self) -> Filled {
        let mut scratch = [0u8; 16 * 1024];
        loop {
            match self.stream.read(&mut scratch) {
                Ok(0) => return Filled::Eof,
                Ok(n) => self.inbuf.extend_from_slice(&scratch[..n]),
                Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => return Filled::Drained,
                Err(ref e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return Filled::Eof,
            }
        }
    }

    /// `true` once at least one byte of a new request has arrived — the
    /// boundary where the idle timer hands over to the stall timer.
    pub fn has_partial_request(&self) -> bool {
        !self.inbuf.is_empty() || self.pending.is_some()
    }

    /// Tries to assemble one complete request from the buffered bytes.
    /// `Ok(None)` means more bytes are needed.
    ///
    /// # Errors
    ///
    /// [`BadRequest`] exactly as the blocking parser would: malformed
    /// syntax 400, oversized head/body 431/400 by message.
    pub fn next_request(&mut self, limits: &HttpLimits) -> Result<Option<Request>, BadRequest> {
        if self.pending.is_none() {
            // Stray blank lines between keep-alive requests are legal;
            // request lines never start with CR/LF, so trimming is safe.
            let skip = self
                .inbuf
                .iter()
                .take_while(|&&b| b == b'\r' || b == b'\n')
                .count();
            if skip > 0 {
                self.inbuf.drain(..skip);
                self.scanned = 0;
            }
            let from = self.scanned.saturating_sub(2);
            match find_head_end(&self.inbuf[from..]) {
                Some(relative) => {
                    let head_end = from + relative;
                    let (request, framing) = parse_head(&self.inbuf[..head_end], limits)?;
                    let body = match framing {
                        BodyFraming::Length(body_len) => BodyState::Length { head_end, body_len },
                        BodyFraming::Chunked => {
                            // The head is fully parsed; from here on the
                            // buffer holds only raw chunked framing.
                            self.inbuf.drain(..head_end);
                            self.scanned = 0;
                            BodyState::Chunked {
                                decoder: ChunkedDecoder::new(limits.max_body_bytes),
                                body: Vec::new(),
                            }
                        }
                    };
                    self.pending = Some(PendingRequest { request, body });
                }
                None => {
                    self.scanned = self.inbuf.len();
                    if self.inbuf.len() > limits.max_head_bytes {
                        return Err(BadRequest("headers too large".into()));
                    }
                    return Ok(None);
                }
            }
        }

        let pending = self.pending.as_mut().expect("pending head");
        let body = match &mut pending.body {
            BodyState::Length { head_end, body_len } => {
                let (head_end, total) = (*head_end, *head_end + *body_len);
                if self.inbuf.len() < total {
                    return Ok(None);
                }
                let body = self.inbuf[head_end..total].to_vec();
                self.inbuf.drain(..total);
                body
            }
            BodyState::Chunked { decoder, body } => {
                let consumed = decoder
                    .push(&self.inbuf, body)
                    .map_err(|e| BadRequest(format!("bad chunked body: {e}")))?;
                self.inbuf.drain(..consumed);
                if !decoder.is_done() {
                    return Ok(None);
                }
                std::mem::take(body)
            }
        };
        let mut request = self.pending.take().expect("pending head").request;
        request.body = body;
        self.scanned = 0;
        self.served += 1;
        self.close_after_response = request.wants_close();
        Ok(Some(request))
    }

    /// Queues a serialized response and switches to the writing phase.
    pub fn start_response(&mut self, bytes: Vec<u8>, close_after: bool) {
        self.outbuf = bytes;
        self.written = 0;
        self.close_after_response = close_after;
        self.phase = Phase::Writing;
    }

    /// Pushes buffered response bytes to the socket.
    pub fn write_step(&mut self) -> WriteOutcome {
        while self.written < self.outbuf.len() {
            match self.stream.write(&self.outbuf[self.written..]) {
                Ok(0) => return WriteOutcome::Error,
                Ok(n) => self.written += n,
                Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => {
                    return WriteOutcome::NeedWritable
                }
                Err(ref e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return WriteOutcome::Error,
            }
        }
        self.outbuf = Vec::new();
        self.written = 0;
        WriteOutcome::Done
    }

    /// Resets per-request state for the next keep-alive request.
    /// Pipelined bytes already buffered are preserved.
    pub fn rearm(&mut self) {
        self.phase = Phase::Reading;
        self.close_after_response = false;
    }

    /// Best-effort drain of unread request bytes before an error close,
    /// so the 4xx response is not wiped out by a TCP reset (mirrors the
    /// threaded backend's `discard_pending`).
    pub fn discard_pending(&mut self) {
        let mut scratch = [0u8; 8192];
        let mut discarded = self.inbuf.len();
        self.inbuf.clear();
        while discarded < 1 << 20 {
            match self.stream.read(&mut scratch) {
                Ok(0) | Err(_) => return,
                Ok(n) => discarded += n,
            }
        }
    }
}

/// The outcome of one [`Conn::write_step`].
#[derive(Debug, PartialEq, Eq)]
pub enum WriteOutcome {
    /// The whole response is on the wire.
    Done,
    /// The socket is full; wait for write readiness.
    NeedWritable,
    /// The peer is gone; close the connection.
    Error,
}
