//! The thread-per-connection backend: acceptor, bounded queue, worker
//! pool, and the drain sequence. Kept as the portable fallback behind
//! [`crate::server::Backend`] and as the semantic reference the reactor
//! backend is pinned against.
//!
//! ```text
//!              ┌───────────┐   bounded    ┌──────────┐
//!   TCP ──────▶│ acceptor  │──▶ queue ───▶│ workers  │──▶ handlers
//!              │ (429 when │   (Condvar)  │ (panic-  │
//!              │  full)    │              │ isolated)│
//!              └───────────┘              └──────────┘
//! ```
//!
//! The acceptor parks on `poll(2)` (via caqr-reactor) between accepts
//! instead of sleep-polling; shutdown wakes it through the poller's
//! waker. Dead workers (a panic that escapes the per-request guard) are
//! respawned by a drop guard on the worker thread itself — no supervisor
//! thread, no supervision interval.

use crate::handlers::{self, AppState};
use crate::http::{read_request, write_response, BadRequest, NoRequest, Response, POLL_TICK};
use crate::server::{effective_workers, ServerConfig};
use caqr_reactor::{Event, Interest, Poller, Token, Waker};
use std::collections::VecDeque;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// State shared by the acceptor and workers.
pub(crate) struct Shared {
    state: Arc<AppState>,
    queue: Mutex<VecDeque<TcpStream>>,
    available: Condvar,
    draining: AtomicBool,
    config: ServerConfig,
    /// Wakes the acceptor out of its poll park at shutdown.
    accept_waker: Mutex<Option<Waker>>,
    /// Live worker handles; the drop guard pushes replacements here.
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl Shared {
    fn draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    fn lock_queue(&self) -> MutexGuard<'_, VecDeque<TcpStream>> {
        self.queue
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Starts the drain: stop admitting, wake everything. Idempotent.
    pub(crate) fn shutdown(&self) {
        self.draining.store(true, Ordering::SeqCst);
        self.available.notify_all();
        let waker = self
            .accept_waker
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        if let Some(waker) = waker.as_ref() {
            waker.wake();
        }
    }
}

/// A running threaded server: bound socket, acceptor, worker pool.
pub(crate) struct ThreadedServer {
    local_addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
}

impl ThreadedServer {
    /// Binds `config.addr` and starts the acceptor and workers.
    pub(crate) fn bind(config: ServerConfig, state: Arc<AppState>) -> io::Result<ThreadedServer> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;

        let worker_count = effective_workers(config.workers);
        let shared = Arc::new(Shared {
            state,
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            draining: AtomicBool::new(false),
            config,
            accept_waker: Mutex::new(None),
            workers: Mutex::new(Vec::new()),
        });

        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("caqr-acceptor".into())
                .spawn(move || accept_loop(&shared, &listener))?
        };
        for index in 0..worker_count {
            spawn_worker(Arc::clone(&shared), index)?;
        }

        Ok(ThreadedServer {
            local_addr,
            shared,
            acceptor: Some(acceptor),
        })
    }

    pub(crate) fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    pub(crate) fn shared(&self) -> Arc<Shared> {
        Arc::clone(&self.shared)
    }

    /// Joins the acceptor, then every worker (including respawns).
    pub(crate) fn join(mut self) {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        loop {
            let handle = {
                let mut workers = self
                    .shared
                    .workers
                    .lock()
                    .unwrap_or_else(|poisoned| poisoned.into_inner());
                workers.pop()
            };
            match handle {
                Some(handle) => {
                    let _ = handle.join();
                }
                None => return,
            }
        }
    }
}

/// Parks the acceptor between accepts: on `poll(2)` where available (woken
/// by readiness or the shutdown waker), a bounded sleep elsewhere.
struct AcceptParker {
    poller: Option<Poller>,
    events: Vec<Event>,
}

impl AcceptParker {
    fn new(shared: &Shared, listener: &TcpListener) -> AcceptParker {
        let poller = Poller::new().ok().and_then(|mut poller| {
            poller
                .register(listener, Token(0), Interest::READABLE)
                .ok()?;
            let mut slot = shared
                .accept_waker
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            *slot = Some(poller.waker());
            Some(poller)
        });
        AcceptParker {
            poller,
            events: Vec::new(),
        }
    }

    fn park(&mut self, timeout: Duration) {
        match self.poller.as_mut() {
            // Cap at 1s so a lost wakeup degrades to latency, not a hang.
            Some(poller) => {
                let _ = poller.poll(&mut self.events, Some(timeout.min(Duration::from_secs(1))));
            }
            None => std::thread::sleep(timeout.min(Duration::from_millis(10))),
        }
    }
}

/// Accepts connections into the bounded queue; answers `429` inline when
/// it is full, and `503` during the drain grace window.
fn accept_loop(shared: &Shared, listener: &TcpListener) {
    let mut parker = AcceptParker::new(shared, listener);
    while !shared.draining() {
        match listener.accept() {
            Ok((stream, _)) => {
                shared
                    .state
                    .metrics
                    .connections_accepted
                    .fetch_add(1, Ordering::Relaxed);
                let mut queue = shared.lock_queue();
                if queue.len() >= shared.config.queue_capacity {
                    drop(queue);
                    shared
                        .state
                        .metrics
                        .rejected_429
                        .fetch_add(1, Ordering::Relaxed);
                    let response = Response::error(429, "server is at capacity")
                        .with_header("Retry-After", "1");
                    respond_inline(stream, &response);
                } else {
                    queue.push_back(stream);
                    drop(queue);
                    shared.available.notify_one();
                }
            }
            Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => {
                parker.park(Duration::from_secs(1));
            }
            Err(_) => parker.park(Duration::from_millis(10)),
        }
    }

    // Drain grace: a clean 503 beats a connection reset for clients that
    // race the shutdown.
    let deadline = Instant::now() + shared.config.drain_grace;
    loop {
        let now = Instant::now();
        if now >= deadline {
            break;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                respond_inline(stream, &Response::error(503, "server is shutting down"));
            }
            Err(_) => parker.park(deadline - now),
        }
    }
    shared.available.notify_all();
}

/// Writes one response on a just-accepted connection and closes it. The
/// response is far smaller than a socket send buffer, so the write either
/// lands whole or the client is gone — best effort either way.
fn respond_inline(stream: TcpStream, response: &Response) {
    let mut stream = stream;
    let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
    let _ = write_response(&mut stream, response, false);
}

fn spawn_worker(shared: Arc<Shared>, index: usize) -> io::Result<()> {
    let handle = std::thread::Builder::new()
        .name(format!("caqr-worker-{index}"))
        .spawn({
            let shared = Arc::clone(&shared);
            move || {
                let _guard = RespawnGuard {
                    shared: Arc::clone(&shared),
                    index,
                };
                while let Some(stream) = next_connection(&shared) {
                    serve_connection(&shared, stream);
                }
            }
        })?;
    shared
        .workers
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
        .push(handle);
    Ok(())
}

/// Respawns the worker if its thread dies panicking (a panic that escaped
/// the per-request `catch_unwind`). Runs on the dying thread itself, so
/// replacement is immediate — no supervision interval.
struct RespawnGuard {
    shared: Arc<Shared>,
    index: usize,
}

impl Drop for RespawnGuard {
    fn drop(&mut self) {
        if std::thread::panicking() && !self.shared.draining() {
            self.shared
                .state
                .metrics
                .workers_replaced
                .fetch_add(1, Ordering::Relaxed);
            let _ = spawn_worker(Arc::clone(&self.shared), self.index);
        }
    }
}

/// Blocks for the next queued connection; `None` once draining and empty.
fn next_connection(shared: &Shared) -> Option<TcpStream> {
    let mut queue = shared.lock_queue();
    loop {
        if let Some(stream) = queue.pop_front() {
            return Some(stream);
        }
        if shared.draining() {
            return None;
        }
        let (guard, _) = shared
            .available
            .wait_timeout(queue, POLL_TICK)
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        queue = guard;
    }
}

/// Serves one connection: requests in a keep-alive loop, each under
/// `catch_unwind` so a handler panic answers `500` and the worker (and
/// the process) survive.
fn serve_connection(shared: &Shared, stream: TcpStream) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut write_half = stream;
    let _ = read_half.set_read_timeout(Some(POLL_TICK));
    let _ = write_half.set_write_timeout(Some(Duration::from_secs(10)));
    let _ = write_half.set_nodelay(true);
    let mut reader = io::BufReader::new(read_half);

    let mut served = 0usize;
    loop {
        let idle_deadline = Instant::now() + shared.config.keep_alive_idle;
        let mut keep_waiting = || !shared.draining() && Instant::now() < idle_deadline;
        match read_request(&mut reader, &shared.config.http_limits, &mut keep_waiting) {
            Ok(Ok(request)) => {
                // A connection pulled from the queue gets its first request
                // served even mid-drain (it was admitted before shutdown);
                // later keep-alive requests are refused.
                if shared.draining() && served > 0 {
                    let response = Response::error(503, "server is shutting down");
                    shared.state.metrics.record_status(response.status);
                    let _ = write_response(&mut write_half, &response, false);
                    return;
                }
                served += 1;
                shared
                    .state
                    .metrics
                    .requests_total
                    .fetch_add(1, Ordering::Relaxed);

                let response = match catch_unwind(AssertUnwindSafe(|| {
                    handlers::handle(&shared.state, &request)
                })) {
                    Ok(response) => response,
                    Err(_) => {
                        shared
                            .state
                            .metrics
                            .handler_panics
                            .fetch_add(1, Ordering::Relaxed);
                        Response::error(500, "internal error: request handler panicked")
                    }
                };
                shared.state.metrics.record_status(response.status);

                let keep_alive = !request.wants_close() && !shared.draining();
                if write_response(&mut write_half, &response, keep_alive).is_err() || !keep_alive {
                    return;
                }
            }
            Ok(Err(NoRequest::Closed | NoRequest::StopWaiting)) => return,
            Err(BadRequest(message)) => {
                let status = if message.contains("too large") {
                    431
                } else {
                    400
                };
                let response = Response::error(status, &message);
                shared.state.metrics.record_status(status);
                let _ = write_response(&mut write_half, &response, false);
                // Closing with unread request bytes (e.g. an oversized body
                // we refused to read) can RST the connection before the
                // client sees the response; drain a bounded amount first.
                discard_pending(&mut reader);
                return;
            }
        }
    }
}

/// Reads and discards whatever the peer already sent, up to 1 MiB,
/// stopping at the first timeout tick.
fn discard_pending(reader: &mut io::BufReader<TcpStream>) {
    use io::Read as _;
    let mut scratch = [0u8; 8192];
    let mut discarded = 0usize;
    while discarded < 1 << 20 {
        match reader.read(&mut scratch) {
            Ok(0) | Err(_) => return,
            Ok(n) => discarded += n,
        }
    }
}
