//! caqr-serve: the CaQR compile-and-simulate network service.
//!
//! A hand-rolled HTTP/1.1 server on `std::net` (the build environment
//! vendors no async runtime or HTTP stack) exposing the batch engine and
//! the Monte-Carlo simulator over five endpoints:
//!
//! | endpoint | method | body |
//! |---|---|---|
//! | `/v1/compile` | POST | one circuit (wire JSON or OpenQASM) + strategy/device/router |
//! | `/v1/compile-batch` | POST | a job array, compiled by the shared engine pool |
//! | `/v1/simulate` | POST | circuit + shots/seed/noise |
//! | `/healthz` | GET | — |
//! | `/metrics` | GET | — |
//!
//! The serving qualities, each with a dedicated mechanism:
//!
//! * **Admission control** — accepted connections enter a bounded queue;
//!   when it is full the acceptor answers `429` with `Retry-After` instead
//!   of letting latency collapse ([`server`]).
//! * **Deadlines** — every request gets a [`caqr::CancelToken`] deadline;
//!   compilation checks it between passes, simulation between shot chunks,
//!   and an overrun answers `504` while the worker survives to take the
//!   next request ([`handlers`]).
//! * **Panic isolation** — each request runs under `catch_unwind`; a panic
//!   answers `500`, and a supervisor replaces any worker thread that dies
//!   anyway ([`server`]).
//! * **Graceful shutdown** — SIGTERM (or [`server::ShutdownHandle`]) stops
//!   the acceptor, drains queued and in-flight requests, answers `503` to
//!   keep-alive requests arriving mid-drain, then exits 0 ([`signal`],
//!   [`server`]).
//!
//! Compile responses embed the compiled circuit in wire form with exact
//! float round-tripping, so the bytes a client decodes are bit-identical
//! to an in-process [`caqr_engine::Engine::run`] — the property the
//! integration suite pins across the full golden corpus.

// The one unsafe exception lives in `signal`: registering a SIGTERM
// handler needs libc's `signal(2)`, which std links but does not expose.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod handlers;
pub mod http;
pub mod metrics;
pub mod server;
pub mod signal;

pub use server::{Server, ServerConfig, ShutdownHandle};
