//! caqr-serve: the CaQR compile-and-simulate network service.
//!
//! A hand-rolled HTTP/1.1 server on `std::net` (the build environment
//! vendors no async runtime or HTTP stack) exposing the batch engine and
//! the Monte-Carlo simulator over five endpoints:
//!
//! | endpoint | method | body |
//! |---|---|---|
//! | `/v1/compile` | POST | one circuit (wire JSON or OpenQASM) + strategy/device/router/routing_backend |
//! | `/v1/compile-batch` | POST | a job array, compiled by the shared engine pool |
//! | `/v1/simulate` | POST | circuit + shots/seed/noise |
//! | `/healthz` | GET | — |
//! | `/metrics` | GET | — |
//!
//! Two transports serve the same handlers ([`server::Backend`]): the
//! default **reactor** — N shard threads running a `poll(2)` readiness
//! loop (caqr-reactor) over non-blocking per-connection state machines
//! ([`conn`] + the private `event_loop` module), with `SO_REUSEPORT`
//! listener sharding at `shards > 1` — and the portable **threaded**
//! fallback (the private `threaded` module), thread-per-connection with
//! blocking I/O.
//!
//! The serving qualities, each with a dedicated mechanism:
//!
//! * **Admission control** — compute requests enter a bounded worker
//!   queue; when it is full the transport answers `429` with
//!   `Retry-After` instead of letting latency collapse. The reactor also
//!   caps open connections ([`server::ServerConfig::max_connections`]).
//! * **Deadlines** — every request gets a [`caqr::CancelToken`] deadline;
//!   compilation checks it between passes, simulation between shot chunks,
//!   and an overrun answers `504` while the worker survives to take the
//!   next request ([`handlers`]).
//! * **Panic isolation** — each request runs under `catch_unwind`; a panic
//!   answers `500`, and a worker thread that dies anyway respawns itself
//!   via a drop guard (both transports).
//! * **Slow-client eviction** — the reactor's timer wheel evicts
//!   connections that idle past the keep-alive window or dribble a
//!   request in slower than [`server::ServerConfig::request_stall`]
//!   (slow-loris posture).
//! * **Graceful shutdown** — SIGTERM (or [`server::ShutdownHandle`]) stops
//!   admission, drains queued and in-flight requests, answers `503` to
//!   requests arriving mid-drain, then exits 0 ([`signal`], [`server`]).
//!
//! Compile responses embed the compiled circuit in wire form with exact
//! float round-tripping, so the bytes a client decodes are bit-identical
//! to an in-process [`caqr_engine::Engine::run`] — the property the
//! integration suite pins across the full golden corpus. Identical
//! request bodies are answered from a whole-response cache ([`respcache`])
//! without re-running the engine, preserving those exact bytes.

// The one unsafe exception lives in `signal`: registering a SIGTERM
// handler needs libc's `signal(2)`, which std links but does not expose.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod conn;
mod event_loop;
pub mod handlers;
pub mod http;
pub mod loadgen;
pub mod metrics;
pub mod respcache;
pub mod server;
pub mod signal;
mod threaded;

pub use server::{Backend, Server, ServerConfig, ShutdownHandle};
