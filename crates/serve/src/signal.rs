//! Process-signal plumbing for graceful shutdown.
//!
//! On Unix this registers handlers for SIGTERM and SIGINT that set a
//! process-wide flag and poke a self-pipe; the server binary parks in
//! [`wait_for_shutdown`] (no polling) and begins its drain sequence when
//! the pipe wakes it. Elsewhere the functions exist but signals never
//! fire, so callers need no platform branches.
//!
//! The build environment vendors no `libc`/`signal-hook` crate, so the
//! Unix path declares `signal(2)` itself — std already links libc. The
//! handler body is an atomic store plus one `write(2)` down the pipe
//! ([`caqr_reactor::notify_raw`]), both async-signal-safe.

use caqr_reactor::WakePipe;
use std::sync::atomic::{AtomicBool, AtomicI32, Ordering};
use std::sync::OnceLock;

static SHUTDOWN: AtomicBool = AtomicBool::new(false);
/// Write end of the wake pipe, published for the signal handler; `-1`
/// until [`install_handlers`] runs.
static WAKE_WRITE_FD: AtomicI32 = AtomicI32::new(-1);

fn wake_pipe() -> Option<&'static WakePipe> {
    static PIPE: OnceLock<Option<WakePipe>> = OnceLock::new();
    PIPE.get_or_init(|| {
        let pipe = WakePipe::new().ok()?;
        WAKE_WRITE_FD.store(pipe.write_fd(), Ordering::SeqCst);
        Some(pipe)
    })
    .as_ref()
}

/// `true` once a termination signal has been received (or
/// [`request_shutdown`] was called).
pub fn shutdown_requested() -> bool {
    SHUTDOWN.load(Ordering::SeqCst)
}

/// Sets the shutdown flag programmatically — what a signal would do —
/// and wakes any [`wait_for_shutdown`] parker.
pub fn request_shutdown() {
    SHUTDOWN.store(true, Ordering::SeqCst);
    if let Some(pipe) = wake_pipe() {
        pipe.notify();
    }
}

/// Parks the calling thread until shutdown is requested. Returns
/// immediately if it already was. Falls back to a coarse sleep loop when
/// the platform has no wake pipe.
pub fn wait_for_shutdown() {
    while !shutdown_requested() {
        match wake_pipe() {
            // A bounded wait, not infinite: the pipe write is best-effort
            // (a full pipe drops the byte), so re-check the flag each lap.
            Some(pipe) => {
                let _ = pipe.wait(1000);
            }
            None => std::thread::sleep(std::time::Duration::from_millis(50)),
        }
    }
}

#[cfg(unix)]
#[allow(unsafe_code)]
mod imp {
    use std::sync::atomic::Ordering;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        // An atomic store and a single write(2): both async-signal-safe.
        super::SHUTDOWN.store(true, Ordering::SeqCst);
        let fd = super::WAKE_WRITE_FD.load(Ordering::SeqCst);
        if fd >= 0 {
            caqr_reactor::notify_raw(fd);
        }
    }

    pub fn install() {
        // SAFETY: `signal(2)` with a handler restricted to async-signal-
        // safe operations; no allocation, locking, or buffered I/O happens
        // in signal context.
        unsafe {
            signal(SIGTERM, on_signal);
            signal(SIGINT, on_signal);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    pub fn install() {}
}

/// Installs the SIGTERM/SIGINT handlers (no-op off Unix) and creates the
/// wake pipe they notify. Idempotent.
pub fn install_handlers() {
    let _ = wake_pipe();
    imp::install();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_shutdown_flips_the_flag_and_unparks() {
        // Runs in-process with other tests; only assert the one-way flip.
        install_handlers();
        request_shutdown();
        assert!(shutdown_requested());
        wait_for_shutdown(); // must return immediately, not park
    }
}
