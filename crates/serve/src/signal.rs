//! Process-signal plumbing for graceful shutdown.
//!
//! On Unix this registers handlers for SIGTERM and SIGINT that set a
//! process-wide flag; the server binary polls [`shutdown_requested`] and
//! begins its drain sequence when it flips. Elsewhere the functions exist
//! but never fire, so callers need no platform branches.
//!
//! The build environment vendors no `libc`/`signal-hook` crate, so the
//! Unix path declares `signal(2)` itself — std already links libc. The
//! handler body only stores to an atomic, which is async-signal-safe.

use std::sync::atomic::{AtomicBool, Ordering};

static SHUTDOWN: AtomicBool = AtomicBool::new(false);

/// `true` once a termination signal has been received (or
/// [`request_shutdown`] was called).
pub fn shutdown_requested() -> bool {
    SHUTDOWN.load(Ordering::SeqCst)
}

/// Sets the shutdown flag programmatically — what a signal would do.
pub fn request_shutdown() {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

#[cfg(unix)]
#[allow(unsafe_code)]
mod imp {
    use std::sync::atomic::Ordering;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        // Only an atomic store: async-signal-safe.
        super::SHUTDOWN.store(true, Ordering::SeqCst);
    }

    pub fn install() {
        // SAFETY: `signal(2)` with a handler that performs a single atomic
        // store; no allocation, locking, or I/O happens in signal context.
        unsafe {
            signal(SIGTERM, on_signal);
            signal(SIGINT, on_signal);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    pub fn install() {}
}

/// Installs the SIGTERM/SIGINT handlers (no-op off Unix). Idempotent.
pub fn install_handlers() {
    imp::install();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_shutdown_flips_the_flag() {
        // Runs in-process with other tests; only assert the one-way flip.
        install_handlers();
        request_shutdown();
        assert!(shutdown_requested());
    }
}
