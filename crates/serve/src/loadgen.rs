//! The high-concurrency load-generation engine behind `caqr-loadgen`.
//!
//! One thread drives every client connection through a
//! [`caqr_reactor::Poller`] — 512 keep-alive connections cost 512 sockets,
//! not 512 threads. Two pacing modes:
//!
//! * **Closed loop** (`rate: None`) — each connection sends its next
//!   request the moment the previous response lands. Measures capacity;
//!   at high concurrency, latency is concurrency/throughput by Little's
//!   law, whatever the server does.
//! * **Open loop** (`rate: Some(r)`) — arrivals are scheduled at `r`
//!   requests/second across the fleet, independent of responses. Measures
//!   latency at a fixed offered load, the way real traffic does.
//!
//! Connections are established over a configurable ramp window (so a
//! 512-connection run does not land as one accept burst), and every
//! connection keeps its own error tally; a connection that fails
//! repeatedly in a row is parked instead of reconnect-storming the
//! server.

use caqr_reactor::{Event, Interest, Poller, Token};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// One prepared request, reused for the whole run.
#[derive(Debug, Clone)]
pub struct Shot {
    /// Request path (the event engine replays `bytes` verbatim; the
    /// blocking fallback re-sends `path` + `body`).
    pub path: String,
    /// The full serialized request, framing included.
    pub bytes: Vec<u8>,
    /// The unframed request body — what the server's handler receives.
    pub body: Vec<u8>,
    /// `Some(n)`: the body is framed as `Transfer-Encoding: chunked`
    /// with one frame per `n` bytes; `None`: plain `Content-Length`.
    pub chunk_size: Option<usize>,
}

impl Shot {
    /// Builds a keep-alive `POST` with the standard headers.
    pub fn post(path: &str, body: &[u8]) -> Shot {
        let mut bytes = Vec::with_capacity(body.len() + 128);
        let head = format!(
            "POST {path} HTTP/1.1\r\nHost: loadgen\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n",
            body.len()
        );
        bytes.extend_from_slice(head.as_bytes());
        bytes.extend_from_slice(body);
        Shot {
            path: path.to_string(),
            bytes,
            body: body.to_vec(),
            chunk_size: None,
        }
    }

    /// Builds a keep-alive `POST` whose body is framed as
    /// `Transfer-Encoding: chunked`, one frame per `chunk_size` slice —
    /// keeps the server's incremental body-assembly path under load.
    pub fn post_chunked(path: &str, body: &[u8], chunk_size: usize) -> Shot {
        let chunk_size = chunk_size.max(1);
        let chunks: Vec<&[u8]> = body.chunks(chunk_size).collect();
        let framed = caqr_wire::chunked::encode(&chunks);
        let head = format!(
            "POST {path} HTTP/1.1\r\nHost: loadgen\r\nContent-Type: application/octet-stream\r\nTransfer-Encoding: chunked\r\n\r\n"
        );
        let mut bytes = Vec::with_capacity(head.len() + framed.len());
        bytes.extend_from_slice(head.as_bytes());
        bytes.extend_from_slice(&framed);
        Shot {
            path: path.to_string(),
            bytes,
            body: body.to_vec(),
            chunk_size: Some(chunk_size),
        }
    }
}

/// Knobs for one load run.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Server address.
    pub addr: SocketAddr,
    /// Concurrent keep-alive connections.
    pub connections: usize,
    /// Wall-clock run length (measured from the start of the ramp).
    pub duration: Duration,
    /// Window over which connections are established.
    pub ramp: Duration,
    /// Open-loop arrival rate in requests/second across all connections;
    /// `None` runs closed-loop.
    pub rate: Option<f64>,
}

/// Per-connection accounting.
#[derive(Debug, Default, Clone)]
pub struct ConnStats {
    /// Responses received, any status.
    pub responses: u64,
    /// 2xx responses.
    pub ok: u64,
    /// 4xx responses.
    pub errors_4xx: u64,
    /// 5xx responses.
    pub errors_5xx: u64,
    /// Connect failures, resets, and short reads.
    pub transport_errors: u64,
    /// The connection hit `PARK_AFTER` (100) consecutive transport errors
    /// and was taken out of service.
    pub parked: bool,
}

/// Everything a run produced.
#[derive(Debug)]
pub struct LoadReport {
    /// Latency of every 2xx response, microseconds, unsorted.
    pub latencies_us: Vec<u64>,
    /// Totals across connections (same split as [`ConnStats`]).
    pub responses: u64,
    /// 2xx responses.
    pub ok: u64,
    /// 4xx responses.
    pub errors_4xx: u64,
    /// 5xx responses.
    pub errors_5xx: u64,
    /// Transport failures.
    pub transport_errors: u64,
    /// Actual wall-clock time spent.
    pub elapsed: Duration,
    /// Per-connection tallies.
    pub per_conn: Vec<ConnStats>,
}

/// Consecutive transport errors before a connection is parked.
const PARK_AFTER: u64 = 100;

#[derive(Debug, PartialEq, Eq, Clone, Copy)]
enum CState {
    /// Waiting for its (re)connect time.
    Disconnected,
    /// Writing a request.
    Sending,
    /// Waiting for the response.
    Receiving,
    /// Open loop: connected, waiting for the next scheduled send.
    Idle,
    /// Out of service after repeated failures.
    Parked,
}

struct CConn {
    stream: Option<TcpStream>,
    state: CState,
    registered: bool,
    out_cursor: usize,
    shot: usize,
    inbuf: Vec<u8>,
    sent_at: Instant,
    /// When to (re)connect (ramp / backoff) or send next (open loop).
    due: Instant,
    consecutive_errors: u64,
    stats: ConnStats,
}

/// Runs one load generation pass. `shots` are cycled round-robin across
/// the whole fleet so every connection sees the full mix.
///
/// # Errors
///
/// Poller creation failure (`Unsupported` off Unix) — individual
/// connection failures are accounted, not returned.
pub fn run(config: &LoadConfig, shots: &[Shot]) -> io::Result<LoadReport> {
    assert!(!shots.is_empty(), "loadgen needs at least one shot");
    let mut poller = Poller::new()?;
    let started = Instant::now();
    let deadline = started + config.duration;
    let connections = config.connections.max(1);
    // Open loop: one global interval, phase-staggered per connection.
    let send_interval = config
        .rate
        .map(|rate| Duration::from_secs_f64(1.0 / rate.max(0.001)));

    let mut conns: Vec<CConn> = (0..connections)
        .map(|i| CConn {
            stream: None,
            state: CState::Disconnected,
            registered: false,
            out_cursor: 0,
            shot: 0,
            inbuf: Vec::new(),
            sent_at: started,
            due: started + config.ramp.mul_f64(i as f64 / connections as f64),
            consecutive_errors: 0,
            stats: ConnStats::default(),
        })
        .collect();
    let mut next_shot = 0usize;
    let mut latencies: Vec<u64> = Vec::new();
    let mut events: Vec<Event> = Vec::new();

    while Instant::now() < deadline {
        let now = Instant::now();
        // Connect / send whatever is due. Indexed access (not iter_mut)
        // because the helpers each need one connection plus the poller.
        #[allow(clippy::needless_range_loop)]
        for index in 0..conns.len() {
            match conns[index].state {
                CState::Disconnected if conns[index].due <= now => {
                    connect(&mut conns[index], index, config, &mut poller, now);
                    if conns[index].state == CState::Idle {
                        // Open loop: first send is due right away, phased.
                        let phase = send_interval
                            .map(|iv| iv.mul_f64(index as f64 / connections as f64))
                            .unwrap_or_default();
                        conns[index].due = now + phase;
                    }
                    if send_interval.is_none() && conns[index].state != CState::Disconnected {
                        begin_send(
                            &mut conns[index],
                            index,
                            shots,
                            &mut next_shot,
                            &mut poller,
                            &mut latencies,
                        );
                    }
                }
                CState::Idle if conns[index].due <= now => {
                    begin_send(
                        &mut conns[index],
                        index,
                        shots,
                        &mut next_shot,
                        &mut poller,
                        &mut latencies,
                    );
                    if let Some(interval) = send_interval {
                        // Schedule from the previous due time, not `now`,
                        // so the offered rate does not drift under load.
                        let fleet_interval = interval.mul_f64(connections as f64);
                        conns[index].due += fleet_interval;
                        if conns[index].due < now {
                            conns[index].due = now; // don't accumulate a burst backlog
                        }
                    }
                }
                _ => {}
            }
        }

        // Park until the next scheduled action, readiness, or deadline.
        let mut wake = deadline;
        for conn in &conns {
            if matches!(conn.state, CState::Disconnected | CState::Idle) && conn.due < wake {
                wake = conn.due;
            }
        }
        let now = Instant::now();
        let timeout = wake
            .saturating_duration_since(now)
            .min(Duration::from_millis(500));
        poller.poll(&mut events, Some(timeout))?;

        for event in &events {
            let index = event.token.0;
            if index >= conns.len() {
                continue;
            }
            match conns[index].state {
                CState::Sending if event.writable || event.closed => {
                    continue_send(&mut conns[index], index, shots, &mut poller);
                }
                CState::Receiving | CState::Idle if event.readable || event.closed => {
                    on_readable(
                        &mut conns[index],
                        index,
                        shots,
                        &mut next_shot,
                        &mut poller,
                        &mut latencies,
                        send_interval,
                    );
                }
                _ => {}
            }
        }
    }

    let mut report = LoadReport {
        latencies_us: latencies,
        responses: 0,
        ok: 0,
        errors_4xx: 0,
        errors_5xx: 0,
        transport_errors: 0,
        elapsed: started.elapsed(),
        per_conn: Vec::with_capacity(conns.len()),
    };
    for conn in conns {
        report.responses += conn.stats.responses;
        report.ok += conn.stats.ok;
        report.errors_4xx += conn.stats.errors_4xx;
        report.errors_5xx += conn.stats.errors_5xx;
        report.transport_errors += conn.stats.transport_errors;
        report.per_conn.push(conn.stats);
    }
    Ok(report)
}

fn connect(conn: &mut CConn, index: usize, config: &LoadConfig, poller: &mut Poller, now: Instant) {
    // Loopback connects resolve in microseconds; a blocking connect with a
    // timeout keeps the engine free of connect-in-progress states.
    match TcpStream::connect_timeout(&config.addr, Duration::from_secs(2)) {
        Ok(stream) => {
            if stream.set_nonblocking(true).is_err() {
                transport_failure(conn, index, poller, now);
                return;
            }
            let _ = stream.set_nodelay(true);
            if conn.registered {
                poller.deregister(Token(index));
                conn.registered = false;
            }
            if poller
                .register(&stream, Token(index), Interest::READABLE)
                .is_err()
            {
                transport_failure(conn, index, poller, now);
                return;
            }
            conn.registered = true;
            conn.stream = Some(stream);
            conn.inbuf.clear();
            conn.state = CState::Idle;
        }
        Err(_) => transport_failure(conn, index, poller, now),
    }
}

fn transport_failure(conn: &mut CConn, index: usize, poller: &mut Poller, now: Instant) {
    conn.stats.transport_errors += 1;
    conn.consecutive_errors += 1;
    if conn.registered {
        poller.deregister(Token(index));
        conn.registered = false;
    }
    conn.stream = None;
    conn.inbuf.clear();
    if conn.consecutive_errors >= PARK_AFTER {
        conn.stats.parked = true;
        conn.state = CState::Parked;
    } else {
        conn.state = CState::Disconnected;
        conn.due = now + Duration::from_millis(10 * conn.consecutive_errors.min(20));
    }
}

fn begin_send(
    conn: &mut CConn,
    index: usize,
    shots: &[Shot],
    next_shot: &mut usize,
    poller: &mut Poller,
    _latencies: &mut [u64],
) {
    conn.shot = *next_shot % shots.len();
    *next_shot += 1;
    conn.out_cursor = 0;
    conn.sent_at = Instant::now();
    conn.state = CState::Sending;
    continue_send(conn, index, shots, poller);
}

fn continue_send(conn: &mut CConn, index: usize, shots: &[Shot], poller: &mut Poller) {
    let bytes = &shots[conn.shot].bytes;
    loop {
        let Some(stream) = conn.stream.as_mut() else {
            return;
        };
        if conn.out_cursor >= bytes.len() {
            conn.state = CState::Receiving;
            let _ = poller.reregister(Token(index), Interest::READABLE);
            return;
        }
        match stream.write(&bytes[conn.out_cursor..]) {
            Ok(0) => {
                transport_failure(conn, index, poller, Instant::now());
                return;
            }
            Ok(n) => conn.out_cursor += n,
            Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => {
                let _ = poller.reregister(Token(index), Interest::WRITABLE);
                return;
            }
            Err(ref e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => {
                transport_failure(conn, index, poller, Instant::now());
                return;
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn on_readable(
    conn: &mut CConn,
    index: usize,
    shots: &[Shot],
    next_shot: &mut usize,
    poller: &mut Poller,
    latencies: &mut Vec<u64>,
    send_interval: Option<Duration>,
) {
    let mut scratch = [0u8; 16 * 1024];
    loop {
        let Some(stream) = conn.stream.as_mut() else {
            return;
        };
        match stream.read(&mut scratch) {
            Ok(0) => {
                if conn.state == CState::Idle {
                    // The server closed an idle keep-alive connection
                    // (eviction or drain): reconnect, not an error.
                    if conn.registered {
                        poller.deregister(Token(index));
                        conn.registered = false;
                    }
                    conn.stream = None;
                    conn.inbuf.clear();
                    conn.state = CState::Disconnected;
                    conn.due = Instant::now();
                } else {
                    transport_failure(conn, index, poller, Instant::now());
                }
                return;
            }
            Ok(n) => conn.inbuf.extend_from_slice(&scratch[..n]),
            Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(ref e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => {
                transport_failure(conn, index, poller, Instant::now());
                return;
            }
        }
    }

    while conn.state == CState::Receiving {
        let Some((status, close, total)) = parse_response(&conn.inbuf) else {
            return; // incomplete; wait for more bytes
        };
        conn.inbuf.drain(..total);
        conn.consecutive_errors = 0;
        conn.stats.responses += 1;
        match status {
            200..=299 => {
                conn.stats.ok += 1;
                latencies.push(conn.sent_at.elapsed().as_micros() as u64);
            }
            400..=499 => conn.stats.errors_4xx += 1,
            _ => conn.stats.errors_5xx += 1,
        }
        if close {
            if conn.registered {
                poller.deregister(Token(index));
                conn.registered = false;
            }
            conn.stream = None;
            conn.inbuf.clear();
            conn.state = CState::Disconnected;
            conn.due = Instant::now();
            return;
        }
        if send_interval.is_some() {
            conn.state = CState::Idle; // `due` was already advanced
        } else {
            begin_send(conn, index, shots, next_shot, poller, latencies);
        }
    }
}

/// Parses one buffered response: `Some((status, connection_close,
/// total_len))` once the head and `Content-Length` body are complete.
fn parse_response(buf: &[u8]) -> Option<(u16, bool, usize)> {
    let head_end = buf.windows(4).position(|w| w == b"\r\n\r\n")? + 4;
    let head = std::str::from_utf8(&buf[..head_end]).ok()?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next()?;
    let status: u16 = status_line.split_whitespace().nth(1)?.parse().ok()?;
    let mut content_length = 0usize;
    let mut close = false;
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim();
        if name == "content-length" {
            content_length = value.parse().ok()?;
        } else if name == "connection" && value.eq_ignore_ascii_case("close") {
            close = true;
        }
    }
    let total = head_end + content_length;
    (buf.len() >= total).then_some((status, close, total))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_response_handles_split_arrivals() {
        let full = b"HTTP/1.1 200 OK\r\nContent-Length: 5\r\nConnection: keep-alive\r\n\r\nhello";
        assert_eq!(parse_response(&full[..10]), None);
        assert_eq!(parse_response(&full[..full.len() - 1]), None);
        assert_eq!(parse_response(full), Some((200, false, full.len())));
    }

    #[test]
    fn parse_response_flags_connection_close() {
        let full =
            b"HTTP/1.1 503 Service Unavailable\r\nContent-Length: 2\r\nConnection: close\r\n\r\n{}";
        assert_eq!(parse_response(full), Some((503, true, full.len())));
    }

    #[test]
    fn shots_serialize_with_content_length() {
        let shot = Shot::post("/v1/compile", b"{\"x\":1}");
        let text = String::from_utf8(shot.bytes.clone()).unwrap();
        assert!(text.starts_with("POST /v1/compile HTTP/1.1\r\n"));
        assert!(text.contains("Content-Length: 7\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"x\":1}"));
    }

    #[test]
    fn chunked_shots_frame_the_body() {
        let shot = Shot::post_chunked("/v1/compile-stream", b"qreg q[2];\n", 4);
        let text = String::from_utf8(shot.bytes.clone()).unwrap();
        assert!(text.starts_with("POST /v1/compile-stream HTTP/1.1\r\n"));
        assert!(text.contains("Transfer-Encoding: chunked\r\n"));
        assert!(!text.contains("Content-Length"));
        // 11 body bytes in 4-byte frames: 4, 4, 3, then the terminal chunk.
        assert!(text.ends_with("4\r\nqreg\r\n4\r\n q[2\r\n3\r\n];\n\r\n0\r\n\r\n"));
    }
}
