//! A body-addressed cache of whole success responses.
//!
//! Every compute endpoint is a deterministic pure function of its request
//! body: compilation is seeded and pass-ordered, simulation is seeded
//! Monte-Carlo. Two requests with byte-identical bodies therefore get
//! byte-identical `200` responses — so the serve tier can answer a repeat
//! request from cache without touching the engine, the device builder, or
//! the JSON encoder. This is what lets the reactor answer steady-state
//! traffic inline on the event-loop thread at microsecond cost.
//!
//! The one field that legitimately differs between a first and a repeat
//! compile response is `"cache_hit"`. Entries record where the literal
//! `false` sits in the stored bytes; a hit splices `true` into that spot,
//! reproducing exactly the bytes the engine path would have produced on
//! its own cache hit (the golden-corpus byte-identity property survives).
//!
//! Only `200` responses to `/v1/compile` and `/v1/simulate` are cached.
//! Errors are cheap to recompute and must reflect current server state;
//! batch responses are large, rarer, and carry per-entry `cache_hit`
//! fields, so they go to the engine every time.

use std::collections::HashMap;
use std::sync::Mutex;

struct Inner {
    map: HashMap<u128, Entry>,
    capacity: usize,
    tick: u64,
}

struct Entry {
    body: Vec<u8>,
    /// Byte offset of the literal `false` following `"cache_hit":`, when
    /// the body carries that field.
    hit_splice: Option<usize>,
    last_used: u64,
}

/// A content-addressed LRU over full response bodies, keyed by a 128-bit
/// fingerprint of (endpoint, request body). Same recency discipline as
/// the engine's `CompileCache`: a monotone tick, min-scan eviction.
#[derive(Debug)]
pub struct ResponseCache {
    inner: Mutex<Inner>,
}

impl std::fmt::Debug for Inner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Inner")
            .field("entries", &self.map.len())
            .field("capacity", &self.capacity)
            .finish()
    }
}

impl ResponseCache {
    /// A cache holding at most `capacity` responses.
    pub fn new(capacity: usize) -> ResponseCache {
        ResponseCache {
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                capacity: capacity.max(1),
                tick: 0,
            }),
        }
    }

    /// The response body for this (endpoint, request body), if cached.
    /// Compile entries come back with `"cache_hit":true` spliced in.
    pub fn lookup(&self, endpoint: u8, request_body: &[u8]) -> Option<Vec<u8>> {
        let key = fingerprint(endpoint, request_body);
        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;
        let entry = inner.map.get_mut(&key)?;
        entry.last_used = tick;
        Some(match entry.hit_splice {
            None => entry.body.clone(),
            Some(at) => {
                let mut body = Vec::with_capacity(entry.body.len());
                body.extend_from_slice(&entry.body[..at]);
                body.extend_from_slice(b"true");
                body.extend_from_slice(&entry.body[at + b"false".len()..]);
                body
            }
        })
    }

    /// Stores a success response body. The `"cache_hit":false` marker, if
    /// present, is located now so hits splice in O(len) with no search.
    pub fn store(&self, endpoint: u8, request_body: &[u8], response_body: &[u8]) {
        let key = fingerprint(endpoint, request_body);
        // `"cache_hit"` precedes the (string-escaped) circuit field in the
        // response object, and JSON string escaping means the raw marker
        // bytes cannot appear inside any string value — the first match is
        // always the real field.
        const MARKER: &[u8] = b"\"cache_hit\":false";
        let hit_splice = find(response_body, MARKER).map(|at| at + MARKER.len() - b"false".len());

        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;
        if inner.map.len() >= inner.capacity && !inner.map.contains_key(&key) {
            if let Some(&oldest) = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k)
            {
                inner.map.remove(&oldest);
            }
        }
        inner.map.insert(
            key,
            Entry {
                body: response_body.to_vec(),
                hit_splice,
                last_used: tick,
            },
        );
    }

    /// The number of cached responses.
    pub fn len(&self) -> usize {
        self.lock().map.len()
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

fn find(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    haystack
        .windows(needle.len())
        .position(|window| window == needle)
}

/// FNV-1a over (endpoint, body), widened to 128 bits — the same
/// content-addressing idea as the engine's compile-cache fingerprints.
fn fingerprint(endpoint: u8, body: &[u8]) -> u128 {
    const OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
    const PRIME: u128 = 0x0000000001000000000000000000013b;
    let mut hash = OFFSET;
    hash ^= endpoint as u128;
    hash = hash.wrapping_mul(PRIME);
    for &byte in body {
        hash ^= byte as u128;
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splices_cache_hit_and_leaves_plain_bodies_alone() {
        let cache = ResponseCache::new(4);
        let response = br#"{"ok":true,"cache_hit":false,"circuit":{}}"#;
        cache.store(1, b"req", response);
        let hit = cache.lookup(1, b"req").unwrap();
        assert_eq!(
            hit,
            br#"{"ok":true,"cache_hit":true,"circuit":{}}"#.to_vec()
        );

        cache.store(2, b"sim", br#"{"shots":16,"counts":{"0":16}}"#);
        let plain = cache.lookup(2, b"sim").unwrap();
        assert_eq!(plain, br#"{"shots":16,"counts":{"0":16}}"#.to_vec());
    }

    #[test]
    fn endpoint_and_body_both_address_the_entry() {
        let cache = ResponseCache::new(4);
        cache.store(1, b"body", b"compile");
        assert!(cache.lookup(2, b"body").is_none(), "endpoint is in the key");
        assert!(cache.lookup(1, b"other").is_none(), "body is in the key");
        assert_eq!(cache.lookup(1, b"body").unwrap(), b"compile".to_vec());
    }

    #[test]
    fn evicts_least_recently_used() {
        let cache = ResponseCache::new(2);
        cache.store(1, b"a", b"ra");
        cache.store(1, b"b", b"rb");
        cache.lookup(1, b"a"); // refresh a
        cache.store(1, b"c", b"rc"); // evicts b
        assert_eq!(cache.len(), 2);
        assert!(cache.lookup(1, b"b").is_none());
        assert!(cache.lookup(1, b"a").is_some());
        assert!(cache.lookup(1, b"c").is_some());
    }
}
