//! End-to-end tests: a real server on an ephemeral port, driven through
//! real sockets by the crate's own client.

use caqr::Strategy;
use caqr_arch::Device;
use caqr_circuit::{qasm, Circuit, Clbit, Qubit};
use caqr_engine::{BatchRequest, CompileJob, Engine};
use caqr_serve::client::Client;
use caqr_serve::http::HttpLimits;
use caqr_serve::{Server, ServerConfig};
use caqr_wire::circuit::circuit_to_value;
use caqr_wire::{parse, Value};
use std::time::Duration;

fn quick_config() -> ServerConfig {
    ServerConfig {
        workers: 2,
        keep_alive_idle: Duration::from_secs(5),
        drain_grace: Duration::from_secs(2),
        ..ServerConfig::default()
    }
}

fn start(config: ServerConfig) -> (Server, Client) {
    let server = Server::bind(config).expect("bind ephemeral port");
    let client = Client::connect(server.local_addr()).with_timeout(Duration::from_secs(60));
    (server, client)
}

fn bell() -> Circuit {
    let mut c = Circuit::new(2, 2);
    c.h(Qubit::new(0));
    c.cx(Qubit::new(0), Qubit::new(1));
    c.measure_all();
    c
}

fn body_json(body: &[u8]) -> Value {
    parse(std::str::from_utf8(body).expect("utf-8 response")).expect("JSON response")
}

#[test]
fn healthz_metrics_and_routing() {
    let (server, mut client) = start(quick_config());

    let health = client.get("/healthz").unwrap();
    assert_eq!(health.status, 200);
    assert_eq!(
        body_json(&health.body)
            .get("status")
            .and_then(Value::as_str),
        Some("ok")
    );

    let missing = client.get("/nope").unwrap();
    assert_eq!(missing.status, 404);

    let wrong_method = client.post("/healthz", b"{}").unwrap();
    assert_eq!(wrong_method.status, 405);

    let metrics = client.get("/metrics").unwrap();
    assert_eq!(metrics.status, 200);
    let parsed = body_json(&metrics.body);
    let engine = parsed.get("engine").expect("engine object");
    assert_eq!(engine.get("type").and_then(Value::as_str), Some("metrics"));
    assert!(engine.get("queue_wait_us").is_some());
    assert!(engine.get("compile_us").is_some());
    assert!(parsed
        .get("server")
        .and_then(|s| s.get("requests_total"))
        .is_some());

    server.shutdown_handle().shutdown();
    server.join();
}

#[test]
fn compile_accepts_qasm_and_wire_forms() {
    let (server, mut client) = start(quick_config());

    let qasm_body = format!(
        r#"{{"qasm":{},"strategy":"sr","name":"bell-qasm"}}"#,
        caqr_wire::Value::str(qasm::to_qasm(&bell())).encode()
    );
    let from_qasm = client.post("/v1/compile", qasm_body.as_bytes()).unwrap();
    assert_eq!(from_qasm.status, 200, "{}", from_qasm.text());
    let parsed = body_json(&from_qasm.body);
    assert_eq!(parsed.get("ok").and_then(Value::as_bool), Some(true));
    assert_eq!(
        parsed.get("name").and_then(Value::as_str),
        Some("bell-qasm")
    );

    let wire_body = format!(r#"{{"circuit":{}}}"#, circuit_to_value(&bell()).encode());
    let from_wire = client.post("/v1/compile", wire_body.as_bytes()).unwrap();
    assert_eq!(from_wire.status, 200, "{}", from_wire.text());

    // The two forms compile the same logical circuit under the same
    // strategy — identical compiled circuits.
    let a = body_json(&from_qasm.body);
    let b = body_json(&from_wire.body);
    assert_eq!(
        a.get("circuit").unwrap().encode(),
        b.get("circuit").unwrap().encode()
    );

    let bad = client.post("/v1/compile", b"{not json").unwrap();
    assert_eq!(bad.status, 400);

    server.shutdown_handle().shutdown();
    server.join();
}

#[test]
fn batch_and_simulate_endpoints() {
    let (server, mut client) = start(quick_config());

    let circuit = circuit_to_value(&bell()).encode();
    let batch = format!(
        r#"{{"jobs":[{{"circuit":{circuit},"name":"a"}},{{"circuit":{circuit},"name":"b","strategy":"baseline"}}],"workers":2}}"#
    );
    let response = client.post("/v1/compile-batch", batch.as_bytes()).unwrap();
    assert_eq!(response.status, 200, "{}", response.text());
    let parsed = body_json(&response.body);
    let results = parsed.get("results").and_then(Value::as_array).unwrap();
    assert_eq!(results.len(), 2);
    assert_eq!(
        parsed
            .get("metrics")
            .and_then(|m| m.get("jobs_total"))
            .and_then(Value::as_u64),
        Some(2)
    );

    let simulate = format!(r#"{{"circuit":{circuit},"shots":512,"seed":5}}"#);
    let response = client.post("/v1/simulate", simulate.as_bytes()).unwrap();
    assert_eq!(response.status, 200, "{}", response.text());
    let parsed = body_json(&response.body);
    assert_eq!(parsed.get("shots").and_then(Value::as_u64), Some(512));
    let counts = parsed.get("counts").and_then(Value::as_object).unwrap();
    let total: u64 = counts.iter().filter_map(|(_, v)| v.as_u64()).sum();
    assert_eq!(total, 512);
    for (key, _) in counts {
        assert!(key == "0" || key == "3", "bell histogram key {key}");
    }

    server.shutdown_handle().shutdown();
    server.join();
}

#[test]
fn deadline_answers_504_and_the_worker_survives() {
    let (server, mut client) = start(quick_config());

    // timeout_ms 0: the token is expired before the first pass boundary.
    let circuit = circuit_to_value(&bell()).encode();
    let doomed = format!(r#"{{"circuit":{circuit},"timeout_ms":0}}"#);
    let response = client.post("/v1/compile", doomed.as_bytes()).unwrap();
    assert_eq!(response.status, 504, "{}", response.text());

    let doomed_sim = format!(r#"{{"circuit":{circuit},"shots":64,"timeout_ms":0}}"#);
    let response = client.post("/v1/simulate", doomed_sim.as_bytes()).unwrap();
    assert_eq!(response.status, 504, "{}", response.text());

    // The same connection (same worker pool) still serves real work.
    let fine = format!(r#"{{"circuit":{circuit}}}"#);
    let response = client.post("/v1/compile", fine.as_bytes()).unwrap();
    assert_eq!(response.status, 200, "{}", response.text());

    let metrics = body_json(&client.get("/metrics").unwrap().body);
    let deadline_504 = metrics
        .get("server")
        .and_then(|s| s.get("deadline_504"))
        .and_then(Value::as_u64);
    assert_eq!(deadline_504, Some(2));

    server.shutdown_handle().shutdown();
    server.join();
}

#[test]
fn zero_capacity_queue_answers_429_with_retry_after() {
    let config = ServerConfig {
        queue_capacity: 0,
        ..quick_config()
    };
    let (server, mut client) = start(config);

    // The reactor answers routing-only endpoints inline on the shard
    // thread — a full dispatch queue does not take /healthz down.
    let health = client.get("/healthz").unwrap();
    assert_eq!(health.status, 200);

    // Compute work needs a queue slot, and there are none.
    let circuit = circuit_to_value(&bell()).encode();
    let compile = format!(r#"{{"circuit":{circuit}}}"#);
    let response = client.post("/v1/compile", compile.as_bytes()).unwrap();
    assert_eq!(response.status, 429, "{}", response.text());
    assert_eq!(response.header("retry-after"), Some("1"));

    server.shutdown_handle().shutdown();
    server.join();
}

/// The threaded backend keeps its original at-the-door admission: with no
/// queue slots, every request — even /healthz — is turned away.
#[test]
fn threaded_zero_capacity_queue_refuses_at_the_door() {
    let config = ServerConfig {
        backend: caqr_serve::Backend::Threaded,
        queue_capacity: 0,
        ..quick_config()
    };
    let (server, mut client) = start(config);
    let response = client.get("/healthz").unwrap();
    assert_eq!(response.status, 429);
    assert_eq!(response.header("retry-after"), Some("1"));

    server.shutdown_handle().shutdown();
    server.join();
}

/// The full routing surface also works on the threaded backend — the
/// facade keeps both transports answering identically.
#[test]
fn threaded_backend_still_serves() {
    let config = ServerConfig {
        backend: caqr_serve::Backend::Threaded,
        ..quick_config()
    };
    let (server, mut client) = start(config);

    let health = client.get("/healthz").unwrap();
    assert_eq!(health.status, 200);

    let circuit = circuit_to_value(&bell()).encode();
    let compile = format!(r#"{{"circuit":{circuit},"strategy":"sr"}}"#);
    let response = client.post("/v1/compile", compile.as_bytes()).unwrap();
    assert_eq!(response.status, 200, "{}", response.text());
    assert_eq!(
        body_json(&response.body).get("ok").and_then(Value::as_bool),
        Some(true)
    );

    server.shutdown_handle().shutdown();
    server.join();
}

#[test]
fn oversized_body_is_rejected() {
    let config = ServerConfig {
        http_limits: HttpLimits {
            max_body_bytes: 1024,
            ..HttpLimits::default()
        },
        ..quick_config()
    };
    let (server, mut client) = start(config);
    let huge = vec![b'x'; 4096];
    let response = client.post("/v1/compile", &huge).unwrap();
    assert_eq!(response.status, 400, "{}", response.text());

    server.shutdown_handle().shutdown();
    server.join();
}

#[test]
fn shutdown_drains_and_refuses_late_requests() {
    let (server, mut client) = start(quick_config());
    let addr = server.local_addr();

    // A request before shutdown works and keeps the connection alive.
    let ok = client.get("/healthz").unwrap();
    assert_eq!(ok.status, 200);

    let handle = server.shutdown_handle();
    handle.shutdown();
    std::thread::sleep(Duration::from_millis(150));

    // A keep-alive request arriving mid-drain is refused with 503 —
    // either by the draining worker or, if the connection was already
    // reaped, by the drain-accept loop after reconnect.
    let late = client.get("/healthz").unwrap();
    assert_eq!(late.status, 503, "{}", late.text());

    // A brand-new connection during the grace window also sees 503.
    let mut fresh = Client::connect(addr).with_timeout(Duration::from_secs(5));
    let refused = fresh.get("/healthz").unwrap();
    assert_eq!(refused.status, 503, "{}", refused.text());

    // join() returns: the drain completes and every thread exits.
    server.join();
}

/// The tentpole identity: for the full golden corpus (7 benchmarks x 6
/// strategies), the compiled circuit that comes back over the wire is
/// byte-identical to an in-process `Engine::run`, floats included.
#[test]
fn golden_corpus_wire_compile_is_byte_identical() {
    use caqr_benchmarks::qaoa::{qaoa_benchmark, GraphKind};

    let corpus: Vec<(String, Circuit)> = vec![
        ("xor_5".into(), caqr_benchmarks::revlib::xor_5().circuit),
        ("4mod5".into(), caqr_benchmarks::revlib::four_mod5().circuit),
        ("rd32".into(), caqr_benchmarks::revlib::rd32().circuit),
        ("bv5".into(), caqr_benchmarks::bv::bv_all_ones(5).circuit),
        ("bv8".into(), caqr_benchmarks::bv::bv_all_ones(8).circuit),
        (
            "qaoa6".into(),
            qaoa_benchmark(6, 0.3, GraphKind::Random, 2029).circuit,
        ),
        (
            "qaoa8".into(),
            qaoa_benchmark(8, 0.3, GraphKind::Random, 2031).circuit,
        ),
    ];
    let strategies = [
        Strategy::Baseline,
        Strategy::QsMaxReuse,
        Strategy::QsMinDepth,
        Strategy::QsMinSwap,
        Strategy::QsMaxEsp,
        Strategy::Sr,
    ];
    let seed = 2023u64;

    // In-process reference: the exact entry point the CLI uses.
    let jobs: Vec<CompileJob> = corpus
        .iter()
        .flat_map(|(name, circuit)| {
            strategies.iter().map(move |&strategy| {
                CompileJob::new(
                    name.clone(),
                    circuit.clone(),
                    Device::mumbai(seed),
                    strategy,
                )
            })
        })
        .collect();
    assert_eq!(jobs.len(), 42);
    let reference = Engine::run(&BatchRequest::new(jobs.clone()));
    assert_eq!(reference.ok_count(), 42, "reference corpus must compile");

    let (server, mut client) = start(quick_config());
    for (job, expected) in jobs.iter().zip(&reference.results) {
        let expected = expected.as_ref().expect("reference job compiled");
        let body = format!(
            r#"{{"circuit":{},"strategy":"{}","seed":{seed},"name":{}}}"#,
            circuit_to_value(&job.circuit).encode(),
            job.strategy,
            Value::str(job.name.clone()).encode(),
        );
        let response = client.post("/v1/compile", body.as_bytes()).unwrap();
        assert_eq!(
            response.status,
            200,
            "{} / {}: {}",
            job.name,
            job.strategy,
            response.text()
        );
        let parsed = body_json(&response.body);

        // The compiled circuit: byte-for-byte against the in-process run.
        let wire_circuit = parsed.get("circuit").expect("circuit field").encode();
        let local_circuit = circuit_to_value(&expected.report.circuit).encode();
        assert_eq!(
            wire_circuit, local_circuit,
            "{} / {}: compiled circuit differs over the wire",
            job.name, job.strategy
        );

        // Scalar report fields, ESP compared on exact bits.
        assert_eq!(
            parsed.get("depth").and_then(Value::as_u64),
            Some(expected.report.depth as u64)
        );
        assert_eq!(
            parsed.get("swaps").and_then(Value::as_u64),
            Some(expected.report.swaps as u64)
        );
        assert_eq!(
            parsed.get("qubits").and_then(Value::as_u64),
            Some(expected.report.qubits as u64)
        );
        assert_eq!(
            parsed.get("duration_dt").and_then(Value::as_u64),
            Some(expected.report.duration_dt)
        );
        let esp = parsed.get("esp").and_then(Value::as_f64).expect("esp");
        assert_eq!(
            esp.to_bits(),
            expected.report.esp.to_bits(),
            "{} / {}: esp drifted over the wire ({esp} vs {})",
            job.name,
            job.strategy,
            expected.report.esp
        );

        // And the wire form itself decodes back to the identical circuit.
        let decoded =
            caqr_wire::circuit::circuit_from_value(parsed.get("circuit").unwrap()).unwrap();
        assert_eq!(decoded, expected.report.circuit);
    }

    server.shutdown_handle().shutdown();
    server.join();
}

/// The streaming-compile endpoint, driven through real chunked request
/// bodies on both backends: the body arrives in small `Transfer-Encoding:
/// chunked` frames, is assembled incrementally off the socket, and the
/// reuse metrics and digest match an in-process streamed run.
#[test]
fn chunked_bodies_reach_the_streaming_compiler_on_both_backends() {
    use caqr::CancelToken;
    use caqr_stream::StreamOptions;

    // Eight sequential single-qubit lifetimes: the streamed output should
    // collapse onto one wire with seven inserted resets.
    let mut qasm = String::from("OPENQASM 2.0;\nqreg q[8];\ncreg c[8];\n");
    for q in 0..8 {
        qasm.push_str(&format!(
            "h q[{q}];\nrz(0.5) q[{q}];\nmeasure q[{q}] -> c[{q}];\n"
        ));
    }
    let reference = Engine::compile_streamed(
        qasm.as_bytes().chunks(64 * 1024),
        StreamOptions::default(),
        &CancelToken::new(),
    )
    .expect("in-process stream");

    for backend in [caqr_serve::Backend::Reactor, caqr_serve::Backend::Threaded] {
        let config = ServerConfig {
            backend,
            ..quick_config()
        };
        let (server, mut client) = start(config);

        // Tiny chunks: many frames, every decoder state visited.
        let response = client
            .post_chunked("/v1/compile-stream", qasm.as_bytes(), 7)
            .unwrap();
        assert_eq!(response.status, 200, "{backend:?}: {}", response.text());
        let parsed = body_json(&response.body);
        assert_eq!(parsed.get("ok").and_then(Value::as_bool), Some(true));
        assert_eq!(
            parsed.get("declared_qubits").and_then(Value::as_u64),
            Some(8)
        );
        assert_eq!(parsed.get("wires").and_then(Value::as_u64), Some(1));
        assert_eq!(
            parsed.get("resets_inserted").and_then(Value::as_u64),
            Some(7)
        );
        assert_eq!(
            parsed.get("digest").and_then(Value::as_str),
            Some(reference.report.digest.to_string().as_str()),
            "{backend:?}: wire digest matches the in-process streamed run"
        );

        // Chunked framing works for the JSON endpoints too — framing and
        // routing are orthogonal.
        let compile = format!(r#"{{"circuit":{}}}"#, circuit_to_value(&bell()).encode());
        let response = client
            .post_chunked("/v1/compile", compile.as_bytes(), 11)
            .unwrap();
        assert_eq!(response.status, 200, "{backend:?}: {}", response.text());

        // A parse error in a chunked body carries its source line.
        let response = client
            .post_chunked("/v1/compile-stream", b"qreg q[1];\nwat q[0];\n", 3)
            .unwrap();
        assert_eq!(response.status, 422);
        let parsed = body_json(&response.body);
        assert_eq!(parsed.get("line").and_then(Value::as_u64), Some(2));

        server.shutdown_handle().shutdown();
        server.join();
    }
}

/// A handler panic answers 500, the worker pool survives, and the
/// supervisor keeps the process serving.
#[test]
fn conditional_bits_and_recovery_after_errors() {
    let (server, mut client) = start(quick_config());

    // A circuit with a conditional (dynamic-circuit) instruction survives
    // the wire round-trip through compile.
    let mut dynamic = Circuit::new(2, 2);
    dynamic.h(Qubit::new(0));
    dynamic.measure(Qubit::new(0), Clbit::new(0));
    dynamic.cond_x(Qubit::new(1), Clbit::new(0));
    dynamic.measure(Qubit::new(1), Clbit::new(1));
    let body = format!(
        r#"{{"circuit":{},"strategy":"baseline"}}"#,
        circuit_to_value(&dynamic).encode()
    );
    let response = client.post("/v1/compile", body.as_bytes()).unwrap();
    assert_eq!(response.status, 200, "{}", response.text());

    // A stream of rejected requests (422) never poisons the connection.
    for _ in 0..3 {
        let bad = client
            .post(
                "/v1/compile",
                br#"{"qasm":"OPENQASM 2.0;\nqreg q[1];\nwat q[0];"}"#,
            )
            .unwrap();
        assert_eq!(bad.status, 422);
    }
    let ok = client.get("/healthz").unwrap();
    assert_eq!(ok.status, 200);

    server.shutdown_handle().shutdown();
    server.join();
}
