//! Adversarial socket tests for the reactor backend: misbehaving clients
//! driven over raw `TcpStream`s against a real server.

use caqr_serve::client::Client;
use caqr_serve::{Backend, Server, ServerConfig};
use caqr_wire::{parse, Value};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

fn reactor_config() -> ServerConfig {
    ServerConfig {
        backend: Backend::Reactor,
        workers: 2,
        keep_alive_idle: Duration::from_millis(400),
        request_stall: Duration::from_millis(400),
        drain_grace: Duration::from_secs(2),
        ..ServerConfig::default()
    }
}

fn start(config: ServerConfig) -> Server {
    Server::bind(config).expect("bind ephemeral port")
}

fn metric(server: &Server, group: &str, name: &str) -> u64 {
    let mut client = Client::connect(server.local_addr()).with_timeout(Duration::from_secs(10));
    let response = client.get("/metrics").expect("metrics reachable");
    assert_eq!(response.status, 200);
    let parsed = parse(std::str::from_utf8(&response.body).unwrap()).unwrap();
    parsed
        .get(group)
        .and_then(|g| g.get(name))
        .and_then(Value::as_u64)
        .unwrap_or_else(|| panic!("metric {group}.{name} missing"))
}

/// Reads until EOF or timeout; returns everything received.
fn read_until_eof(stream: &mut TcpStream, timeout: Duration) -> Vec<u8> {
    stream.set_read_timeout(Some(timeout)).unwrap();
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    let deadline = Instant::now() + timeout;
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                break
            }
            Err(_) => break,
        }
        if Instant::now() >= deadline {
            break;
        }
    }
    buf
}

/// A slow-loris client trickles header bytes and then stalls forever.
/// The stall timer evicts it instead of letting it pin a connection slot.
#[test]
fn slow_loris_partial_headers_are_evicted() {
    let server = start(reactor_config());
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();

    // A few header bytes, then silence — never the terminating CRLFCRLF.
    stream
        .write_all(b"GET /healthz HTTP/1.1\r\nHost: l")
        .unwrap();
    std::thread::sleep(Duration::from_millis(100));
    stream.write_all(b"ocalho").unwrap();

    // The server must hang up (EOF, no response bytes) within the stall
    // window plus slack — a read timeout would mean it never evicted us.
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let mut probe = [0u8; 64];
    assert!(
        matches!(stream.read(&mut probe), Ok(0)),
        "slow-loris connection must be closed by the server"
    );
    assert!(
        metric(&server, "reactor", "stall_evictions") >= 1,
        "stall eviction must be counted"
    );

    server.shutdown_handle().shutdown();
    server.join();
}

/// A body delivered one byte per readiness event still parses into one
/// request and gets a normal response.
#[test]
fn body_dripped_one_byte_at_a_time_is_served() {
    let server = start(reactor_config());
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    stream.set_nodelay(true).unwrap();

    let body = b"{\"shots\":1}";
    let head = format!(
        "POST /v1/simulate HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).unwrap();
    for &byte in body.iter() {
        stream.write_all(&[byte]).unwrap();
        stream.flush().unwrap();
        std::thread::sleep(Duration::from_millis(5));
    }

    let received = read_until_eof(&mut stream, Duration::from_secs(10));
    let text = String::from_utf8_lossy(&received);
    // The request is syntactically complete; the handler rejects the
    // payload (no circuit) with a 4xx — what matters here is that the
    // byte-drip produced exactly one well-formed HTTP exchange.
    assert!(
        text.starts_with("HTTP/1.1 4"),
        "expected a 4xx response, got {text:?}"
    );

    server.shutdown_handle().shutdown();
    server.join();
}

/// A client that vanishes mid-exchange must not take the shard down:
/// later connections still get served.
#[test]
fn mid_response_client_disconnect_is_survived() {
    let server = start(reactor_config());

    for _ in 0..3 {
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        // A dispatched request whose client disappears before the answer.
        stream
            .write_all(b"POST /v1/compile HTTP/1.1\r\nHost: t\r\nContent-Length: 2\r\n\r\n{}")
            .unwrap();
        drop(stream); // RST or FIN while the worker may still be computing
    }
    std::thread::sleep(Duration::from_millis(100));

    let mut client = Client::connect(server.local_addr()).with_timeout(Duration::from_secs(10));
    let response = client.get("/healthz").unwrap();
    assert_eq!(response.status, 200, "server must survive the disconnects");

    server.shutdown_handle().shutdown();
    server.join();
}

/// Keep-alive connections that fall silent are evicted on the idle timer
/// and the eviction is visible on /metrics.
#[test]
fn idle_keep_alive_connection_is_evicted() {
    let server = start(reactor_config());
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();

    stream
        .write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n")
        .unwrap();
    let first = read_until_eof(&mut stream, Duration::from_millis(300));
    assert!(
        String::from_utf8_lossy(&first).starts_with("HTTP/1.1 200"),
        "first request answered"
    );

    // Now idle past keep_alive_idle: the server closes the connection.
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let mut probe = [0u8; 16];
    let evicted = matches!(stream.read(&mut probe), Ok(0));
    assert!(evicted, "idle connection must see EOF from the server");
    assert!(metric(&server, "reactor", "idle_evictions") >= 1);

    server.shutdown_handle().shutdown();
    server.join();
}

/// The open-connections gauge tracks sockets and returns to zero once
/// clients leave — no leaked registrations.
#[test]
fn open_connections_gauge_tracks_and_drains() {
    let server = start(ServerConfig {
        keep_alive_idle: Duration::from_secs(30),
        ..reactor_config()
    });

    let streams: Vec<TcpStream> = (0..8)
        .map(|_| {
            let mut s = TcpStream::connect(server.local_addr()).unwrap();
            s.write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n")
                .unwrap();
            let mut buf = [0u8; 1024];
            s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
            let _ = s.read(&mut buf);
            s
        })
        .collect();

    // The metrics probe itself holds one connection open.
    assert!(metric(&server, "reactor", "open_connections") >= 8);

    drop(streams);
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        // Closed sockets surface as readiness events, so the gauge drops
        // without waiting for the idle timer.
        let open = metric(&server, "reactor", "open_connections");
        if open <= 1 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "open_connections stuck at {open}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }

    server.shutdown_handle().shutdown();
    server.join();
}

/// At `max_connections` the reactor refuses the overflow socket with a
/// 429 instead of accepting unboundedly.
#[test]
fn connection_capacity_turns_away_the_overflow_socket() {
    let server = start(ServerConfig {
        max_connections: 2,
        keep_alive_idle: Duration::from_secs(30),
        ..reactor_config()
    });

    let mut held: Vec<TcpStream> = (0..2)
        .map(|_| {
            let mut s = TcpStream::connect(server.local_addr()).unwrap();
            s.write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n")
                .unwrap();
            let mut buf = [0u8; 1024];
            s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
            let _ = s.read(&mut buf);
            s
        })
        .collect();

    let mut overflow = TcpStream::connect(server.local_addr()).unwrap();
    overflow
        .write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n")
        .unwrap();
    let received = read_until_eof(&mut overflow, Duration::from_secs(5));
    let text = String::from_utf8_lossy(&received);
    assert!(
        text.starts_with("HTTP/1.1 429"),
        "overflow connection must see 429, got {text:?}"
    );

    // Freeing a slot lets the next connection in.
    held.pop();
    std::thread::sleep(Duration::from_millis(100));
    let mut client = Client::connect(server.local_addr()).with_timeout(Duration::from_secs(10));
    assert_eq!(client.get("/healthz").unwrap().status, 200);

    server.shutdown_handle().shutdown();
    server.join();
}

/// Two `SO_REUSEPORT` shards share one address and one cache; requests
/// land on both reactors and the per-shard counters prove it.
#[cfg(target_os = "linux")]
#[test]
fn sharded_listeners_share_the_address() {
    let server = start(ServerConfig {
        shards: 2,
        ..reactor_config()
    });

    // Many short-lived connections: the kernel's reuseport hash spreads
    // them across both listeners.
    for _ in 0..32 {
        let mut client = Client::connect(server.local_addr()).with_timeout(Duration::from_secs(10));
        assert_eq!(client.get("/healthz").unwrap().status, 200);
    }

    let mut client = Client::connect(server.local_addr()).with_timeout(Duration::from_secs(10));
    let response = client.get("/metrics").unwrap();
    let parsed = parse(std::str::from_utf8(&response.body).unwrap()).unwrap();
    let reactor = parsed.get("reactor").expect("reactor metrics");
    assert_eq!(reactor.get("shards").and_then(Value::as_u64), Some(2));
    let per_shard = reactor
        .get("shard_requests")
        .and_then(Value::as_array)
        .expect("per-shard counters");
    assert_eq!(per_shard.len(), 2);
    let total: u64 = per_shard.iter().filter_map(Value::as_u64).sum();
    assert!(total >= 33, "requests must be counted per shard: {total}");

    server.shutdown_handle().shutdown();
    server.join();
}
