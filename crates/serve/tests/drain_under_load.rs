//! Graceful-drain tests under the many-connections posture: hundreds of
//! open keep-alive sockets at shutdown time, in-process and as a real
//! SIGTERM'd subprocess.

use caqr_serve::client::Client;
use caqr_serve::{Backend, Server, ServerConfig};
use caqr_wire::circuit::circuit_to_value;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

const FLEET: usize = 512;

fn open_keep_alive(addr: std::net::SocketAddr) -> TcpStream {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n")
        .unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut buf = [0u8; 2048];
    let n = stream.read(&mut buf).expect("first response");
    assert!(
        buf[..n].starts_with(b"HTTP/1.1 200"),
        "keep-alive connection must be served before the drain"
    );
    stream
}

/// SIGTERM semantics, in-process: with a 512-connection fleet open and
/// work in flight, shutdown finishes the in-flight requests, answers new
/// arrivals 503 during the grace window, closes every idle socket, and
/// `join` returns with no leaked reactor registrations (the shard asserts
/// an empty poller on exit in debug builds — which tests are).
#[test]
fn drain_with_full_fleet_finishes_in_flight_and_refuses_new() {
    // 512 client + 512 server sockets live in this one process.
    let _ = caqr_reactor::raise_nofile_limit();

    let server = Server::bind(ServerConfig {
        backend: Backend::Reactor,
        workers: 1,
        keep_alive_idle: Duration::from_secs(60),
        drain_grace: Duration::from_millis(800),
        max_connections: 2048,
        ..ServerConfig::default()
    })
    .expect("bind");
    let addr = server.local_addr();

    let fleet: Vec<TcpStream> = (0..FLEET).map(|_| open_keep_alive(addr)).collect();

    // Two compute requests on fresh connections: with one worker, the
    // second sits in the dispatch queue when shutdown lands. Both must
    // still be answered — queued work is always finished.
    let mut bell = caqr_circuit::Circuit::new(2, 2);
    bell.h(caqr_circuit::Qubit::new(0));
    bell.cx(caqr_circuit::Qubit::new(0), caqr_circuit::Qubit::new(1));
    bell.measure_all();
    let body = format!(
        r#"{{"circuit":{},"shots":4096,"seed":3}}"#,
        circuit_to_value(&bell).encode()
    );
    let request = format!(
        "POST /v1/simulate HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{}",
        body.len(),
        body
    );
    let mut in_flight: Vec<TcpStream> = (0..2)
        .map(|_| {
            let mut stream = TcpStream::connect(addr).unwrap();
            stream.write_all(request.as_bytes()).unwrap();
            stream
                .set_read_timeout(Some(Duration::from_secs(30)))
                .unwrap();
            stream
        })
        .collect();
    // Let the shard parse and dispatch both before the drain begins.
    std::thread::sleep(Duration::from_millis(150));

    let handle = server.shutdown_handle();
    handle.shutdown();

    // New connections during the grace window are told to go away.
    std::thread::sleep(Duration::from_millis(100));
    let mut late = Client::connect(addr).with_timeout(Duration::from_secs(5));
    let refused = late.get("/healthz").expect("grace-window connection");
    assert_eq!(refused.status, 503, "{}", refused.text());

    // The in-flight responses arrive complete even though the drain is on.
    for stream in &mut in_flight {
        let mut response = Vec::new();
        stream.read_to_end(&mut response).expect("in-flight read");
        let text = String::from_utf8_lossy(&response);
        assert!(
            text.starts_with("HTTP/1.1 200"),
            "in-flight request must finish with 200, got {text:?}"
        );
    }

    // Every idle fleet socket is closed by the drain — EOF, no bytes.
    let mut evicted = 0usize;
    for mut stream in fleet {
        let mut probe = [0u8; 64];
        if matches!(stream.read(&mut probe), Ok(0)) {
            evicted += 1;
        }
    }
    assert_eq!(evicted, FLEET, "all idle keep-alive sockets must see EOF");

    // join() returning proves every shard and worker exited; the poller
    // emptiness debug_assert inside the shard has already run by now.
    server.join();
}

/// SIGTERM against the real binary: a full keep-alive fleet is open, the
/// process drains and exits 0.
#[cfg(unix)]
#[test]
fn sigterm_with_open_fleet_exits_zero() {
    use std::io::BufRead;
    use std::process::{Command, Stdio};

    let mut child = Command::new(env!("CARGO_BIN_EXE_caqr-serve"))
        .args(["--port", "0", "--backend", "reactor", "--shards", "2"])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn caqr-serve");

    let stdout = child.stdout.take().expect("stdout piped");
    let mut lines = std::io::BufReader::new(stdout).lines();
    let first = lines
        .next()
        .expect("address line")
        .expect("readable stdout");
    let addr: std::net::SocketAddr = first
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected first line {first:?}"))
        .parse()
        .expect("parseable address");

    let _ = caqr_reactor::raise_nofile_limit();
    let fleet: Vec<TcpStream> = (0..FLEET).map(|_| open_keep_alive(addr)).collect();

    let status = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .expect("send SIGTERM");
    assert!(status.success(), "kill -TERM must reach the server");

    // Bounded wait: the default grace is well under a second.
    let deadline = Instant::now() + Duration::from_secs(20);
    let exit = loop {
        if let Some(status) = child.try_wait().expect("try_wait") {
            break status;
        }
        if Instant::now() >= deadline {
            let _ = child.kill();
            panic!("caqr-serve did not exit within 20s of SIGTERM");
        }
        std::thread::sleep(Duration::from_millis(25));
    };
    assert!(exit.success(), "drain must exit 0, got {exit:?}");

    // The drain hung up on every idle socket before the process died.
    let mut evicted = 0usize;
    for mut stream in fleet {
        let mut probe = [0u8; 64];
        if matches!(stream.read(&mut probe), Ok(0)) {
            evicted += 1;
        }
    }
    assert_eq!(evicted, FLEET);
}
