//! A compact fixed-capacity bit set.
//!
//! Used for dense reachability closures over gate DAGs, where we need
//! thousands of sets of thousands of bits and `u64`-word OR is the whole
//! game.

/// A fixed-capacity set of `usize` indices backed by `u64` words.
///
/// # Examples
///
/// ```
/// use caqr_graph::BitSet;
///
/// let mut s = BitSet::new(100);
/// s.insert(3);
/// s.insert(99);
/// assert!(s.contains(3));
/// assert!(!s.contains(4));
/// assert_eq!(s.len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct BitSet {
    words: Vec<u64>,
    capacity: usize,
}

impl BitSet {
    /// Creates an empty set able to hold indices `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        BitSet {
            words: vec![0; capacity.div_ceil(64)],
            capacity,
        }
    }

    /// The number of indices this set can hold.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Inserts `index` into the set. Returns `true` if it was newly inserted.
    ///
    /// # Panics
    ///
    /// Panics if `index >= capacity`.
    pub fn insert(&mut self, index: usize) -> bool {
        assert!(index < self.capacity, "bit index {index} out of range");
        let (w, b) = (index / 64, index % 64);
        let fresh = self.words[w] & (1 << b) == 0;
        self.words[w] |= 1 << b;
        fresh
    }

    /// Removes `index` from the set. Returns `true` if it was present.
    ///
    /// # Panics
    ///
    /// Panics if `index >= capacity`.
    pub fn remove(&mut self, index: usize) -> bool {
        assert!(index < self.capacity, "bit index {index} out of range");
        let (w, b) = (index / 64, index % 64);
        let present = self.words[w] & (1 << b) != 0;
        self.words[w] &= !(1 << b);
        present
    }

    /// Returns `true` if `index` is in the set.
    pub fn contains(&self, index: usize) -> bool {
        if index >= self.capacity {
            return false;
        }
        self.words[index / 64] & (1 << (index % 64)) != 0
    }

    /// The number of elements in the set.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Returns `true` if the set has no elements.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// In-place union: `self |= other`.
    ///
    /// # Panics
    ///
    /// Panics if the capacities differ.
    pub fn union_with(&mut self, other: &BitSet) {
        assert_eq!(self.capacity, other.capacity, "bitset capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// Returns `true` if `self` and `other` share at least one element.
    pub fn intersects(&self, other: &BitSet) -> bool {
        self.words.iter().zip(&other.words).any(|(a, b)| a & b != 0)
    }

    /// Removes all elements.
    pub fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
    }

    /// Iterates over the indices in the set in ascending order.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            set: self,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }
}

impl FromIterator<usize> for BitSet {
    /// Builds a set sized to the maximum element.
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let items: Vec<usize> = iter.into_iter().collect();
        let cap = items.iter().max().map_or(0, |m| m + 1);
        let mut s = BitSet::new(cap);
        for i in items {
            s.insert(i);
        }
        s
    }
}

impl Extend<usize> for BitSet {
    fn extend<I: IntoIterator<Item = usize>>(&mut self, iter: I) {
        for i in iter {
            self.insert(i);
        }
    }
}

/// Iterator over set bits, produced by [`BitSet::iter`].
#[derive(Debug, Clone)]
pub struct Iter<'a> {
    set: &'a BitSet,
    word_idx: usize,
    current: u64,
}

impl Iterator for Iter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let b = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some(self.word_idx * 64 + b);
            }
            self.word_idx += 1;
            if self.word_idx >= self.set.words.len() {
                return None;
            }
            self.current = self.set.words[self.word_idx];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_contains() {
        let mut s = BitSet::new(130);
        assert!(s.insert(0));
        assert!(s.insert(64));
        assert!(s.insert(129));
        assert!(!s.insert(129));
        assert!(s.contains(0));
        assert!(s.contains(64));
        assert!(s.contains(129));
        assert!(!s.contains(1));
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn remove() {
        let mut s = BitSet::new(10);
        s.insert(5);
        assert!(s.remove(5));
        assert!(!s.remove(5));
        assert!(s.is_empty());
    }

    #[test]
    fn union_and_intersects() {
        let mut a = BitSet::new(200);
        let mut b = BitSet::new(200);
        a.insert(3);
        b.insert(150);
        assert!(!a.intersects(&b));
        a.union_with(&b);
        assert!(a.contains(150));
        assert!(a.intersects(&b));
    }

    #[test]
    fn iter_ascending() {
        let mut s = BitSet::new(300);
        for i in [7, 64, 65, 255, 0] {
            s.insert(i);
        }
        let got: Vec<usize> = s.iter().collect();
        assert_eq!(got, vec![0, 7, 64, 65, 255]);
    }

    #[test]
    fn from_iterator() {
        let s: BitSet = [1usize, 5, 9].into_iter().collect();
        assert_eq!(s.len(), 3);
        assert!(s.contains(9));
        assert!(!s.contains(10));
    }

    #[test]
    fn contains_out_of_range_is_false() {
        let s = BitSet::new(4);
        assert!(!s.contains(100));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn insert_out_of_range_panics() {
        BitSet::new(4).insert(4);
    }

    #[test]
    fn empty_capacity_zero() {
        let s = BitSet::new(0);
        assert!(s.is_empty());
        assert_eq!(s.iter().count(), 0);
    }

    #[test]
    fn clear_resets() {
        let mut s = BitSet::new(70);
        s.insert(69);
        s.clear();
        assert!(s.is_empty());
    }
}
