//! Exact pathwidth (vertex separation number) for small graphs.
//!
//! The minimum qubit count reachable by reusing qubits in a commuting
//! circuit equals the pathwidth of its interaction graph plus one: a gate
//! order is a linear arrangement of vertex lifetimes, and the number of
//! simultaneously-live qubits at a cut is exactly the vertex separation.
//! This module computes the exact value by subset dynamic programming,
//! `O(2^n * n)`, to validate the heuristics in `caqr::width` and the
//! commuting sweep's floors.

use crate::adj::Graph;

/// The exact vertex separation number of `g` (equals pathwidth).
///
/// `f(S)` = the minimum, over orderings that place the vertices of `S`
/// first, of the maximum boundary seen so far, where the boundary of `S`
/// is the set of vertices in `S` with a neighbor outside `S`.
///
/// # Panics
///
/// Panics if the graph has more than 20 vertices.
///
/// # Examples
///
/// ```
/// use caqr_graph::{pathwidth, Graph};
///
/// // A path has pathwidth 1; a cycle has 2.
/// let path = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]);
/// assert_eq!(pathwidth::exact(&path), 1);
/// let mut cycle = Graph::new(4);
/// for i in 0..4 {
///     cycle.add_edge(i, (i + 1) % 4);
/// }
/// assert_eq!(pathwidth::exact(&cycle), 2);
/// ```
pub fn exact(g: &Graph) -> usize {
    let n = g.num_vertices();
    assert!(n <= 20, "exact pathwidth is limited to 20 vertices");
    if n == 0 {
        return 0;
    }
    // Neighbor masks.
    let nbr: Vec<u32> = (0..n)
        .map(|v| g.neighbors(v).fold(0u32, |m, u| m | (1 << u)))
        .collect();
    let full: u32 = if n == 32 { u32::MAX } else { (1 << n) - 1 };
    let boundary_size = |s: u32| -> u32 {
        let outside = full & !s;
        (0..n)
            .filter(|&v| s >> v & 1 == 1 && nbr[v] & outside != 0)
            .count() as u32
    };
    let mut f = vec![u32::MAX; 1usize << n];
    f[0] = 0;
    for s in 1u32..=full {
        let b = boundary_size(s);
        let mut best = u32::MAX;
        let mut rest = s;
        while rest != 0 {
            let v = rest.trailing_zeros();
            rest &= rest - 1;
            let prev = f[(s & !(1 << v)) as usize];
            // Placing v last within S: the boundary right after placing v
            // is boundary(S); the cost is the max along the way.
            best = best.min(prev.max(b));
        }
        f[s as usize] = best;
    }
    f[full as usize] as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cycle(n: usize) -> Graph {
        let mut g = Graph::new(n);
        for i in 0..n {
            g.add_edge(i, (i + 1) % n);
        }
        g
    }

    fn complete(n: usize) -> Graph {
        let mut g = Graph::new(n);
        for i in 0..n {
            for j in i + 1..n {
                g.add_edge(i, j);
            }
        }
        g
    }

    #[test]
    fn classic_values() {
        // Empty / edgeless.
        assert_eq!(exact(&Graph::new(0)), 0);
        assert_eq!(exact(&Graph::new(5)), 0);
        // Paths: 1. Cycles: 2. Cliques: n - 1.
        assert_eq!(exact(&Graph::from_edges(6, (0..5).map(|i| (i, i + 1)))), 1);
        assert_eq!(exact(&cycle(6)), 2);
        for n in 2..7 {
            assert_eq!(exact(&complete(n)), n - 1, "K{n}");
        }
    }

    #[test]
    fn star_has_pathwidth_one() {
        let g = Graph::from_edges(7, (1..7).map(|i| (0, i)));
        assert_eq!(exact(&g), 1);
    }

    #[test]
    fn complete_bipartite() {
        // pw(K_{3,3}) = 3.
        let mut g = Graph::new(6);
        for i in 0..3 {
            for j in 3..6 {
                g.add_edge(i, j);
            }
        }
        assert_eq!(exact(&g), 3);
    }

    #[test]
    fn binary_tree_pathwidth() {
        // A complete binary tree of height 3 (15 vertices) has pathwidth 2.
        let mut g = Graph::new(15);
        for i in 1..15 {
            g.add_edge(i, (i - 1) / 2);
        }
        assert_eq!(exact(&g), 2);
    }

    #[test]
    fn grid_pathwidth() {
        // pw of a 3x3 grid is 3.
        let mut g = Graph::new(9);
        for r in 0..3 {
            for c in 0..3 {
                let v = r * 3 + c;
                if c + 1 < 3 {
                    g.add_edge(v, v + 1);
                }
                if r + 1 < 3 {
                    g.add_edge(v, v + 3);
                }
            }
        }
        assert_eq!(exact(&g), 3);
    }

    #[test]
    fn degeneracy_is_a_lower_bound() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(4);
        for _ in 0..10 {
            let n = rng.gen_range(4..10);
            let mut g = Graph::new(n);
            for i in 0..n {
                for j in i + 1..n {
                    if rng.gen_bool(0.35) {
                        g.add_edge(i, j);
                    }
                }
            }
            // Degeneracy <= pathwidth (classic sandwich).
            let pw = exact(&g);
            let mut degree: Vec<usize> = (0..n).map(|v| g.degree(v)).collect();
            let mut removed = vec![false; n];
            let mut degen = 0;
            for _ in 0..n {
                let v = (0..n)
                    .filter(|&v| !removed[v])
                    .min_by_key(|&v| degree[v])
                    .unwrap();
                degen = degen.max(degree[v]);
                removed[v] = true;
                for u in g.neighbors(v) {
                    if !removed[u] {
                        degree[u] -= 1;
                    }
                }
            }
            assert!(degen <= pw, "degeneracy {degen} > pathwidth {pw}");
        }
    }
}
