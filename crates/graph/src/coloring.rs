//! Graph coloring.
//!
//! For commuting-gate circuits (QAOA) the paper observes that the minimum
//! number of physical wires equals a proper coloring of the qubit
//! interaction graph: two qubits may share a wire iff they never interact
//! (no edge), which is exactly the coloring constraint (§3.2.2, Fig. 10).
//!
//! We provide the classic DSATUR heuristic (good in practice, optimal on
//! many structured graphs) and a plain greedy pass for comparison.

use crate::adj::Graph;

/// A proper vertex coloring: `color[v]` for each vertex, colors `0..k`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Coloring {
    colors: Vec<usize>,
    num_colors: usize,
}

impl Coloring {
    /// Wraps a color assignment.
    ///
    /// # Panics
    ///
    /// Panics if `colors` is non-empty and its maximum does not equal
    /// `num_colors - 1` (colors must be contiguous from 0).
    pub fn new(colors: Vec<usize>, num_colors: usize) -> Self {
        if let Some(&max) = colors.iter().max() {
            assert_eq!(max + 1, num_colors, "colors must be contiguous from 0");
        }
        Coloring { colors, num_colors }
    }

    /// The color of vertex `v`.
    pub fn color(&self, v: usize) -> usize {
        self.colors[v]
    }

    /// The number of distinct colors used.
    pub fn num_colors(&self) -> usize {
        self.num_colors
    }

    /// The full assignment, indexed by vertex.
    pub fn colors(&self) -> &[usize] {
        &self.colors
    }

    /// Groups vertices by color: `groups()[c]` lists the vertices colored `c`.
    pub fn groups(&self) -> Vec<Vec<usize>> {
        let mut groups = vec![Vec::new(); self.num_colors];
        for (v, &c) in self.colors.iter().enumerate() {
            groups[c].push(v);
        }
        groups
    }

    /// Checks that no edge of `g` joins two same-colored vertices.
    pub fn is_proper(&self, g: &Graph) -> bool {
        g.edges().all(|(u, v)| self.colors[u] != self.colors[v])
    }
}

/// DSATUR coloring: repeatedly colors the vertex with the highest
/// *saturation* (number of distinct neighbor colors), breaking ties by
/// degree then index.
///
/// # Examples
///
/// ```
/// use caqr_graph::{coloring, Graph};
///
/// // A triangle plus a pendant vertex: chromatic number 3.
/// let g = Graph::from_edges(4, [(0, 1), (1, 2), (0, 2), (2, 3)]);
/// assert_eq!(coloring::dsatur(&g).num_colors(), 3);
/// ```
pub fn dsatur(g: &Graph) -> Coloring {
    let n = g.num_vertices();
    if n == 0 {
        return Coloring::new(Vec::new(), 0);
    }
    const UNCOLORED: usize = usize::MAX;
    let mut color = vec![UNCOLORED; n];
    let mut neighbor_colors: Vec<std::collections::BTreeSet<usize>> =
        vec![std::collections::BTreeSet::new(); n];
    let mut num_colors = 0;

    for _ in 0..n {
        // Pick uncolored vertex with max saturation, tie-break by degree desc,
        // then index asc.
        let v = (0..n)
            .filter(|&v| color[v] == UNCOLORED)
            .max_by(|&a, &b| {
                neighbor_colors[a]
                    .len()
                    .cmp(&neighbor_colors[b].len())
                    .then(g.degree(a).cmp(&g.degree(b)))
                    .then(b.cmp(&a))
            })
            .expect("an uncolored vertex remains");
        // Smallest color absent among neighbors.
        let c = (0..).find(|c| !neighbor_colors[v].contains(c)).unwrap();
        color[v] = c;
        num_colors = num_colors.max(c + 1);
        for u in g.neighbors(v) {
            neighbor_colors[u].insert(c);
        }
    }
    Coloring::new(color, num_colors)
}

/// The exact chromatic number by branch-and-bound, for small graphs.
///
/// Used in tests to validate the DSATUR heuristic and in analyses where
/// the exact reuse lower bound matters.
///
/// # Panics
///
/// Panics if the graph has more than 16 vertices (exponential blow-up).
pub fn chromatic_number(g: &Graph) -> usize {
    let n = g.num_vertices();
    assert!(n <= 16, "exact coloring is limited to 16 vertices");
    if n == 0 {
        return 0;
    }
    // Upper bound from DSATUR; search for anything better.
    let mut best = dsatur(g).num_colors();
    let mut colors = vec![usize::MAX; n];

    fn assignable(g: &Graph, colors: &[usize], v: usize, c: usize) -> bool {
        g.neighbors(v).all(|u| colors[u] != c)
    }

    fn solve(g: &Graph, colors: &mut Vec<usize>, v: usize, used: usize, best: &mut usize) {
        if used >= *best {
            return; // cannot improve
        }
        if v == g.num_vertices() {
            *best = used;
            return;
        }
        for c in 0..=used.min(*best - 1) {
            if c < used && !assignable(g, colors, v, c) {
                continue;
            }
            if c >= used && used + 1 >= *best {
                break;
            }
            colors[v] = c;
            solve(g, colors, v + 1, used.max(c + 1), best);
            colors[v] = usize::MAX;
        }
    }

    solve(g, &mut colors, 0, 0, &mut best);
    best
}

/// Plain greedy coloring in vertex-index order (first-fit).
pub fn greedy(g: &Graph) -> Coloring {
    let n = g.num_vertices();
    const UNCOLORED: usize = usize::MAX;
    let mut color = vec![UNCOLORED; n];
    let mut num_colors = 0;
    for v in 0..n {
        let used: std::collections::BTreeSet<usize> = g
            .neighbors(v)
            .filter_map(|u| (color[u] != UNCOLORED).then_some(color[u]))
            .collect();
        let c = (0..).find(|c| !used.contains(c)).unwrap();
        color[v] = c;
        num_colors = num_colors.max(c + 1);
    }
    Coloring::new(color, num_colors)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn complete(n: usize) -> Graph {
        let mut g = Graph::new(n);
        for i in 0..n {
            for j in i + 1..n {
                g.add_edge(i, j);
            }
        }
        g
    }

    #[test]
    fn dsatur_complete_graph_needs_n() {
        for n in 1..6 {
            let c = dsatur(&complete(n));
            assert_eq!(c.num_colors(), n);
            assert!(c.is_proper(&complete(n)));
        }
    }

    #[test]
    fn dsatur_bipartite_needs_two() {
        // K_{3,3}
        let mut g = Graph::new(6);
        for i in 0..3 {
            for j in 3..6 {
                g.add_edge(i, j);
            }
        }
        let c = dsatur(&g);
        assert_eq!(c.num_colors(), 2);
        assert!(c.is_proper(&g));
    }

    #[test]
    fn dsatur_odd_cycle_needs_three() {
        let mut g = Graph::new(7);
        for i in 0..7 {
            g.add_edge(i, (i + 1) % 7);
        }
        let c = dsatur(&g);
        assert_eq!(c.num_colors(), 3);
        assert!(c.is_proper(&g));
    }

    #[test]
    fn greedy_is_proper() {
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (0, 2)]);
        let c = greedy(&g);
        assert!(c.is_proper(&g));
        assert!(c.num_colors() >= 3);
    }

    #[test]
    fn empty_graph_one_color_per_isolated_vertex() {
        let g = Graph::new(4);
        let c = dsatur(&g);
        assert_eq!(c.num_colors(), 1);
        assert!(c.is_proper(&g));
    }

    #[test]
    fn zero_vertices() {
        let c = dsatur(&Graph::new(0));
        assert_eq!(c.num_colors(), 0);
    }

    #[test]
    fn paper_fig10_star_like_coloring() {
        // Fig. 10: a 5-vertex QAOA graph colorable with 3 colors where
        // {q0, q2, q4} share one color.
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4), (1, 3)]);
        let c = dsatur(&g);
        assert_eq!(c.num_colors(), 3);
        assert!(c.is_proper(&g));
        // q0, q2, q4 are pairwise non-adjacent, so a 3-coloring exists that
        // groups them; DSATUR should find *a* 3-coloring (grouping may vary).
        assert_eq!(
            c.color(0) == c.color(4),
            c.groups()
                .iter()
                .any(|grp| grp.contains(&0) && grp.contains(&4))
        );
    }

    #[test]
    fn chromatic_number_exact_values() {
        assert_eq!(chromatic_number(&Graph::new(0)), 0);
        assert_eq!(chromatic_number(&Graph::new(3)), 1);
        assert_eq!(chromatic_number(&complete(5)), 5);
        // Odd cycle: 3.
        let mut c7 = Graph::new(7);
        for i in 0..7 {
            c7.add_edge(i, (i + 1) % 7);
        }
        assert_eq!(chromatic_number(&c7), 3);
        // Petersen graph: 3.
        let mut pet = Graph::new(10);
        for i in 0..5 {
            pet.add_edge(i, (i + 1) % 5);
            pet.add_edge(5 + i, 5 + (i + 2) % 5);
            pet.add_edge(i, 5 + i);
        }
        assert_eq!(chromatic_number(&pet), 3);
    }

    #[test]
    fn dsatur_close_to_exact_on_random_graphs() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(12);
        for _ in 0..15 {
            let n = rng.gen_range(4..10);
            let mut g = Graph::new(n);
            for i in 0..n {
                for j in i + 1..n {
                    if rng.gen_bool(0.4) {
                        g.add_edge(i, j);
                    }
                }
            }
            let exact = chromatic_number(&g);
            let heuristic = dsatur(&g).num_colors();
            assert!(heuristic >= exact);
            assert!(
                heuristic <= exact + 1,
                "DSATUR {heuristic} vs exact {exact} on {g}"
            );
        }
    }

    #[test]
    fn groups_partition_vertices() {
        let g = complete(4);
        let c = dsatur(&g);
        let total: usize = c.groups().iter().map(Vec::len).sum();
        assert_eq!(total, 4);
    }

    #[test]
    #[should_panic(expected = "contiguous")]
    fn non_contiguous_colors_rejected() {
        Coloring::new(vec![0, 2], 2);
    }
}
