//! Random graph generators for the QAOA problem instances.
//!
//! The paper evaluates QAOA max-cut on two input families, both at a fixed
//! edge density (30% unless stated otherwise):
//!
//! * **random graphs** — Erdős–Rényi-style `G(n, m)` with `m` chosen to hit
//!   the density exactly;
//! * **power-law graphs** — preferential-attachment (Barabási–Albert) graphs
//!   whose degree distribution is heavy-tailed: a few hubs with high degree
//!   and many low-degree leaves. The paper notes these have far more reuse
//!   potential because low-degree qubits finish early (§4.2.2).
//!
//! Both generators are deterministic given a seed.

use crate::adj::Graph;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Number of edges implied by `density` on `n` vertices (rounded).
pub fn edges_for_density(n: usize, density: f64) -> usize {
    let max_edges = n * n.saturating_sub(1) / 2;
    ((max_edges as f64) * density).round() as usize
}

/// Uniform random graph with exactly the edge count implied by `density`.
///
/// # Panics
///
/// Panics if `density` is outside `[0, 1]`.
///
/// # Examples
///
/// ```
/// use caqr_graph::gen;
///
/// let g = gen::random_graph(16, 0.3, 42);
/// assert_eq!(g.num_vertices(), 16);
/// assert!((g.density() - 0.3).abs() < 0.02);
/// ```
pub fn random_graph(n: usize, density: f64, seed: u64) -> Graph {
    assert!((0.0..=1.0).contains(&density), "density must be in [0, 1]");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let target = edges_for_density(n, density);
    let mut all: Vec<(usize, usize)> = (0..n)
        .flat_map(|i| (i + 1..n).map(move |j| (i, j)))
        .collect();
    all.shuffle(&mut rng);
    Graph::from_edges(n, all.into_iter().take(target))
}

/// Classic Barabási–Albert scale-free graph: each new vertex attaches to
/// `m` existing vertices with probability proportional to degree.
///
/// Unlike [`power_law_graph`], no density adjustment is applied, so small
/// `m` gives the sparse hub-and-leaf structure (low pathwidth) where qubit
/// reuse shines: leaves retire quickly while a few hubs live long.
///
/// # Panics
///
/// Panics if `n < 2` or `m == 0` or `m >= n`.
pub fn barabasi_albert(n: usize, m: usize, seed: u64) -> Graph {
    assert!(n >= 2, "need at least 2 vertices");
    assert!(m >= 1 && m < n, "attachment count must be in 1..n");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut g = Graph::new(n);
    let mut endpoints: Vec<usize> = Vec::new();
    let core = (m + 1).min(n);
    for i in 0..core {
        for j in i + 1..core {
            g.add_edge(i, j);
            endpoints.push(i);
            endpoints.push(j);
        }
    }
    for v in core..n {
        let mut attached = 0;
        let mut guard = 0;
        while attached < m && guard < 50 * m + 100 {
            guard += 1;
            let &t = endpoints
                .get(rng.gen_range(0..endpoints.len()))
                .expect("endpoint list is non-empty");
            if t != v && g.add_edge(v, t) {
                endpoints.push(v);
                endpoints.push(t);
                attached += 1;
            }
        }
    }
    g
}

/// Power-law (preferential attachment) graph adjusted to the edge count
/// implied by `density`.
///
/// Starts from a small clique, attaches each new vertex to `m` existing
/// vertices with probability proportional to degree, then adds or removes
/// uniformly random edges to hit the exact target count. The degree skew —
/// the property CaQR's analysis cares about — survives the adjustment.
///
/// # Panics
///
/// Panics if `density` is outside `[0, 1]` or `n < 2`.
pub fn power_law_graph(n: usize, density: f64, seed: u64) -> Graph {
    assert!((0.0..=1.0).contains(&density), "density must be in [0, 1]");
    assert!(n >= 2, "power-law graph needs at least 2 vertices");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let target = edges_for_density(n, density);
    // Attachment count per new vertex, chosen so the BA phase lands near the
    // target edge count.
    let m = ((target as f64 / n as f64).round() as usize).clamp(1, n - 1);

    let mut g = Graph::new(n);
    // Repeated-endpoint list implements preferential attachment cheaply.
    let mut endpoints: Vec<usize> = Vec::new();
    let core = (m + 1).min(n);
    for i in 0..core {
        for j in i + 1..core {
            g.add_edge(i, j);
            endpoints.push(i);
            endpoints.push(j);
        }
    }
    for v in core..n {
        let mut attached = 0;
        let mut guard = 0;
        while attached < m && guard < 50 * m + 100 {
            guard += 1;
            let &t = endpoints
                .get(rng.gen_range(0..endpoints.len()))
                .expect("endpoint list is non-empty");
            if t != v && g.add_edge(v, t) {
                endpoints.push(v);
                endpoints.push(t);
                attached += 1;
            }
        }
    }
    adjust_to_target(&mut g, target, &mut rng);
    g
}

/// Adds or removes uniformly random edges until `g` has exactly `target`.
fn adjust_to_target(g: &mut Graph, target: usize, rng: &mut ChaCha8Rng) {
    let n = g.num_vertices();
    while g.num_edges() > target {
        let edges: Vec<(usize, usize)> = g.edges().collect();
        // Removing a uniformly random edge slightly biases against hubs
        // (they touch more edges) which keeps the tail heavy.
        let &(u, v) = edges.choose(rng).expect("graph has edges to remove");
        g.remove_edge(u, v);
    }
    let mut guard = 0;
    while g.num_edges() < target && guard < 100_000 {
        guard += 1;
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if u != v {
            g.add_edge(u, v);
        }
    }
}

/// Degree histogram of `g`: `hist[d]` = number of vertices with degree `d`.
pub fn degree_histogram(g: &Graph) -> Vec<usize> {
    let mut hist = vec![0usize; g.max_degree() + 1];
    for v in 0..g.num_vertices() {
        hist[g.degree(v)] += 1;
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_graph_hits_density() {
        for n in [16, 32, 64] {
            let g = random_graph(n, 0.3, 1);
            assert_eq!(g.num_edges(), edges_for_density(n, 0.3));
        }
    }

    #[test]
    fn random_graph_deterministic() {
        let a = random_graph(20, 0.3, 99);
        let b = random_graph(20, 0.3, 99);
        assert_eq!(a, b);
        let c = random_graph(20, 0.3, 100);
        assert_ne!(a, c);
    }

    #[test]
    fn power_law_hits_density() {
        for n in [16, 32, 64, 128] {
            let g = power_law_graph(n, 0.3, 7);
            assert_eq!(g.num_edges(), edges_for_density(n, 0.3), "n={n}");
        }
    }

    #[test]
    fn power_law_is_skewed_vs_random() {
        // The power-law graph should have a larger max degree than the
        // random graph at the same density.
        let pl = power_law_graph(64, 0.3, 3);
        let er = random_graph(64, 0.3, 3);
        assert!(
            pl.max_degree() > er.max_degree(),
            "power-law max degree {} should exceed random {}",
            pl.max_degree(),
            er.max_degree()
        );
    }

    #[test]
    fn barabasi_albert_structure() {
        let g = barabasi_albert(64, 2, 5);
        // m edges per arrival past the initial triangle.
        assert!(g.num_edges() <= 3 + 2 * 61);
        assert!(g.num_edges() >= 2 * 61 - 5);
        // Scale-free skew: the hubs dominate.
        assert!(g.max_degree() >= 8, "max degree {}", g.max_degree());
        // Deterministic.
        assert_eq!(g, barabasi_albert(64, 2, 5));
    }

    #[test]
    #[should_panic(expected = "attachment")]
    fn barabasi_albert_bad_m() {
        barabasi_albert(4, 0, 0);
    }

    #[test]
    fn density_extremes() {
        let empty = random_graph(10, 0.0, 1);
        assert_eq!(empty.num_edges(), 0);
        let full = random_graph(10, 1.0, 1);
        assert_eq!(full.num_edges(), 45);
    }

    #[test]
    fn degree_histogram_sums_to_n() {
        let g = power_law_graph(32, 0.3, 5);
        let hist = degree_histogram(&g);
        assert_eq!(hist.iter().sum::<usize>(), 32);
    }

    #[test]
    #[should_panic(expected = "density")]
    fn bad_density_panics() {
        random_graph(10, 1.5, 0);
    }

    #[test]
    fn small_graphs() {
        let g = power_law_graph(2, 1.0, 0);
        assert_eq!(g.num_edges(), 1);
        let g = random_graph(5, 0.3, 0);
        assert_eq!(g.num_edges(), 3);
    }
}
