//! Undirected simple graphs stored as adjacency lists.

use std::collections::BTreeSet;
use std::fmt;

/// An undirected simple graph over vertices `0..n`.
///
/// Self-loops and parallel edges are rejected. Adjacency is kept sorted so
/// iteration order (and therefore every algorithm in this crate) is
/// deterministic.
///
/// # Examples
///
/// ```
/// use caqr_graph::Graph;
///
/// let mut g = Graph::new(3);
/// g.add_edge(0, 1);
/// g.add_edge(1, 2);
/// assert_eq!(g.degree(1), 2);
/// assert!(g.has_edge(1, 0));
/// assert_eq!(g.num_edges(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Graph {
    adj: Vec<BTreeSet<usize>>,
    num_edges: usize,
}

impl Graph {
    /// Creates a graph with `n` vertices and no edges.
    pub fn new(n: usize) -> Self {
        Graph {
            adj: vec![BTreeSet::new(); n],
            num_edges: 0,
        }
    }

    /// Builds a graph from an edge list, sizing it to `n` vertices.
    ///
    /// Duplicate edges are ignored.
    ///
    /// # Panics
    ///
    /// Panics if any endpoint is `>= n` or an edge is a self-loop.
    pub fn from_edges(n: usize, edges: impl IntoIterator<Item = (usize, usize)>) -> Self {
        let mut g = Graph::new(n);
        for (u, v) in edges {
            g.add_edge(u, v);
        }
        g
    }

    /// The number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.adj.len()
    }

    /// The number of edges.
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Adds the undirected edge `{u, v}`. Returns `true` if it was new.
    ///
    /// # Panics
    ///
    /// Panics if `u == v` (self-loop) or either endpoint is out of range.
    pub fn add_edge(&mut self, u: usize, v: usize) -> bool {
        assert_ne!(u, v, "self-loops are not allowed");
        assert!(
            u < self.adj.len() && v < self.adj.len(),
            "edge ({u}, {v}) out of range for {} vertices",
            self.adj.len()
        );
        let fresh = self.adj[u].insert(v);
        self.adj[v].insert(u);
        if fresh {
            self.num_edges += 1;
        }
        fresh
    }

    /// Removes the edge `{u, v}`. Returns `true` if it was present.
    pub fn remove_edge(&mut self, u: usize, v: usize) -> bool {
        if u >= self.adj.len() || v >= self.adj.len() {
            return false;
        }
        let present = self.adj[u].remove(&v);
        self.adj[v].remove(&u);
        if present {
            self.num_edges -= 1;
        }
        present
    }

    /// Returns `true` if the edge `{u, v}` exists.
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        u < self.adj.len() && self.adj[u].contains(&v)
    }

    /// The degree of vertex `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn degree(&self, v: usize) -> usize {
        self.adj[v].len()
    }

    /// The maximum degree over all vertices (0 for an empty graph).
    pub fn max_degree(&self) -> usize {
        self.adj.iter().map(BTreeSet::len).max().unwrap_or(0)
    }

    /// Iterates over the neighbors of `v` in ascending order.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn neighbors(&self, v: usize) -> impl Iterator<Item = usize> + '_ {
        self.adj[v].iter().copied()
    }

    /// Iterates over all edges as `(u, v)` pairs with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.adj.iter().enumerate().flat_map(|(u, ns)| {
            ns.iter()
                .copied()
                .filter(move |&v| u < v)
                .map(move |v| (u, v))
        })
    }

    /// Edge density: `|E| / (n choose 2)`, or 0 for graphs with < 2 vertices.
    pub fn density(&self) -> f64 {
        let n = self.adj.len();
        if n < 2 {
            return 0.0;
        }
        self.num_edges as f64 / (n * (n - 1) / 2) as f64
    }

    /// Appends a fresh isolated vertex and returns its index.
    pub fn add_vertex(&mut self) -> usize {
        self.adj.push(BTreeSet::new());
        self.adj.len() - 1
    }

    /// Returns the subgraph induced by keeping only edges accepted by `keep`.
    pub fn filter_edges(&self, mut keep: impl FnMut(usize, usize) -> bool) -> Graph {
        let mut g = Graph::new(self.num_vertices());
        for (u, v) in self.edges() {
            if keep(u, v) {
                g.add_edge(u, v);
            }
        }
        g
    }
}

impl fmt::Display for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Graph(n={}, m={}, edges=[",
            self.num_vertices(),
            self.num_edges
        )?;
        for (i, (u, v)) in self.edges().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{u}-{v}")?;
        }
        write!(f, "])")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_query() {
        let mut g = Graph::new(4);
        assert!(g.add_edge(0, 3));
        assert!(!g.add_edge(3, 0));
        assert!(g.has_edge(0, 3));
        assert!(g.has_edge(3, 0));
        assert!(!g.has_edge(1, 2));
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn degrees_and_neighbors() {
        let g = Graph::from_edges(5, [(0, 1), (0, 2), (0, 3), (0, 4)]);
        assert_eq!(g.degree(0), 4);
        assert_eq!(g.max_degree(), 4);
        assert_eq!(g.neighbors(0).collect::<Vec<_>>(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn edges_iteration_is_sorted_and_unique() {
        let g = Graph::from_edges(4, [(2, 1), (0, 3), (1, 2)]);
        let es: Vec<_> = g.edges().collect();
        assert_eq!(es, vec![(0, 3), (1, 2)]);
    }

    #[test]
    fn remove_edge() {
        let mut g = Graph::from_edges(3, [(0, 1), (1, 2)]);
        assert!(g.remove_edge(1, 0));
        assert!(!g.remove_edge(0, 1));
        assert_eq!(g.num_edges(), 1);
        assert!(!g.has_edge(0, 1));
    }

    #[test]
    fn density() {
        let g = Graph::from_edges(4, [(0, 1), (2, 3), (0, 2)]);
        assert!((g.density() - 0.5).abs() < 1e-12);
        assert_eq!(Graph::new(1).density(), 0.0);
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn self_loop_panics() {
        Graph::new(2).add_edge(1, 1);
    }

    #[test]
    fn filter_edges_keeps_subset() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]);
        let sub = g.filter_edges(|u, _| u != 1);
        assert_eq!(sub.num_edges(), 2);
        assert!(!sub.has_edge(1, 2));
    }

    #[test]
    fn add_vertex_grows() {
        let mut g = Graph::new(2);
        let v = g.add_vertex();
        assert_eq!(v, 2);
        g.add_edge(0, v);
        assert!(g.has_edge(2, 0));
    }

    #[test]
    fn display_nonempty() {
        let g = Graph::from_edges(3, [(0, 1)]);
        let s = format!("{g}");
        assert!(s.contains("0-1"));
    }
}
