//! Graph algorithm substrate for the CaQR reproduction.
//!
//! CaQR (ASPLOS 2023) leans on a handful of classical graph algorithms:
//!
//! * **Graph coloring** ([`coloring`]) gives the minimum qubit count for
//!   commuting-gate circuits (QAOA): qubits sharing a color can share a wire.
//! * **Maximum matching** ([`matching`]) schedules one layer of commuting
//!   two-qubit gates; the paper uses Edmonds' blossom algorithm with priority
//!   weights on gates that unblock qubit reuse.
//! * **Reachability / cycle detection** ([`closure`], [`digraph`]) validates
//!   reuse pairs against the paper's Condition 2.
//! * **Random graph generators** ([`gen`]) produce the QAOA problem instances
//!   (Erdős–Rényi "random" and Barabási–Albert "power-law" graphs at a given
//!   density) used throughout the evaluation.
//!
//! The crate is self-contained (no quantum types) so it can be tested and
//! benchmarked in isolation.
//!
//! # Examples
//!
//! ```
//! use caqr_graph::{coloring, Graph};
//!
//! // A 5-cycle needs 3 colors.
//! let mut g = Graph::new(5);
//! for i in 0..5 {
//!     g.add_edge(i, (i + 1) % 5);
//! }
//! let coloring = coloring::dsatur(&g);
//! assert_eq!(coloring.num_colors(), 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitset;
pub mod closure;
pub mod coloring;
pub mod digraph;
pub mod dist;
pub mod gen;
pub mod matching;
pub mod pathwidth;

mod adj;

pub use adj::Graph;
pub use bitset::BitSet;
pub use coloring::Coloring;
pub use digraph::DiGraph;
pub use matching::Matching;
