//! Shortest-path distances over unweighted graphs.
//!
//! Routing (SWAP insertion) and SR-CaQR's physical-qubit selection both
//! score candidates by coupling-graph distance; an all-pairs BFS table makes
//! those lookups O(1).

use crate::adj::Graph;

/// Distance not defined (vertices in different components).
pub const UNREACHABLE: u32 = u32::MAX;

/// All-pairs shortest-path distances (hop counts) of an unweighted graph.
///
/// # Examples
///
/// ```
/// use caqr_graph::{dist::DistanceMatrix, Graph};
///
/// let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]);
/// let d = DistanceMatrix::of(&g);
/// assert_eq!(d.get(0, 3), 3);
/// assert_eq!(d.get(2, 2), 0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DistanceMatrix {
    n: usize,
    dist: Vec<u32>,
}

impl DistanceMatrix {
    /// Computes the matrix with one BFS per vertex: `O(V * (V + E))`.
    pub fn of(g: &Graph) -> Self {
        let n = g.num_vertices();
        let mut dist = vec![UNREACHABLE; n * n];
        let mut queue = std::collections::VecDeque::new();
        for src in 0..n {
            let row = &mut dist[src * n..(src + 1) * n];
            row[src] = 0;
            queue.clear();
            queue.push_back(src);
            while let Some(v) = queue.pop_front() {
                let dv = row[v];
                for u in g.neighbors(v) {
                    if row[u] == UNREACHABLE {
                        row[u] = dv + 1;
                        queue.push_back(u);
                    }
                }
            }
        }
        DistanceMatrix { n, dist }
    }

    /// The hop distance from `u` to `v`, or [`UNREACHABLE`].
    ///
    /// # Panics
    ///
    /// Panics if either vertex is out of range.
    pub fn get(&self, u: usize, v: usize) -> u32 {
        assert!(u < self.n && v < self.n, "vertex out of range");
        self.dist[u * self.n + v]
    }

    /// The number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// The eccentricity-maximum (graph diameter), ignoring unreachable pairs.
    pub fn diameter(&self) -> u32 {
        self.dist
            .iter()
            .copied()
            .filter(|&d| d != UNREACHABLE)
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_graph_distances() {
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4)]);
        let d = DistanceMatrix::of(&g);
        assert_eq!(d.get(0, 4), 4);
        assert_eq!(d.get(4, 0), 4);
        assert_eq!(d.get(1, 3), 2);
        assert_eq!(d.diameter(), 4);
    }

    #[test]
    fn disconnected_components_unreachable() {
        let g = Graph::from_edges(4, [(0, 1), (2, 3)]);
        let d = DistanceMatrix::of(&g);
        assert_eq!(d.get(0, 2), UNREACHABLE);
        assert_eq!(d.get(0, 1), 1);
    }

    #[test]
    fn cycle_wraps() {
        let mut g = Graph::new(6);
        for i in 0..6 {
            g.add_edge(i, (i + 1) % 6);
        }
        let d = DistanceMatrix::of(&g);
        assert_eq!(d.get(0, 3), 3);
        assert_eq!(d.get(0, 5), 1);
        assert_eq!(d.diameter(), 3);
    }

    #[test]
    fn single_vertex() {
        let d = DistanceMatrix::of(&Graph::new(1));
        assert_eq!(d.get(0, 0), 0);
        assert_eq!(d.diameter(), 0);
    }
}
