//! Maximum matching in general graphs (Edmonds' blossom algorithm).
//!
//! CaQR's commuting-gate scheduler (§3.2.2, Step 3) schedules one layer of
//! QAOA gates per round by computing a maximum matching of the remaining
//! qubit-interaction graph — as many non-overlapping two-qubit gates as
//! possible — while *prioritizing* edges whose completion unblocks a qubit
//! reuse. The paper uses Edmonds' blossom algorithm with edge weights
//! `|E_int| > 1` on priority edges and `1` elsewhere, and notes a greedy
//! maximal matching as a cheaper near-optimal alternative (§3.4).
//!
//! This module provides all three:
//!
//! * [`maximum`] — blossom maximum-cardinality matching, `O(V^3)`.
//! * [`priority_maximum`] — two-phase matching that first maximizes the
//!   number of priority edges, then extends to a maximum matching.
//! * [`greedy_maximal`] — sort-by-weight greedy maximal matching.

use crate::adj::Graph;

/// A matching: a set of vertex-disjoint edges, stored as `mate[v]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Matching {
    mate: Vec<Option<usize>>,
}

impl Matching {
    /// An empty matching over `n` vertices.
    pub fn empty(n: usize) -> Self {
        Matching {
            mate: vec![None; n],
        }
    }

    /// The partner of `v`, if matched.
    pub fn mate(&self, v: usize) -> Option<usize> {
        self.mate[v]
    }

    /// Returns `true` if `v` is matched.
    pub fn is_matched(&self, v: usize) -> bool {
        self.mate[v].is_some()
    }

    /// The number of edges in the matching.
    pub fn len(&self) -> usize {
        self.mate.iter().flatten().count() / 2
    }

    /// Returns `true` if the matching has no edges.
    pub fn is_empty(&self) -> bool {
        self.mate.iter().all(Option::is_none)
    }

    /// The matched edges as `(u, v)` pairs with `u < v`, ascending.
    pub fn edges(&self) -> Vec<(usize, usize)> {
        self.mate
            .iter()
            .enumerate()
            .filter_map(|(u, &m)| m.filter(|&v| u < v).map(|v| (u, v)))
            .collect()
    }

    /// Verifies this is a valid matching of `g`: symmetric, vertex-disjoint,
    /// and every matched pair is an edge of `g`.
    pub fn is_valid(&self, g: &Graph) -> bool {
        self.mate.len() == g.num_vertices()
            && self.mate.iter().enumerate().all(|(u, &m)| match m {
                None => true,
                Some(v) => v < self.mate.len() && self.mate[v] == Some(u) && g.has_edge(u, v),
            })
    }

    fn set(&mut self, u: usize, v: usize) {
        self.mate[u] = Some(v);
        self.mate[v] = Some(u);
    }
}

/// Blossom-algorithm state for one augmenting-path search.
struct Blossom<'g> {
    g: &'g Graph,
    mate: Vec<Option<usize>>,
    parent: Vec<Option<usize>>,
    base: Vec<usize>,
    in_queue: Vec<bool>,
    in_blossom: Vec<bool>,
}

impl<'g> Blossom<'g> {
    fn new(g: &'g Graph, mate: Vec<Option<usize>>) -> Self {
        let n = g.num_vertices();
        Blossom {
            g,
            mate,
            parent: vec![None; n],
            base: (0..n).collect(),
            in_queue: vec![false; n],
            in_blossom: vec![false; n],
        }
    }

    /// Lowest common ancestor of `a` and `b` in the alternating forest,
    /// walking through blossom bases.
    fn lca(&self, a: usize, b: usize) -> usize {
        let n = self.g.num_vertices();
        let mut seen = vec![false; n];
        let mut cur = a;
        loop {
            cur = self.base[cur];
            seen[cur] = true;
            match self.mate[cur] {
                None => break,
                Some(m) => match self.parent[m] {
                    None => break,
                    Some(p) => cur = p,
                },
            }
        }
        let mut cur = b;
        loop {
            cur = self.base[cur];
            if seen[cur] {
                return cur;
            }
            cur = self.parent[self.mate[cur].expect("inner vertex is matched")]
                .expect("inner vertex has a parent");
        }
    }

    fn mark_path(&mut self, mut v: usize, blossom_base: usize, mut child: usize) {
        while self.base[v] != blossom_base {
            let m = self.mate[v].expect("blossom vertex is matched");
            self.in_blossom[self.base[v]] = true;
            self.in_blossom[self.base[m]] = true;
            self.parent[v] = Some(child);
            child = m;
            v = self.parent[m].expect("blossom path continues");
        }
    }

    fn contract(&mut self, v: usize, to: usize, queue: &mut Vec<usize>) {
        let b = self.lca(v, to);
        self.in_blossom.iter_mut().for_each(|x| *x = false);
        self.mark_path(v, b, to);
        self.mark_path(to, b, v);
        for i in 0..self.g.num_vertices() {
            if self.in_blossom[self.base[i]] {
                self.base[i] = b;
                if !self.in_queue[i] {
                    self.in_queue[i] = true;
                    queue.push(i);
                }
            }
        }
    }

    /// BFS from `root` for an augmenting path; augments `self.mate` and
    /// returns `true` if one is found.
    fn try_augment(&mut self, root: usize) -> bool {
        let n = self.g.num_vertices();
        self.parent.iter_mut().for_each(|p| *p = None);
        self.in_queue.iter_mut().for_each(|x| *x = false);
        self.base = (0..n).collect();
        self.in_queue[root] = true;
        let mut queue = vec![root];
        let mut head = 0;
        while head < queue.len() {
            let v = queue[head];
            head += 1;
            let neighbors: Vec<usize> = self.g.neighbors(v).collect();
            for to in neighbors {
                if self.base[v] == self.base[to] || self.mate[v] == Some(to) {
                    continue;
                }
                let to_is_root = to == root;
                let to_is_inner_labeled = self.mate[to].is_some_and(|m| self.parent[m].is_some());
                if to_is_root || to_is_inner_labeled {
                    // Odd cycle: contract the blossom.
                    self.contract(v, to, &mut queue);
                } else if self.parent[to].is_none() {
                    self.parent[to] = Some(v);
                    match self.mate[to] {
                        None => {
                            // Exposed vertex: augment along the path to root.
                            let mut u = Some(to);
                            while let Some(x) = u {
                                let pv = self.parent[x].expect("path leads to root");
                                let next = self.mate[pv];
                                self.mate[x] = Some(pv);
                                self.mate[pv] = Some(x);
                                u = next;
                            }
                            return true;
                        }
                        Some(m) => {
                            if !self.in_queue[m] {
                                self.in_queue[m] = true;
                                queue.push(m);
                            }
                        }
                    }
                }
            }
        }
        false
    }
}

/// Maximum-cardinality matching via Edmonds' blossom algorithm, seeded from
/// `initial` (which must be a valid matching of `g`).
///
/// # Panics
///
/// Panics if `initial` is not a valid matching of `g`.
pub fn maximum_from(g: &Graph, initial: Matching) -> Matching {
    assert!(initial.is_valid(g), "initial matching is invalid");
    let mut bl = Blossom::new(g, initial.mate);
    for v in 0..g.num_vertices() {
        if bl.mate[v].is_none() {
            bl.try_augment(v);
        }
    }
    Matching { mate: bl.mate }
}

/// Maximum-cardinality matching via Edmonds' blossom algorithm.
///
/// A greedy matching seeds the search, so typical instances need few
/// augmenting phases.
///
/// # Examples
///
/// ```
/// use caqr_graph::{matching, Graph};
///
/// // A 5-cycle has a maximum matching of size 2.
/// let mut g = Graph::new(5);
/// for i in 0..5 {
///     g.add_edge(i, (i + 1) % 5);
/// }
/// assert_eq!(matching::maximum(&g).len(), 2);
/// ```
pub fn maximum(g: &Graph) -> Matching {
    maximum_from(g, greedy_seed(g))
}

fn greedy_seed(g: &Graph) -> Matching {
    let mut m = Matching::empty(g.num_vertices());
    for (u, v) in g.edges() {
        if !m.is_matched(u) && !m.is_matched(v) {
            m.set(u, v);
        }
    }
    m
}

/// Two-phase priority matching.
///
/// Phase 1 computes a maximum matching restricted to the edges where
/// `is_priority(u, v)` holds — these are the paper's weight-`|E_int|` gates
/// whose completion unblocks a qubit reuse. Phase 2 extends that matching to
/// a maximum-cardinality matching of the whole graph.
///
/// This realizes the effect of the paper's maximum *weight* matching with
/// two weight classes: priority gates are scheduled as early as possible
/// without sacrificing layer parallelism.
pub fn priority_maximum(g: &Graph, mut is_priority: impl FnMut(usize, usize) -> bool) -> Matching {
    let priority_subgraph = g.filter_edges(&mut is_priority);
    let phase1 = maximum(&priority_subgraph);
    maximum_from(g, phase1)
}

/// Greedy maximal matching over edges sorted by descending weight
/// (ties broken by edge order). The cheap alternative the paper suggests in
/// §3.4; used by the `ablation_matching` experiment.
pub fn greedy_maximal(g: &Graph, mut weight: impl FnMut(usize, usize) -> u64) -> Matching {
    let mut edges: Vec<(usize, usize, u64)> =
        g.edges().map(|(u, v)| (u, v, weight(u, v))).collect();
    edges.sort_by(|a, b| b.2.cmp(&a.2).then(a.0.cmp(&b.0)).then(a.1.cmp(&b.1)));
    let mut m = Matching::empty(g.num_vertices());
    for (u, v, _) in edges {
        if !m.is_matched(u) && !m.is_matched(v) {
            m.set(u, v);
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cycle(n: usize) -> Graph {
        let mut g = Graph::new(n);
        for i in 0..n {
            g.add_edge(i, (i + 1) % n);
        }
        g
    }

    fn complete(n: usize) -> Graph {
        let mut g = Graph::new(n);
        for i in 0..n {
            for j in i + 1..n {
                g.add_edge(i, j);
            }
        }
        g
    }

    #[test]
    fn perfect_matching_on_even_cycle() {
        let g = cycle(8);
        let m = maximum(&g);
        assert_eq!(m.len(), 4);
        assert!(m.is_valid(&g));
    }

    #[test]
    fn odd_cycle_leaves_one_exposed() {
        let g = cycle(9);
        let m = maximum(&g);
        assert_eq!(m.len(), 4);
        assert!(m.is_valid(&g));
    }

    #[test]
    fn complete_graphs() {
        for n in 2..8 {
            let g = complete(n);
            let m = maximum(&g);
            assert_eq!(m.len(), n / 2, "K_{n}");
            assert!(m.is_valid(&g));
        }
    }

    #[test]
    fn petersen_graph_has_perfect_matching() {
        // The Petersen graph: outer 5-cycle, inner 5-star, spokes.
        let mut g = Graph::new(10);
        for i in 0..5 {
            g.add_edge(i, (i + 1) % 5); // outer cycle
            g.add_edge(5 + i, 5 + (i + 2) % 5); // inner pentagram
            g.add_edge(i, 5 + i); // spokes
        }
        let m = maximum(&g);
        assert_eq!(m.len(), 5);
        assert!(m.is_valid(&g));
    }

    #[test]
    fn blossom_requires_contraction() {
        // A triangle with two pendants, where greedy matching of the
        // triangle edge forces an augmentation through the odd cycle:
        // 3 - 0, 0 - 1, 1 - 2, 2 - 0, 2 - 4. Maximum matching = 2.
        let g = Graph::from_edges(5, [(3, 0), (0, 1), (1, 2), (2, 0), (2, 4)]);
        let m = maximum(&g);
        assert_eq!(m.len(), 2);
        assert!(m.is_valid(&g));
        // Exactly one of the five vertices stays exposed.
        assert_eq!((0..5).filter(|&v| m.is_matched(v)).count(), 4);
    }

    #[test]
    fn nested_blossoms() {
        // Two triangles sharing paths plus pendants, forcing nested
        // contractions: classic stress case.
        let g = Graph::from_edges(
            8,
            [
                (0, 1),
                (1, 2),
                (2, 0),
                (2, 3),
                (3, 4),
                (4, 5),
                (5, 3),
                (5, 6),
                (6, 7),
            ],
        );
        let m = maximum(&g);
        assert!(m.is_valid(&g));
        assert_eq!(m.len(), 4);
    }

    #[test]
    fn star_graph_matches_one_edge() {
        let g = Graph::from_edges(5, [(0, 1), (0, 2), (0, 3), (0, 4)]);
        assert_eq!(maximum(&g).len(), 1);
    }

    #[test]
    fn empty_graph() {
        let g = Graph::new(4);
        let m = maximum(&g);
        assert!(m.is_empty());
        assert_eq!(m.len(), 0);
        assert!(m.is_valid(&g));
    }

    #[test]
    fn priority_edges_preferred() {
        // Path 0-1-2-3: both {0-1, 2-3} and {1-2} are matchings; maximum
        // picks two edges. If 1-2 is priority, phase 1 matches it; phase 2
        // must then still find a maximum matching (which requires flipping
        // 1-2 out — cardinality wins, by design).
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]);
        let m = priority_maximum(&g, |u, v| (u, v) == (1, 2));
        assert_eq!(m.len(), 2);
        assert!(m.is_valid(&g));
    }

    #[test]
    fn priority_breaks_ties_toward_priority_edge() {
        // Triangle: any single edge is a maximum matching. Priority edge
        // (1, 2) should be the one chosen.
        let g = Graph::from_edges(3, [(0, 1), (1, 2), (2, 0)]);
        let m = priority_maximum(&g, |u, v| (u, v) == (1, 2));
        assert_eq!(m.len(), 1);
        assert_eq!(m.mate(1), Some(2));
    }

    #[test]
    fn greedy_maximal_respects_weights() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]);
        // Heavy middle edge wins greedy even though it blocks cardinality 2.
        let m = greedy_maximal(&g, |u, v| if (u, v) == (1, 2) { 10 } else { 1 });
        assert_eq!(m.len(), 1);
        assert_eq!(m.mate(1), Some(2));
        assert!(m.is_valid(&g));
    }

    #[test]
    fn greedy_is_maximal() {
        let g = complete(6);
        let m = greedy_maximal(&g, |_, _| 1);
        // Maximal on K6 is also maximum.
        assert_eq!(m.len(), 3);
    }

    #[test]
    fn maximum_from_preserves_validity() {
        let g = cycle(6);
        let mut seed = Matching::empty(6);
        seed.set(0, 1);
        let m = maximum_from(&g, seed);
        assert_eq!(m.len(), 3);
        assert!(m.is_valid(&g));
    }

    #[test]
    #[should_panic(expected = "invalid")]
    fn maximum_from_rejects_bogus_seed() {
        let g = Graph::new(3);
        let mut seed = Matching::empty(3);
        seed.set(0, 1); // not an edge of g
        maximum_from(&g, seed);
    }

    #[test]
    fn random_graphs_match_greedy_lower_bound() {
        // Maximum matching must be >= any greedy maximal matching.
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
        for n in [5usize, 9, 14] {
            for _ in 0..20 {
                let mut g = Graph::new(n);
                for i in 0..n {
                    for j in i + 1..n {
                        if rng.gen_bool(0.3) {
                            g.add_edge(i, j);
                        }
                    }
                }
                let max = maximum(&g);
                let greedy = greedy_maximal(&g, |_, _| 1);
                assert!(max.is_valid(&g));
                assert!(max.len() >= greedy.len());
            }
        }
    }
}
