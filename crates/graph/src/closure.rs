//! Transitive closure and reachability matrices over DAGs.
//!
//! The paper's Condition 2 check ("no operation on `q_i` may depend on any
//! operation on `q_j`") is a batch of reachability queries between the gate
//! groups of two qubits. Answering them from a precomputed dense closure
//! turns each candidate-pair test into a couple of bitset probes, which is
//! what keeps QS-CaQR's `O(k n^3)` loop practical.

use crate::bitset::BitSet;
use crate::digraph::DiGraph;

/// Dense transitive closure of a DAG.
///
/// `reachable(u, v)` answers "is there a directed path from `u` to `v`?"
/// (`u == v` counts as reachable).
///
/// # Examples
///
/// ```
/// use caqr_graph::{closure::TransitiveClosure, DiGraph};
///
/// let g = DiGraph::from_edges(3, [(0, 1), (1, 2)]);
/// let tc = TransitiveClosure::of(&g).expect("acyclic");
/// assert!(tc.reachable(0, 2));
/// assert!(!tc.reachable(2, 0));
/// ```
#[derive(Debug, Clone)]
pub struct TransitiveClosure {
    // reach[v] = set of vertices reachable from v (including v).
    reach: Vec<BitSet>,
}

impl TransitiveClosure {
    /// Computes the closure of `g`. Returns `None` if `g` has a cycle.
    ///
    /// Runs in `O(V * E / 64)` word operations (reverse topological sweep
    /// with bitset unions).
    pub fn of(g: &DiGraph) -> Option<Self> {
        let n = g.num_vertices();
        let order = g.topological_order()?;
        let mut reach: Vec<BitSet> = (0..n).map(|_| BitSet::new(n)).collect();
        for &v in order.iter().rev() {
            // Build v's set from its successors' sets, which are final.
            let mut set = BitSet::new(n);
            set.insert(v);
            for s in g.successors(v) {
                set.union_with(&reach[s]);
            }
            reach[v] = set;
        }
        Some(TransitiveClosure { reach })
    }

    /// Returns `true` if `v` is reachable from `u` (reflexive).
    pub fn reachable(&self, u: usize, v: usize) -> bool {
        self.reach[u].contains(v)
    }

    /// Returns `true` if any vertex in `sources` reaches any vertex in
    /// `targets`.
    ///
    /// This is exactly the Condition-2 test: with `sources` = gates on
    /// `q_j` and `targets` = gates on `q_i`, a hit means reusing `q_i` for
    /// `q_j` would create a cycle.
    pub fn any_reaches(&self, sources: &[usize], targets: &[usize]) -> bool {
        let target_set: BitSet = {
            let n = self.reach.len();
            let mut s = BitSet::new(n);
            for &t in targets {
                s.insert(t);
            }
            s
        };
        sources
            .iter()
            .any(|&u| self.reach[u].intersects(&target_set))
    }

    /// The number of vertices the closure covers.
    pub fn num_vertices(&self) -> usize {
        self.reach.len()
    }
}

/// Returns `true` if adding the edges `extra` to the DAG `g` would create a
/// directed cycle.
///
/// Used to validate reuse pairs incrementally without rebuilding the closure.
pub fn creates_cycle(g: &DiGraph, extra: &[(usize, usize)]) -> bool {
    let mut h = g.clone();
    for &(u, v) in extra {
        if u == v {
            return true;
        }
        h.add_edge(u, v);
    }
    h.has_cycle()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closure_of_chain() {
        let g = DiGraph::from_edges(4, [(0, 1), (1, 2), (2, 3)]);
        let tc = TransitiveClosure::of(&g).unwrap();
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(tc.reachable(i, j), i <= j, "({i},{j})");
            }
        }
    }

    #[test]
    fn closure_of_diamond() {
        let g = DiGraph::from_edges(4, [(0, 1), (0, 2), (1, 3), (2, 3)]);
        let tc = TransitiveClosure::of(&g).unwrap();
        assert!(tc.reachable(0, 3));
        assert!(!tc.reachable(1, 2));
        assert!(!tc.reachable(2, 1));
    }

    #[test]
    fn cyclic_graph_has_no_closure() {
        let g = DiGraph::from_edges(2, [(0, 1), (1, 0)]);
        assert!(TransitiveClosure::of(&g).is_none());
    }

    #[test]
    fn any_reaches_group_query() {
        // 0 -> 1 -> 2;  3 isolated.
        let g = DiGraph::from_edges(4, [(0, 1), (1, 2)]);
        let tc = TransitiveClosure::of(&g).unwrap();
        assert!(tc.any_reaches(&[0], &[2, 3]));
        assert!(!tc.any_reaches(&[3], &[0, 1, 2]));
        assert!(!tc.any_reaches(&[], &[0]));
        assert!(!tc.any_reaches(&[0], &[]));
    }

    #[test]
    fn creates_cycle_detects_back_edge() {
        let g = DiGraph::from_edges(3, [(0, 1), (1, 2)]);
        assert!(creates_cycle(&g, &[(2, 0)]));
        assert!(!creates_cycle(&g, &[(0, 2)]));
        assert!(creates_cycle(&g, &[(1, 1)]));
    }

    #[test]
    fn reflexive_reachability() {
        let g = DiGraph::new(2);
        let tc = TransitiveClosure::of(&g).unwrap();
        assert!(tc.reachable(0, 0));
        assert!(!tc.reachable(0, 1));
    }
}
