//! Directed graphs with the operations CaQR's dependence analysis needs:
//! topological sort, cycle detection, longest paths, and edge mutation.

use std::collections::BTreeSet;

/// A directed simple graph over vertices `0..n`.
///
/// Used to model gate dependence graphs (`G_D` in the paper): a vertex per
/// gate, an edge `u -> v` when `v` must wait for `u`.
///
/// # Examples
///
/// ```
/// use caqr_graph::DiGraph;
///
/// let mut g = DiGraph::new(3);
/// g.add_edge(0, 1);
/// g.add_edge(1, 2);
/// assert_eq!(g.topological_order(), Some(vec![0, 1, 2]));
/// g.add_edge(2, 0);
/// assert!(g.has_cycle());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DiGraph {
    succ: Vec<BTreeSet<usize>>,
    pred: Vec<BTreeSet<usize>>,
    num_edges: usize,
}

impl DiGraph {
    /// Creates a digraph with `n` vertices and no edges.
    pub fn new(n: usize) -> Self {
        DiGraph {
            succ: vec![BTreeSet::new(); n],
            pred: vec![BTreeSet::new(); n],
            num_edges: 0,
        }
    }

    /// Builds a digraph from an edge list.
    ///
    /// # Panics
    ///
    /// Panics if any endpoint is `>= n` or an edge is a self-loop.
    pub fn from_edges(n: usize, edges: impl IntoIterator<Item = (usize, usize)>) -> Self {
        let mut g = DiGraph::new(n);
        for (u, v) in edges {
            g.add_edge(u, v);
        }
        g
    }

    /// The number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.succ.len()
    }

    /// The number of edges.
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Adds the edge `u -> v`. Returns `true` if it was new.
    ///
    /// # Panics
    ///
    /// Panics if `u == v` or either endpoint is out of range.
    pub fn add_edge(&mut self, u: usize, v: usize) -> bool {
        assert_ne!(u, v, "self-loops are not allowed");
        assert!(
            u < self.succ.len() && v < self.succ.len(),
            "edge ({u}, {v}) out of range for {} vertices",
            self.succ.len()
        );
        let fresh = self.succ[u].insert(v);
        self.pred[v].insert(u);
        if fresh {
            self.num_edges += 1;
        }
        fresh
    }

    /// Removes the edge `u -> v`. Returns `true` if it was present.
    pub fn remove_edge(&mut self, u: usize, v: usize) -> bool {
        if u >= self.succ.len() || v >= self.succ.len() {
            return false;
        }
        let present = self.succ[u].remove(&v);
        self.pred[v].remove(&u);
        if present {
            self.num_edges -= 1;
        }
        present
    }

    /// Returns `true` if the edge `u -> v` exists.
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        u < self.succ.len() && self.succ[u].contains(&v)
    }

    /// Appends a fresh isolated vertex and returns its index.
    pub fn add_vertex(&mut self) -> usize {
        self.succ.push(BTreeSet::new());
        self.pred.push(BTreeSet::new());
        self.succ.len() - 1
    }

    /// Successors of `v` in ascending order.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn successors(&self, v: usize) -> impl Iterator<Item = usize> + '_ {
        self.succ[v].iter().copied()
    }

    /// Predecessors of `v` in ascending order.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn predecessors(&self, v: usize) -> impl Iterator<Item = usize> + '_ {
        self.pred[v].iter().copied()
    }

    /// In-degree of `v`.
    pub fn in_degree(&self, v: usize) -> usize {
        self.pred[v].len()
    }

    /// Out-degree of `v`.
    pub fn out_degree(&self, v: usize) -> usize {
        self.succ[v].len()
    }

    /// A topological order of the vertices, or `None` if the graph has a
    /// cycle. Kahn's algorithm; ties broken by smallest index first so the
    /// order is deterministic.
    pub fn topological_order(&self) -> Option<Vec<usize>> {
        let n = self.num_vertices();
        let mut indeg: Vec<usize> = (0..n).map(|v| self.in_degree(v)).collect();
        let mut ready: BTreeSet<usize> = (0..n).filter(|&v| indeg[v] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(&v) = ready.iter().next() {
            ready.remove(&v);
            order.push(v);
            for s in self.successors(v) {
                indeg[s] -= 1;
                if indeg[s] == 0 {
                    ready.insert(s);
                }
            }
        }
        (order.len() == n).then_some(order)
    }

    /// Returns `true` if the graph contains a directed cycle.
    pub fn has_cycle(&self) -> bool {
        self.topological_order().is_none()
    }

    /// Longest path lengths (in vertex weights) ending at each vertex.
    ///
    /// `weight[v]` is the cost of vertex `v`; the result at `v` includes
    /// `weight[v]` itself. This is the critical-path computation the paper
    /// uses to score candidate reuse pairs.
    ///
    /// Returns `None` if the graph has a cycle.
    ///
    /// # Panics
    ///
    /// Panics if `weight.len() != num_vertices()`.
    pub fn longest_path_to(&self, weight: &[u64]) -> Option<Vec<u64>> {
        assert_eq!(weight.len(), self.num_vertices(), "weight length mismatch");
        let order = self.topological_order()?;
        let mut dist = vec![0u64; self.num_vertices()];
        for &v in &order {
            let best_pred = self.predecessors(v).map(|p| dist[p]).max().unwrap_or(0);
            dist[v] = best_pred + weight[v];
        }
        Some(dist)
    }

    /// The critical-path length: the maximum over [`Self::longest_path_to`],
    /// or 0 for an empty graph. `None` if the graph has a cycle.
    pub fn critical_path(&self, weight: &[u64]) -> Option<u64> {
        Some(self.longest_path_to(weight)?.into_iter().max().unwrap_or(0))
    }

    /// Returns `true` if `target` is reachable from `source` (including
    /// `source == target`). BFS.
    pub fn reaches(&self, source: usize, target: usize) -> bool {
        if source == target {
            return true;
        }
        let mut seen = vec![false; self.num_vertices()];
        let mut stack = vec![source];
        seen[source] = true;
        while let Some(v) = stack.pop() {
            for s in self.successors(v) {
                if s == target {
                    return true;
                }
                if !seen[s] {
                    seen[s] = true;
                    stack.push(s);
                }
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topo_order_simple_chain() {
        let g = DiGraph::from_edges(4, [(0, 1), (1, 2), (2, 3)]);
        assert_eq!(g.topological_order(), Some(vec![0, 1, 2, 3]));
        assert!(!g.has_cycle());
    }

    #[test]
    fn cycle_detected() {
        let g = DiGraph::from_edges(3, [(0, 1), (1, 2), (2, 0)]);
        assert!(g.has_cycle());
        assert_eq!(g.topological_order(), None);
        assert_eq!(g.critical_path(&[1, 1, 1]), None);
    }

    #[test]
    fn longest_path_unit_weights() {
        // Diamond: 0 -> {1,2} -> 3, so the critical path has 3 vertices.
        let g = DiGraph::from_edges(4, [(0, 1), (0, 2), (1, 3), (2, 3)]);
        assert_eq!(g.critical_path(&[1, 1, 1, 1]), Some(3));
    }

    #[test]
    fn longest_path_weighted() {
        let g = DiGraph::from_edges(3, [(0, 2), (1, 2)]);
        // Heavier source dominates.
        let dist = g.longest_path_to(&[10, 1, 5]).unwrap();
        assert_eq!(dist, vec![10, 1, 15]);
    }

    #[test]
    fn reaches_transitively() {
        let g = DiGraph::from_edges(5, [(0, 1), (1, 2), (3, 4)]);
        assert!(g.reaches(0, 2));
        assert!(g.reaches(1, 1));
        assert!(!g.reaches(2, 0));
        assert!(!g.reaches(0, 4));
    }

    #[test]
    fn remove_edge_updates_degrees() {
        let mut g = DiGraph::from_edges(2, [(0, 1)]);
        assert_eq!(g.in_degree(1), 1);
        assert!(g.remove_edge(0, 1));
        assert_eq!(g.in_degree(1), 0);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn add_vertex_isolated() {
        let mut g = DiGraph::new(1);
        let v = g.add_vertex();
        assert_eq!(v, 1);
        assert_eq!(g.in_degree(v), 0);
        assert_eq!(g.topological_order().unwrap().len(), 2);
    }

    #[test]
    fn empty_graph_critical_path_zero() {
        let g = DiGraph::new(0);
        assert_eq!(g.critical_path(&[]), Some(0));
    }

    #[test]
    fn duplicate_edge_not_double_counted() {
        let mut g = DiGraph::new(2);
        assert!(g.add_edge(0, 1));
        assert!(!g.add_edge(0, 1));
        assert_eq!(g.num_edges(), 1);
    }
}
