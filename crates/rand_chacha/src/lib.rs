//! Offline stand-in for the `rand_chacha` crate: [`ChaCha8Rng`], a
//! deterministic, seedable random number generator built on the ChaCha
//! stream cipher core with 8 double-rounds.
//!
//! The keystream follows the ChaCha block function (RFC 8439 constants and
//! quarter-round); the word stream is not bit-identical to upstream
//! `rand_chacha` (which this workspace never relied on), but it is a
//! full-quality ChaCha8 stream, stable across platforms and releases —
//! exactly what the seeded experiments need.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::{RngCore, SeedableRng, SplitMix64};

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];
/// Number of double-rounds; 4 double-rounds = ChaCha8.
const DOUBLE_ROUNDS: usize = 4;

/// A ChaCha-based RNG with 8 rounds.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// 256-bit key as eight little-endian words.
    key: [u32; 8],
    /// 64-bit block counter.
    counter: u64,
    /// Current keystream block.
    block: [u32; 16],
    /// Next unread word in `block` (16 = exhausted).
    cursor: usize,
}

impl ChaCha8Rng {
    /// Builds a generator from a 256-bit key.
    pub fn from_key(key: [u32; 8]) -> Self {
        ChaCha8Rng {
            key,
            counter: 0,
            block: [0; 16],
            cursor: 16,
        }
    }

    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONSTANTS);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = 0;
        state[15] = 0;
        let mut working = state;
        for _ in 0..DOUBLE_ROUNDS {
            // Column round.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (w, s)) in self.block.iter_mut().zip(working.iter().zip(state.iter())) {
            *out = w.wrapping_add(*s);
        }
        self.counter = self.counter.wrapping_add(1);
        self.cursor = 0;
    }

    fn next_word(&mut self) -> u32 {
        if self.cursor >= 16 {
            self.refill();
        }
        let w = self.block[self.cursor];
        self.cursor += 1;
        w
    }
}

fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        let lo = self.next_word() as u64;
        let hi = self.next_word() as u64;
        (hi << 32) | lo
    }

    fn next_u32(&mut self) -> u32 {
        self.next_word()
    }
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(state: u64) -> Self {
        let mut expand = SplitMix64::new(state);
        let mut key = [0u32; 8];
        for pair in key.chunks_mut(2) {
            let word = expand.next_u64();
            pair[0] = word as u32;
            if pair.len() > 1 {
                pair[1] = (word >> 32) as u32;
            }
        }
        ChaCha8Rng::from_key(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(2023);
        let mut b = ChaCha8Rng::seed_from_u64(2023);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = ChaCha8Rng::seed_from_u64(2024);
        assert_ne!(ChaCha8Rng::seed_from_u64(2023).next_u64(), c.next_u64());
    }

    #[test]
    fn keystream_is_not_degenerate() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let words: Vec<u64> = (0..64).map(|_| rng.next_u64()).collect();
        let mut sorted = words.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), words.len(), "repeated words in keystream");
        // Bit balance: each of the 64 positions should be set roughly half
        // the time over 4096 draws.
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let mut ones = [0u32; 64];
        for _ in 0..4096 {
            let w = rng.next_u64();
            for (bit, count) in ones.iter_mut().enumerate() {
                *count += ((w >> bit) & 1) as u32;
            }
        }
        for &c in &ones {
            assert!((1700..2400).contains(&c), "biased bit: {c}/4096");
        }
    }

    #[test]
    fn works_through_rand_traits() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let x: usize = rng.gen_range(0..10);
        assert!(x < 10);
        let _ = rng.gen_bool(0.5);
    }

    #[test]
    fn zero_seed_crosses_block_boundary() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        // 16 words per block; 10 u64 draws consume 20 words and force a
        // second block.
        let draws: Vec<u64> = (0..10).map(|_| rng.next_u64()).collect();
        assert_eq!(draws.len(), 10);
    }
}
