//! Structural reconstructions of the paper's RevLib-style benchmarks.
//!
//! The originals ship as RevLib `.real` files / IBM QASM that we do not
//! redistribute. Each reconstruction preserves what CaQR actually consumes:
//! qubit count, the gate families (Toffoli networks decomposed to
//! Clifford+T, CNOT ladders, star-shaped oracles), interaction-graph shape,
//! and deterministic classical semantics (so TVD references and success
//! targets are exact). Gate counts are the same order as the published
//! circuit statistics.

use crate::reversible::ReversibleBuilder;
use crate::suite::{Benchmark, BenchmarkKind};
use caqr_circuit::{Circuit, Clbit, Qubit};

fn finish(name: &str, builder: ReversibleBuilder) -> Benchmark {
    let (circuit, correct) = builder.finish_measured();
    Benchmark {
        name: name.to_string(),
        kind: BenchmarkKind::Regular,
        circuit,
        correct_output: Some(correct),
        graph: None,
    }
}

/// `Rd_32`: the 5-qubit rd32 adder family — computes the 2-bit sum of
/// three input bits into sum/carry qubits via Toffoli + CNOT cascades.
pub fn rd32() -> Benchmark {
    let mut b = ReversibleBuilder::new(5);
    // Inputs on 0..3 (set to 1,1,0), sum on 3, carry on 4.
    b.x(0);
    b.x(1);
    b.ccx(0, 1, 4); // carry of first pair
    b.cx(0, 3);
    b.cx(1, 3);
    b.ccx(2, 3, 4); // carry with third bit
    b.cx(2, 3);
    finish("Rd_32", b)
}

/// `4mod5`: 5-qubit modular reduction — flips the output qubit when the
/// 4-bit input is divisible by 5, via a Toffoli network.
pub fn four_mod5() -> Benchmark {
    let mut b = ReversibleBuilder::new(5);
    // Input 0101 (= 5, divisible) on qubits 0..4, result on 4.
    b.x(0);
    b.x(2);
    b.cx(3, 4);
    b.cx(2, 4);
    b.ccx(0, 2, 4);
    b.cx(1, 4);
    b.ccx(1, 3, 4);
    b.cx(0, 4);
    finish("4mod5", b)
}

/// `Multiply_13`: 13-qubit carry-less 3x3-bit multiplier. Qubits 0-2 hold
/// `a`, 3-5 hold `b`, 6-11 accumulate partial products `a_i b_j` into
/// `p_{i+j}`, qubit 12 is the RevLib ancilla (kept idle-free via a final
/// parity fold).
pub fn multiply_13() -> Benchmark {
    let mut b = ReversibleBuilder::new(13);
    // a = 0b011 (3), b = 0b101 (5).
    b.x(0);
    b.x(1);
    b.x(3);
    b.x(5);
    for i in 0..3 {
        for j in 0..3 {
            b.ccx(i, 3 + j, 6 + i + j);
        }
    }
    // Fold the product parity into the ancilla so every wire is live.
    for k in 0..6 {
        b.cx(6 + k, 12);
    }
    finish("Multiply_13", b)
}

/// `System_9`: 9-qubit "system of equations" kernel — alternating CNOT
/// ladders and Toffoli mixing layers, the dense-dependency shape that gives
/// regular applications their limited reuse headroom.
pub fn system_9() -> Benchmark {
    let mut b = ReversibleBuilder::new(9);
    b.x(0);
    b.x(4);
    b.x(7);
    // Forward elimination ladder.
    for i in 0..8 {
        b.cx(i, i + 1);
    }
    // Pivot mixing.
    b.ccx(0, 1, 2);
    b.ccx(3, 4, 5);
    b.ccx(6, 7, 8);
    // Back substitution ladder.
    for i in (0..8).rev() {
        b.cx(i + 1, i);
    }
    b.ccx(2, 5, 8);
    finish("System_9", b)
}

/// `CC_10`: the 10-qubit counterfeit-coin oracle — a star-shaped circuit
/// where every coin qubit queries the shared balance qubit, like BV but
/// with a two-round query.
pub fn cc_10() -> Benchmark {
    cc(10)
}

/// `CC_13`: the 13-qubit counterfeit-coin instance run on hardware in
/// §4.4.
pub fn cc_13() -> Benchmark {
    cc(13)
}

/// Parametric counterfeit-coin oracle on `n` qubits (`n-1` coins + one
/// balance qubit). Every coin is weighed against the shared balance qubit
/// (phase kickback), and the counterfeit coin — index `(n-1) / 2` — gets an
/// extra phase flip, so the final read-out is all-ones except the
/// counterfeit position. The interaction graph is the same full star as
/// BV, the shape CaQR's SWAP-reduction results lean on.
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn cc(n: usize) -> Benchmark {
    assert!(n >= 3, "counterfeit-coin needs at least two coins");
    let coins = n - 1;
    let counterfeit = (n - 1) / 2;
    let mut c = Circuit::new(n, coins);
    let balance = Qubit::new(coins);
    for i in 0..coins {
        c.h(Qubit::new(i));
    }
    c.x(balance);
    c.h(balance);
    // Weighing: every coin queries the balance.
    for i in 0..coins {
        c.cx(Qubit::new(i), balance);
    }
    // The counterfeit coin picks up an extra phase flip.
    c.z(Qubit::new(counterfeit));
    for i in 0..coins {
        c.h(Qubit::new(i));
    }
    for i in 0..coins {
        c.measure(Qubit::new(i), Clbit::new(i));
    }
    // Phase kickback leaves every genuine coin reading 1; the extra Z
    // returns the counterfeit coin to |+> -> reads 0.
    let correct = ((1u64 << coins) - 1) & !(1 << counterfeit);
    Benchmark {
        name: format!("CC_{n}"),
        kind: BenchmarkKind::Regular,
        circuit: c,
        correct_output: Some(correct),
        graph: None,
    }
}

/// `XOR_5`: 5-qubit parity — four input qubits XOR-folded into the output
/// qubit through a CNOT chain.
pub fn xor_5() -> Benchmark {
    let mut b = ReversibleBuilder::new(5);
    b.x(0);
    b.x(2);
    b.x(3);
    for i in 0..4 {
        b.cx(i, 4);
    }
    finish("XOR_5", b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use caqr_sim::Executor;

    fn check_deterministic(b: &Benchmark) {
        let correct = b.correct_output.expect("regular benchmarks are exact");
        let counts = Executor::ideal().run_shots(&b.circuit, 30, 5);
        assert_eq!(
            counts.get(correct),
            30,
            "{}: expected {:b}, got {}",
            b.name,
            correct,
            counts
        );
    }

    #[test]
    fn rd32_shape_and_semantics() {
        let b = rd32();
        assert_eq!(b.circuit.num_qubits(), 5);
        // 1 + 1 = binary 10: sum bit clear, carry set... verify exact value:
        // inputs 1,1,0 -> sum = 0, carry = 1.
        let out = b.correct_output.unwrap();
        assert_eq!(out & 0b11000, 0b10000, "carry on q4, sum on q3 clear");
        check_deterministic(&b);
    }

    #[test]
    fn four_mod5_flags_divisible_input() {
        let b = four_mod5();
        assert_eq!(b.circuit.num_qubits(), 5);
        let out = b.correct_output.unwrap();
        assert_eq!(out >> 4 & 1, 1, "input 5 is divisible by 5");
        check_deterministic(&b);
    }

    #[test]
    fn multiply_13_carry_less_product() {
        let b = multiply_13();
        assert_eq!(b.circuit.num_qubits(), 13);
        let out = b.correct_output.unwrap();
        // Carry-less 3 x 5: (x+1)(x^2+1) = x^3+x^2+x+1 = 0b1111.
        let product = out >> 6 & 0x3f;
        assert_eq!(product, 0b1111);
        check_deterministic(&b);
    }

    #[test]
    fn system_9_runs() {
        let b = system_9();
        assert_eq!(b.circuit.num_qubits(), 9);
        assert!(b.circuit.two_qubit_gate_count() > 20);
        check_deterministic(&b);
    }

    #[test]
    fn cc_star_interaction() {
        let b = cc_10();
        assert_eq!(b.circuit.num_qubits(), 10);
        let g = caqr_circuit::interaction::interaction_graph(&b.circuit);
        assert_eq!(g.max_degree(), 9, "every coin queries the balance");
        // All ones except the counterfeit position (index 4 for n=10).
        assert_eq!(b.correct_output, Some(0b1_1110_1111));
        check_deterministic(&b);
        assert_eq!(cc_13().circuit.num_qubits(), 13);
    }

    #[test]
    fn xor_5_parity() {
        let b = xor_5();
        assert_eq!(b.circuit.num_qubits(), 5);
        let out = b.correct_output.unwrap();
        // Three inputs set -> parity 1 on the output qubit.
        assert_eq!(out >> 4 & 1, 1);
        check_deterministic(&b);
    }

    #[test]
    fn qubit_counts_match_names() {
        assert_eq!(rd32().circuit.num_qubits(), 5);
        assert_eq!(four_mod5().circuit.num_qubits(), 5);
        assert_eq!(multiply_13().circuit.num_qubits(), 13);
        assert_eq!(system_9().circuit.num_qubits(), 9);
        assert_eq!(cc_10().circuit.num_qubits(), 10);
        assert_eq!(xor_5().circuit.num_qubits(), 5);
    }
}
