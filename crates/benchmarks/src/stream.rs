//! Synthetic million-gate workloads for the streaming compiler.
//!
//! The streaming pipeline's pitch is "compile programs that never fit in
//! memory", so its benchmark generator must be able to *produce* such
//! programs without holding them either: [`StreamSpec::text_chunks`]
//! yields the OpenQASM source block by block, each block generated
//! independently from a per-block RNG stream. Peak generator memory is
//! one block (~tens of kilobytes) regardless of total size.
//!
//! The workload shape is deliberately reuse-friendly and realistic for
//! sampled circuits: a long sequence of `blocks` independent
//! sub-experiments, each on its own `block_qubits` fresh logical qubits
//! — entangle, evolve for `depth` layers, measure everything, move on.
//! Logical width grows linearly with `blocks` while the *live* width at
//! any moment stays O(`block_qubits` x window/block), which is exactly
//! the gap the windowed scheduler closes.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Shape of a generated streaming workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamSpec {
    /// Independent sub-experiments, each on fresh logical qubits.
    pub blocks: usize,
    /// Qubits per block.
    pub block_qubits: usize,
    /// Entangling layers per block.
    pub depth: usize,
    /// RNG seed; block `b` uses stream `seed + b`.
    pub seed: u64,
}

impl StreamSpec {
    /// The frozen ~1.02M-gate benchmark workload.
    pub fn million_gate(seed: u64) -> Self {
        StreamSpec {
            blocks: 800,
            block_qubits: 24,
            depth: 26,
            seed,
        }
    }

    /// A ~25K-gate scaled-down twin for CI smoke runs.
    pub fn smoke(seed: u64) -> Self {
        StreamSpec {
            blocks: 20,
            block_qubits: 24,
            depth: 26,
            seed,
        }
    }

    /// Total declared logical qubits (`qreg` width).
    pub fn total_qubits(&self) -> usize {
        self.blocks * self.block_qubits
    }

    /// Exact number of gate/measure statements the source contains.
    ///
    /// Per block: `block_qubits` Hadamards, `depth` layers of
    /// `block_qubits` rotations plus `block_qubits - 1` entanglers, and
    /// `block_qubits` measurements.
    pub fn gate_count(&self) -> usize {
        let bq = self.block_qubits;
        self.blocks * (2 * bq + self.depth * (2 * bq - 1))
    }

    /// The source, one `String` per block (header first). Memory is
    /// O(one block); collect only for deliberately-unbounded batch runs.
    pub fn text_chunks(&self) -> TextChunks {
        TextChunks {
            spec: *self,
            next: 0,
        }
    }

    /// The whole source in one allocation — the batch baseline the
    /// streaming path is measured against. O(total) memory by design.
    pub fn text(&self) -> String {
        self.text_chunks().collect()
    }

    fn block_text(&self, block: usize) -> String {
        let bq = self.block_qubits;
        let base = block * bq;
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed.wrapping_add(block as u64));
        // ~32 bytes per statement.
        let mut out = String::with_capacity(32 * (2 * bq + self.depth * (2 * bq - 1)));
        use std::fmt::Write as _;
        for q in 0..bq {
            let _ = writeln!(out, "h q[{}];", base + q);
        }
        for _ in 0..self.depth {
            for q in 0..bq {
                let angle: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
                let _ = writeln!(out, "rz({angle:?}) q[{}];", base + q);
            }
            for q in 0..bq - 1 {
                let _ = writeln!(out, "cx q[{}], q[{}];", base + q, base + q + 1);
            }
        }
        for q in 0..bq {
            let _ = writeln!(out, "measure q[{0}] -> c[{0}];", base + q);
        }
        out
    }
}

/// Block-by-block source iterator (see [`StreamSpec::text_chunks`]).
#[derive(Debug, Clone)]
pub struct TextChunks {
    spec: StreamSpec,
    /// 0 = header pending, then 1-based block index.
    next: usize,
}

impl Iterator for TextChunks {
    type Item = String;

    fn next(&mut self) -> Option<String> {
        let item = self.next;
        self.next += 1;
        if item == 0 {
            let n = self.spec.total_qubits();
            Some(format!(
                "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[{n}];\ncreg c[{n}];\n"
            ))
        } else if item <= self.spec.blocks {
            Some(self.spec.block_text(item - 1))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use caqr_circuit::qasm::from_qasm;

    #[test]
    fn gate_count_is_exact() {
        let spec = StreamSpec {
            blocks: 3,
            block_qubits: 4,
            depth: 2,
            seed: 7,
        };
        let circuit = from_qasm(&spec.text()).expect("generated source parses");
        assert_eq!(circuit.len(), spec.gate_count());
        assert_eq!(circuit.num_qubits(), spec.total_qubits());
        assert_eq!(circuit.num_clbits(), spec.total_qubits());
    }

    #[test]
    fn deterministic_and_chunked_equals_whole() {
        let spec = StreamSpec {
            blocks: 2,
            block_qubits: 3,
            depth: 2,
            seed: 11,
        };
        let whole = spec.text();
        let rejoined: String = spec.text_chunks().collect();
        assert_eq!(whole, rejoined);
        assert_eq!(whole, spec.text(), "same seed, same source");
        let other = StreamSpec { seed: 12, ..spec };
        assert_ne!(whole, other.text(), "seed changes angles");
    }

    #[test]
    fn million_gate_spec_is_million_scale() {
        let m = StreamSpec::million_gate(2023);
        assert!(m.gate_count() >= 1_000_000, "got {}", m.gate_count());
        let s = StreamSpec::smoke(2023);
        assert!(s.gate_count() >= 20_000 && s.gate_count() < 50_000);
        assert_eq!(
            m.gate_count() / m.blocks,
            s.gate_count() / s.blocks,
            "smoke is the same workload, fewer blocks"
        );
    }

    #[test]
    fn measures_end_each_block_lifetime() {
        let spec = StreamSpec {
            blocks: 2,
            block_qubits: 2,
            depth: 1,
            seed: 3,
        };
        let c = from_qasm(&spec.text()).expect("parses");
        // After a qubit's measure there must be no later touch — the
        // property block-local lifetimes guarantee and reuse relies on.
        let mut measured = vec![false; c.num_qubits()];
        for i in c.iter() {
            for q in &i.qubits {
                assert!(!measured[q.index()], "qubit touched after measure");
            }
            if i.gate == caqr_circuit::Gate::Measure {
                measured[i.qubits[0].index()] = true;
            }
        }
    }
}
