//! QAOA max-cut circuits (the paper's commutable-gate workload).
//!
//! One QAOA layer applies `RZZ(gamma)` across every edge of the problem
//! graph — all mutually commuting — followed by an `RX(2 beta)` mixer on
//! every qubit. The paper's instances are named `QAOA<n>-<density>` and use
//! random or power-law graphs (§4.1).

use crate::suite::{Benchmark, BenchmarkKind};
use caqr_circuit::{Circuit, Param, ParametricCircuit, Qubit};
use caqr_graph::{gen, Graph};

/// The problem-graph family for a QAOA instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GraphKind {
    /// Erdős–Rényi-style uniform graph.
    Random,
    /// Barabási–Albert power-law graph.
    PowerLaw,
}

impl GraphKind {
    /// Generates an `n`-vertex instance at the given density.
    pub fn generate(self, n: usize, density: f64, seed: u64) -> Graph {
        match self {
            GraphKind::Random => gen::random_graph(n, density, seed),
            GraphKind::PowerLaw => gen::power_law_graph(n, density, seed),
        }
    }
}

/// Builds the max-cut QAOA circuit for `graph` with per-layer parameters
/// `(gamma, beta)`.
///
/// # Panics
///
/// Panics if `params` is empty.
pub fn maxcut_circuit(graph: &Graph, params: &[(f64, f64)]) -> Circuit {
    assert!(!params.is_empty(), "QAOA needs at least one layer");
    let n = graph.num_vertices();
    let mut c = Circuit::new(n, n);
    for v in 0..n {
        c.h(Qubit::new(v));
    }
    for &(gamma, beta) in params {
        for (u, v) in graph.edges() {
            c.rzz(gamma, Qubit::new(u), Qubit::new(v));
        }
        for v in 0..n {
            c.rx(2.0 * beta, Qubit::new(v));
        }
    }
    c.measure_all();
    c
}

/// Builds the max-cut QAOA circuit for `graph` as a parametric template
/// with `layers` layers: slot `2i` is layer `i`'s phase angle (gamma) and
/// slot `2i + 1` its *mixer* angle — the full `RX` rotation, i.e. `2 beta`
/// in [`maxcut_circuit`]'s convention, so
/// `bind(&[gamma_0, 2 * beta_0, ...])` reproduces
/// `maxcut_circuit(graph, &[(gamma_0, beta_0), ...])` exactly.
///
/// Compile the template once, then bind per optimizer iteration.
///
/// # Panics
///
/// Panics if `layers` is zero.
pub fn maxcut_template(graph: &Graph, layers: usize) -> ParametricCircuit {
    assert!(layers > 0, "QAOA needs at least one layer");
    let n = graph.num_vertices();
    let mut c = Circuit::new(n, n);
    for v in 0..n {
        c.h(Qubit::new(v));
    }
    for layer in 0..layers {
        let gamma = Param::Slot(2 * layer as u32).to_raw();
        let mixer = Param::Slot(2 * layer as u32 + 1).to_raw();
        for (u, v) in graph.edges() {
            c.rzz(gamma, Qubit::new(u), Qubit::new(v));
        }
        for v in 0..n {
            c.rx(mixer, Qubit::new(v));
        }
    }
    c.measure_all();
    ParametricCircuit::new(c, 2 * layers as u32).expect("template construction is slot-exact")
}

/// Builds the named benchmark `QAOA<n>-<density>` with a single layer at
/// textbook starting parameters.
pub fn qaoa_benchmark(n: usize, density: f64, kind: GraphKind, seed: u64) -> Benchmark {
    let graph = kind.generate(n, density, seed);
    let circuit = maxcut_circuit(&graph, &[(0.7, 0.3)]);
    let kind_tag = match kind {
        GraphKind::Random => "r",
        GraphKind::PowerLaw => "p",
    };
    Benchmark {
        name: format!("QAOA{n}-{density:.1}{kind_tag}"),
        kind: BenchmarkKind::Commuting,
        circuit,
        correct_output: None,
        graph: Some(graph),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use caqr_circuit::commute::has_commuting_two_qubit_layer;
    use caqr_circuit::Gate;

    #[test]
    fn circuit_structure() {
        let g = gen::random_graph(8, 0.3, 1);
        let c = maxcut_circuit(&g, &[(0.5, 0.2)]);
        assert_eq!(c.num_qubits(), 8);
        assert_eq!(c.two_qubit_gate_count(), g.num_edges());
        assert_eq!(c.count_gates(|gate| matches!(gate, Gate::Rx(_))), 8);
        assert!(has_commuting_two_qubit_layer(&c));
    }

    #[test]
    fn layers_multiply_gates() {
        let g = gen::random_graph(6, 0.4, 2);
        let one = maxcut_circuit(&g, &[(0.5, 0.2)]);
        let two = maxcut_circuit(&g, &[(0.5, 0.2), (0.3, 0.1)]);
        assert_eq!(two.two_qubit_gate_count(), 2 * one.two_qubit_gate_count());
    }

    #[test]
    fn benchmark_metadata() {
        let b = qaoa_benchmark(10, 0.3, GraphKind::Random, 7);
        assert_eq!(b.name, "QAOA10-0.3r");
        assert_eq!(b.kind, BenchmarkKind::Commuting);
        assert!(b.graph.is_some());
        assert_eq!(b.correct_output, None);
        let g = b.graph.as_ref().unwrap();
        assert_eq!(g.num_vertices(), 10);
    }

    #[test]
    fn interaction_graph_is_problem_graph() {
        let b = qaoa_benchmark(12, 0.3, GraphKind::PowerLaw, 3);
        let int = caqr_circuit::interaction::interaction_graph(&b.circuit);
        assert_eq!(&int, b.graph.as_ref().unwrap());
    }

    #[test]
    fn qaoa_landscape_contains_good_parameters() {
        // Sanity: over a coarse (gamma, beta) grid, the best single-layer
        // QAOA point must beat the uniform-random expected cut (|E| / 2).
        use caqr_sim::{exact, metrics};
        let g = gen::random_graph(8, 0.4, 5);
        let mut best = f64::MIN;
        for gi in -5i32..=5 {
            for bi in 1..5 {
                if gi == 0 {
                    continue;
                }
                let gamma = gi as f64 * 0.2;
                let beta = bi as f64 * 0.2;
                let c = maxcut_circuit(&g, &[(gamma, beta)]);
                let dist = exact::distribution(&c).unwrap();
                let expected: f64 = dist
                    .iter()
                    .map(|&(v, p)| metrics::cut_value(&g, v) as f64 * p)
                    .sum();
                best = best.max(expected);
            }
        }
        let random_guess = g.num_edges() as f64 / 2.0;
        assert!(
            best > random_guess,
            "best QAOA expectation {best} should beat random {random_guess}"
        );
    }

    #[test]
    #[should_panic(expected = "at least one layer")]
    fn empty_params_rejected() {
        maxcut_circuit(&gen::random_graph(4, 0.5, 0), &[]);
    }

    #[test]
    fn template_bind_matches_concrete_circuit() {
        let g = gen::random_graph(8, 0.3, 11);
        for layers in 1..=3 {
            let template = maxcut_template(&g, layers);
            assert_eq!(template.num_slots() as usize, 2 * layers);
            let params: Vec<(f64, f64)> = (0..layers)
                .map(|i| (0.7 - 0.1 * i as f64, 0.3 + 0.05 * i as f64))
                .collect();
            let values: Vec<f64> = params
                .iter()
                .flat_map(|&(gamma, beta)| [gamma, 2.0 * beta])
                .collect();
            let bound = template.bind(&values).unwrap();
            let concrete = maxcut_circuit(&g, &params);
            assert_eq!(bound, concrete, "layers={layers}");
            assert_eq!(bound.fingerprint(), concrete.fingerprint());
        }
    }

    #[test]
    #[should_panic(expected = "at least one layer")]
    fn zero_layer_template_rejected() {
        maxcut_template(&gen::random_graph(4, 0.5, 0), 0);
    }
}
