//! The named benchmark registry the harness iterates.

use crate::qaoa::{qaoa_benchmark, GraphKind};
use crate::{bv, revlib};
use caqr_circuit::Circuit;
use caqr_graph::Graph;
use std::fmt;

/// Which CaQR code path a benchmark exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BenchmarkKind {
    /// Fixed gate order (no commuting two-qubit layer).
    Regular,
    /// Commutable two-qubit gates (QAOA-style); gate order is free.
    Commuting,
}

impl fmt::Display for BenchmarkKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            BenchmarkKind::Regular => "regular",
            BenchmarkKind::Commuting => "commuting",
        })
    }
}

/// A named benchmark instance.
#[derive(Debug, Clone)]
pub struct Benchmark {
    /// Display name, matching the paper's tables (e.g. `BV_10`).
    pub name: String,
    /// Which compiler path applies.
    pub kind: BenchmarkKind,
    /// The logical circuit.
    pub circuit: Circuit,
    /// The exact correct read-out, when the circuit is deterministic.
    pub correct_output: Option<u64>,
    /// The QAOA problem graph, for commuting benchmarks.
    pub graph: Option<Graph>,
}

impl fmt::Display for Benchmark {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({}, {} qubits, {} gates)",
            self.name,
            self.kind,
            self.circuit.num_qubits(),
            self.circuit.len()
        )
    }
}

/// The paper's regular-application suite (§4.1): Rd_32, 4mod5,
/// Multiply_13, System_9, BV_10, CC_10, XOR_5.
pub fn regular_suite() -> Vec<Benchmark> {
    vec![
        revlib::rd32(),
        revlib::four_mod5(),
        revlib::multiply_13(),
        revlib::system_9(),
        bv::bv_all_ones(10),
        revlib::cc_10(),
        revlib::xor_5(),
    ]
}

/// The paper's Table 1/2 QAOA instances: `QAOA{5,10,15,20,25}-0.3` on
/// random graphs.
pub fn qaoa_table_suite(seed: u64) -> Vec<Benchmark> {
    [5, 10, 15, 20, 25]
        .into_iter()
        .map(|n| qaoa_benchmark(n, 0.3, GraphKind::Random, seed + n as u64))
        .collect()
}

/// Both suites, in the order of Table 1.
pub fn full_table_suite(seed: u64) -> Vec<Benchmark> {
    let mut all = regular_suite();
    all.extend(qaoa_table_suite(seed));
    all
}

/// Looks a benchmark up by its paper name (case-insensitive).
///
/// QAOA names accept the `QAOA<n>-<density>` form with an optional
/// `r`/`p` suffix for random/power-law (defaults to random).
pub fn by_name(name: &str, seed: u64) -> Option<Benchmark> {
    let lower = name.to_ascii_lowercase();
    let fixed = match lower.as_str() {
        "rd_32" | "rd32" => Some(revlib::rd32()),
        "4mod5" => Some(revlib::four_mod5()),
        "multiply_13" => Some(revlib::multiply_13()),
        "system_9" => Some(revlib::system_9()),
        "cc_10" => Some(revlib::cc_10()),
        "cc_13" => Some(revlib::cc_13()),
        "xor_5" => Some(revlib::xor_5()),
        "bv_5" => Some(bv::bv_all_ones(5)),
        "bv_10" => Some(bv::bv_all_ones(10)),
        _ => None,
    };
    if fixed.is_some() {
        return fixed;
    }
    let rest = lower.strip_prefix("qaoa")?;
    let (n_str, density_str) = rest.split_once('-')?;
    let n: usize = n_str.parse().ok()?;
    let (density_str, kind) = match density_str.strip_suffix('p') {
        Some(d) => (d, GraphKind::PowerLaw),
        None => (
            density_str.strip_suffix('r').unwrap_or(density_str),
            GraphKind::Random,
        ),
    };
    let density: f64 = density_str.parse().ok()?;
    Some(qaoa_benchmark(n, density, kind, seed))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regular_suite_names() {
        let names: Vec<String> = regular_suite().into_iter().map(|b| b.name).collect();
        assert_eq!(
            names,
            vec![
                "Rd_32",
                "4mod5",
                "Multiply_13",
                "System_9",
                "BV_10",
                "CC_10",
                "XOR_5"
            ]
        );
    }

    #[test]
    fn regular_suite_is_regular_and_exact() {
        for b in regular_suite() {
            assert_eq!(b.kind, BenchmarkKind::Regular, "{}", b.name);
            assert!(b.correct_output.is_some(), "{}", b.name);
        }
    }

    #[test]
    fn qaoa_suite_sizes() {
        let suite = qaoa_table_suite(1);
        let sizes: Vec<usize> = suite.iter().map(|b| b.circuit.num_qubits()).collect();
        assert_eq!(sizes, vec![5, 10, 15, 20, 25]);
        for b in &suite {
            assert_eq!(b.kind, BenchmarkKind::Commuting);
        }
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(by_name("BV_10", 0).unwrap().circuit.num_qubits(), 10);
        assert_eq!(by_name("multiply_13", 0).unwrap().name, "Multiply_13");
        let q = by_name("QAOA15-0.3", 7).unwrap();
        assert_eq!(q.circuit.num_qubits(), 15);
        let p = by_name("qaoa16-0.3p", 7).unwrap();
        assert_eq!(p.graph.as_ref().unwrap().num_vertices(), 16);
        assert!(by_name("nope", 0).is_none());
        assert!(by_name("qaoa-bad", 0).is_none());
    }

    #[test]
    fn full_suite_concatenates() {
        assert_eq!(full_table_suite(0).len(), 12);
    }

    #[test]
    fn display_includes_stats() {
        let b = revlib::xor_5();
        let s = format!("{b}");
        assert!(s.contains("XOR_5"));
        assert!(s.contains("5 qubits"));
    }
}
