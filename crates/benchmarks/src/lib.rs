//! Benchmark circuits for the CaQR reproduction.
//!
//! The paper evaluates on two families (§4.1):
//!
//! * **Regular applications** (no commuting two-qubit gates): `Rd_32`,
//!   `4mod5`, `Multiply_13`, `System_9`, `CC_10`, `XOR_5`, and `BV_10`.
//!   The original RevLib/IBM gate lists are not redistributable, so
//!   [`revlib`] reconstructs them *structurally*: same qubit counts, same
//!   gate families (Toffoli decompositions over Clifford+T, CNOT ladders,
//!   star-shaped interaction for the oracle circuits), and deterministic
//!   all-classical semantics so the correct output is known exactly.
//! * **Commutable-gate applications**: [`qaoa`] builds max-cut QAOA circuits
//!   from random and power-law problem graphs at a given density.
//!
//! [`suite`] exposes the named registry the benchmark harness iterates.
//!
//! # Examples
//!
//! ```
//! use caqr_benchmarks::bv;
//!
//! let b = bv::bernstein_vazirani(5, 0b1011);
//! assert_eq!(b.circuit.num_qubits(), 5);
//! assert_eq!(b.correct_output, Some(0b1011));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bv;
pub mod extra;
pub mod qaoa;
pub mod revlib;
pub mod stream;
pub mod suite;

mod reversible;

pub use reversible::ReversibleBuilder;
pub use suite::{Benchmark, BenchmarkKind};
