//! Bernstein–Vazirani circuits (the paper's running example, Fig. 1).
//!
//! For an `n`-qubit BV instance: `n-1` data qubits and one target. Each
//! data qubit interacts only with the target, giving the star interaction
//! graph of Fig. 4(b) — which is why an `n`-qubit BV always compresses to
//! 2 qubits under full reuse.

use crate::suite::{Benchmark, BenchmarkKind};
use caqr_circuit::{Circuit, Clbit, Qubit};

/// Builds an `n`-qubit Bernstein–Vazirani benchmark with the given hidden
/// string (bit `i` of `hidden` = data qubit `i`; only the low `n-1` bits
/// are used). The correct output is the hidden string.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn bernstein_vazirani(n: usize, hidden: u64) -> Benchmark {
    assert!(n >= 2, "BV needs a data qubit and a target");
    let data = n - 1;
    let hidden = hidden & ((1u64 << data) - 1);
    let mut c = Circuit::new(n, data);
    let target = Qubit::new(data);
    for i in 0..data {
        c.h(Qubit::new(i));
    }
    c.x(target);
    c.h(target);
    for i in 0..data {
        if hidden >> i & 1 == 1 {
            c.cx(Qubit::new(i), target);
        }
        c.h(Qubit::new(i));
    }
    for i in 0..data {
        c.measure(Qubit::new(i), Clbit::new(i));
    }
    Benchmark {
        name: format!("BV_{n}"),
        kind: BenchmarkKind::Regular,
        circuit: c,
        correct_output: Some(hidden),
        graph: None,
    }
}

/// The paper's default BV instances use the all-ones hidden string (every
/// data qubit talks to the target, the worst case for routing).
pub fn bv_all_ones(n: usize) -> Benchmark {
    bernstein_vazirani(n, u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;
    use caqr_circuit::interaction::interaction_graph;
    use caqr_sim::Executor;

    #[test]
    fn bv5_matches_paper_fig1() {
        let b = bv_all_ones(5);
        assert_eq!(b.circuit.num_qubits(), 5);
        assert_eq!(b.circuit.two_qubit_gate_count(), 4);
        // Star interaction graph, max degree 4 (Fig. 4b).
        let g = interaction_graph(&b.circuit);
        assert_eq!(g.max_degree(), 4);
        assert_eq!(g.degree(4), 4);
    }

    #[test]
    fn simulator_recovers_hidden_string() {
        for hidden in [0b0000, 0b1011, 0b1111, 0b0100] {
            let b = bernstein_vazirani(5, hidden);
            let counts = Executor::ideal().run_shots(&b.circuit, 50, 1);
            assert_eq!(counts.get(hidden), 50, "hidden {hidden:04b}");
        }
    }

    #[test]
    fn zero_string_has_no_two_qubit_gates() {
        let b = bernstein_vazirani(4, 0);
        assert_eq!(b.circuit.two_qubit_gate_count(), 0);
        assert_eq!(b.correct_output, Some(0));
    }

    #[test]
    fn hidden_string_masked_to_width() {
        let b = bernstein_vazirani(3, 0b111111);
        assert_eq!(b.correct_output, Some(0b11));
    }

    #[test]
    #[should_panic(expected = "data qubit")]
    fn too_small() {
        bernstein_vazirani(1, 0);
    }
}
