//! A builder for classically-reversible circuits with tracked semantics.
//!
//! The RevLib-style benchmarks are all X/CNOT/Toffoli networks. Building
//! them through this helper yields (a) the quantum circuit with Toffolis
//! decomposed into the standard 6-CNOT Clifford+T network and (b) the exact
//! classical output for the all-zeros input, which downstream experiments
//! use as the TVD reference and success-rate target.

use caqr_circuit::{Circuit, Clbit, Qubit};

/// Builds a reversible circuit while tracking its classical action.
///
/// # Examples
///
/// ```
/// use caqr_benchmarks::ReversibleBuilder;
///
/// let mut b = ReversibleBuilder::new(3);
/// b.x(0);
/// b.x(1);
/// b.ccx(0, 1, 2); // Toffoli: both controls set -> target flips
/// let (circuit, output) = b.finish_measured();
/// assert_eq!(output, 0b111);
/// assert!(circuit.len() > 3); // Toffoli decomposed into Clifford+T
/// ```
#[derive(Debug, Clone)]
pub struct ReversibleBuilder {
    circuit: Circuit,
    bits: Vec<bool>,
}

impl ReversibleBuilder {
    /// A builder over `n` qubits starting from the all-zeros state.
    pub fn new(n: usize) -> Self {
        ReversibleBuilder {
            circuit: Circuit::new(n, n),
            bits: vec![false; n],
        }
    }

    /// The number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.bits.len()
    }

    /// NOT on qubit `a`.
    pub fn x(&mut self, a: usize) {
        self.circuit.x(Qubit::new(a));
        self.bits[a] = !self.bits[a];
    }

    /// CNOT: `a` controls `b`.
    ///
    /// # Panics
    ///
    /// Panics if `a == b`.
    pub fn cx(&mut self, a: usize, b: usize) {
        self.circuit.cx(Qubit::new(a), Qubit::new(b));
        if self.bits[a] {
            self.bits[b] = !self.bits[b];
        }
    }

    /// Toffoli: `a` and `b` control `t`, emitted as the standard 6-CNOT
    /// Clifford+T decomposition.
    ///
    /// # Panics
    ///
    /// Panics if the three operands are not distinct.
    pub fn ccx(&mut self, a: usize, b: usize, t: usize) {
        assert!(a != b && b != t && a != t, "ccx operands must be distinct");
        let (qa, qb, qt) = (Qubit::new(a), Qubit::new(b), Qubit::new(t));
        let c = &mut self.circuit;
        c.h(qt);
        c.cx(qb, qt);
        c.tdg(qt);
        c.cx(qa, qt);
        c.t(qt);
        c.cx(qb, qt);
        c.tdg(qt);
        c.cx(qa, qt);
        c.t(qb);
        c.t(qt);
        c.h(qt);
        c.cx(qa, qb);
        c.t(qa);
        c.tdg(qb);
        c.cx(qa, qb);
        if self.bits[a] && self.bits[b] {
            self.bits[t] = !self.bits[t];
        }
    }

    /// The classical state the all-zeros input has reached, as a little
    /// endian integer (bit `i` = qubit `i`).
    pub fn classical_state(&self) -> u64 {
        self.bits
            .iter()
            .enumerate()
            .fold(0u64, |acc, (i, &b)| acc | (u64::from(b)) << i)
    }

    /// Finishes without measurements, returning the circuit and the
    /// classical output value.
    pub fn finish(self) -> (Circuit, u64) {
        let out = self.classical_state();
        (self.circuit, out)
    }

    /// Appends qubit-`i`-into-clbit-`i` measurements and finishes.
    pub fn finish_measured(mut self) -> (Circuit, u64) {
        for i in 0..self.num_qubits() {
            self.circuit.measure(Qubit::new(i), Clbit::new(i));
        }
        self.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use caqr_sim::Executor;

    #[test]
    fn x_and_cx_semantics() {
        let mut b = ReversibleBuilder::new(3);
        b.x(0);
        b.cx(0, 2);
        b.cx(1, 0); // control clear -> no-op
        assert_eq!(b.classical_state(), 0b101);
    }

    #[test]
    fn ccx_truth_table_via_simulator() {
        // The decomposition must implement the Toffoli truth table exactly.
        for input in 0..8u64 {
            let mut b = ReversibleBuilder::new(3);
            for q in 0..3 {
                if input >> q & 1 == 1 {
                    b.x(q);
                }
            }
            b.ccx(0, 1, 2);
            let (circuit, expected) = b.finish_measured();
            let counts = Executor::ideal().run_shots(&circuit, 20, input);
            assert_eq!(
                counts.get(expected),
                20,
                "input {input:03b}: expected {expected:03b}, got {counts}"
            );
        }
    }

    #[test]
    fn ccx_classical_tracking_matches() {
        let mut b = ReversibleBuilder::new(3);
        b.x(0);
        b.x(1);
        b.ccx(0, 1, 2);
        assert_eq!(b.classical_state(), 0b111);
        b.ccx(0, 2, 1); // controls 0,2 set -> flips 1 back
        assert_eq!(b.classical_state(), 0b101);
    }

    #[test]
    fn finish_measured_adds_measurements() {
        let mut b = ReversibleBuilder::new(2);
        b.x(1);
        let (c, out) = b.finish_measured();
        assert_eq!(out, 0b10);
        assert_eq!(
            c.count_gates(|g| matches!(g, caqr_circuit::Gate::Measure)),
            2
        );
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn ccx_distinct_operands() {
        ReversibleBuilder::new(3).ccx(0, 0, 1);
    }
}
