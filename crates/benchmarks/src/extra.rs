//! Additional workloads beyond the paper's table: GHZ state preparation
//! and the quantum Fourier transform.
//!
//! These stress opposite ends of the reuse spectrum. GHZ's chain
//! entanglement allows forward reuse (like BV), while QFT's all-to-all
//! CPHASE structure has *no* valid reuse pair at all — a useful negative
//! control for the advisor and for tests.

use crate::suite::{Benchmark, BenchmarkKind};
use caqr_circuit::{Circuit, Clbit, Qubit};

/// An `n`-qubit GHZ preparation (`H` then a CNOT ladder) with terminal
/// measurement. The ideal output is a 50/50 mix of all-zeros / all-ones.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn ghz(n: usize) -> Benchmark {
    assert!(n >= 2, "GHZ needs at least 2 qubits");
    let mut c = Circuit::new(n, n);
    c.h(Qubit::new(0));
    for i in 0..n - 1 {
        c.cx(Qubit::new(i), Qubit::new(i + 1));
    }
    c.measure_all();
    Benchmark {
        name: format!("GHZ_{n}"),
        kind: BenchmarkKind::Regular,
        circuit: c,
        correct_output: None, // two equally-likely outcomes
        graph: None,
    }
}

/// An `n`-qubit quantum Fourier transform (standard H + controlled-phase
/// network, no terminal swap reversal) applied to the basis state `input`,
/// with terminal measurement.
///
/// # Panics
///
/// Panics if `n == 0` or `n > 20`.
pub fn qft(n: usize, input: u64) -> Benchmark {
    assert!(n > 0 && n <= 20, "QFT size out of supported range");
    let mut c = Circuit::new(n, n);
    for i in 0..n {
        if input >> i & 1 == 1 {
            c.x(Qubit::new(i));
        }
    }
    for i in (0..n).rev() {
        c.h(Qubit::new(i));
        for j in (0..i).rev() {
            let angle = std::f64::consts::PI / (1u64 << (i - j)) as f64;
            c.cp(angle, Qubit::new(j), Qubit::new(i));
        }
    }
    c.measure_all();
    Benchmark {
        name: format!("QFT_{n}"),
        kind: BenchmarkKind::Regular,
        circuit: c,
        correct_output: None, // uniform output magnitude
        graph: None,
    }
}

/// A mirror benchmark: a random `n`-qubit unitary block `C` followed by
/// its adjoint and a terminal measurement. The ideal output is exactly
/// |0...0>, which makes mirror circuits a standard end-to-end fidelity
/// probe — compiled versions must preserve the spike, and on noisy
/// hardware the surviving probability measures compiler quality.
///
/// # Panics
///
/// Panics if `n < 2` or `layers == 0`.
pub fn mirror(n: usize, layers: usize, seed: u64) -> Benchmark {
    use rand::{Rng, SeedableRng};
    assert!(n >= 2, "mirror benchmark needs at least 2 qubits");
    assert!(layers > 0, "mirror benchmark needs at least one layer");
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    let mut forward = Circuit::new(n, n);
    for _ in 0..layers {
        for v in 0..n {
            match rng.gen_range(0..4) {
                0 => forward.h(Qubit::new(v)),
                1 => forward.t(Qubit::new(v)),
                2 => forward.rx(rng.gen_range(0.1..1.5), Qubit::new(v)),
                _ => forward.rz(rng.gen_range(0.1..1.5), Qubit::new(v)),
            }
        }
        // One entangling pair per layer keeps the interaction graph sparse
        // enough for routing to matter without exploding depth.
        let a = rng.gen_range(0..n);
        let b = (a + 1 + rng.gen_range(0..n - 1)) % n;
        forward.cx(Qubit::new(a), Qubit::new(b));
    }
    let mut circuit = forward.clone();
    circuit.extend_from(&forward.inverse().expect("forward block is unitary"));
    for v in 0..n {
        circuit.measure(Qubit::new(v), Clbit::new(v));
    }
    Benchmark {
        name: format!("Mirror_{n}x{layers}"),
        kind: BenchmarkKind::Regular,
        circuit,
        correct_output: Some(0),
        graph: None,
    }
}

/// A syndrome-extraction-style dynamic Clifford workload: GHZ
/// preparation over `n` data qubits, then `rounds` cycles of an ancilla
/// parity check — H, a CX comb across the data, H, mid-circuit
/// measurement, a classically-conditioned X correction on data qubit 0,
/// and an ancilla reset — before a terminal data measurement.
///
/// Every gate is Clifford and the mid-circuit measure/reset/feed-forward
/// pattern exercises the dynamic-circuit primitives, so this is the
/// stabilizer engine's home turf: the whole circuit runs on the tableau
/// under `caqr_sim::Engine::Stabilizer` even with Pauli-twirl noise.
///
/// # Panics
///
/// Panics if `n < 2` or `rounds + n > 64` (classical register width).
pub fn stabilizer_ladder(n: usize, rounds: usize) -> Benchmark {
    assert!(n >= 2, "stabilizer ladder needs at least 2 data qubits");
    assert!(rounds + n <= 64, "classical register is limited to 64 bits");
    let anc = Qubit::new(n);
    let mut c = Circuit::new(n + 1, rounds + n);
    c.h(Qubit::new(0));
    for i in 0..n - 1 {
        c.cx(Qubit::new(i), Qubit::new(i + 1));
    }
    for r in 0..rounds {
        c.h(anc);
        for i in 0..n {
            c.cx(anc, Qubit::new(i));
        }
        c.h(anc);
        c.measure(anc, Clbit::new(r));
        c.cond_x(Qubit::new(0), Clbit::new(r));
        c.reset(anc);
    }
    for v in 0..n {
        c.measure(Qubit::new(v), Clbit::new(rounds + v));
    }
    Benchmark {
        name: format!("Stab_{n}x{rounds}"),
        kind: BenchmarkKind::Regular,
        circuit: c,
        correct_output: None, // GHZ-style two-outcome mix per syndrome
        graph: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use caqr_sim::{exact, Executor};

    #[test]
    fn ghz_structure_and_output() {
        let b = ghz(5);
        assert_eq!(b.circuit.two_qubit_gate_count(), 4);
        let counts = Executor::ideal().run_shots(&b.circuit, 500, 3);
        let all_ones = (1u64 << 5) - 1;
        assert_eq!(counts.get(0) + counts.get(all_ones), 500);
        assert!(counts.get(0) > 150);
        assert!(counts.get(all_ones) > 150);
    }

    #[test]
    fn qft_uniform_distribution() {
        // QFT of a basis state has uniform |amplitude|^2 over outputs.
        let b = qft(3, 0b101);
        let d = exact::distribution(&b.circuit).unwrap();
        assert_eq!(d.len(), 8);
        for (_, p) in d {
            assert!((p - 0.125).abs() < 1e-9);
        }
    }

    #[test]
    fn mirror_returns_to_zero() {
        for seed in [1u64, 9, 23] {
            let b = mirror(4, 3, seed);
            let counts = Executor::ideal().run_shots(&b.circuit, 50, seed);
            assert_eq!(counts.get(0), 50, "seed {seed}: {counts}");
        }
    }

    #[test]
    fn mirror_is_deterministic_per_seed() {
        assert_eq!(mirror(4, 2, 7).circuit, mirror(4, 2, 7).circuit);
        assert_ne!(mirror(4, 2, 7).circuit, mirror(4, 2, 8).circuit);
    }

    #[test]
    fn qft_interaction_is_all_to_all() {
        let b = qft(5, 0);
        let g = caqr_circuit::interaction::interaction_graph(&b.circuit);
        assert_eq!(g.num_edges(), 10, "K5");
    }

    #[test]
    fn stabilizer_ladder_is_clifford_and_dynamic() {
        let b = stabilizer_ladder(4, 3);
        assert_eq!(b.circuit.num_qubits(), 5);
        assert_eq!(b.circuit.num_clbits(), 7);
        // Every parity check reads an even stabilizer of the GHZ state,
        // so all syndromes are 0, no correction fires, and the data
        // register still reads the 50/50 all-zeros/all-ones mix.
        let counts = Executor::ideal().run_shots(&b.circuit, 400, 11);
        let all_ones = ((1u64 << 4) - 1) << 3;
        assert_eq!(counts.get(0) + counts.get(all_ones), 400);
        assert!(counts.get(0) > 120);
        assert!(counts.get(all_ones) > 120);
    }
}
