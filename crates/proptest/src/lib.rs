//! Offline stand-in for the parts of `proptest` this workspace uses:
//! the [`Strategy`] trait over integer/float ranges, tuples, and
//! [`collection::vec`]; the [`proptest!`] test macro; and the
//! `prop_assert!`/`prop_assert_eq!` assertion macros.
//!
//! Semantics: each generated test runs [`ProptestConfig::cases`] random
//! cases from a ChaCha8 stream seeded by the test's name, so runs are
//! deterministic. There is no shrinking — a failing case reports its
//! case number and seed instead.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::Rng;
pub use rand_chacha::ChaCha8Rng;

/// Per-`proptest!` configuration (only the `cases` knob is supported).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` random cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A generator of random test inputs.
pub trait Strategy {
    /// The produced value type.
    type Value;

    /// Draws one value from `rng`.
    fn generate(&self, rng: &mut ChaCha8Rng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// The [`Strategy::prop_map`] adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut ChaCha8Rng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut ChaCha8Rng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut ChaCha8Rng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut ChaCha8Rng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}

/// Strategies over collections (`proptest::collection`).
pub mod collection {
    use super::{ChaCha8Rng, Strategy};
    use rand::Rng;

    /// A strategy producing `Vec`s of `element` with a length drawn from
    /// `size`.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// The [`vec()`] strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut ChaCha8Rng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The usual glob-import module.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{ProptestConfig, Strategy};
}

/// Builds the deterministic per-test random stream (used by the
/// [`proptest!`] expansion so consuming crates need no direct `rand` dep).
pub fn rng_for(seed: u64) -> ChaCha8Rng {
    use rand::SeedableRng as _;
    ChaCha8Rng::seed_from_u64(seed)
}

/// A stable 64-bit FNV-1a hash of the test name, used to seed each test's
/// random stream.
pub fn seed_for_test(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Defines property tests: each `#[test] fn name(arg in strategy, ...)`
/// block runs `cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (@with_config ($cfg:expr)
        $($(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*
    ) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let seed = $crate::seed_for_test(stringify!($name));
            let mut rng = $crate::rng_for(seed);
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                let outcome = (|| -> ::std::result::Result<(), ::std::string::String> {
                    $body
                    Ok(())
                })();
                if let Err(message) = outcome {
                    panic!(
                        "proptest case {case}/{} failed (seed {seed:#x}): {message}",
                        config.cases
                    );
                }
            }
        }
    )*};
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// `assert!` for [`proptest!`] bodies: fails only the current case, with
/// the case's context attached.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {}",
                stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// `assert_eq!` for [`proptest!`] bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        if left != right {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{:?}` != `{:?}`",
                left,
                right
            ));
        }
    }};
}

/// `assert_ne!` for [`proptest!`] bodies.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        if left == right {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{:?}` == `{:?}`",
                left,
                right
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(n in 3usize..12, x in 0u8..6, f in 0.1f64..0.7) {
            prop_assert!((3..12).contains(&n));
            prop_assert!(x < 6);
            prop_assert!((0.1..0.7).contains(&f));
        }

        #[test]
        fn vec_and_tuple_strategies(v in crate::collection::vec((0u8..4, 0usize..10), 1..20)) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            for (a, b) in v {
                prop_assert!(a < 4);
                prop_assert!(b < 10);
            }
        }

        #[test]
        fn prop_map_applies(doubled in (0usize..50).prop_map(|x| x * 2)) {
            prop_assert_eq!(doubled % 2, 0);
            prop_assert!(doubled < 100);
        }
    }

    #[test]
    fn seeds_differ_per_test_name() {
        assert_ne!(crate::seed_for_test("a"), crate::seed_for_test("b"));
        assert_eq!(crate::seed_for_test("a"), crate::seed_for_test("a"));
    }
}
