//! Streamed compilation is fingerprint-identical to batch on the golden
//! corpus.
//!
//! Every corpus circuit is exported to OpenQASM, delivered to a
//! [`StreamSession`] in deliberately awkward byte chunks, and compared
//! against [`schedule_circuit`] run on the batch-parsed whole: same
//! report, same digest, and the same output-circuit fingerprint. This is
//! the end-to-end identity the serve endpoint and the memory bench rely
//! on — the streaming mode changes *when* memory is spent, never *what*
//! comes out.

use caqr_benchmarks::qaoa::{qaoa_benchmark, GraphKind};
use caqr_benchmarks::Benchmark;
use caqr_circuit::qasm::{from_qasm, to_qasm};
use caqr_stream::{schedule_circuit, CollectSink, StreamOptions, StreamSession};

fn golden_corpus() -> Vec<Benchmark> {
    vec![
        caqr_benchmarks::revlib::xor_5(),
        caqr_benchmarks::revlib::four_mod5(),
        caqr_benchmarks::revlib::rd32(),
        caqr_benchmarks::bv::bv_all_ones(5),
        caqr_benchmarks::bv::bv_all_ones(8),
        qaoa_benchmark(6, 0.3, GraphKind::Random, 2029),
        qaoa_benchmark(8, 0.3, GraphKind::Random, 2031),
    ]
}

#[test]
fn golden_corpus_streams_identically_to_batch() {
    for bench in golden_corpus() {
        let text = to_qasm(&bench.circuit);
        // Full lookahead: nothing emits before finish, so retirement
        // cannot race a later use and WindowTooSmall is impossible.
        let opts = StreamOptions {
            window: bench.circuit.len() + 1,
            chunk_gates: 64,
            optimize_chunks: true,
        };

        let mut session = StreamSession::new(opts.clone(), CollectSink::new());
        // 7-byte chunks: every statement, token, and number gets split.
        for chunk in text.as_bytes().chunks(7) {
            session
                .feed(chunk)
                .unwrap_or_else(|e| panic!("{}: stream feed failed: {e}", bench.name));
        }
        let (streamed_report, streamed_sink) = session
            .finish()
            .unwrap_or_else(|e| panic!("{}: stream finish failed: {e}", bench.name));

        let batch = from_qasm(&text)
            .unwrap_or_else(|e| panic!("{}: exported QASM re-parses: {e}", bench.name));
        assert_eq!(
            batch.fingerprint(),
            bench.circuit.fingerprint(),
            "{}: QASM round-trip is lossless",
            bench.name
        );
        let (batch_report, batch_sink) = schedule_circuit(&batch, opts, CollectSink::new())
            .unwrap_or_else(|e| panic!("{}: batch schedule failed: {e}", bench.name));

        assert_eq!(
            streamed_report, batch_report,
            "{}: reports differ",
            bench.name
        );
        assert_eq!(
            streamed_sink.into_circuit().fingerprint(),
            batch_sink.into_circuit().fingerprint(),
            "{}: output circuits differ",
            bench.name
        );
    }
}
