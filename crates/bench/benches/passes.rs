//! Criterion benches of compiler-pass cost (the paper's §3.4 overhead
//! analysis): reuse analysis, one QS reduction step, the commuting
//! scheduler under both matchers, and the two routers.

use caqr::analysis::ReuseAnalysis;
use caqr::commuting::{schedule, CommutingSpec, Matcher};
use caqr::router::{route, RouterOptions};
use caqr::{baseline, qs, sr};
use caqr_arch::Device;
use caqr_benchmarks::qaoa::{maxcut_circuit, GraphKind};
use caqr_benchmarks::{bv, revlib};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_analysis(c: &mut Criterion) {
    let mut group = c.benchmark_group("reuse_analysis");
    for n in [10usize, 20, 40] {
        let circuit = bv::bv_all_ones(n).circuit;
        group.bench_with_input(BenchmarkId::new("bv", n), &circuit, |b, circuit| {
            b.iter(|| {
                let a = ReuseAnalysis::of(black_box(circuit));
                black_box(a.candidate_pairs().len())
            })
        });
    }
    group.finish();
}

fn bench_qs_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("qs_reduce_by_one");
    for bench in [revlib::system_9(), bv::bv_all_ones(10)] {
        let device = Device::mumbai(1);
        group.bench_with_input(
            BenchmarkId::from_parameter(&bench.name),
            &bench.circuit,
            |b, circuit| {
                b.iter(|| {
                    black_box(qs::regular::reduce_by_one(
                        black_box(circuit),
                        &device.logical_duration_model(),
                    ))
                })
            },
        );
    }
    group.finish();
}

fn bench_commuting_scheduler(c: &mut Criterion) {
    let mut group = c.benchmark_group("commuting_scheduler");
    for n in [16usize, 32] {
        let graph = GraphKind::Random.generate(n, 0.3, 7);
        let spec = CommutingSpec::from_circuit(&maxcut_circuit(&graph, &[(0.7, 0.3)])).unwrap();
        for (label, matcher) in [("blossom", Matcher::Blossom), ("greedy", Matcher::Greedy)] {
            group.bench_with_input(BenchmarkId::new(label, n), &spec, |b, spec| {
                b.iter(|| black_box(schedule(black_box(spec), &[], matcher)))
            });
        }
    }
    group.finish();
}

fn bench_routers(c: &mut Criterion) {
    let mut group = c.benchmark_group("routing");
    let device = Device::mumbai(1);
    for bench in [bv::bv_all_ones(10), revlib::multiply_13()] {
        group.bench_with_input(
            BenchmarkId::new("baseline", &bench.name),
            &bench.circuit,
            |b, circuit| b.iter(|| black_box(baseline::compile(black_box(circuit), &device))),
        );
        group.bench_with_input(
            BenchmarkId::new("sr", &bench.name),
            &bench.circuit,
            |b, circuit| b.iter(|| black_box(sr::compile(black_box(circuit), &device))),
        );
    }
    group.finish();
}

fn bench_route_engine_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("route_scaling");
    group.sample_size(10);
    for n in [32usize, 64] {
        let graph = GraphKind::Random.generate(n, 0.3, 7);
        let circuit = maxcut_circuit(&graph, &[(0.7, 0.3)]);
        let device = Device::scaled_heavy_hex(n, 1);
        group.bench_with_input(BenchmarkId::new("qaoa", n), &circuit, |b, circuit| {
            b.iter(|| {
                black_box(route(
                    black_box(circuit),
                    &device,
                    RouterOptions::baseline(),
                ))
            })
        });
    }
    group.finish();
}

fn bench_transform_and_width(c: &mut Criterion) {
    use caqr::analysis::ReusePair;
    use caqr::transform::{self, ReusePlan};
    use caqr::width;
    use caqr_circuit::Qubit;

    let mut group = c.benchmark_group("transform");
    let circuit = bv::bv_all_ones(16).circuit;
    let plan =
        ReusePlan::from_pairs((0..10).map(|i| ReusePair::new(Qubit::new(i), Qubit::new(i + 1))));
    group.bench_function("apply_10_pairs_bv16", |b| {
        b.iter(|| black_box(transform::apply(black_box(&circuit), &plan)))
    });
    group.bench_function("live_width_bv16", |b| {
        b.iter(|| black_box(width::live_width(black_box(&circuit))))
    });
    let graph = GraphKind::Random.generate(14, 0.3, 3);
    group.bench_function("exact_pathwidth_14", |b| {
        b.iter(|| black_box(caqr_graph::pathwidth::exact(black_box(&graph))))
    });
    group.finish();
}

fn bench_simulator(c: &mut Criterion) {
    use caqr_sim::Executor;
    let mut group = c.benchmark_group("simulator");
    group.sample_size(20);
    for n in [10usize, 14] {
        let circuit = bv::bv_all_ones(n).circuit;
        group.bench_with_input(BenchmarkId::new("bv_100_shots", n), &circuit, |b, c| {
            b.iter(|| black_box(Executor::ideal().run_shots(black_box(c), 100, 7)))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_analysis,
    bench_qs_step,
    bench_commuting_scheduler,
    bench_routers,
    bench_route_engine_scaling,
    bench_transform_and_width,
    bench_simulator
);
criterion_main!(benches);
