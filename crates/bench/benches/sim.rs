//! Criterion benches of the Monte-Carlo simulator engine: shot-throughput
//! vs thread count, fused/specialized kernels vs the generic reference
//! path, and prefix snapshotting on a deep Bernstein-Vazirani circuit.
//!
//! On a single-core container the thread-scaling numbers track the
//! 1-thread case; the kernel and snapshot wins are per-core and show up
//! everywhere. `cargo bench --bench sim` prints the usual Criterion
//! estimates; the committed `BENCH_sim.json` baseline is produced by the
//! `bench_sim_baseline` binary instead (plain wall-clock, CI-friendly).

use caqr::{compile, Strategy};
use caqr_bench::{mumbai, EXPERIMENT_SEED};
use caqr_benchmarks::bv;
use caqr_circuit::Circuit;
use caqr_sim::{Executor, NoiseModel};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

/// The Table 3 noisy workload: BV_10 routed for Mumbai, compacted to its
/// used wires.
fn table3_circuit() -> Circuit {
    let bench = bv::bv_all_ones(10);
    let report = compile(&bench.circuit, &mumbai(), Strategy::Baseline).expect("fits");
    report.circuit.compact_qubits().0
}

fn bench_thread_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_threads");
    group.sample_size(10);
    let circuit = table3_circuit();
    let model = NoiseModel::from_device(mumbai());
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("shots2000", threads),
            &threads,
            |b, &threads| {
                let exec = Executor::noisy(model.clone()).with_threads(threads);
                b.iter(|| black_box(exec.run_shots(black_box(&circuit), 2000, EXPERIMENT_SEED)));
            },
        );
    }
    group.finish();
}

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_kernels");
    group.sample_size(10);
    let circuit = table3_circuit();
    let model = NoiseModel::from_device(mumbai());
    // Noisy: specialized kernels + hoisted noise tables vs the naive
    // per-instruction path (which also pays schedule/noise recomputation
    // per gate application style of the reference executor).
    group.bench_function("noisy_kernels", |b| {
        let exec = Executor::noisy(model.clone()).with_threads(1);
        b.iter(|| black_box(exec.run_shots(black_box(&circuit), 500, EXPERIMENT_SEED)));
    });
    group.bench_function("noisy_reference", |b| {
        let exec = Executor::noisy(model.clone()).reference();
        b.iter(|| black_box(exec.run_shots(black_box(&circuit), 500, EXPERIMENT_SEED)));
    });
    // Ideal: fusion collapses 1q runs, so the fused/unfused gap is widest
    // without noise interleaving.
    group.bench_function("ideal_fused", |b| {
        let exec = Executor::ideal().with_threads(1).with_snapshot(false);
        b.iter(|| black_box(exec.run_shots(black_box(&circuit), 500, EXPERIMENT_SEED)));
    });
    group.bench_function("ideal_reference", |b| {
        let exec = Executor::ideal().reference().with_snapshot(false);
        b.iter(|| black_box(exec.run_shots(black_box(&circuit), 500, EXPERIMENT_SEED)));
    });
    group.finish();
}

fn bench_snapshot(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_snapshot");
    group.sample_size(10);
    // Deep BV: a long measurement-free prefix, so the snapshot skips
    // almost the whole circuit for event-free shots.
    let circuit = {
        let bench = bv::bv_all_ones(16);
        bench.circuit.clone()
    };
    let model = NoiseModel::from_device(mumbai());
    for (label, snapshot) in [("on", true), ("off", false)] {
        group.bench_with_input(
            BenchmarkId::new("deep_bv16", label),
            &snapshot,
            |b, &snapshot| {
                let exec = Executor::noisy(model.clone())
                    .with_threads(1)
                    .with_snapshot(snapshot);
                b.iter(|| black_box(exec.run_shots(black_box(&circuit), 500, EXPERIMENT_SEED)));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_thread_scaling, bench_kernels, bench_snapshot);
criterion_main!(benches);
