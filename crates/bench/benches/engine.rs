//! Criterion benches of the batch-compilation engine: sequential vs pooled
//! execution, and cold vs warm compile cache.
//!
//! On a single-core container the pooled numbers will track the sequential
//! ones; on a multicore host the `pooled_*` benches show the worker-pool
//! speedup and `warm_cache` shows the content-addressed cache turning
//! repeat compiles into lookups.

use caqr::Strategy;
use caqr_benchmarks::suite;
use caqr_engine::{BatchOptions, BatchRequest, CompileJob, Engine};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

/// The regular suite crossed with two strategies — a realistic experiment
/// batch (14 jobs, mixed sizes).
fn batch_jobs() -> Vec<CompileJob> {
    let mut jobs = Vec::new();
    for bench in suite::regular_suite() {
        let device = caqr_bench::device_for(bench.circuit.num_qubits());
        for strategy in [Strategy::Baseline, Strategy::Sr] {
            jobs.push(CompileJob::new(
                bench.name.clone(),
                bench.circuit.clone(),
                device.clone(),
                strategy,
            ));
        }
    }
    jobs
}

fn bench_pool_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_pool");
    group.sample_size(10);
    let jobs = batch_jobs();
    for workers in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("workers", workers),
            &workers,
            |b, &workers| {
                b.iter(|| {
                    let request =
                        BatchRequest::new(black_box(jobs.clone())).with_options(BatchOptions {
                            workers,
                            cache_capacity: 0,
                        });
                    black_box(Engine::run(&request))
                })
            },
        );
    }
    group.finish();
}

fn bench_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_cache");
    group.sample_size(10);
    // The same suite twice over: the second half is pure cache hits when
    // caching is on, full recompiles when it is off.
    let doubled: Vec<CompileJob> = batch_jobs().into_iter().chain(batch_jobs()).collect();
    group.bench_function("cold_cache", |b| {
        b.iter(|| {
            let request =
                BatchRequest::new(black_box(doubled.clone())).with_options(BatchOptions {
                    workers: 1,
                    cache_capacity: 0,
                });
            black_box(Engine::run(&request))
        })
    });
    group.bench_function("warm_cache", |b| {
        b.iter(|| {
            let request =
                BatchRequest::new(black_box(doubled.clone())).with_options(BatchOptions {
                    workers: 1,
                    cache_capacity: 64,
                });
            black_box(Engine::run(&request))
        })
    });
    group.finish();
}

fn bench_fingerprint(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_fingerprint");
    for bench in [
        suite::by_name("bv_10", 1).unwrap(),
        suite::by_name("multiply_13", 1).unwrap(),
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(&bench.name),
            &bench.circuit,
            |b, circuit| b.iter(|| black_box(black_box(circuit).fingerprint())),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_pool_scaling, bench_cache, bench_fingerprint);
criterion_main!(benches);
