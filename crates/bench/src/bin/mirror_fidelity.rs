//! Extension experiment: mirror-circuit fidelity, baseline vs SR-CaQR.
//!
//! A mirror circuit (`C` then `C†`) ideally returns |0...0>; the measured
//! survival probability on a noisy device is a one-number fidelity probe.
//! This extends the paper's Table 3 methodology to a workload whose ideal
//! answer is trivially known at any size, which makes the compiler
//! comparison especially clean.

use caqr::{compile, Strategy};
use caqr_bench::{mumbai, SimArgs, Table, EXPERIMENT_SEED};
use caqr_benchmarks::extra;
use caqr_sim::{Executor, NoiseModel};

const DEFAULT_SHOTS: usize = 2000;

fn main() {
    let args = SimArgs::parse(DEFAULT_SHOTS);
    println!(
        "Mirror-circuit fidelity (ideal output |0...0>, {} shots, {} engine)\n",
        args.shots, args.engine
    );
    let device = mumbai();
    let mut t = Table::new(&[
        "circuit",
        "baseline survival",
        "SR-CaQR survival",
        "gain",
        "swaps base -> SR",
    ]);
    for (n, layers) in [(4usize, 4usize), (6, 4), (8, 6), (10, 6)] {
        let bench = extra::mirror(n, layers, EXPERIMENT_SEED + n as u64);
        let base = compile(&bench.circuit, &device, Strategy::Baseline).expect("fits");
        let sr = compile(&bench.circuit, &device, Strategy::Sr).expect("fits");
        let noisy = Executor::noisy(NoiseModel::from_device(device.clone()))
            .with_threads(args.threads)
            .with_engine(args.engine);
        let survival = |c: &caqr_circuit::Circuit, seed: u64| {
            let (compact, _) = c.compact_qubits();
            noisy
                .run_shots(&compact, args.shots, seed)
                .marginal(n)
                .probability(0)
        };
        let pb = survival(&base.circuit, 3);
        let ps = survival(&sr.circuit, 4);
        t.row(&[
            bench.name.clone(),
            format!("{pb:.3}"),
            format!("{ps:.3}"),
            format!("{:+.1}%", 100.0 * (ps - pb) / pb.max(1e-9)),
            format!("{} -> {}", base.swaps, sr.swaps),
        ]);
    }
    t.print();
    println!("\nexpected: SR-CaQR survival >= baseline wherever it saves SWAPs/duration.");
}
