//! Table 3: "real machine" TVD — baseline vs SR-CaQR on the noisy Mumbai
//! simulator for BV_5, BV_10, Multiply_13, CC_10, CC_13.
//!
//! Lower TVD is better. The paper reports SR-CaQR improving TVD on every
//! benchmark (e.g. Multiply_13: 0.76 -> 0.61), with an average improvement
//! around 17%, while also using fewer qubits.
//!
//! Compiled circuits live on the full 27-qubit register, so they are
//! compacted to their used wires before dense simulation, and SR's fresh
//! reset clbits are marginalized out before comparing distributions.

use caqr::pipeline::CompileReport;
use caqr::{compile, Strategy};
use caqr_arch::Device;
use caqr_bench::{mumbai, SimArgs, Table, EXPERIMENT_SEED};
use caqr_benchmarks::{bv, revlib, Benchmark};
use caqr_sim::{exact, metrics, Counts, Executor, NoiseModel};

const DEFAULT_SHOTS: usize = 2000;

fn noisy_counts(
    report: &CompileReport,
    device: &Device,
    clbits: usize,
    seed: u64,
    args: SimArgs,
) -> Counts {
    let (compact, _) = report.circuit.compact_qubits();
    let noisy = Executor::noisy(NoiseModel::from_device(device.clone()))
        .with_threads(args.threads)
        .with_engine(args.engine);
    noisy.run_shots(&compact, args.shots, seed).marginal(clbits)
}

fn run(bench: &Benchmark, device: &Device, args: SimArgs, t: &mut Table) {
    let ideal = exact::distribution(&bench.circuit).expect("reference distribution");
    let clbits = bench.circuit.num_clbits();
    let base = compile(&bench.circuit, device, Strategy::Baseline).expect("fits");
    let sr = compile(&bench.circuit, device, Strategy::Sr).expect("fits");
    let counts_base = noisy_counts(&base, device, clbits, EXPERIMENT_SEED, args);
    let counts_sr = noisy_counts(&sr, device, clbits, EXPERIMENT_SEED + 1, args);
    let tvd_base = metrics::tvd(&ideal, &counts_base);
    let tvd_sr = metrics::tvd(&ideal, &counts_sr);
    let success = bench
        .correct_output
        .map(|correct| {
            format!(
                "{:.3} -> {:.3}",
                counts_base.probability(correct),
                counts_sr.probability(correct)
            )
        })
        .unwrap_or_default();
    t.row(&[
        bench.name.clone(),
        format!("{tvd_base:.3}"),
        format!("{tvd_sr:.3}"),
        format!("{:+.1}%", 100.0 * (tvd_base - tvd_sr) / tvd_base.max(1e-9)),
        success,
        format!("{} -> {}", base.qubits, sr.qubits),
    ]);
}

fn main() {
    let args = SimArgs::parse(DEFAULT_SHOTS);
    println!(
        "Table 3 — TVD on the noisy Mumbai simulator ({} shots, {} engine)\n",
        args.shots, args.engine
    );
    let device = mumbai();
    let mut t = Table::new(&[
        "benchmark",
        "TVD base",
        "TVD SR-CaQR",
        "TVD improv.",
        "success base -> SR",
        "qubits base -> SR",
    ]);
    run(&bv::bv_all_ones(5), &device, args, &mut t);
    run(&bv::bv_all_ones(10), &device, args, &mut t);
    run(&revlib::multiply_13(), &device, args, &mut t);
    run(&revlib::cc_10(), &device, args, &mut t);
    run(&revlib::cc_13(), &device, args, &mut t);
    t.print();
    println!(
        "\npaper: Multiply_13 0.76 -> 0.61, BV_10 0.64 -> 0.48, CC_10 0.61 -> 0.44 (~17% avg)"
    );
}
