//! Ablation: selecting the QS sweep point by depth vs by estimated
//! success probability (the paper's two selection objectives, §3.2.1).
//!
//! ESP folds in per-link error rates and idle decoherence, so its pick can
//! differ from the depth pick — typically favoring slightly deeper
//! circuits that avoid bad links or long idles.

use caqr::{compile, Strategy};
use caqr_bench::{device_for, format_dt, Table};
use caqr_benchmarks::suite;

fn main() {
    println!("Ablation — QS sweep-point selection: minimal depth vs maximal ESP\n");
    let mut t = Table::new(&[
        "benchmark",
        "min-depth (q/depth/dur/esp)",
        "max-esp (q/depth/dur/esp)",
        "same pick?",
    ]);
    for bench in suite::full_table_suite(caqr_bench::EXPERIMENT_SEED) {
        let device = device_for(bench.circuit.num_qubits());
        let d = compile(&bench.circuit, &device, Strategy::QsMinDepth);
        let e = compile(&bench.circuit, &device, Strategy::QsMaxEsp);
        match (d, e) {
            (Ok(d), Ok(e)) => {
                let fmt = |r: &caqr::CompileReport| {
                    format!(
                        "{}/{}/{}/{:.4}",
                        r.qubits,
                        r.depth,
                        format_dt(r.duration_dt),
                        r.esp
                    )
                };
                let same = d.qubits == e.qubits && d.depth == e.depth;
                t.row(&[
                    bench.name.clone(),
                    fmt(&d),
                    fmt(&e),
                    if same { "yes" } else { "no" }.into(),
                ]);
            }
            _ => t.row(&[
                bench.name.clone(),
                "error".into(),
                "error".into(),
                String::new(),
            ]),
        }
    }
    t.print();
    println!("\nexpected: max-ESP never reports a lower ESP than min-depth's pick.");
}
