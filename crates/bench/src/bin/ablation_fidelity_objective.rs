//! Ablation: selecting the QS sweep point by depth vs by estimated
//! success probability (the paper's two selection objectives, §3.2.1).
//!
//! ESP folds in per-link error rates and idle decoherence, so its pick can
//! differ from the depth pick — typically favoring slightly deeper
//! circuits that avoid bad links or long idles.

use caqr::Strategy;
use caqr_bench::{compile_grid, format_dt, Table};
use caqr_benchmarks::suite;

fn main() {
    println!("Ablation — QS sweep-point selection: minimal depth vs maximal ESP\n");
    let mut t = Table::new(&[
        "benchmark",
        "min-depth (q/depth/dur/esp)",
        "max-esp (q/depth/dur/esp)",
        "same pick?",
    ]);
    let benches = suite::full_table_suite(caqr_bench::EXPERIMENT_SEED);
    let grid = compile_grid(&benches, &[Strategy::QsMinDepth, Strategy::QsMaxEsp]);
    for (bench, row) in benches.iter().zip(grid) {
        let [d, e] = <[_; 2]>::try_from(row).expect("two strategies");
        match (d, e) {
            (Ok(d), Ok(e)) => {
                let fmt = |r: &caqr::CompileReport| {
                    format!(
                        "{}/{}/{}/{:.4}",
                        r.qubits,
                        r.depth,
                        format_dt(r.duration_dt),
                        r.esp
                    )
                };
                let same = d.qubits == e.qubits && d.depth == e.depth;
                t.row(&[
                    bench.name.clone(),
                    fmt(&d),
                    fmt(&e),
                    if same { "yes" } else { "no" }.into(),
                ]);
            }
            _ => t.row(&[
                bench.name.clone(),
                "error".into(),
                "error".into(),
                String::new(),
            ]),
        }
    }
    t.print();
    println!("\nexpected: max-ESP never reports a lower ESP than min-depth's pick.");
}
