//! Fig. 14: QS-CaQR on QAOA — depth vs qubit usage for random and
//! power-law graphs with 16, 32 and 128 vertices (density 0.3; the
//! 64-vertex case is Fig. 3).
//!
//! Expected shape: power-law graphs reach far lower qubit counts at a
//! gentler depth cost than random graphs, because their many low-degree
//! qubits finish early while a few hubs dominate the depth anyway.

use caqr::commuting::CommutingSpec;
use caqr::{qs, sr};
use caqr_bench::{Table, EXPERIMENT_SEED};
use caqr_benchmarks::qaoa::{maxcut_circuit, GraphKind};

fn sweep(n: usize, kind: GraphKind, label: &str) {
    let graph = kind.generate(n, 0.3, EXPERIMENT_SEED + n as u64);
    let circuit = maxcut_circuit(&graph, &[(0.7, 0.3)]);
    let spec = CommutingSpec::from_circuit(&circuit).expect("QAOA is commuting");
    let points = qs::commuting::sweep(&spec, sr::default_matcher(&spec));
    let base_depth = points[0].depth();

    println!(
        "\nQAOA-{n} {label} (|E| = {}, coloring bound = {}):",
        graph.num_edges(),
        qs::commuting::min_qubits(&spec)
    );
    let mut t = Table::new(&["qubits", "depth", "depth growth", "saving"]);
    // Print up to ~12 evenly spaced sweep points to keep the series legible.
    let step = (points.len() / 12).max(1);
    for (i, p) in points.iter().enumerate() {
        if i % step != 0 && i != points.len() - 1 {
            continue;
        }
        t.row(&[
            p.qubits.to_string(),
            p.depth().to_string(),
            format!(
                "{:+.1}%",
                100.0 * (p.depth() as f64 / base_depth as f64 - 1.0)
            ),
            format!("{:.1}%", 100.0 * (1.0 - p.qubits as f64 / n as f64)),
        ]);
    }
    t.print();
}

fn main() {
    println!("Fig. 14 — QS-CaQR depth vs qubit usage, QAOA, density 0.3");
    for n in [16, 32, 128] {
        sweep(n, GraphKind::Random, "random");
        sweep(n, GraphKind::PowerLaw, "power-law");
    }
}
