//! Figs. 15/16: QAOA max-cut convergence under COBYLA — SR-CaQR's reused
//! circuit vs the no-reuse baseline, on the noisy Mumbai simulator.
//!
//! The x-axis is the optimizer round; the y-axis is the negated expected
//! cut (lower is better). The paper's 10-vertex instances at densities 0.3
//! and 0.5 show the SR-CaQR circuit (6 qubits) converging faster and
//! reaching a better minimum than the 10-qubit original.
//!
//! Routing does not depend on the QAOA angles, so each strategy compiles
//! the *parametric template* exactly once; every optimizer evaluation
//! binds the candidate `(gamma, beta)` into the routed artifact — an
//! O(gates) stamp, no recompilation. The run reports the resulting
//! compile / bind / simulate wall-time split: with one compile amortized
//! over all evaluations, compile time drops out of the optimizer loop.

use caqr::{compile_template, Strategy};
use caqr_arch::Device;
use caqr_bench::{mumbai, SimArgs, Table, EXPERIMENT_SEED};
use caqr_benchmarks::qaoa::{maxcut_template, GraphKind};
use caqr_circuit::parametric::bind_circuit;
use caqr_graph::Graph;
use caqr_optim::{cobyla, Options};
use caqr_sim::{metrics, Executor, NoiseModel};
use std::time::{Duration, Instant};

const DEFAULT_SHOTS: usize = 384;
const ROUNDS: usize = 50;

/// Wall-time split of one convergence run: template compilation happens
/// once; binding and simulation happen once per optimizer evaluation.
struct TimeSplit {
    compile: Duration,
    bind: Duration,
    simulate: Duration,
    evals: u64,
}

impl TimeSplit {
    fn print(&self, label: &str) {
        let total = self.compile + self.bind + self.simulate;
        let share = |d: Duration| 100.0 * d.as_secs_f64() / total.as_secs_f64().max(1e-12);
        println!(
            "{label}: compile {:.1} ms once ({:.2}% of loop), bind {:.3} ms over {} evals \
             ({:.2}%), simulate {:.1} ms ({:.2}%)",
            self.compile.as_secs_f64() * 1e3,
            share(self.compile),
            self.bind.as_secs_f64() * 1e3,
            self.evals,
            share(self.bind),
            self.simulate.as_secs_f64() * 1e3,
            share(self.simulate),
        );
    }
}

fn converge(
    graph: &Graph,
    device: &Device,
    strategy: Strategy,
    args: SimArgs,
) -> (Vec<f64>, usize, TimeSplit) {
    let template = maxcut_template(graph, 1);
    // Compile the template ONCE. The SR curve uses the fidelity-objective
    // version selection (the reuse level with the best ESP), matching the
    // paper's end-to-end fidelity experiments; the baseline compiles
    // without reuse. Both artifacts still carry the two symbolic slots.
    let compile_started = Instant::now();
    let (compiled, qubits) = if strategy == Strategy::Sr {
        let routed =
            caqr::sr::compile_for_fidelity_template(&template, device).expect("fits device");
        let q = routed.physical_qubits_used;
        (routed.circuit, q)
    } else {
        let report = compile_template(&template, device, strategy).expect("fits device");
        let q = report.qubits;
        (report.circuit, q)
    };
    let (compact, _) = compiled.compact_qubits();
    let compile = compile_started.elapsed();

    let noisy = Executor::noisy(NoiseModel::from_device(device.clone())).with_threads(args.threads);
    let mut eval = 0u64;
    let mut bind = Duration::ZERO;
    let mut simulate = Duration::ZERO;
    let result = cobyla::minimize(
        |x| {
            eval += 1;
            // Slot 0 is gamma, slot 1 the mixer angle (2 beta) — the
            // `maxcut_template` convention.
            let bind_started = Instant::now();
            let circuit = bind_circuit(&compact, template.num_slots(), &[x[0], 2.0 * x[1]])
                .expect("arity matches the template");
            bind += bind_started.elapsed();
            let sim_started = Instant::now();
            let counts = noisy
                .run_shots(&circuit, args.shots, EXPERIMENT_SEED + eval)
                .marginal(graph.num_vertices());
            simulate += sim_started.elapsed();
            -metrics::expected_cut(graph, &counts)
        },
        &[0.7, 0.3],
        &Options {
            max_evals: ROUNDS,
            initial_step: 0.4,
            tolerance: 1e-4,
        },
    );
    let split = TimeSplit {
        compile,
        bind,
        simulate,
        evals: eval,
    };
    (result.history, qubits, split)
}

fn run(density: f64, args: SimArgs) {
    let device = mumbai();
    let graph = GraphKind::Random.generate(10, density, EXPERIMENT_SEED);
    let max_cut = metrics::max_cut_brute_force(&graph);
    println!(
        "\nQAOA 10-{density}: |E| = {}, brute-force max cut = {max_cut}",
        graph.num_edges()
    );
    let (base_hist, base_q, base_split) = converge(&graph, &device, Strategy::Baseline, args);
    let (sr_hist, sr_q, sr_split) = converge(&graph, &device, Strategy::Sr, args);
    println!("baseline uses {base_q} qubits; SR-CaQR uses {sr_q} qubits");
    base_split.print("baseline time split");
    sr_split.print("SR-CaQR  time split");
    let mut t = Table::new(&["round", "baseline -<cut>", "SR-CaQR -<cut>"]);
    let len = base_hist.len().max(sr_hist.len());
    let pick = |h: &[f64], i: usize| {
        h.get(i)
            .or(h.last())
            .map(|v| format!("{v:.3}"))
            .unwrap_or_default()
    };
    for i in (0..len).step_by(5) {
        t.row(&[i.to_string(), pick(&base_hist, i), pick(&sr_hist, i)]);
    }
    t.row(&[
        "final".into(),
        pick(&base_hist, len.saturating_sub(1)),
        pick(&sr_hist, len.saturating_sub(1)),
    ]);
    t.print();
}

fn main() {
    let args = SimArgs::parse(DEFAULT_SHOTS);
    println!("Figs. 15/16 — QAOA convergence, COBYLA, noisy Mumbai simulator");
    println!(
        "({} shots per evaluation, {ROUNDS} evaluations; each strategy compiles its",
        args.shots
    );
    println!("parametric template once and binds angles per evaluation)");
    run(0.3, args);
    run(0.5, args);
    println!("\npaper shape: the SR-CaQR curve sits below the baseline and converges faster.");
    println!("note: our noise model has no spectator/readout crosstalk, which is the main");
    println!("physical mechanism rewarding fewer live qubits on hardware — expect the SR");
    println!("curve to track the baseline closely here while using far fewer qubits.");
}
