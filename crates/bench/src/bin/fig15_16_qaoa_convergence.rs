//! Figs. 15/16: QAOA max-cut convergence under COBYLA — SR-CaQR's reused
//! circuit vs the no-reuse baseline, on the noisy Mumbai simulator.
//!
//! The x-axis is the optimizer round; the y-axis is the negated expected
//! cut (lower is better). The paper's 10-vertex instances at densities 0.3
//! and 0.5 show the SR-CaQR circuit (6 qubits) converging faster and
//! reaching a better minimum than the 10-qubit original.
//!
//! Routing does not depend on the QAOA angles, so each strategy is
//! compiled once with marker angles; every optimizer evaluation just
//! substitutes the candidate `(gamma, beta)` into the compiled circuit.

use caqr::{compile, Strategy};
use caqr_arch::Device;
use caqr_bench::{mumbai, SimArgs, Table, EXPERIMENT_SEED};
use caqr_benchmarks::qaoa::maxcut_circuit;
use caqr_benchmarks::qaoa::GraphKind;
use caqr_circuit::{Circuit, Gate};
use caqr_graph::Graph;
use caqr_optim::{cobyla, Options};
use caqr_sim::{metrics, Executor, NoiseModel};

const DEFAULT_SHOTS: usize = 384;
const ROUNDS: usize = 50;
const MARKER_GAMMA: f64 = 0.123456789;
const MARKER_BETA: f64 = 0.987654321;

/// Replaces the marker angles in a compiled circuit with `(gamma, beta)`.
fn substitute(compiled: &Circuit, gamma: f64, beta: f64) -> Circuit {
    let mut out = Circuit::new(compiled.num_qubits(), compiled.num_clbits());
    for instr in compiled {
        let mut ni = instr.clone();
        ni.gate = match instr.gate {
            Gate::Rzz(a) if (a - MARKER_GAMMA).abs() < 1e-9 => Gate::Rzz(gamma),
            Gate::Rx(a) if (a - 2.0 * MARKER_BETA).abs() < 1e-9 => Gate::Rx(2.0 * beta),
            g => g,
        };
        out.push(ni);
    }
    out
}

fn converge(
    graph: &Graph,
    device: &Device,
    strategy: Strategy,
    args: SimArgs,
) -> (Vec<f64>, usize) {
    let template = maxcut_circuit(graph, &[(MARKER_GAMMA, MARKER_BETA)]);
    // The SR curve uses the fidelity-objective version selection (the
    // reuse level with the best ESP), matching the paper's end-to-end
    // fidelity experiments; the baseline compiles without reuse.
    let (compiled, qubits) = if strategy == Strategy::Sr {
        let routed = caqr::sr::compile_for_fidelity(&template, device).expect("fits device");
        let q = routed.physical_qubits_used;
        (routed.circuit, q)
    } else {
        let report = compile(&template, device, strategy).expect("fits device");
        let q = report.qubits;
        (report.circuit, q)
    };
    let (compact, _) = compiled.compact_qubits();
    let noisy = Executor::noisy(NoiseModel::from_device(device.clone())).with_threads(args.threads);
    let mut eval = 0u64;
    let result = cobyla::minimize(
        |x| {
            eval += 1;
            let circuit = substitute(&compact, x[0], x[1]);
            let counts = noisy
                .run_shots(&circuit, args.shots, EXPERIMENT_SEED + eval)
                .marginal(graph.num_vertices());
            -metrics::expected_cut(graph, &counts)
        },
        &[0.7, 0.3],
        &Options {
            max_evals: ROUNDS,
            initial_step: 0.4,
            tolerance: 1e-4,
        },
    );
    (result.history, qubits)
}

fn run(density: f64, args: SimArgs) {
    let device = mumbai();
    let graph = GraphKind::Random.generate(10, density, EXPERIMENT_SEED);
    let max_cut = metrics::max_cut_brute_force(&graph);
    println!(
        "\nQAOA 10-{density}: |E| = {}, brute-force max cut = {max_cut}",
        graph.num_edges()
    );
    let (base_hist, base_q) = converge(&graph, &device, Strategy::Baseline, args);
    let (sr_hist, sr_q) = converge(&graph, &device, Strategy::Sr, args);
    println!("baseline uses {base_q} qubits; SR-CaQR uses {sr_q} qubits");
    let mut t = Table::new(&["round", "baseline -<cut>", "SR-CaQR -<cut>"]);
    let len = base_hist.len().max(sr_hist.len());
    let pick = |h: &[f64], i: usize| {
        h.get(i)
            .or(h.last())
            .map(|v| format!("{v:.3}"))
            .unwrap_or_default()
    };
    for i in (0..len).step_by(5) {
        t.row(&[i.to_string(), pick(&base_hist, i), pick(&sr_hist, i)]);
    }
    t.row(&[
        "final".into(),
        pick(&base_hist, len.saturating_sub(1)),
        pick(&sr_hist, len.saturating_sub(1)),
    ]);
    t.print();
}

fn main() {
    let args = SimArgs::parse(DEFAULT_SHOTS);
    println!("Figs. 15/16 — QAOA convergence, COBYLA, noisy Mumbai simulator");
    println!(
        "({} shots per evaluation, {ROUNDS} evaluations)",
        args.shots
    );
    run(0.3, args);
    run(0.5, args);
    println!("\npaper shape: the SR-CaQR curve sits below the baseline and converges faster.");
    println!("note: our noise model has no spectator/readout crosstalk, which is the main");
    println!("physical mechanism rewarding fewer live qubits on hardware — expect the SR");
    println!("curve to track the baseline closely here while using far fewer qubits.");
}
