//! Routing cost-model ablation over the golden corpus, frozen in
//! `BENCH_route.json`.
//!
//! Compiles the pipeline-equivalence corpus (7 benchmarks x 6 strategies
//! on the Mumbai stand-in, seed 2023 — the same 42 jobs
//! `crates/core/tests/golden_equivalence.rs` pins) once per routing cost
//! model (`hop`, `lookahead`, `noise-aware`) and compares total SWAPs,
//! summed duration, mean ESP, and the calibration-weighted CX error mass
//! of the routed circuits. A SWAP decomposes into three CXs, so it counts
//! its link's error three times.
//!
//! The same corpus also runs through the DPQA movement backend on a
//! 5x5 grid device (atoms shuttle instead of SWAPping, so the comparison
//! axis is movement stages rather than SWAP count); its per-job rows are
//! frozen in a `"dpqa"` section of the same JSON.
//!
//! Usage: `route_ablation [--quick] [--check] [--json] [--out PATH]
//! [--routing-backend swap|dpqa|both]`
//!
//! * default — print the per-model comparison table.
//! * `--json` — also write the frozen `BENCH_route.json` (per-job rows
//!   carry circuit fingerprints, so the file doubles as a routing
//!   determinism pin).
//! * `--check` — recompute and compare against the committed JSON: every
//!   recomputed row must match its frozen fingerprint bit for bit, all
//!   three models must have completed, and at least one alternative model
//!   must beat `hop` on total SWAPs or CX error mass. With the DPQA
//!   backend in scope, every movement row must also match its frozen
//!   fingerprint and stage count, with zero SWAPs across the board.
//! * `--quick` — restrict to a 3-benchmark x 2-strategy subset (CI smoke;
//!   composes with `--check`).
//! * `--routing-backend` — restrict to one backend (default `both`).

use caqr::{
    compile_with, CompileReport, CostModelSpec, RouterConfig, RoutingBackendSpec, Strategy,
};
use caqr_arch::Device;
use caqr_bench::Table;
use caqr_benchmarks::qaoa::{qaoa_benchmark, GraphKind};
use caqr_benchmarks::{bv, revlib, Benchmark};
use caqr_circuit::Gate;
use caqr_wire::Value;

const STRATEGIES: [Strategy; 6] = [
    Strategy::Baseline,
    Strategy::QsMaxReuse,
    Strategy::QsMinDepth,
    Strategy::QsMinSwap,
    Strategy::QsMaxEsp,
    Strategy::Sr,
];

/// The golden-equivalence corpus, verbatim.
fn corpus() -> Vec<Benchmark> {
    vec![
        revlib::xor_5(),
        revlib::four_mod5(),
        revlib::rd32(),
        bv::bv_all_ones(5),
        bv::bv_all_ones(8),
        qaoa_benchmark(6, 0.3, GraphKind::Random, 2029),
        qaoa_benchmark(8, 0.3, GraphKind::Random, 2031),
    ]
}

fn models() -> Vec<CostModelSpec> {
    vec![
        CostModelSpec::Hop,
        CostModelSpec::lookahead(),
        CostModelSpec::NoiseAware,
    ]
}

/// Calibration CX-error mass of a routed circuit: every two-qubit gate
/// adds its link's `cx_error`; a SWAP (three CXs on hardware) adds it
/// three times.
fn cx_error_sum(report: &CompileReport, device: &Device) -> f64 {
    let cal = device.calibration();
    report
        .circuit
        .instructions()
        .iter()
        .filter(|inst| inst.qubits.len() == 2)
        .map(|inst| {
            let (a, b) = (inst.qubits[0].index(), inst.qubits[1].index());
            let weight = if matches!(inst.gate, Gate::Swap) {
                3.0
            } else {
                1.0
            };
            weight * cal.cx_error(a, b)
        })
        .sum()
}

struct Row {
    bench: String,
    strategy: Strategy,
    model: CostModelSpec,
    swaps: usize,
    depth: usize,
    duration_dt: u64,
    esp_bits: u64,
    cx_error: f64,
    fingerprint: u128,
}

/// One job under the DPQA movement backend: no SWAPs by construction, so
/// the comparison axis is movement stages and resulting depth/duration.
struct DpqaRow {
    bench: String,
    strategy: Strategy,
    qubits: usize,
    depth: usize,
    duration_dt: u64,
    moves: usize,
    swaps: usize,
    fingerprint: u128,
}

/// DPQA target: 25 sites comfortably hosts the widest corpus member
/// (BV_8 at 9 logical qubits) plus movement headroom.
const DPQA_GRID: (usize, usize) = (5, 5);

#[derive(Default)]
struct ModelTotals {
    jobs_ok: usize,
    swaps: usize,
    duration_dt: u64,
    esp_sum: f64,
    cx_error_sum: f64,
}

fn run_jobs(quick: bool) -> Vec<Row> {
    let device = Device::mumbai(2023);
    let benches = corpus();
    let (benches, strategies): (&[Benchmark], &[Strategy]) = if quick {
        (&benches[..3], &[Strategy::Baseline, Strategy::Sr])
    } else {
        (&benches[..], &STRATEGIES[..])
    };
    let mut rows = Vec::new();
    for bench in benches {
        for &strategy in strategies {
            for &model in &models() {
                let report = compile_with(&bench.circuit, &device, strategy, model)
                    .unwrap_or_else(|e| panic!("{} {strategy} {model}: {e}", bench.name));
                rows.push(Row {
                    bench: bench.name.clone(),
                    strategy,
                    model,
                    swaps: report.swaps,
                    depth: report.depth,
                    duration_dt: report.duration_dt,
                    esp_bits: report.esp.to_bits(),
                    cx_error: cx_error_sum(&report, &device),
                    fingerprint: report.circuit.fingerprint().as_u128(),
                });
            }
        }
    }
    rows
}

fn run_dpqa_jobs(quick: bool) -> Vec<DpqaRow> {
    let device = Device::dpqa_grid(DPQA_GRID.0, DPQA_GRID.1, 2023);
    let benches = corpus();
    let (benches, strategies): (&[Benchmark], &[Strategy]) = if quick {
        (&benches[..3], &[Strategy::Baseline, Strategy::Sr])
    } else {
        (&benches[..], &STRATEGIES[..])
    };
    let router = RouterConfig::from(RoutingBackendSpec::Dpqa);
    let mut rows = Vec::new();
    for bench in benches {
        for &strategy in strategies {
            let report = compile_with(&bench.circuit, &device, strategy, router)
                .unwrap_or_else(|e| panic!("{} {strategy} dpqa: {e}", bench.name));
            rows.push(DpqaRow {
                bench: bench.name.clone(),
                strategy,
                qubits: report.qubits,
                depth: report.depth,
                duration_dt: report.duration_dt,
                moves: report.movement_stages,
                swaps: report.swaps,
                fingerprint: report.circuit.fingerprint().as_u128(),
            });
        }
    }
    rows
}

fn totals(rows: &[Row]) -> Vec<(CostModelSpec, ModelTotals)> {
    let mut out: Vec<(CostModelSpec, ModelTotals)> = models()
        .into_iter()
        .map(|m| (m, ModelTotals::default()))
        .collect();
    for row in rows {
        let slot = &mut out
            .iter_mut()
            .find(|(m, _)| *m == row.model)
            .expect("known model")
            .1;
        slot.jobs_ok += 1;
        slot.swaps += row.swaps;
        slot.duration_dt += row.duration_dt;
        slot.esp_sum += f64::from_bits(row.esp_bits);
        slot.cx_error_sum += row.cx_error;
    }
    out
}

fn render(totals: &[(CostModelSpec, ModelTotals)]) {
    let mut t = Table::new(&[
        "cost model",
        "jobs",
        "SWAPs",
        "dur_dt",
        "esp_mean",
        "cx_err_sum",
    ]);
    for (model, agg) in totals {
        t.row(&[
            model.to_string(),
            agg.jobs_ok.to_string(),
            agg.swaps.to_string(),
            agg.duration_dt.to_string(),
            format!("{:.4}", agg.esp_sum / agg.jobs_ok.max(1) as f64),
            format!("{:.4}", agg.cx_error_sum),
        ]);
    }
    t.print();
}

fn render_dpqa(rows: &[DpqaRow]) {
    let mut t = Table::new(&[
        "benchmark",
        "strategy",
        "qubits",
        "moves",
        "depth",
        "dur_dt",
    ]);
    for row in rows {
        t.row(&[
            row.bench.clone(),
            row.strategy.to_string(),
            row.qubits.to_string(),
            row.moves.to_string(),
            row.depth.to_string(),
            row.duration_dt.to_string(),
        ]);
    }
    t.print();
    let moves: usize = rows.iter().map(|r| r.moves).sum();
    let duration: u64 = rows.iter().map(|r| r.duration_dt).sum();
    println!(
        "\ndpqa totals: jobs={} moves={moves} dur_dt={duration} (SWAPs: 0 by construction)",
        rows.len()
    );
}

/// True when some non-hop model strictly improves on hop's total SWAPs or
/// CX error mass — the claim the frozen JSON exists to document.
fn some_model_beats_hop(totals: &[(CostModelSpec, ModelTotals)]) -> bool {
    let hop = &totals
        .iter()
        .find(|(m, _)| *m == CostModelSpec::Hop)
        .expect("hop present")
        .1;
    totals
        .iter()
        .filter(|(m, _)| *m != CostModelSpec::Hop)
        .any(|(_, agg)| agg.swaps < hop.swaps || agg.cx_error_sum < hop.cx_error_sum)
}

fn to_json(rows: &[Row], dpqa: &[DpqaRow], totals: &[(CostModelSpec, ModelTotals)]) -> String {
    let mut json = String::from("{\n");
    json.push_str("  \"workload\": \"golden_corpus\",\n");
    json.push_str("  \"device\": \"mumbai:2023\",\n");
    json.push_str("  \"models\": [\n");
    for (i, (model, agg)) in totals.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"jobs_ok\": {}, \"swaps\": {}, \"duration_dt\": {}, \
             \"esp_mean\": {:.6}, \"cx_error_sum\": {:.6}}}{}\n",
            model,
            agg.jobs_ok,
            agg.swaps,
            agg.duration_dt,
            agg.esp_sum / agg.jobs_ok.max(1) as f64,
            agg.cx_error_sum,
            if i + 1 < totals.len() { "," } else { "" },
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"rows\": [\n");
    for (i, row) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"bench\": \"{}\", \"strategy\": \"{}\", \"model\": \"{}\", \"swaps\": {}, \
             \"depth\": {}, \"duration_dt\": {}, \"esp_bits\": \"{:016x}\", \
             \"circuit\": \"{:032x}\"}}{}\n",
            row.bench,
            row.strategy,
            row.model,
            row.swaps,
            row.depth,
            row.duration_dt,
            row.esp_bits,
            row.fingerprint,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"dpqa\": {\n");
    json.push_str(&format!(
        "    \"device\": \"grid:{}x{}:2023\",\n",
        DPQA_GRID.0, DPQA_GRID.1
    ));
    json.push_str("    \"rows\": [\n");
    for (i, row) in dpqa.iter().enumerate() {
        json.push_str(&format!(
            "      {{\"bench\": \"{}\", \"strategy\": \"{}\", \"qubits\": {}, \"moves\": {}, \
             \"swaps\": {}, \"depth\": {}, \"duration_dt\": {}, \"circuit\": \"{:032x}\"}}{}\n",
            row.bench,
            row.strategy,
            row.qubits,
            row.moves,
            row.swaps,
            row.depth,
            row.duration_dt,
            row.fingerprint,
            if i + 1 < dpqa.len() { "," } else { "" },
        ));
    }
    json.push_str("    ]\n  }\n}\n");
    json
}

/// Compares recomputed rows against the committed `BENCH_route.json`.
/// Sections whose backend was not recomputed (empty slice) are skipped.
fn check(rows: &[Row], dpqa: &[DpqaRow], totals: &[(CostModelSpec, ModelTotals)], path: &str) {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("--check needs the committed {path}: {e}"));
    let frozen = caqr_wire::parse(&text).expect("committed JSON parses");

    if !dpqa.is_empty() {
        check_dpqa(dpqa, &frozen, path);
    }
    if rows.is_empty() {
        println!(
            "--check passed ({} dpqa rows verified against {path})",
            dpqa.len()
        );
        return;
    }

    let frozen_models = frozen
        .get("models")
        .and_then(Value::as_array)
        .expect("'models' array");
    assert_eq!(frozen_models.len(), 3, "all three cost models frozen");
    for model in frozen_models {
        let name = model.get("name").and_then(Value::as_str).unwrap();
        let jobs_ok = model.get("jobs_ok").and_then(Value::as_u64).unwrap();
        assert_eq!(jobs_ok, 42, "model '{name}' completed the full corpus");
    }

    let frozen_rows = frozen
        .get("rows")
        .and_then(Value::as_array)
        .expect("'rows' array");
    let key = |bench: &str, strategy: &str, model: &str| format!("{bench}|{strategy}|{model}");
    let mut index = std::collections::BTreeMap::new();
    for row in frozen_rows {
        let k = key(
            row.get("bench").and_then(Value::as_str).unwrap(),
            row.get("strategy").and_then(Value::as_str).unwrap(),
            row.get("model").and_then(Value::as_str).unwrap(),
        );
        index.insert(k, row);
    }

    for row in rows {
        let k = key(
            &row.bench,
            &row.strategy.to_string(),
            &row.model.to_string(),
        );
        let frozen_row = index
            .get(&k)
            .unwrap_or_else(|| panic!("row '{k}' missing from {path}"));
        let frozen_fp = frozen_row.get("circuit").and_then(Value::as_str).unwrap();
        assert_eq!(
            format!("{:032x}", row.fingerprint),
            frozen_fp,
            "routed circuit for '{k}' drifted from the frozen fingerprint"
        );
        assert_eq!(
            frozen_row.get("swaps").and_then(Value::as_u64),
            Some(row.swaps as u64),
            "swap count for '{k}' drifted"
        );
    }

    assert!(
        some_model_beats_hop(totals) || rows.len() < 42 * 3,
        "no alternative model beats hop on the recomputed subset"
    );
    println!(
        "--check passed ({} swap rows + {} dpqa rows verified against {path})",
        rows.len(),
        dpqa.len()
    );
}

/// Compares recomputed DPQA movement rows against the frozen `"dpqa"`
/// section: fingerprint, movement-stage count, and the zero-SWAP
/// invariant must all hold bit for bit.
fn check_dpqa(dpqa: &[DpqaRow], frozen: &Value, path: &str) {
    let section = frozen
        .get("dpqa")
        .unwrap_or_else(|| panic!("'dpqa' section missing from {path}"));
    let frozen_rows = section
        .get("rows")
        .and_then(Value::as_array)
        .expect("'dpqa.rows' array");
    if dpqa.len() == 42 {
        assert_eq!(frozen_rows.len(), 42, "full corpus frozen for dpqa");
    }
    let key = |bench: &str, strategy: &str| format!("{bench}|{strategy}");
    let mut index = std::collections::BTreeMap::new();
    for row in frozen_rows {
        let k = key(
            row.get("bench").and_then(Value::as_str).unwrap(),
            row.get("strategy").and_then(Value::as_str).unwrap(),
        );
        index.insert(k, row);
    }
    for row in dpqa {
        let k = key(&row.bench, &row.strategy.to_string());
        let frozen_row = index
            .get(&k)
            .unwrap_or_else(|| panic!("dpqa row '{k}' missing from {path}"));
        assert_eq!(
            format!("{:032x}", row.fingerprint),
            frozen_row.get("circuit").and_then(Value::as_str).unwrap(),
            "dpqa circuit for '{k}' drifted from the frozen fingerprint"
        );
        assert_eq!(
            frozen_row.get("moves").and_then(Value::as_u64),
            Some(row.moves as u64),
            "movement-stage count for '{k}' drifted"
        );
        assert_eq!(row.swaps, 0, "dpqa row '{k}' must not insert SWAPs");
    }
}

fn main() {
    let mut quick = false;
    let mut check_only = false;
    let mut write_json = false;
    let mut backends = (true, true); // (swap, dpqa)
    let default_out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_route.json");
    let mut out = default_out.to_string();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--check" => check_only = true,
            "--json" => write_json = true,
            "--out" => out = args.next().expect("--out requires a path"),
            "--routing-backend" => {
                let spec = args.next().expect("--routing-backend requires a value");
                backends = match spec.as_str() {
                    "swap" => (true, false),
                    "dpqa" => (false, true),
                    "both" => (true, true),
                    other => {
                        eprintln!("unknown routing backend '{other}' (swap | dpqa | both)");
                        std::process::exit(2);
                    }
                };
            }
            other => {
                eprintln!("unrecognized argument '{other}'");
                eprintln!(
                    "usage: route_ablation [--quick] [--check] [--json] [--out PATH] \
                     [--routing-backend swap|dpqa|both]"
                );
                std::process::exit(2);
            }
        }
    }

    let scope = if quick {
        "quick subset (3 benchmarks x 2 strategies)"
    } else {
        "golden corpus (7 benchmarks x 6 strategies)"
    };
    println!("Routing cost-model ablation — {scope}\n");
    let rows = if backends.0 {
        run_jobs(quick)
    } else {
        Vec::new()
    };
    let totals = totals(&rows);
    if backends.0 {
        render(&totals);
        if some_model_beats_hop(&totals) {
            println!("\nat least one alternative model beats hop on SWAPs or CX error mass");
        } else {
            println!("\nwarning: no alternative model beats hop on this workload");
        }
    }

    let dpqa = if backends.1 {
        run_dpqa_jobs(quick)
    } else {
        Vec::new()
    };
    if backends.1 {
        println!(
            "\nDPQA movement backend — grid:{}x{} (atoms shuttle; no SWAPs)\n",
            DPQA_GRID.0, DPQA_GRID.1
        );
        render_dpqa(&dpqa);
    }

    if check_only {
        check(&rows, &dpqa, &totals, &out);
        return;
    }
    if write_json {
        assert!(
            backends == (true, true) && !quick,
            "--json freezes the full corpus: run without --quick/--routing-backend"
        );
        std::fs::write(&out, to_json(&rows, &dpqa, &totals)).expect("write BENCH_route.json");
        println!("wrote {out}");
    }
}
