//! Fig. 3: the qubit-saving potential of QAOA-64.
//!
//! QS-CaQR sweeps every achievable qubit count for a 64-qubit QAOA circuit
//! on a power-law and a random problem graph (density 0.3) and reports the
//! logical depth at each point. The paper's headline: the power-law input
//! saves over 80% of qubits for at most ~25% extra duration; the random
//! input saves ~33% for at most ~20%.

use caqr::commuting::CommutingSpec;
use caqr::{qs, sr};
use caqr_bench::{Table, EXPERIMENT_SEED};
use caqr_benchmarks::qaoa::{maxcut_circuit, GraphKind};

fn sweep_for(kind: GraphKind, label: &str) {
    let graph = kind.generate(64, 0.3, EXPERIMENT_SEED);
    let circuit = maxcut_circuit(&graph, &[(0.7, 0.3)]);
    let spec = CommutingSpec::from_circuit(&circuit).expect("QAOA is commuting");
    let matcher = sr::default_matcher(&spec);
    let points = qs::commuting::sweep(&spec, matcher);

    let base_depth = points[0].depth();
    println!(
        "\nQAOA-64 {label} graph (|E| = {}, coloring bound = {}):",
        graph.num_edges(),
        qs::commuting::min_qubits(&spec)
    );
    let mut t = Table::new(&["qubits", "depth", "depth growth", "qubit saving"]);
    for p in &points {
        t.row(&[
            p.qubits.to_string(),
            p.depth().to_string(),
            format!(
                "{:+.1}%",
                100.0 * (p.depth() as f64 / base_depth as f64 - 1.0)
            ),
            format!("{:.1}%", 100.0 * (1.0 - p.qubits as f64 / 64.0)),
        ]);
    }
    t.print();

    // The paper's headline claims.
    let min_qubits = points.last().map(|p| p.qubits).unwrap_or(64);
    println!(
        "minimum qubits reached: {min_qubits} (saving {:.0}%)",
        100.0 * (1.0 - min_qubits as f64 / 64.0)
    );
    if let Some(p80) = points.iter().rev().find(|p| p.qubits as f64 <= 64.0 * 0.2) {
        println!(
            ">=80% saving point: {} qubits at {:+.1}% depth",
            p80.qubits,
            100.0 * (p80.depth() as f64 / base_depth as f64 - 1.0)
        );
    }
}

/// The paper's extreme floor ("as few as 5 qubits") needs a genuinely
/// sparse hub-and-leaf power-law instance: a graph's reachable floor is
/// lower-bounded by its pathwidth, and a 605-edge graph cannot have
/// pathwidth 4. We therefore also sweep the classic Barabási–Albert
/// scale-free graph (m = 2), which reproduces that order-of-magnitude
/// compression.
fn sweep_sparse_scale_free() {
    let graph = caqr_graph::gen::barabasi_albert(64, 2, EXPERIMENT_SEED);
    let circuit = maxcut_circuit(&graph, &[(0.7, 0.3)]);
    let spec = CommutingSpec::from_circuit(&circuit).expect("QAOA is commuting");
    let points = qs::commuting::sweep(&spec, sr::default_matcher(&spec));
    let base_depth = points[0].depth();
    println!(
        "\nQAOA-64 sparse scale-free (BA m=2, |E| = {}):",
        graph.num_edges()
    );
    let mut t = Table::new(&["qubits", "depth", "depth growth", "qubit saving"]);
    let step = (points.len() / 14).max(1);
    for (i, p) in points.iter().enumerate() {
        if i % step != 0 && i != points.len() - 1 {
            continue;
        }
        t.row(&[
            p.qubits.to_string(),
            p.depth().to_string(),
            format!(
                "{:+.1}%",
                100.0 * (p.depth() as f64 / base_depth as f64 - 1.0)
            ),
            format!("{:.1}%", 100.0 * (1.0 - p.qubits as f64 / 64.0)),
        ]);
    }
    t.print();
    println!(
        "floor: {} qubits (paper reports 'as few as 5' for its power-law instance)",
        points.last().map(|p| p.qubits).unwrap_or(64)
    );
}

fn main() {
    println!("Fig. 3 — qubit saving potential, QAOA-64, density 0.3");
    sweep_for(GraphKind::PowerLaw, "power-law");
    sweep_for(GraphKind::Random, "random");
    sweep_sparse_scale_free();
}
