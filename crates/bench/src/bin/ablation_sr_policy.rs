//! Ablation: SR-CaQR's policy knobs — delaying off-critical gates and
//! reclaiming retired physical qubits — evaluated independently.

use caqr::router::{route, RouterOptions};
use caqr_bench::{device_for, Table};
use caqr_benchmarks::suite;

fn main() {
    println!("Ablation — SR-CaQR policy knobs (regular suite)\n");
    let variants: [(&str, RouterOptions); 4] = [
        ("baseline (preplace)", RouterOptions::baseline()),
        (
            "delay only",
            RouterOptions {
                delay_off_critical: true,
                reclaim: false,
                preplace: false,
                ..RouterOptions::baseline()
            },
        ),
        (
            "reclaim only",
            RouterOptions {
                delay_off_critical: false,
                reclaim: true,
                preplace: false,
                ..RouterOptions::baseline()
            },
        ),
        ("SR (delay + reclaim)", RouterOptions::sr()),
    ];
    let mut t = Table::new(&["benchmark", "variant", "qubits", "SWAPs", "depth"]);
    for bench in suite::regular_suite() {
        let device = device_for(bench.circuit.num_qubits());
        for (label, opts) in variants {
            match route(&bench.circuit, &device, opts) {
                Ok(r) => t.row(&[
                    bench.name.clone(),
                    label.to_string(),
                    r.physical_qubits_used.to_string(),
                    r.swap_count.to_string(),
                    r.circuit.depth().to_string(),
                ]),
                Err(e) => t.row(&[
                    bench.name.clone(),
                    label.to_string(),
                    format!("{e}"),
                    String::new(),
                    String::new(),
                ]),
            }
        }
    }
    t.print();
    println!("\nexpected: reclaim drives qubit usage down; delay+reclaim minimizes SWAPs.");
}
