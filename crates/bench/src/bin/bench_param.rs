//! Parametric-template compile/bind split on the Figs. 15/16 QAOA
//! workload, frozen in `BENCH_param.json`.
//!
//! The point of the template pipeline is that an optimizer loop pays the
//! compiler once: the routed artifact is angle-independent, so every
//! iteration after the first is a single O(gates) bind. This bench
//! measures both sides on the Figs. 15/16 instances (10-vertex max-cut
//! graphs at densities 0.3 and 0.5, one and two QAOA layers, baseline and
//! SR strategies) and pins the routed/bound artifacts by fingerprint.
//!
//! Usage: `bench_param [--quick] [--check] [--json] [--out PATH]`
//!
//! * default — print the per-row compile/bind table.
//! * `--json` — also write the frozen `BENCH_param.json`.
//! * `--check` — recompute and compare against the committed JSON: every
//!   routed and bound artifact must match its frozen fingerprint bit for
//!   bit, and the recomputed speedups must clear the floors (every row
//!   binds at least 2x faster than it compiles; the best SR row at least
//!   100x). Wall times are *not* compared against the frozen file — they
//!   are machine-dependent and recorded for the narrative only.
//! * `--quick` — density 0.3, single layer only (CI smoke; composes with
//!   `--check`).

use caqr::{compile_template, compile_with, CostModelSpec, Strategy};
use caqr_bench::{mumbai, Table, EXPERIMENT_SEED};
use caqr_benchmarks::qaoa::{maxcut_template, GraphKind};
use caqr_circuit::parametric::bind_circuit;
use caqr_wire::Value;
use std::time::Instant;

/// Repeat compiles and report the median — one row's compile cost.
const COMPILE_REPS: usize = 5;
/// Distinct bindings timed per row; the median per-bind cost is reported.
const BIND_REPS: usize = 200;
/// Every row must bind at least this much faster than it compiles.
const FLOOR_ALL: f64 = 2.0;
/// The best SR row must bind at least this much faster than it compiles.
const FLOOR_SR: f64 = 100.0;

struct Row {
    bench: String,
    strategy: Strategy,
    layers: usize,
    slots: u32,
    compile_us: f64,
    bind_us: f64,
    speedup: f64,
    template_artifact: u128,
    bound_artifact: u128,
}

fn median(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

/// The canonical binding used for the pinned bound-artifact fingerprint:
/// the Figs. 15/16 starting point `(gamma, beta) = (0.7, 0.3)` per layer
/// (slot `2i+1` is the mixer angle `2 beta`), nudged per layer so deeper
/// templates do not repeat values.
fn canonical_values(layers: usize) -> Vec<f64> {
    (0..layers)
        .flat_map(|i| [0.7 - 0.05 * i as f64, 0.6 + 0.1 * i as f64])
        .collect()
}

fn run_row(density: f64, layers: usize, strategy: Strategy) -> Row {
    let device = mumbai();
    let graph = GraphKind::Random.generate(10, density, EXPERIMENT_SEED);
    let template = maxcut_template(&graph, layers);

    let mut compile_samples = Vec::with_capacity(COMPILE_REPS);
    let mut routed = None;
    for _ in 0..COMPILE_REPS {
        let started = Instant::now();
        let report = compile_template(&template, &device, strategy).expect("fits device");
        compile_samples.push(started.elapsed().as_secs_f64() * 1e6);
        routed = Some(report);
    }
    let routed = routed.expect("at least one compile rep");

    let mut bind_samples = Vec::with_capacity(BIND_REPS);
    for i in 0..BIND_REPS {
        let values: Vec<f64> = (0..template.num_slots())
            .map(|s| 0.1 + 0.01 * i as f64 + 0.3 * s as f64)
            .collect();
        let started = Instant::now();
        let bound = bind_circuit(&routed.circuit, template.num_slots(), &values)
            .expect("arity matches the template");
        bind_samples.push(started.elapsed().as_secs_f64() * 1e6);
        assert_eq!(bound.len(), routed.circuit.len());
    }

    // Correctness anchor: binding the routed template must reproduce the
    // direct compile of the bound concrete circuit, byte for byte.
    let values = canonical_values(layers);
    let bound = bind_circuit(&routed.circuit, template.num_slots(), &values)
        .expect("arity matches the template");
    let concrete = template.bind(&values).expect("canonical binding is finite");
    let direct =
        compile_with(&concrete, &device, strategy, CostModelSpec::Hop).expect("fits device");
    assert_eq!(
        bound.fingerprint(),
        direct.circuit.fingerprint(),
        "QAOA10-{density} x{layers} {strategy}: bound template != direct compile"
    );

    let compile_us = median(compile_samples);
    let bind_us = median(bind_samples);
    Row {
        bench: format!("QAOA10-{density}"),
        strategy,
        layers,
        slots: template.num_slots(),
        compile_us,
        bind_us,
        speedup: compile_us / bind_us.max(1e-3),
        template_artifact: routed.circuit.fingerprint().as_u128(),
        bound_artifact: bound.fingerprint().as_u128(),
    }
}

fn run_rows(quick: bool) -> Vec<Row> {
    let (densities, layer_counts): (&[f64], &[usize]) = if quick {
        (&[0.3], &[1])
    } else {
        (&[0.3, 0.5], &[1, 2])
    };
    let mut rows = Vec::new();
    for &density in densities {
        for &layers in layer_counts {
            for strategy in [Strategy::Baseline, Strategy::Sr] {
                rows.push(run_row(density, layers, strategy));
            }
        }
    }
    rows
}

fn render(rows: &[Row]) {
    let mut t = Table::new(&[
        "bench",
        "layers",
        "strategy",
        "slots",
        "compile_us",
        "bind_us",
        "speedup",
    ]);
    for row in rows {
        t.row(&[
            row.bench.clone(),
            row.layers.to_string(),
            row.strategy.to_string(),
            row.slots.to_string(),
            format!("{:.1}", row.compile_us),
            format!("{:.2}", row.bind_us),
            format!("{:.0}x", row.speedup),
        ]);
    }
    t.print();
}

/// The recomputed speedups must clear the floors: every row > [`FLOOR_ALL`],
/// the best SR row > [`FLOOR_SR`].
fn assert_speedups(rows: &[Row]) {
    for row in rows {
        assert!(
            row.speedup >= FLOOR_ALL,
            "{} x{} {}: bind is only {:.1}x faster than compile (floor {FLOOR_ALL}x)",
            row.bench,
            row.layers,
            row.strategy,
            row.speedup
        );
    }
    let best_sr = rows
        .iter()
        .filter(|r| r.strategy == Strategy::Sr)
        .map(|r| r.speedup)
        .fold(f64::MIN, f64::max);
    assert!(
        best_sr >= FLOOR_SR,
        "best SR bind speedup {best_sr:.1}x is under the {FLOOR_SR}x floor"
    );
}

fn to_json(rows: &[Row]) -> String {
    let mut json = String::from("{\n");
    json.push_str("  \"workload\": \"fig15_16_qaoa_templates\",\n");
    json.push_str("  \"device\": \"mumbai\",\n");
    json.push_str(&format!(
        "  \"floors\": {{\"all\": {FLOOR_ALL}, \"sr\": {FLOOR_SR}}},\n"
    ));
    json.push_str("  \"rows\": [\n");
    for (i, row) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"bench\": \"{}\", \"layers\": {}, \"strategy\": \"{}\", \"slots\": {}, \
             \"compile_us\": {:.1}, \"bind_us\": {:.2}, \"speedup\": {:.1}, \
             \"template_artifact\": \"{:032x}\", \"bound_artifact\": \"{:032x}\"}}{}\n",
            row.bench,
            row.layers,
            row.strategy,
            row.slots,
            row.compile_us,
            row.bind_us,
            row.speedup,
            row.template_artifact,
            row.bound_artifact,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    json.push_str("  ]\n}\n");
    json
}

/// Compares recomputed artifacts against the committed `BENCH_param.json`.
fn check(rows: &[Row], path: &str) {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("--check needs the committed {path}: {e}"));
    let frozen = caqr_wire::parse(&text).expect("committed JSON parses");
    let frozen_rows = frozen
        .get("rows")
        .and_then(Value::as_array)
        .expect("'rows' array");
    let key = |bench: &str, layers: u64, strategy: &str| format!("{bench}|{layers}|{strategy}");
    let mut index = std::collections::BTreeMap::new();
    for row in frozen_rows {
        let k = key(
            row.get("bench").and_then(Value::as_str).unwrap(),
            row.get("layers").and_then(Value::as_u64).unwrap(),
            row.get("strategy").and_then(Value::as_str).unwrap(),
        );
        index.insert(k, row);
    }

    for row in rows {
        let k = key(&row.bench, row.layers as u64, &row.strategy.to_string());
        let frozen_row = index
            .get(&k)
            .unwrap_or_else(|| panic!("row '{k}' missing from {path}"));
        for (field, recomputed) in [
            ("template_artifact", row.template_artifact),
            ("bound_artifact", row.bound_artifact),
        ] {
            assert_eq!(
                frozen_row.get(field).and_then(Value::as_str),
                Some(format!("{recomputed:032x}").as_str()),
                "{field} for '{k}' drifted from the frozen fingerprint"
            );
        }
        assert_eq!(
            frozen_row.get("slots").and_then(Value::as_u64),
            Some(u64::from(row.slots)),
            "slot count for '{k}' drifted"
        );
    }
    assert_speedups(rows);
    println!(
        "--check passed ({} rows verified against {path})",
        rows.len()
    );
}

fn main() {
    let mut quick = false;
    let mut check_only = false;
    let mut write_json = false;
    let default_out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_param.json");
    let mut out = default_out.to_string();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--check" => check_only = true,
            "--json" => write_json = true,
            "--out" => out = args.next().expect("--out requires a path"),
            other => {
                eprintln!("unrecognized argument '{other}'");
                eprintln!("usage: bench_param [--quick] [--check] [--json] [--out PATH]");
                std::process::exit(2);
            }
        }
    }

    let scope = if quick {
        "quick subset (density 0.3, 1 layer)"
    } else {
        "full workload (densities 0.3/0.5, 1-2 layers)"
    };
    println!("Parametric-template compile/bind split — {scope}\n");
    let rows = run_rows(quick);
    render(&rows);
    let mean_speedup = rows.iter().map(|r| r.speedup).sum::<f64>() / rows.len() as f64;
    println!("\nmean bind speedup over cold compile: {mean_speedup:.0}x");

    if check_only {
        check(&rows, &out);
        return;
    }
    assert_speedups(&rows);
    if write_json {
        std::fs::write(&out, to_json(&rows)).expect("write BENCH_param.json");
        println!("wrote {out}");
    }
}
