//! Figs. 4/5: BV's star interaction graph vs the 5-qubit degree-3 device.
//!
//! The 5-qubit BV circuit's interaction graph is a degree-4 star, which
//! cannot embed in a coupling graph whose maximum degree is 3 — SWAPs are
//! unavoidable. One qubit reuse merges two star leaves, dropping the
//! degree to 3 and making the circuit embeddable with zero SWAPs.

use caqr::{baseline, sr};
use caqr_arch::{Device, Topology};
use caqr_bench::Table;
use caqr_benchmarks::bv;
use caqr_circuit::interaction::interaction_graph;

fn main() {
    let device = Device::with_synthetic_calibration(Topology::five_qubit_t(), 7);
    let bench = bv::bv_all_ones(5);
    println!("Figs. 4/5 — BV_5 on the 5-qubit T-shaped device\n");

    let int = interaction_graph(&bench.circuit);
    println!(
        "interaction graph: star, max degree {} (device max degree {})",
        int.max_degree(),
        device.topology().max_degree()
    );

    let base = baseline::compile(&bench.circuit, &device).expect("fits");
    let reuse = sr::compile(&bench.circuit, &device).expect("fits");

    let mut t = Table::new(&["compiler", "physical qubits", "SWAPs", "depth"]);
    t.row(&[
        "baseline (no reuse)".into(),
        base.physical_qubits_used.to_string(),
        base.swap_count.to_string(),
        base.circuit.depth().to_string(),
    ]);
    t.row(&[
        "SR-CaQR (reuse)".into(),
        reuse.physical_qubits_used.to_string(),
        reuse.swap_count.to_string(),
        reuse.circuit.depth().to_string(),
    ]);
    t.print();
    println!(
        "\npaper: the 4-qubit reused BV fits the architecture with no SWAPs,\n\
         while the 5-qubit original cannot (Fig. 5b vs 5c)."
    );
}
