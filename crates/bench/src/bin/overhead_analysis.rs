//! §3.4 overhead analysis: wall-clock cost of each compiler pass as the
//! instance grows, confirming the polynomial scaling the paper derives
//! (`O(k n^3)` for general circuits; matching-dominated for QAOA).

use caqr::commuting::{schedule, CommutingSpec, Matcher};
use caqr::{analysis::ReuseAnalysis, baseline, qs, sr};
use caqr_arch::Device;
use caqr_bench::{device_for, Table, EXPERIMENT_SEED};
use caqr_benchmarks::bv;
use caqr_benchmarks::qaoa::{maxcut_circuit, GraphKind};
use std::time::Instant;

fn ms(start: Instant) -> String {
    format!("{:.1}", start.elapsed().as_secs_f64() * 1000.0)
}

fn main() {
    println!("§3.4 — pass overheads (wall clock, release build)\n");

    println!("regular path (BV_n):");
    let mut t = Table::new(&[
        "n",
        "gates",
        "analysis ms",
        "qs sweep ms",
        "sr ms",
        "baseline ms",
    ]);
    for n in [8usize, 12, 16, 20] {
        let bench = bv::bv_all_ones(n);
        let device = device_for(n);
        let s = Instant::now();
        let a = ReuseAnalysis::of(&bench.circuit);
        let _ = a.candidate_pairs();
        let t_analysis = ms(s);
        let s = Instant::now();
        let _ = qs::regular::sweep(&bench.circuit, &device.logical_duration_model());
        let t_sweep = ms(s);
        let s = Instant::now();
        let _ = sr::route_only(&bench.circuit, &device);
        let t_sr = ms(s);
        let s = Instant::now();
        let _ = baseline::compile(&bench.circuit, &device);
        let t_base = ms(s);
        t.row(&[
            n.to_string(),
            bench.circuit.len().to_string(),
            t_analysis,
            t_sweep,
            t_sr,
            t_base,
        ]);
    }
    t.print();

    println!("\ncommuting path (QAOA-n, density 0.3):");
    let mut t = Table::new(&[
        "n",
        "edges",
        "blossom schedule ms",
        "greedy schedule ms",
        "full sweep ms",
    ]);
    for n in [16usize, 32, 64] {
        let graph = GraphKind::Random.generate(n, 0.3, EXPERIMENT_SEED);
        let circuit = maxcut_circuit(&graph, &[(0.7, 0.3)]);
        let spec = CommutingSpec::from_circuit(&circuit).unwrap();
        let s = Instant::now();
        let _ = schedule(&spec, &[], Matcher::Blossom);
        let t_blossom = ms(s);
        let s = Instant::now();
        let _ = schedule(&spec, &[], Matcher::Greedy);
        let t_greedy = ms(s);
        let s = Instant::now();
        let _ = qs::commuting::sweep(&spec, sr::default_matcher(&spec));
        let t_sweep = ms(s);
        t.row(&[
            n.to_string(),
            graph.num_edges().to_string(),
            t_blossom,
            t_greedy,
            t_sweep,
        ]);
    }
    t.print();

    let _ = Device::mumbai(0); // keep the device path linked
    println!("\nexpected: every column grows polynomially; greedy matching is ~10x blossom.");
}
