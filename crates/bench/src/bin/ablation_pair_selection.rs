//! Ablation: QS-CaQR's critical-path-aware pair selection vs naive
//! alternatives (first valid pair; worst pair), across the regular suite.
//!
//! Validates the design choice of §3.2.1: scoring each candidate pair by
//! the critical path of the resulting DAG.

use caqr::analysis::ReuseAnalysis;
use caqr::transform::{self, ReusePlan};
use caqr_bench::{device_for, Table};
use caqr_benchmarks::suite;
use caqr_circuit::depth::{duration_dt, DurationModel};
use caqr_circuit::Circuit;

/// Reduce to the minimum qubit count, choosing pairs by `pick`.
fn sweep_with(
    circuit: &Circuit,
    durations: &impl DurationModel,
    mut pick: impl FnMut(&Circuit, &[(u64, Circuit)]) -> usize,
) -> Circuit {
    let mut current = circuit.clone();
    loop {
        let analysis = ReuseAnalysis::of(&current);
        let options: Vec<(u64, Circuit)> = analysis
            .candidate_pairs()
            .into_iter()
            .filter_map(|p| {
                let t = transform::apply(&current, &ReusePlan::from_pairs([p])).ok()?;
                let d = duration_dt(&t.circuit, durations);
                Some((d, t.circuit))
            })
            .collect();
        if options.is_empty() {
            return current;
        }
        let idx = pick(&current, &options);
        current = options[idx].1.clone();
    }
}

fn main() {
    println!("Ablation — pair-selection objective (all reduced to minimum qubits)\n");
    let mut t = Table::new(&[
        "benchmark",
        "critical-path pick (dur)",
        "first-valid pick (dur)",
        "worst pick (dur)",
    ]);
    for bench in suite::regular_suite() {
        let device = device_for(bench.circuit.num_qubits());
        let model = device.logical_duration_model();
        let best = sweep_with(&bench.circuit, &model, |_, opts| {
            opts.iter()
                .enumerate()
                .min_by_key(|(_, (d, _))| *d)
                .map(|(i, _)| i)
                .unwrap()
        });
        let first = sweep_with(&bench.circuit, &model, |_, _| 0);
        let worst = sweep_with(&bench.circuit, &model, |_, opts| {
            opts.iter()
                .enumerate()
                .max_by_key(|(_, (d, _))| *d)
                .map(|(i, _)| i)
                .unwrap()
        });
        t.row(&[
            bench.name.clone(),
            format!("{} ({}q)", duration_dt(&best, &model), best.num_qubits()),
            format!("{} ({}q)", duration_dt(&first, &model), first.num_qubits()),
            format!("{} ({}q)", duration_dt(&worst, &model), worst.num_qubits()),
        ]);
    }
    t.print();
    println!("\nexpected: critical-path picking never loses to first-valid and beats worst-pick.");
}
