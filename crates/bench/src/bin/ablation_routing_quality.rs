//! Ablation: single-pass vs SABRE-style bidirectional baseline routing.
//!
//! Quantifies what the reverse-pass layout refinement buys on the suite —
//! and therefore how conservative the paper-table baselines are.

use caqr::baseline;
use caqr_bench::{device_for, Table};
use caqr_benchmarks::suite;

fn main() {
    println!("Ablation — baseline routing: single pass vs bidirectional refinement\n");
    let mut t = Table::new(&[
        "benchmark",
        "single SWAPs",
        "bidir SWAPs",
        "single depth",
        "bidir depth",
    ]);
    for bench in suite::full_table_suite(caqr_bench::EXPERIMENT_SEED) {
        let device = device_for(bench.circuit.num_qubits());
        let single = baseline::compile(&bench.circuit, &device);
        let bidir = baseline::compile_bidirectional(&bench.circuit, &device);
        match (single, bidir) {
            (Ok(s), Ok(b)) => t.row(&[
                bench.name.clone(),
                s.swap_count.to_string(),
                b.swap_count.to_string(),
                s.circuit.depth().to_string(),
                b.circuit.depth().to_string(),
            ]),
            _ => t.row(&[
                bench.name.clone(),
                "error".into(),
                String::new(),
                String::new(),
                String::new(),
            ]),
        }
    }
    t.print();
    println!("\nexpected: bidirectional never inserts more SWAPs; gains grow with circuit size.");
}
