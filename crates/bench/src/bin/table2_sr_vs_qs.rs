//! Table 2: SR-CaQR vs QS-CaQR (MIN-SWAP) — SWAP count and duration on
//! the Mumbai architecture, for the full suite.
//!
//! Expected shape: SR-CaQR matches or beats the best QS sweep point on
//! SWAPs everywhere, with the gap widening on the larger QAOA instances.
//!
//! Both strategies for every benchmark run through the batch engine in one
//! request; printed numbers match sequential compilation.

use caqr::Strategy;
use caqr_bench::{compile_grid, format_dt, Table};
use caqr_benchmarks::suite;

fn main() {
    println!("Table 2 — SR-CaQR vs QS-CaQR (MIN-SWAP)\n");
    let mut t = Table::new(&[
        "benchmark",
        "QS swaps",
        "QS duration",
        "SR swaps",
        "SR duration",
        "SR qubits",
    ]);
    let benches = suite::full_table_suite(caqr_bench::EXPERIMENT_SEED);
    let grid = compile_grid(&benches, &[Strategy::QsMinSwap, Strategy::Sr]);
    for (bench, row) in benches.iter().zip(&grid) {
        match (&row[0], &row[1]) {
            (Ok(qs), Ok(sr)) => t.row(&[
                bench.name.clone(),
                qs.swaps.to_string(),
                format_dt(qs.duration_dt),
                sr.swaps.to_string(),
                format_dt(sr.duration_dt),
                sr.qubits.to_string(),
            ]),
            (qs, sr) => t.row(&[
                bench.name.clone(),
                qs.as_ref()
                    .map(|r| r.swaps.to_string())
                    .unwrap_or_else(|e| e.clone()),
                String::new(),
                sr.as_ref()
                    .map(|r| r.swaps.to_string())
                    .unwrap_or_else(|e| e.clone()),
                String::new(),
                String::new(),
            ]),
        }
    }
    t.print();
}
