//! Table 2: SR-CaQR vs QS-CaQR (MIN-SWAP) — SWAP count and duration on
//! the Mumbai architecture, for the full suite.
//!
//! Expected shape: SR-CaQR matches or beats the best QS sweep point on
//! SWAPs everywhere, with the gap widening on the larger QAOA instances.

use caqr::{compile, Strategy};
use caqr_bench::{device_for, format_dt, Table};
use caqr_benchmarks::suite;

fn main() {
    println!("Table 2 — SR-CaQR vs QS-CaQR (MIN-SWAP)\n");
    let mut t = Table::new(&[
        "benchmark",
        "QS swaps",
        "QS duration",
        "SR swaps",
        "SR duration",
        "SR qubits",
    ]);
    for bench in suite::full_table_suite(caqr_bench::EXPERIMENT_SEED) {
        let device = device_for(bench.circuit.num_qubits());
        let qs = compile(&bench.circuit, &device, Strategy::QsMinSwap);
        let sr = compile(&bench.circuit, &device, Strategy::Sr);
        match (qs, sr) {
            (Ok(qs), Ok(sr)) => t.row(&[
                bench.name.clone(),
                qs.swaps.to_string(),
                format_dt(qs.duration_dt),
                sr.swaps.to_string(),
                format_dt(sr.duration_dt),
                sr.qubits.to_string(),
            ]),
            (qs, sr) => t.row(&[
                bench.name.clone(),
                qs.map(|r| r.swaps.to_string()).unwrap_or_else(|e| e.to_string()),
                String::new(),
                sr.map(|r| r.swaps.to_string()).unwrap_or_else(|e| e.to_string()),
                String::new(),
                String::new(),
            ]),
        }
    }
    t.print();
}
